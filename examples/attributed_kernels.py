"""Attributed HAQJSK kernels — the paper's Section V future work, realised.

The paper closes with: "Our future work is to [...] integrate the vertex
label information into the kernel computation, resulting new attributed
HAQJSK kernels." This example shows the attributed variants in action on a
labelled molecule workload where the *label placement* carries signal the
topology alone does not:

* class 0 — rings whose hetero-atoms (label 1) sit adjacent to each other;
* class 1 — the same ring topology with hetero-atoms spread apart.

The plain HAQJSK(D) kernel is blind to the difference (both classes have
identical topology and label *counts*). So — instructively — is the
radius-0 attributed kernel: on a vertex-transitive ring every vertex has
the same entropy-flow geometry, so alignment only sees the label *counts*,
which match across classes. The radius-1 label-histogram channels break
the tie: a hetero-atom next to another hetero-atom has a different 1-hop
label mix than an isolated one, and the task becomes trivial (100%).

Run:  python examples/attributed_kernels.py
"""

from __future__ import annotations

import numpy as np

from repro.graphs import generators as gen
from repro.kernels import HAQJSKAttributedD, HAQJSKKernelD
from repro.ml import condition_gram, cross_validate_kernel, gram_signal_summary


def make_molecule(rng: np.random.Generator, *, clustered: bool):
    """A 12-ring with two hetero-atoms: adjacent (clustered) or spread."""
    ring = gen.cycle_graph(12)
    labels = np.zeros(12, dtype=int)
    start = int(rng.integers(0, 12))
    if clustered:
        labels[start] = labels[(start + 1) % 12] = 1
    else:
        labels[start] = labels[(start + 6) % 12] = 1
    return ring.with_labels(labels)


def main() -> None:
    rng = np.random.default_rng(0)
    graphs = [make_molecule(rng, clustered=True) for _ in range(15)]
    graphs += [make_molecule(rng, clustered=False) for _ in range(15)]
    targets = [0] * 15 + [1] * 15

    kernels = [
        ("HAQJSK(D)      [plain]    ", HAQJSKKernelD(
            n_prototypes=16, n_levels=3, max_layers=4, seed=0)),
        ("HAQJSK-L(D)    [labels]   ", HAQJSKAttributedD(
            n_prototypes=16, n_levels=3, max_layers=4, seed=0)),
        ("HAQJSK-L(D) r=1 [context] ", HAQJSKAttributedD(
            n_prototypes=16, n_levels=3, max_layers=4, radius=1, seed=0)),
    ]

    print("hetero-atom placement task: clustered vs spread (30 graphs)")
    print(f"{'kernel':28s} {'1-NN':>6s}  {'10-fold CV accuracy':>20s}")
    for name, kernel in kernels:
        gram = condition_gram(kernel.gram(graphs, normalize=True))
        signal = gram_signal_summary(gram, targets)
        result = cross_validate_kernel(
            gram, targets, n_folds=10, n_repeats=3, seed=1
        )
        print(f"{name:28s} {signal['one_nn_accuracy']:6.2f}  {result!s:>20s}")

    print(
        "\nBoth classes share topology and label counts, so the plain kernel"
        "\n— and, on this vertex-transitive ring, even the radius-0 labelled"
        "\nkernel — sit at chance. The radius-1 label histograms give each"
        "\nvertex its neighbourhood's label mix, which differs between"
        "\nclustered and spread placements: the task becomes trivial."
    )


if __name__ == "__main__":
    main()
