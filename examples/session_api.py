"""The unified public API in one sitting: Session, KernelSpec, context.

Everything the library does — Gram computation, the paper's CV protocol,
bundle training, inductive serving — through the one documented front
door, with the execution policy (engine, store, tiles) held in a single
frozen `ExecutionContext`.

Run:  python examples/session_api.py
"""

from __future__ import annotations

import tempfile

import repro
from repro.datasets import load_dataset
from repro.store import ArtifactStore


def main() -> None:
    dataset = load_dataset("MUTAG", scale=0.15, seed=0)
    print(f"dataset: {dataset}")

    with tempfile.TemporaryDirectory() as root:
        # One context drives every call: backend, store, policy.
        ctx = repro.ExecutionContext(
            engine="batched", store=ArtifactStore(root), normalize=True
        )
        session = repro.Session(ctx)

        # A declarative, JSON-round-trippable kernel description.
        spec = repro.KernelSpec("HAQJSK(D)", n_prototypes=8, n_levels=2)
        print(f"spec: {spec.resolved().to_json()}")

        # Gram -> CV -> train -> predict. The store makes the repeated
        # Gram computations content-addressed disk reads after the first.
        gram = session.gram(spec, dataset.graphs)
        result = session.cross_validate(
            spec, dataset, n_folds=4, n_repeats=1, seed=1
        )
        bundle = session.train(spec, dataset, c=10.0, name="demo")
        served = session.predict("demo", dataset.graphs[:5])

        print(f"gram: {gram.shape}, accuracy: {result}")
        print(f"bundle spec record: {bundle.kernel_spec}")
        print(f"served labels: {[int(label) for label in served.labels]}")


if __name__ == "__main__":
    main()
