"""Embedding and scaling tools around the HAQJSK kernels.

Two practical companions to the paper's kernels for downstream users:

1. **Kernel PCA** — the kernels live in Gram-matrix space; kernel PCA
   gives each graph explicit coordinates, which is how you *look* at what
   the hierarchical alignment does to a collection (here: class spread
   ratios in the leading components).
2. **Nyström approximation** — Section III-D puts the kernels at O(N²n³);
   the N² factor is the pairwise QJSD stage. Nyström replaces it with N·m
   landmark evaluations and reports how the approximation error and the
   downstream 1-NN accuracy degrade as m shrinks.

Run:  python examples/embedding_and_scaling.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.datasets import load_dataset
from repro.kernels import HAQJSKKernelD
from repro.ml import (
    condition_gram,
    kernel_embedding,
    leave_one_out_knn_accuracy,
    nystrom_gram,
)


def class_spread_ratio(embedding: np.ndarray, targets: np.ndarray) -> float:
    """Between-class over within-class scatter in the embedding (higher =
    classes more separated)."""
    grand_mean = embedding.mean(axis=0)
    within, between = 0.0, 0.0
    for cls in np.unique(targets):
        members = embedding[targets == cls]
        center = members.mean(axis=0)
        within += float(((members - center) ** 2).sum())
        between += members.shape[0] * float(((center - grand_mean) ** 2).sum())
    return between / max(within, 1e-12)


def main() -> None:
    dataset = load_dataset("MUTAG", scale=0.5, seed=0)
    targets = np.asarray(dataset.targets)
    kernel = HAQJSKKernelD(n_prototypes=32, n_levels=5, max_layers=6, seed=0)

    print(f"dataset: {dataset}")
    start = time.perf_counter()
    exact = kernel.gram(dataset.graphs, normalize=True)
    exact_seconds = time.perf_counter() - start
    print(f"exact Gram: {exact.shape}, {exact_seconds:.1f}s\n")

    # --- 1. kernel PCA ---------------------------------------------------
    embedding = kernel_embedding(condition_gram(exact), n_components=2)
    ratio = class_spread_ratio(embedding, targets)
    print("kernel PCA (2 components):")
    for cls in np.unique(targets):
        center = embedding[targets == cls].mean(axis=0)
        print(f"  class {cls}: centroid ({center[0]:+.3f}, {center[1]:+.3f})")
    print(f"  between/within scatter ratio: {ratio:.2f}\n")

    # --- 2. Nyström ------------------------------------------------------
    n = len(dataset)
    print(f"{'landmarks':>10s} {'rel. error':>11s} {'LOO 1-NN':>9s}")
    loo_exact = leave_one_out_knn_accuracy(exact, targets)
    print(f"{'exact':>10s} {0.0:11.4f} {loo_exact:9.3f}")
    for m in (n // 2, n // 4, n // 8):
        approx = nystrom_gram(kernel, dataset.graphs, n_landmarks=m, seed=0)
        # compare on the same (cosine-normalised) footing
        diag = np.sqrt(np.clip(np.diag(approx), 1e-12, None))
        approx_normalised = approx / np.outer(diag, diag)
        error = np.linalg.norm(approx_normalised - exact) / np.linalg.norm(exact)
        loo = leave_one_out_knn_accuracy(approx_normalised, targets)
        print(f"{m:>10d} {error:11.4f} {loo:9.3f}")

    print(
        "\nThe embedding separates the classes the SVM later classifies, and"
        "\nthe Nyström columns show how far the Gram matrix can be compressed"
        "\nbefore neighbourhood structure (1-NN accuracy) starts to decay."
    )


if __name__ == "__main__":
    main()
