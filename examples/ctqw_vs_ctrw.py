"""CTQW vs CTRW — the paper's Section II-A remarks, measured.

The paper motivates building kernels on the *quantum* walk with three
contrasts against the classical continuous-time random walk:

1. the CTRW is governed by the low Laplacian frequencies — it relaxes to
   its stationary distribution at a rate set by the spectral gap and then
   remembers nothing else;
2. the CTQW's unitary (reversible) evolution permits interference, so its
   occupation probabilities oscillate indefinitely and retain
   high-frequency spectral information;
3. interference reduces *tottering* — a classical walker crosses an edge
   and immediately sloshes back, re-visiting vertex pairs redundantly.

This example prints all three on a cycle graph: the return-probability
curves, the late-time distinguishability of two same-size graphs, and a
tottering score (early-time probability of being back at the start).

Run:  python examples/ctqw_vs_ctrw.py
"""

from __future__ import annotations

import numpy as np

from repro.graphs import generators as gen
from repro.quantum import CTQW, CTRW, return_probability_curve


def ascii_curve(values: np.ndarray, *, width: int = 56, height: int = 8) -> str:
    """Tiny ASCII plot of a [0, 1] curve."""
    scaled = np.interp(
        np.linspace(0, len(values) - 1, width), np.arange(len(values)), values
    )
    rows = []
    for level in range(height, 0, -1):
        threshold = level / height
        rows.append(
            "".join("#" if v >= threshold - 1e-12 else " " for v in scaled)
        )
    return "\n".join(rows)


def main() -> None:
    cycle = gen.cycle_graph(8)
    start = np.zeros(8)
    start[0] = 1.0

    classical = CTRW(cycle.adjacency, initial_distribution=start)
    quantum = CTQW(cycle.adjacency, initial_state=start)
    times = np.linspace(0.05, 12.0, 120)

    classical_curve = return_probability_curve(classical, times, 0)
    quantum_curve = return_probability_curve(quantum, times, 0)

    print("return probability at the start vertex (cycle of 8), t in [0, 12]")
    print("\nclassical CTRW — monotone decay to 1/8, gap-limited:")
    print(ascii_curve(classical_curve))
    print("\nquantum CTQW — interference keeps oscillating:")
    print(ascii_curve(quantum_curve))

    # 2. late-time discrimination between two same-size graphs
    t_late = 150.0
    path = gen.path_graph(8)
    classical_gap = np.abs(
        CTRW.from_graph(cycle).probabilities_at(t_late)
        - CTRW.from_graph(path).probabilities_at(t_late)
    ).max()
    quantum_gap = np.abs(
        CTQW.from_graph(cycle).probabilities_at(t_late)
        - CTQW.from_graph(path).probabilities_at(t_late)
    ).max()
    print(
        f"\nmax distribution gap, cycle(8) vs path(8) at t={t_late:.0f}: "
        f"classical {classical_gap:.2e}, quantum {quantum_gap:.2e}"
    )

    # 3. tottering: how much early-time mass sloshes straight back
    t_early = np.linspace(0.05, 1.5, 30)
    classical_totter = return_probability_curve(classical, t_early, 0).mean()
    quantum_totter = return_probability_curve(quantum, t_early, 0).mean()
    print(
        f"early-time mean return probability (tottering score): "
        f"classical {classical_totter:.3f}, quantum {quantum_totter:.3f}"
    )
    print(
        "\nAll three Section II-A remarks hold: the classical walk forgets"
        "\neverything but the spectral gap, while the quantum walk's"
        "\ninterference keeps discriminating structure — the basis for the"
        "\nQJSD kernels this library reproduces."
    )


if __name__ == "__main__":
    main()
