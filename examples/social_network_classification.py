"""Social-network scenario: kernels vs a trained GNN on ego networks.

Reproduces the Table V story on two social datasets: the HAQJSK kernels
against a gradient-trained DGCNN and the DGK/AWE embedding methods, using
the IMDB-B (actor ego networks) and RED-B (Reddit thread) surrogates.

Run:  python examples/social_network_classification.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import load_dataset
from repro.gnn import DGCNN, AnonymousWalkKernel, DeepGraphKernel
from repro.gnn.models import evaluate_model
from repro.gnn.training import train_graph_classifier
from repro.kernels import HAQJSKKernelA, HAQJSKKernelD
from repro.ml import cross_validate_kernel, stratified_k_fold


def kernel_accuracy(kernel, dataset) -> str:
    gram = kernel.gram(dataset.graphs, normalize=True)
    result = cross_validate_kernel(gram, dataset.targets, n_repeats=2, seed=1)
    return str(result)


def dgcnn_accuracy(dataset, *, n_epochs: int = 25, seed: int = 0) -> str:
    """10-fold CV with a freshly trained DGCNN per fold."""
    max_degree = int(min(max(g.unweighted_degrees().max() for g in dataset.graphs), 25))
    accuracies = []
    for train_idx, test_idx in stratified_k_fold(dataset.targets, 10, seed=seed):
        model = DGCNN(dataset.n_classes, max_degree=max_degree, seed=seed)
        train_graph_classifier(
            model,
            [dataset.graphs[i] for i in train_idx],
            dataset.targets[train_idx],
            n_epochs=n_epochs,
            seed=seed,
        )
        accuracies.append(
            evaluate_model(
                model,
                [dataset.graphs[i] for i in test_idx],
                dataset.targets[test_idx],
            )
        )
    return f"{np.mean(accuracies) * 100:.2f} (10-fold)"


def main() -> None:
    scenarios = [
        ("IMDB-B", dict(scale=0.06, seed=0)),
        ("RED-B", dict(scale=0.03, size_scale=0.15, seed=0)),
    ]
    for name, load_kwargs in scenarios:
        dataset = load_dataset(name, **load_kwargs)
        print(f"=== {name}: {len(dataset)} graphs ===")
        print(
            "  HAQJSK(A) ",
            kernel_accuracy(
                HAQJSKKernelA(n_prototypes=32, n_levels=5, max_layers=5, seed=0),
                dataset,
            ),
        )
        print(
            "  HAQJSK(D) ",
            kernel_accuracy(
                HAQJSKKernelD(n_prototypes=32, n_levels=5, max_layers=5, seed=0),
                dataset,
            ),
        )
        print("  DGK       ", kernel_accuracy(DeepGraphKernel(), dataset))
        print("  AWE       ", kernel_accuracy(AnonymousWalkKernel(seed=0), dataset))
        print("  DGCNN     ", dgcnn_accuracy(dataset))
        print()


if __name__ == "__main__":
    main()
