"""Quickstart: classify graphs with the HAQJSK kernels in ~30 lines.

Builds a small two-class collection (molecule-like surrogates from the
MUTAG registry entry), computes the HAQJSK(D) Gram matrix, and runs the
paper's 10-fold C-SVM protocol.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.datasets import load_dataset
from repro.kernels import HAQJSKKernelA, HAQJSKKernelD, QJSKUnaligned
from repro.ml import cross_validate_kernel


def main() -> None:
    # 1. A dataset: 94 molecule-like graphs, 2 classes (see repro.datasets
    #    for the 12 paper benchmarks; scale trades size for speed).
    dataset = load_dataset("MUTAG", scale=0.5, seed=0)
    print(f"dataset: {dataset}")
    print(f"statistics: {dataset.statistics().as_row()}\n")

    # 2. Kernels. HAQJSK(A)/(D) are the paper's contribution; QJSK is the
    #    unaligned predecessor they improve upon.
    kernels = [
        HAQJSKKernelA(n_prototypes=32, n_levels=5, max_layers=6, seed=0),
        HAQJSKKernelD(n_prototypes=32, n_levels=5, max_layers=6, seed=0),
        QJSKUnaligned(),
    ]

    # 3. Gram matrix -> repeated stratified 10-fold C-SVM (paper protocol).
    for kernel in kernels:
        gram = kernel.gram(
            dataset.graphs,
            normalize=True,
            ensure_psd=not kernel.traits.positive_definite,
        )
        result = cross_validate_kernel(
            gram, dataset.targets, n_folds=10, n_repeats=3, seed=1
        )
        print(f"{kernel.name:10s} accuracy: {result} (best C = {result.best_c})")


if __name__ == "__main__":
    main()
