"""Computer-vision scenario: shape retrieval with aligned kernels.

The paper evaluates on 3D-shape graph datasets (GatorBait, BAR31, ...)
where each class is one object under viewpoint/sampling noise. Beyond
classification, kernels support *retrieval*: given a query shape, rank the
collection by kernel similarity. This example measures precision@k for
HAQJSK(D) against the unaligned QJSK baseline on the BAR31 surrogate —
the regime where the paper's accuracy gap is most dramatic (71.7 vs 30.8).

Run:  python examples/shape_retrieval.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import load_dataset
from repro.kernels import HAQJSKKernelD, QJSKUnaligned, WeisfeilerLehmanKernel


def precision_at_k(gram: np.ndarray, targets: np.ndarray, k: int) -> float:
    """Mean fraction of same-class shapes among each query's top-k."""
    n = gram.shape[0]
    hits = []
    for query in range(n):
        similarity = gram[query].copy()
        similarity[query] = -np.inf  # exclude the query itself
        top = np.argsort(-similarity)[:k]
        hits.append(np.mean(targets[top] == targets[query]))
    return float(np.mean(hits))


def main() -> None:
    dataset = load_dataset("BAR31", scale=0.3, size_scale=0.5, seed=0)
    targets = dataset.targets
    per_class = int(np.bincount(targets).min())
    print(
        f"BAR31 surrogate: {len(dataset)} shapes, "
        f"{dataset.n_classes} classes (~{per_class} views per shape)\n"
    )

    kernels = [
        HAQJSKKernelD(n_prototypes=32, n_levels=5, max_layers=5, seed=0),
        QJSKUnaligned(),
        WeisfeilerLehmanKernel(4),
    ]
    print(f"{'kernel':12s} {'P@1':>6s} {'P@3':>6s}")
    for kernel in kernels:
        gram = kernel.gram(dataset.graphs, normalize=True)
        p1 = precision_at_k(gram, targets, 1)
        p3 = precision_at_k(gram, targets, min(3, per_class))
        print(f"{kernel.name:12s} {p1:6.3f} {p3:6.3f}")

    print(
        "\nExpected shape (paper Table IV): the transitively aligned kernel "
        "retrieves same-class views far better than the unaligned QJSK."
    )


if __name__ == "__main__":
    main()
