"""Figure 1 narrative: why correspondence matters.

The paper's Fig. 1 shows two photographs of the same house from different
viewpoints: R-convolution kernels count matching substructures without
asking whether they are *structurally aligned*, so they cannot tell "same
house, new viewpoint" from "different house with similar parts".

This example builds the graph version of that story: a base structure
observed under vertex relabelling + light noise ("viewpoints" of one
house) versus a different structure assembled from the same local motifs
("a different house"). It then shows that

* the unaligned QJSK similarity *fluctuates* across viewpoints of the
  same structure (not permutation invariant), while HAQJSK is exact;
* HAQJSK separates same-structure pairs from different-structure pairs
  more cleanly than the motif-counting WL kernel.

Run:  python examples/viewpoint_alignment.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import perturbed_template
from repro.graphs import generators as gen
from repro.kernels import HAQJSKKernelD, QJSKUnaligned, WeisfeilerLehmanKernel
from repro.utils.rng import as_rng


def build_scene(seed: int = 0):
    """Viewpoints of house A, viewpoints of house B (shared motifs)."""
    rng = as_rng(seed)
    house_a = gen.watts_strogatz(24, 4, 0.15, seed=11)
    house_b = gen.barabasi_albert(24, 2, seed=12)
    views_a = [
        perturbed_template(house_a, rng, rewire_fraction=0.04).permuted(
            rng.permutation(24)
        )
        for _ in range(4)
    ]
    views_b = [
        perturbed_template(house_b, rng, rewire_fraction=0.04).permuted(
            rng.permutation(24)
        )
        for _ in range(4)
    ]
    return views_a, views_b


def block_means(gram: np.ndarray, n_a: int):
    same_a = gram[:n_a, :n_a][np.triu_indices(n_a, k=1)].mean()
    same_b = gram[n_a:, n_a:][np.triu_indices(n_a, k=1)].mean()
    cross = gram[:n_a, n_a:].mean()
    return (same_a + same_b) / 2, cross


def main() -> None:
    views_a, views_b = build_scene()
    graphs = views_a + views_b
    kernels = [
        HAQJSKKernelD(n_prototypes=16, n_levels=3, max_layers=5, seed=0),
        QJSKUnaligned(),
        WeisfeilerLehmanKernel(3),
    ]
    print("similarity between viewpoints of the SAME house vs DIFFERENT houses\n")
    print(f"{'kernel':10s} {'same':>8s} {'cross':>8s} {'margin':>8s}")
    margins = {}
    for kernel in kernels:
        gram = kernel.gram(graphs, normalize=True)
        same, cross = block_means(gram, len(views_a))
        margins[kernel.name] = same - cross
        print(f"{kernel.name:10s} {same:8.4f} {cross:8.4f} {same - cross:+8.4f}")

    print(
        "\nHAQJSK's transitive alignment identifies the same structure across"
        "\nviewpoints; the unaligned QJSK's padding is viewpoint-dependent, so"
        "\nits margin collapses — the paper's Fig. 1 argument, quantified."
    )
    assert margins["HAQJSK(D)"] > margins["QJSK"], "expected alignment to win"


if __name__ == "__main__":
    main()
