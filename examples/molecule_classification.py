"""Bio scenario: mutagenicity screening on molecule-like graphs.

The paper's introduction motivates graph kernels with molecule-network
analysis. This example runs a realistic screening workflow:

1. build MUTAG- and PTC-style datasets (ring systems vs chains);
2. compare quantum (HAQJSK, QJSK, JTQK) and classical (WLSK, SPGK)
   kernels under the paper's CV protocol;
3. inspect the confusion structure of the best kernel.

Run:  python examples/molecule_classification.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import load_dataset
from repro.kernels import (
    HAQJSKKernelD,
    JensenTsallisQKernel,
    QJSKUnaligned,
    ShortestPathKernel,
    WeisfeilerLehmanKernel,
)
from repro.ml import (
    KernelSVC,
    confusion_matrix,
    cross_validate_kernel,
    stratified_k_fold,
)


def evaluate_kernels(dataset) -> dict:
    """Paper-protocol accuracy for a roster of kernels."""
    kernels = [
        HAQJSKKernelD(n_prototypes=32, n_levels=5, max_layers=6, seed=0),
        QJSKUnaligned(),
        JensenTsallisQKernel(n_iterations=4),
        WeisfeilerLehmanKernel(4),
        ShortestPathKernel(),
    ]
    results = {}
    for kernel in kernels:
        gram = kernel.gram(
            dataset.graphs,
            normalize=True,
            ensure_psd=not kernel.traits.positive_definite,
        )
        results[kernel.name] = (
            cross_validate_kernel(gram, dataset.targets, n_repeats=3, seed=2),
            gram,
        )
    return results


def show_confusion(dataset, gram) -> None:
    """Train/test split confusion matrix for the screening story."""
    train, test = stratified_k_fold(dataset.targets, 5, seed=3)[0]
    model = KernelSVC(c=10.0).fit(
        gram[np.ix_(train, train)], dataset.targets[train]
    )
    predictions = model.predict(gram[np.ix_(test, train)])
    matrix = confusion_matrix(dataset.targets[test], predictions, classes=[0, 1])
    print("      predicted:  benign  mutagenic")
    print(f"actual benign     {matrix[0, 0]:6d}  {matrix[0, 1]:9d}")
    print(f"actual mutagenic  {matrix[1, 0]:6d}  {matrix[1, 1]:9d}")


def main() -> None:
    for name in ("MUTAG", "PTC"):
        dataset = load_dataset(name, scale=0.4, seed=0)
        print(f"=== {name}: {len(dataset)} molecules, "
              f"{dataset.n_classes} classes ===")
        results = evaluate_kernels(dataset)
        ranked = sorted(
            results.items(), key=lambda kv: -kv[1][0].mean_accuracy
        )
        for kernel_name, (cv, _) in ranked:
            print(f"  {kernel_name:10s} {cv}")
        best_name, (_, best_gram) = ranked[0]
        print(f"\nconfusion matrix of the best kernel ({best_name}):")
        show_confusion(dataset, best_gram)
        print()


if __name__ == "__main__":
    main()
