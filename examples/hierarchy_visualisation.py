"""Figure 2 regenerated: hierarchical prototypes over vertex representations.

Builds the DB representations of a molecule collection, fits the prototype
hierarchy of paper Eq. (16), and prints the level structure plus an ASCII
scatter (vertex representations as '.', level-1 prototypes as '#') — the
terminal version of the paper's Fig. 2.

Run:  python examples/hierarchy_visualisation.py
"""

from __future__ import annotations

from repro.experiments.figure2 import run_figure2
from repro.experiments.reporting import format_table


def main() -> None:
    result = run_figure2(n_prototypes=16, n_levels=3, seed=0)
    print(f"{result['n_points']} vertex representations, "
          f"{len(result['levels'])} hierarchy levels\n")
    print(format_table(result["levels"]))
    print("\nlevel-1 prototypes (#) over vertex representations (.):\n")
    print(result["ascii"])
    hierarchy = result["hierarchy"]
    print("\nmembership chains (level-1 prototype -> level-2 -> level-3):")
    for proto in range(hierarchy.size(1)):
        level2 = int(hierarchy.memberships[0][proto])
        level3 = int(hierarchy.memberships[1][level2])
        print(f"  P1[{proto:2d}] -> P2[{level2}] -> P3[{level3}]")


if __name__ == "__main__":
    main()
