"""Quantum-walk playground: interference, mixing, and tottering.

Illustrates the Section II claims that motivate using CTQWs:

1. the CTQW is *reversible* (unitary) while the classical walk mixes;
2. interference gives occupation profiles a classical walk cannot reach;
3. the time-averaged density matrix (Eq. 5) is exactly the long-run limit
   of the finite-horizon average (Eq. 4);
4. the classical random-walk kernel tangles "tottering" back-and-forth
   walks, inflating similarity between a path and a path-with-a-pendant,
   while the quantum kernels keep them apart.

Run:  python examples/quantum_walk_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.ops import transition_matrix
from repro.kernels import QJSKUnaligned, RandomWalkKernel
from repro.quantum import (
    CTQW,
    finite_time_density_matrix,
    graph_density_matrix,
    von_neumann_entropy,
)


def demo_reversibility() -> None:
    print("--- 1. reversibility -------------------------------------------")
    graph = gen.path_graph(7)
    walk = CTQW.from_graph(graph)
    forward = walk.unitary(3.0)
    roundtrip = walk.unitary(-3.0) @ forward
    print(f"|U(-t)U(t) - I|_max = {np.abs(roundtrip - np.eye(7)).max():.2e} "
          "(CTQW runs backwards exactly)")
    classical = transition_matrix(graph)
    mixed = np.linalg.matrix_power(classical, 50)
    print(f"classical walk after 50 steps: rows ~ stationary "
          f"(row spread {np.ptp(mixed, axis=0).max():.3f})\n")


def demo_interference() -> None:
    print("--- 2. interference --------------------------------------------")
    graph = gen.star_graph(6)
    walk = CTQW.from_graph(graph)
    stationary = graph.degrees() / graph.degrees().sum()
    for t in (0.5, 1.0, 2.0):
        probs = walk.probabilities_at(t)
        print(f"t={t:3.1f}  hub occupation {probs[0]:.3f} "
              f"(classical stationary {stationary[0]:.3f})")
    print()


def demo_density_limit() -> None:
    print("--- 3. Eq. 4 -> Eq. 5 convergence ------------------------------")
    graph = gen.barabasi_albert(10, 2, seed=0)
    closed = graph_density_matrix(graph)
    for horizon in (5.0, 50.0, 500.0):
        sampled = finite_time_density_matrix(graph.adjacency, horizon, steps=2000)
        print(f"T={horizon:6.1f}  |rho_T - rho_inf|_max = "
              f"{np.abs(sampled - closed).max():.2e}")
    print(f"H_N(rho_inf) = {von_neumann_entropy(closed):.4f} nats\n")


def demo_tottering() -> None:
    print("--- 4. tottering -----------------------------------------------")
    path = gen.path_graph(6)
    adjacency = np.zeros((6, 6))
    for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (2, 5)]:
        adjacency[u, v] = adjacency[v, u] = 1.0
    pendant = Graph(adjacency)  # path with one pendant vertex
    star = gen.star_graph(6)

    for kernel in (RandomWalkKernel(decay=0.08), QJSKUnaligned()):
        gram = kernel.gram([path, pendant, star], normalize=True)
        print(f"{kernel.name}: k(path, path+pendant) = {gram[0, 1]:.4f}   "
              f"k(path, star) = {gram[0, 2]:.4f}   "
              f"contrast = {gram[0, 1] - gram[0, 2]:+.4f}")
    print(
        "\nThe classical walk kernel's tottering walks blur all three graphs"
        "\ntogether; the CTQW-based kernel keeps a usable contrast (paper"
        "\nSection III-C, 'reduce tottering')."
    )


def main() -> None:
    demo_reversibility()
    demo_interference()
    demo_density_limit()
    demo_tottering()


if __name__ == "__main__":
    main()
