"""Serving-equivalence and pair-budget tests for :mod:`repro.serve`.

The acceptance bar: bundle predictions on held-out graphs must exactly
match the labels of the transductive full-Gram protocol (condition the
whole train+test Gram, fit on the train block, predict the test rows) for
frozen / collection-independent kernels — while evaluating only the
``(ΔN, N)`` cross pairs, proven with a counting kernel the way
``benchmarks/bench_incremental_gram.py`` proves the ``gram_extend``
budget.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import KernelError, ServingError, ValidationError
from repro.graphs import generators as gen
from repro.kernels import HAQJSKKernelD, QJSKUnaligned, WeisfeilerLehmanKernel
from repro.ml import GramConditioner, KernelSVC, condition_gram
from repro.serve import ModelBundle, PredictionService, train_bundle
from repro.store import ArtifactStore

#: Fixed box constraint so the transductive baseline and the bundle train
#: the same machine (C selection uses randomised inner folds).
C = 10.0


def _make_collection():
    """12 graphs, two structural classes (trees vs dense ER components)."""
    trees = [gen.random_tree(9, seed=i) for i in range(6)]
    dense = [gen.erdos_renyi(10, 0.45, seed=i).largest_component() for i in range(6)]
    graphs = trees + dense
    labels = np.array([0] * 6 + [1] * 6)
    # Interleave so train and held-out slices both carry both classes.
    order = np.arange(12).reshape(2, 6).T.reshape(-1)
    return [graphs[i] for i in order], labels[order]


@pytest.fixture(scope="module")
def collection():
    return _make_collection()


@pytest.fixture(scope="module")
def split(collection):
    graphs, labels = collection
    return (graphs[:8], labels[:8], graphs[8:], labels[8:])


def _serving_kernels(reference):
    frozen = HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=3, seed=0)
    frozen.freeze(reference)
    return {
        "HAQJSK(D)-frozen": frozen,
        "QJSK": QJSKUnaligned(),
        "WLSK": WeisfeilerLehmanKernel(3),
    }


def _transductive_labels(kernel, train_graphs, train_y, new_graphs, *, normalize):
    """The paper-protocol baseline: full Gram, transductive conditioning."""
    everything = list(train_graphs) + list(new_graphs)
    full = kernel.gram(everything, normalize=normalize)
    conditioned = condition_gram(full)
    n = len(train_graphs)
    train_idx = np.arange(n)
    test_idx = np.arange(n, len(everything))
    model = KernelSVC(c=C).fit(conditioned[np.ix_(train_idx, train_idx)], train_y)
    return model.predict(conditioned[np.ix_(test_idx, train_idx)])


class TestServingEquivalence:
    """Bundle predictions == in-process combined-collection fit, exactly."""

    @pytest.mark.parametrize("name", ["HAQJSK(D)-frozen", "QJSK", "WLSK"])
    def test_labels_match_transductive_protocol(self, split, name):
        train_graphs, train_y, new_graphs, _ = split
        kernel = _serving_kernels(train_graphs)[name]
        bundle = train_bundle(kernel, train_graphs, train_y, c=C)
        service = PredictionService(bundle)
        served = service.predict(new_graphs)
        expected = _transductive_labels(
            kernel, train_graphs, train_y, new_graphs, normalize=False
        )
        assert np.array_equal(served.labels, expected)

    def test_labels_match_with_cosine_normalisation(self, split):
        train_graphs, train_y, new_graphs, _ = split
        kernel = _serving_kernels(train_graphs)["HAQJSK(D)-frozen"]
        bundle = train_bundle(kernel, train_graphs, train_y, c=C, normalize=True)
        served = PredictionService(bundle).predict(new_graphs)
        expected = _transductive_labels(
            kernel, train_graphs, train_y, new_graphs, normalize=True
        )
        assert np.array_equal(served.labels, expected)

    def test_margins_shape_and_classes(self, split):
        train_graphs, train_y, new_graphs, _ = split
        kernel = _serving_kernels(train_graphs)["WLSK"]
        service = PredictionService(train_bundle(kernel, train_graphs, train_y, c=C))
        result = service.predict(new_graphs)
        assert result.labels.shape == (len(new_graphs),)
        assert result.margins.shape == (len(new_graphs), 2)
        assert result.votes.shape == (len(new_graphs), 2)
        assert np.array_equal(result.classes, np.array([0, 1]))
        assert len(result) == len(new_graphs)

    def test_batch_chunking_is_transparent(self, split):
        train_graphs, train_y, new_graphs, _ = split
        kernel = _serving_kernels(train_graphs)["QJSK"]
        bundle = train_bundle(kernel, train_graphs, train_y, c=C)
        whole = PredictionService(bundle).predict(new_graphs)
        chunked = PredictionService(bundle, batch_size=1).predict(new_graphs)
        assert np.array_equal(whole.labels, chunked.labels)
        assert np.allclose(whole.margins, chunked.margins, atol=1e-10)

    def test_engine_backends_agree_on_labels(self, split):
        train_graphs, train_y, new_graphs, _ = split
        kernel = _serving_kernels(train_graphs)["HAQJSK(D)-frozen"]
        bundle = train_bundle(kernel, train_graphs, train_y, c=C)
        serial = PredictionService(bundle, engine="serial").predict(new_graphs)
        batched = PredictionService(bundle, engine="batched").predict(new_graphs)
        assert np.array_equal(serial.labels, batched.labels)
        assert np.allclose(serial.margins, batched.margins, atol=1e-9)

    def test_conditioned_rows_use_training_statistics(self, split):
        """The inductive-conditioning contract, row by row."""
        train_graphs, train_y, new_graphs, _ = split
        kernel = _serving_kernels(train_graphs)["QJSK"]
        bundle = train_bundle(kernel, train_graphs, train_y, c=C)
        rows = PredictionService(bundle).conditioned_rows(new_graphs)
        raw_cross = kernel.cross_gram(new_graphs, train_graphs)
        raw_train = kernel.gram(train_graphs)
        expected = GramConditioner().fit(raw_train).transform_cross(raw_cross)
        assert np.allclose(rows, expected, atol=1e-10)

    def test_empty_batch(self, split):
        """An empty graph list returns an explicit empty PredictionResult —
        no cross block, no conditioning, no vote pass — whose shapes and
        dtypes exactly match a non-empty prediction sliced to zero rows."""
        train_graphs, train_y, new_graphs, _ = split
        kernel = _serving_kernels(train_graphs)["WLSK"]
        service = PredictionService(train_bundle(kernel, train_graphs, train_y, c=C))
        result = service.predict([])
        assert result.labels.shape == (0,)
        assert result.votes.shape == (0, 2)
        assert result.margins.shape == (0, 2)
        assert len(result) == 0
        assert np.array_equal(result.classes, np.array([0, 1]))
        # votes and margins must be independent buffers, not one shared
        # array under two names.
        assert result.votes is not result.margins
        nonempty = service.predict(new_graphs[:1])
        assert result.labels.dtype == nonempty.labels.dtype
        assert result.margins.dtype == nonempty.margins.dtype

    def test_empty_batch_runs_no_kernel_math(self, split):
        """The empty path short-circuits before any pair evaluation or
        train-state preparation (it used to fall through to array ops)."""
        train_graphs, train_y, _, _ = split
        kernel = _CountingQJSK()
        service = PredictionService(
            train_bundle(kernel, train_graphs, train_y, c=C), engine="serial"
        )
        before = kernel.pair_calls
        service.predict([])
        assert kernel.pair_calls == before
        assert service._train_states is None  # not even preparation


class _CountingQJSK(QJSKUnaligned):
    """QJSK that counts its pair evaluations (serial backend only)."""

    def __init__(self):
        super().__init__()
        self.pair_calls = 0

    def pair_value(self, state_a, state_b) -> float:
        self.pair_calls += 1
        return super().pair_value(state_a, state_b)


class TestPairBudget:
    """Serving evaluates exactly the N·ΔN cross pairs — no diagonal block,
    no quadratic recompute (the bench_incremental_gram proof, for serve)."""

    def test_predict_costs_exactly_n_times_delta(self, split):
        train_graphs, train_y, new_graphs, _ = split
        kernel = _CountingQJSK()
        bundle = train_bundle(
            kernel, train_graphs, train_y, c=C, engine="serial"
        )
        n, delta = len(train_graphs), len(new_graphs)
        service = PredictionService(bundle, engine="serial")

        kernel.pair_calls = 0
        service.predict(new_graphs)
        assert kernel.pair_calls == n * delta

        # The training states are cached on the service: the second batch
        # pays the same cross budget, nothing more.
        kernel.pair_calls = 0
        service.predict(new_graphs)
        assert kernel.pair_calls == n * delta

    def test_cosine_normalisation_adds_only_delta_self_pairs(self, split):
        train_graphs, train_y, new_graphs, _ = split
        kernel = _CountingQJSK()
        bundle = train_bundle(
            kernel, train_graphs, train_y, c=C, engine="serial", normalize=True
        )
        n, delta = len(train_graphs), len(new_graphs)
        service = PredictionService(bundle, engine="serial")
        kernel.pair_calls = 0
        service.predict(new_graphs)
        assert kernel.pair_calls == n * delta + delta


class TestBundlePersistence:
    def test_store_roundtrip_same_process(self, split, tmp_path):
        train_graphs, train_y, new_graphs, _ = split
        kernel = _serving_kernels(train_graphs)["HAQJSK(D)-frozen"]
        bundle = train_bundle(kernel, train_graphs, train_y, c=C)
        store = ArtifactStore(str(tmp_path / "store"))
        path = bundle.save(store, "roundtrip")
        assert os.path.exists(path)
        reloaded = PredictionService.from_store(store, "roundtrip")
        direct = PredictionService(bundle)
        assert np.array_equal(
            reloaded.predict(new_graphs).labels,
            direct.predict(new_graphs).labels,
        )

    def test_fresh_process_roundtrip(self, split, tmp_path):
        """save → load in a *new interpreter* → predict: the labels of the
        serving process match the training process bit for bit."""
        train_graphs, train_y, new_graphs, _ = split
        kernel = _serving_kernels(train_graphs)["HAQJSK(D)-frozen"]
        bundle = train_bundle(kernel, train_graphs, train_y, c=C)
        store = ArtifactStore(str(tmp_path / "store"))
        bundle.save(store, "fresh")
        expected = PredictionService(bundle).predict(new_graphs).labels

        script = """
import numpy as np
from repro.graphs import generators as gen
from repro.serve import PredictionService
from repro.store import ArtifactStore

# Rebuild the held-out newcomers deterministically (seeded generators).
trees = [gen.random_tree(9, seed=i) for i in range(6)]
dense = [gen.erdos_renyi(10, 0.45, seed=i).largest_component() for i in range(6)]
graphs = trees + dense
order = np.arange(12).reshape(2, 6).T.reshape(-1)
newcomers = [graphs[i] for i in order[8:]]

service = PredictionService.from_store(ArtifactStore({root!r}), "fresh")
print(",".join(str(int(l)) for l in service.predict(newcomers).labels))
""".format(root=str(tmp_path / "store"))
        repo_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(repo_root, "src"),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True, cwd=repo_root,
        ).stdout.strip()
        served = np.array([int(x) for x in output.split(",")])
        assert np.array_equal(served, expected)

    def test_missing_bundle_is_named_error(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        with pytest.raises(ServingError, match="no bundle named"):
            ModelBundle.load(store, "never-trained")

    def test_tampered_training_graphs_refused(self, split, tmp_path):
        train_graphs, train_y, _, _ = split
        kernel = _serving_kernels(train_graphs)["WLSK"]
        bundle = train_bundle(kernel, train_graphs, train_y, c=C)
        bundle.training_graphs = bundle.training_graphs[:-1]
        with pytest.raises(ServingError, match="count changed"):
            bundle.verify()

    def test_swapped_graph_localised_in_error(self, split, collection):
        """Per-graph digests name the tampered index in the refusal."""
        train_graphs, train_y, _, _ = split
        graphs, _ = collection
        kernel = _serving_kernels(train_graphs)["WLSK"]
        bundle = train_bundle(kernel, train_graphs, train_y, c=C)
        bundle.training_graphs = (
            bundle.training_graphs[:3]
            + [graphs[11]]
            + bundle.training_graphs[4:]
        )
        with pytest.raises(ServingError, match=r"indices \[3\]"):
            bundle.verify()

    def test_unfrozen_kernel_in_loaded_bundle_refused(self, split):
        train_graphs, train_y, _, _ = split
        kernel = _serving_kernels(train_graphs)["HAQJSK(D)-frozen"]
        bundle = train_bundle(kernel, train_graphs, train_y, c=C)
        bundle.kernel.unfreeze()
        with pytest.raises(ServingError):
            bundle.verify()


class TestTrainValidation:
    def test_collection_level_kernel_refused(self, split):
        train_graphs, train_y, _, _ = split
        unfrozen = HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=3, seed=0)
        with pytest.raises(KernelError, match="freeze"):
            train_bundle(unfrozen, train_graphs, train_y, c=C)

    def test_label_shape_mismatch(self, split):
        train_graphs, _, _, _ = split
        with pytest.raises(ValidationError):
            train_bundle(WeisfeilerLehmanKernel(2), train_graphs, [0, 1], c=C)

    def test_gram_cached_in_store(self, split, tmp_path):
        """Retraining over the same collection hits the Gram artifact."""
        train_graphs, train_y, _, _ = split
        store = ArtifactStore(str(tmp_path / "store"))
        first = _CountingQJSK()
        train_bundle(first, train_graphs, train_y, c=C, store=store, engine="serial")
        assert first.pair_calls > 0

        second = _CountingQJSK()
        train_bundle(second, train_graphs, train_y, c=C, store=store, engine="serial")
        assert second.pair_calls == 0  # same content key: Gram from store


class TestConcurrentUse:
    """One PredictionService shared across threads — the HTTP server's
    usage pattern — must not corrupt its cached prepared train states."""

    def test_two_threads_prepare_train_states_exactly_once(self, split):
        import threading

        train_graphs, train_y, new_graphs, _ = split
        kernel = _serving_kernels(train_graphs)["QJSK"]
        bundle = train_bundle(kernel, train_graphs, train_y, c=C)
        reference = PredictionService(bundle).predict(new_graphs)

        service = PredictionService(bundle)
        prepare_calls = []
        original_prepare = service.bundle.kernel.prepare

        def counting_prepare(graphs):
            # Record only training-collection preparations; newcomer
            # preparations legitimately happen once per predict call.
            if len(graphs) == len(train_graphs):
                prepare_calls.append(threading.get_ident())
            return original_prepare(graphs)

        service.bundle.kernel.prepare = counting_prepare
        try:
            barrier = threading.Barrier(2)
            results = [None, None]
            errors = []

            def worker(slot):
                try:
                    barrier.wait(timeout=30)
                    for _ in range(3):
                        results[slot] = service.predict(new_graphs)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(slot,)) for slot in (0, 1)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        finally:
            service.bundle.kernel.prepare = original_prepare
        assert not errors, errors
        # The _prepare_lock makes the racing first predicts prepare the
        # training states exactly once, not once per thread.
        assert len(prepare_calls) == 1
        for result in results:
            assert result is not None
            assert np.array_equal(result.labels, reference.labels)
            assert np.allclose(result.margins, reference.margins, atol=1e-10)

    def test_many_threads_many_batches_agree_with_solo_predictions(self, split):
        import threading

        train_graphs, train_y, new_graphs, _ = split
        kernel = _serving_kernels(train_graphs)["WLSK"]
        bundle = train_bundle(kernel, train_graphs, train_y, c=C)
        service = PredictionService(bundle)
        batches = [new_graphs[i % 3 : i % 3 + 2] for i in range(6)]
        expected = [PredictionService(bundle).predict(b).labels for b in batches]

        outcomes = [None] * len(batches)
        errors = []

        def worker(index):
            try:
                outcomes[index] = service.predict(batches[index]).labels
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(len(batches))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        for got, want in zip(outcomes, expected):
            assert np.array_equal(got, want)
