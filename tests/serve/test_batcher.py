"""Unit tests for :class:`repro.serve.batcher.MicroBatcher`.

The batcher is tested against a fake predict function (graphs are plain
integers) so coalescing mechanics — windows, slicing, backpressure,
timeouts, error fan-out — are exercised without kernel math; the real
end-to-end identity runs in ``test_http_server.py`` and the benchmarks.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    ServeTimeoutError,
    ServerBusyError,
    ServingError,
    ValidationError,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.service import PredictionResult

CLASSES = np.array([0, 1])


def fake_predict(graphs, *, delay=0.0, calls=None):
    """Labels each fake graph (an int) with itself; rows carry identity."""
    if calls is not None:
        calls.append(list(graphs))
    if delay:
        time.sleep(delay)
    values = np.asarray(list(graphs), dtype=float)
    rows = np.stack([values, -values], axis=1) if len(graphs) else np.zeros((0, 2))
    return PredictionResult(
        labels=values, votes=rows.copy(), margins=rows, classes=CLASSES
    )


class TestValidation:
    def test_negative_window_refused(self):
        with pytest.raises(ValidationError, match="window_ms"):
            MicroBatcher(fake_predict, window_ms=-1)

    def test_zero_max_batch_refused(self):
        with pytest.raises(ValidationError, match="max_batch_graphs"):
            MicroBatcher(fake_predict, max_batch_graphs=0)

    def test_queue_smaller_than_batch_refused(self):
        with pytest.raises(ValidationError, match="max_queue_graphs"):
            MicroBatcher(fake_predict, max_batch_graphs=8, max_queue_graphs=4)


class TestWindowZero:
    def test_passthrough_calls_predict_directly(self):
        calls = []
        with MicroBatcher(
            lambda g: fake_predict(g, calls=calls), window_ms=0
        ) as batcher:
            outcome = batcher.submit([3, 1, 4])
        assert calls == [[3, 1, 4]]
        assert outcome.coalesced_requests == 1
        assert outcome.coalesced_graphs == 3
        assert list(outcome.result.labels) == [3, 1, 4]

    def test_stats_still_counted(self):
        with MicroBatcher(fake_predict, window_ms=0) as batcher:
            batcher.submit([1])
            batcher.submit([2, 3])
            stats = batcher.stats()
        assert stats["requests"] == 2
        assert stats["graphs"] == 3
        assert stats["batches"] == 2


class TestCoalescing:
    def test_concurrent_submits_share_one_predict(self):
        calls = []
        outcomes = [None] * 6
        with MicroBatcher(
            lambda g: fake_predict(g, calls=calls),
            window_ms=100.0,
            max_batch_graphs=64,
        ) as batcher:
            def fire(i):
                outcomes[i] = batcher.submit([10 * i, 10 * i + 1])

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # All six requests landed within one window: one predict call.
        assert len(calls) == 1
        assert sorted(calls[0]) == sorted(
            g for i in range(6) for g in (10 * i, 10 * i + 1)
        )
        for i, outcome in enumerate(outcomes):
            # Identity: each waiter's slice is exactly its own graphs.
            assert list(outcome.result.labels) == [10 * i, 10 * i + 1]
            assert outcome.coalesced_requests == 6
            assert outcome.coalesced_graphs == 12
            assert np.array_equal(
                outcome.result.margins,
                fake_predict([10 * i, 10 * i + 1]).margins,
            )

    def test_max_batch_graphs_cuts_window_short(self):
        calls = []
        with MicroBatcher(
            lambda g: fake_predict(g, calls=calls),
            window_ms=60_000.0,  # would block forever without the early-out
            max_batch_graphs=4,
        ) as batcher:
            outcomes = [None, None]

            def fire(i):
                outcomes[i] = batcher.submit([i, i, i][: 2 + i])

            threads = [threading.Thread(target=fire, args=(i,)) for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
        total = sum(len(c) for c in calls)
        assert total == 5  # 2 + 3 graphs served, across 1-2 batches
        assert all(o is not None for o in outcomes)

    def test_single_oversized_request_still_runs(self):
        calls = []
        with MicroBatcher(
            lambda g: fake_predict(g, calls=calls),
            window_ms=5.0,
            max_batch_graphs=2,
            max_queue_graphs=16,
        ) as batcher:
            outcome = batcher.submit(list(range(7)))
        assert calls == [list(range(7))]
        assert outcome.coalesced_graphs == 7

    def test_empty_request_short_circuits(self):
        calls = []
        with MicroBatcher(
            lambda g: fake_predict(g, calls=calls), window_ms=50.0
        ) as batcher:
            outcome = batcher.submit([])
        assert calls == [[]]
        assert len(outcome.result.labels) == 0
        assert outcome.coalesced_requests == 1


class TestFailureModes:
    def test_backpressure_raises_server_busy(self):
        release = threading.Event()

        def slow_predict(graphs):
            release.wait(10.0)
            return fake_predict(graphs)

        batcher = MicroBatcher(
            slow_predict, window_ms=1.0, max_batch_graphs=2, max_queue_graphs=2
        )
        try:
            background = threading.Thread(
                target=lambda: batcher.submit([1, 2], timeout=10.0)
            )
            background.start()
            # Wait until the first batch is in flight, then fill the queue.
            deadline = time.monotonic() + 5.0
            while batcher.stats()["batches"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            filler = threading.Thread(
                target=lambda: batcher.submit([3, 4], timeout=10.0)
            )
            filler.start()
            deadline = time.monotonic() + 5.0
            while batcher._queued_graphs < 2:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            with pytest.raises(ServerBusyError) as excinfo:
                batcher.submit([5])
            assert excinfo.value.retry_after > 0
            assert batcher.stats()["rejected"] == 1
            release.set()
            background.join(timeout=10)
            filler.join(timeout=10)
        finally:
            release.set()
            batcher.close()

    def test_timeout_raises_named_error(self):
        def stuck_predict(graphs):
            time.sleep(5.0)
            return fake_predict(graphs)

        with MicroBatcher(stuck_predict, window_ms=1.0) as batcher:
            with pytest.raises(ServeTimeoutError, match="within 0.1s"):
                batcher.submit([1], timeout=0.1)

    def test_predict_error_fans_out_to_every_waiter(self):
        def broken_predict(graphs):
            raise RuntimeError("boom")

        errors = []
        with MicroBatcher(broken_predict, window_ms=50.0) as batcher:
            def fire():
                try:
                    batcher.submit([1])
                except RuntimeError as exc:
                    errors.append(str(exc))

            threads = [threading.Thread(target=fire) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
        assert errors == ["boom", "boom", "boom"]

    def test_submit_after_close_refused(self):
        batcher = MicroBatcher(fake_predict, window_ms=1.0)
        batcher.close()
        with pytest.raises(ServingError, match="closed"):
            batcher.submit([1])

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(fake_predict, window_ms=1.0)
        batcher.close()
        batcher.close()
