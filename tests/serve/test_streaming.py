"""Bounded-memory serving: ``max_block_graphs`` streaming and the
training-diagonal cosine regression.

``max_block_graphs`` must change *when* cross pairs are evaluated, never
*which* or *how many* — chunked and one-shot services agree row for row
and pair for pair. The cosine regression pins that serving normalisation
provably scales columns with the **stored training diagonal** (the shared
``cosine_scale`` policy), not with self-similarities recomputed from any
other collection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs import generators as gen
from repro.kernels import QJSKUnaligned, WeisfeilerLehmanKernel
from repro.kernels.base import cosine_scale, normalize_gram_block
from repro.serve import PredictionService, train_bundle

C = 10.0


def _collection():
    trees = [gen.random_tree(9, seed=i) for i in range(6)]
    dense = [
        gen.erdos_renyi(10, 0.45, seed=i).largest_component() for i in range(6)
    ]
    graphs = trees + dense
    labels = np.array([0] * 6 + [1] * 6)
    order = np.arange(12).reshape(2, 6).T.reshape(-1)
    return [graphs[i] for i in order], labels[order]


@pytest.fixture(scope="module")
def split():
    graphs, labels = _collection()
    return graphs[:8], labels[:8], graphs[8:]


@pytest.fixture(scope="module")
def bundle(split):
    train_graphs, train_y, _ = split
    return train_bundle(
        QJSKUnaligned(), train_graphs, train_y, c=C, normalize=True
    )


class TestMaxBlockGraphs:
    @pytest.mark.parametrize("step", [1, 2, 3, 100])
    def test_chunked_rows_equal_one_shot(self, bundle, split, step):
        _, _, newcomers = split
        one_shot = PredictionService(bundle)
        chunked = PredictionService(bundle, max_block_graphs=step)
        assert np.allclose(
            chunked.conditioned_rows(newcomers),
            one_shot.conditioned_rows(newcomers),
            atol=1e-12,
            rtol=0.0,
        )
        assert np.array_equal(
            chunked.predict(newcomers).labels,
            one_shot.predict(newcomers).labels,
        )

    def test_feature_map_chunking(self, split):
        train_graphs, train_y, newcomers = split
        bundle = train_bundle(
            WeisfeilerLehmanKernel(3), train_graphs, train_y, c=C,
            normalize=True,
        )
        one_shot = PredictionService(bundle)
        chunked = PredictionService(bundle, max_block_graphs=2)
        assert np.allclose(
            chunked.conditioned_rows(newcomers),
            one_shot.conditioned_rows(newcomers),
            atol=1e-12,
            rtol=0.0,
        )

    def test_pair_budget_unchanged_by_chunking(self, split):
        """Streaming bounds concurrency, not work: exactly ΔN·N cross
        pairs + ΔN self-similarities, same as one-shot."""
        train_graphs, train_y, newcomers = split

        calls = {"n": 0}
        original = QJSKUnaligned.pair_value

        class _Counting(QJSKUnaligned):
            def pair_value(self, a, b):
                calls["n"] += 1
                return original(self, a, b)

        bundle = train_bundle(
            _Counting(), train_graphs, train_y, c=C, normalize=True
        )
        service = PredictionService(bundle, engine="serial", max_block_graphs=2)
        calls["n"] = 0
        service.predict(newcomers)
        assert calls["n"] == len(newcomers) * len(train_graphs) + len(newcomers)

    def test_validation(self, bundle):
        with pytest.raises(ValidationError, match="max_block_graphs"):
            PredictionService(bundle, max_block_graphs=0)

    @pytest.mark.parametrize("step", [None, 2])
    def test_empty_batch_yields_empty_rows(self, bundle, step):
        """conditioned_rows([]) is public API (the equivalence tests use
        it): an empty batch must yield a (0, N) block, not a vstack
        crash, chunked or not."""
        service = PredictionService(bundle, max_block_graphs=step)
        rows = service.conditioned_rows([])
        assert rows.shape == (0, len(bundle.training_graphs))
        assert len(service.predict([])) == 0

    def test_info_reports_knob(self, bundle):
        service = PredictionService(bundle, max_block_graphs=7)
        assert service.info()["max_block_graphs"] == 7


class TestTrainingDiagonalRegression:
    def test_columns_scale_with_stored_training_diagonal(self, bundle, split):
        """Perturbing the bundle's stored train diagonal must move the
        normalised rows exactly as the shared cosine_scale helper
        predicts — proof the serving path reads the *training* diagonal,
        not statistics of the newcomer block."""
        _, _, newcomers = split
        service = PredictionService(bundle)
        baseline = service._cosine_normalized(
            np.ones((len(newcomers), len(bundle.training_graphs))), newcomers
        )

        perturbed = np.asarray(bundle.train_diagonal, dtype=float) * 4.0
        object.__setattr__(bundle, "train_diagonal", perturbed)
        try:
            scaled = service._cosine_normalized(
                np.ones((len(newcomers), len(bundle.training_graphs))),
                newcomers,
            )
        finally:
            object.__setattr__(bundle, "train_diagonal", perturbed / 4.0)
        # 1/sqrt(4 K_ii): every column shrinks by exactly 2.
        assert np.allclose(scaled * 2.0, baseline, atol=1e-12, rtol=0.0)

    def test_normalized_rows_match_training_gram_geometry(self, bundle, split):
        """Serving rows equal K(new, train) scaled by the newcomers' own
        self-similarities and the *training Gram's* diagonal — the same
        cosine_scale policy normalize_gram applied at train time."""
        _, _, newcomers = split
        service = PredictionService(bundle)
        kernel = bundle.kernel
        raw = kernel.cross_gram(newcomers, bundle.training_graphs)
        new_diag = np.array([kernel(g, g) for g in newcomers])
        expected = normalize_gram_block(
            raw,
            cosine_scale(new_diag),
            cosine_scale(bundle.train_diagonal),
        )
        rows = service._cosine_normalized(np.asarray(raw, float), newcomers)
        assert np.allclose(rows, expected, atol=1e-12, rtol=0.0)


class TestCosineScaleHelper:
    def test_non_positive_diagonal_treated_as_one(self):
        scale = cosine_scale(np.array([4.0, 0.0, -3.0]))
        assert np.allclose(scale, [0.5, 1.0, 1.0])

    def test_normalize_gram_block_composes_to_normalize_gram(self):
        from repro.kernels.base import normalize_gram

        rng = np.random.default_rng(0)
        x = rng.normal(size=(6, 3))
        gram = x @ x.T
        scale = cosine_scale(np.diag(gram))
        assert np.array_equal(
            normalize_gram_block(gram, scale, scale), normalize_gram(gram)
        )
