"""End-to-end tests for the HTTP serving layer (:mod:`repro.serve.server`).

Everything runs over a real socket (``ThreadingHTTPServer`` on an
ephemeral port) against a real bundle in a ``mem:`` store, so these tests
cover the full path: JSON wire decode → micro-batcher → shared
PredictionService → cross-block engine math → JSON response. The
load-bearing assertion is the coalescing identity: responses served from
a shared batch must be byte-identical to solo predictions.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import ExecutionContext
from repro.datasets import load_dataset
from repro.errors import ProtocolError
from repro.kernels import WeisfeilerLehmanKernel
from repro.serve import MicroBatcher, PredictionService, make_server, train_bundle
from repro.serve.protocol import (
    graph_from_wire,
    graph_to_wire,
    graphs_from_wire,
    parse_predict_request,
)
from repro.store import ArtifactStore

C = 10.0


@pytest.fixture(scope="module")
def training_set():
    return load_dataset("MUTAG", scale=0.15, seed=0)


@pytest.fixture(scope="module")
def newcomers():
    return load_dataset("MUTAG", scale=0.1, seed=7).graphs


@pytest.fixture(scope="module")
def store(training_set):
    store = ArtifactStore("mem:http-tests")
    bundle = train_bundle(
        WeisfeilerLehmanKernel(),
        training_set.graphs,
        training_set.targets,
        c=C,
    )
    bundle.save(store, "wl")
    return store


@pytest.fixture(scope="module")
def server(store):
    server = make_server(
        store,
        default_bundle="wl",
        batch_window_ms=40.0,
        max_batch_graphs=512,
        max_queue_graphs=1024,
    ).start()
    yield server
    server.close()


@pytest.fixture(scope="module")
def reference_service(store):
    return PredictionService.from_store(
        store, "wl", ctx=ExecutionContext.from_env(store=None)
    )


def _post(url, payload, *, headers=None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.load(response)


def _get(url):
    with urllib.request.urlopen(url) as response:
        return response.status, json.load(response)


class TestWireProtocol:
    def test_graph_roundtrip(self, newcomers):
        for graph in newcomers[:5]:
            clone = graph_from_wire(graph_to_wire(graph))
            assert np.array_equal(clone.adjacency, graph.adjacency)
            assert np.array_equal(clone.labels, graph.labels)

    def test_weighted_edges_roundtrip(self):
        from repro.graphs.graph import Graph

        graph = Graph(np.array([[0.0, 2.5], [2.5, 0.0]]))
        doc = graph_to_wire(graph)
        assert doc["edges"] == [[0, 1, 2.5]]
        assert np.array_equal(graph_from_wire(doc).adjacency, graph.adjacency)

    @pytest.mark.parametrize(
        "doc, message",
        [
            ("not-a-dict", "expected an object"),
            ({}, "missing vertex count"),
            ({"n": -1}, "must be >= 0"),
            ({"n": 2, "edges": [[0]]}, r"\[u, v\]"),
            ({"n": 2, "edges": [[0, 5]]}, "outside 0..1"),
            ({"n": 2, "labels": [1]}, "2 integers"),
        ],
    )
    def test_malformed_graphs_raise_named_errors(self, doc, message):
        with pytest.raises(ProtocolError, match=message):
            graph_from_wire(doc, index=3)

    def test_errors_carry_the_graph_index(self):
        with pytest.raises(ProtocolError, match=r"graphs\[2\]"):
            graphs_from_wire([{"n": 1}, {"n": 1}, {"n": -4}])

    def test_predict_request_requires_graphs(self):
        with pytest.raises(ProtocolError, match="missing 'graphs'"):
            parse_predict_request({"bundle": "wl"})


class TestRoutes:
    def test_healthz(self, server):
        status, payload = _get(server.url + "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["default_bundle"] == "wl"
        assert "jobs" in payload

    def test_info_carries_identities_and_batcher_stats(self, server, store):
        from repro.serve.bundle import ModelBundle
        from repro.serve.protocol import bundle_info

        status, payload = _get(server.url + "/info")
        assert status == 200
        bundle = ModelBundle.load(store, "wl")
        assert payload["kernel_fingerprint"] == bundle.kernel_fingerprint
        assert payload["training_digest"] == bundle.training_digest
        # /info is the CLI --json document plus the server section.
        expected = bundle_info(bundle)
        for key, value in expected.items():
            assert payload[key] == value
        assert payload["server"]["batch_window_ms"] == 40.0

    def test_predict_matches_direct_service(
        self, server, newcomers, reference_service
    ):
        reference = reference_service.predict(newcomers[:6])
        status, payload = _post(
            server.url + "/predict",
            {"graphs": [graph_to_wire(g) for g in newcomers[:6]], "votes": True},
        )
        assert status == 200
        assert payload["bundle"] == "wl"
        assert payload["labels"] == [int(l) for l in reference.labels]
        assert np.allclose(payload["margins"], reference.margins)
        assert np.allclose(payload["votes"], reference.votes)
        assert payload["batch"]["coalesced_requests"] >= 1

    def test_concurrent_requests_coalesce_with_identical_labels(
        self, server, newcomers, reference_service
    ):
        # 8 clients, distinct slices, fired together: every response must
        # equal its solo prediction, and the window must have coalesced.
        slices = [newcomers[i % 4 : i % 4 + 3] for i in range(8)]
        expected = [
            [int(l) for l in reference_service.predict(s).labels] for s in slices
        ]
        payloads = [None] * 8

        def fire(i):
            _, payloads[i] = _post(
                server.url + "/predict",
                {"graphs": [graph_to_wire(g) for g in slices[i]]},
            )

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        for payload, labels in zip(payloads, expected):
            assert payload is not None
            assert payload["labels"] == labels
        assert max(p["batch"]["coalesced_requests"] for p in payloads) > 1

    def test_empty_graph_list_is_served(self, server):
        status, payload = _post(server.url + "/predict", {"graphs": []})
        assert status == 200
        assert payload["labels"] == []
        assert payload["classes"] == [0, 1]

    def test_unknown_bundle_is_404(self, server, newcomers):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                server.url + "/predict",
                {"bundle": "nope", "graphs": [graph_to_wire(newcomers[0])]},
            )
        assert excinfo.value.code == 404
        body = json.load(excinfo.value)
        assert "no bundle named 'nope'" in body["error"]["message"]

    def test_malformed_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/predict",
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert json.load(excinfo.value)["error"]["kind"] == "protocol"

    def test_malformed_graph_is_400_with_index(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/predict", {"graphs": [{"n": 2, "edges": [[0, 9]]}]})
        assert excinfo.value.code == 400
        assert "graphs[0]" in json.load(excinfo.value)["error"]["message"]

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nothing/here")
        assert excinfo.value.code == 404

    def test_unknown_job_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/jobs/99999")
        assert excinfo.value.code == 404


class TestBackpressure:
    def test_queue_past_high_water_is_503_with_retry_after(self, server, newcomers):
        # Swap in a batcher whose predict blocks, then overfill its queue.
        release = threading.Event()

        def stuck_predict(graphs):
            release.wait(15.0)
            return server.app.service("wl").predict(graphs)

        blocked = MicroBatcher(
            stuck_predict, window_ms=5.0, max_batch_graphs=1, max_queue_graphs=1
        )
        with server.app._lock:
            original = server.app._batchers.pop("wl", None)
            server.app._batchers["wl"] = blocked
        try:
            background = threading.Thread(
                target=lambda: blocked.submit([newcomers[0]], timeout=20.0)
            )
            background.start()
            deadline = 5.0
            import time as _time

            start = _time.monotonic()
            while blocked.stats()["batches"] < 1:
                assert _time.monotonic() - start < deadline
                _time.sleep(0.005)
            filler = threading.Thread(
                target=lambda: blocked.submit([newcomers[1]], timeout=20.0)
            )
            filler.start()
            while blocked._queued_graphs < 1:
                assert _time.monotonic() - start < deadline
                _time.sleep(0.005)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(
                    server.url + "/predict",
                    {"graphs": [graph_to_wire(newcomers[2])]},
                )
            assert excinfo.value.code == 503
            assert float(excinfo.value.headers["Retry-After"]) > 0
            assert json.load(excinfo.value)["error"]["kind"] == "busy"
            release.set()
            background.join(timeout=20)
            filler.join(timeout=20)
        finally:
            release.set()
            with server.app._lock:
                server.app._batchers.pop("wl", None)
                if original is not None:
                    server.app._batchers["wl"] = original
            blocked.close()


class TestTrainEndpoint:
    def test_train_then_predict_roundtrip(self, server, newcomers):
        status, job = _post(
            server.url + "/train",
            {
                "name": "trained-via-http",
                "dataset": "MUTAG",
                "scale": 0.1,
                "seed": 1,
                "kernel": "WLSK",
                "c": C,
            },
        )
        assert status == 202
        assert job["kind"] == "serve-train"
        assert job["key"] == "serve-train:trained-via-http"
        done = server.app.queue.wait(job["id"], timeout=120)
        assert done.status == "done", done.error
        assert done.result["bundle"] == "trained-via-http"
        assert done.result["train_accuracy"] > 0.5
        # Poll endpoint agrees with the queue.
        status, polled = _get(server.url + f"/jobs/{job['id']}")
        assert status == 200
        assert polled["status"] == "done"
        # The trained bundle serves immediately.
        status, payload = _post(
            server.url + "/predict",
            {
                "bundle": "trained-via-http",
                "graphs": [graph_to_wire(g) for g in newcomers[:4]],
            },
        )
        assert status == 200
        assert len(payload["labels"]) == 4

    def test_resubmission_is_idempotent_by_bundle_key(self, server):
        body = {
            "name": "trained-via-http",
            "dataset": "MUTAG",
            "scale": 0.1,
            "seed": 1,
            "kernel": "WLSK",
            "c": C,
        }
        status_a, first = _post(server.url + "/train", body)
        server.app.queue.wait(first["id"], timeout=120)
        status_b, second = _post(server.url + "/train", body)
        # Same key -> same job row; a finished job reports 200, not 202.
        assert second["id"] == first["id"]
        assert status_b == 200

    def test_train_rejects_unknown_fields(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/train", {"name": "x", "keernel": "WLSK"})
        assert excinfo.value.code == 400
        assert "keernel" in json.load(excinfo.value)["error"]["message"]

    def test_train_failure_is_recorded_on_the_job(self, server):
        status, job = _post(
            server.url + "/train",
            {"name": "doomed", "dataset": "NOPE-DATASET", "kernel": "WLSK"},
        )
        assert status == 202
        done = server.app.queue.wait(job["id"], timeout=60)
        assert done.status == "failed"
        assert "NOPE-DATASET" in done.error


class TestServerLifecycle:
    def test_close_then_context_manager_reopen(self, store, newcomers):
        with make_server(store, default_bundle="wl", batch_window_ms=0) as server:
            server.start()
            status, payload = _post(
                server.url + "/predict",
                {"graphs": [graph_to_wire(newcomers[0])]},
            )
            assert status == 200
            # window 0: the no-batching baseline serves alone.
            assert payload["batch"]["coalesced_requests"] == 1
