"""Tests for the ``python -m repro.serve`` command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve.cli import main


@pytest.fixture(scope="module")
def trained_store(tmp_path_factory):
    """One trained WLSK bundle shared by the CLI tests (fast, no freeze)."""
    root = str(tmp_path_factory.mktemp("cli") / "store")
    code = main([
        "train", "--store", root, "--name", "cli-bundle",
        "--dataset", "MUTAG", "--scale", "0.15", "--seed", "0",
        "--kernel", "WLSK", "--c", "10",
    ])
    assert code == 0
    return root


class TestTrain:
    def test_train_reports_bundle(self, trained_store, capsys):
        code = main([
            "train", "--store", trained_store, "--name", "cli-bundle-2",
            "--dataset", "MUTAG", "--scale", "0.15", "--seed", "0",
            "--kernel", "WLSK", "--c", "10",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "bundle: cli-bundle-2" in out
        assert "train accuracy:" in out

    def test_train_freezes_haqjsk(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        code = main([
            "train", "--store", root, "--name", "frozen",
            "--dataset", "MUTAG", "--scale", "0.1", "--seed", "0",
            "--kernel", "HAQJSK(D)", "--prototypes", "8", "--c", "10",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "HAQJSK(D)" in out

    def test_missing_store_is_actionable(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        with pytest.raises(SystemExit, match="store"):
            main(["info", "--name", "whatever"])


class TestPredict:
    def test_labels_one_per_line(self, trained_store, capsys):
        code = main([
            "predict", "--store", trained_store, "--name", "cli-bundle",
            "--dataset", "MUTAG", "--scale", "0.08", "--seed", "7",
        ])
        out = capsys.readouterr().out
        assert code == 0
        labels = [int(line) for line in out.strip().splitlines()]
        assert len(labels) == 15  # MUTAG at scale 0.08
        assert set(labels) <= {0, 1}

    def test_json_output_has_margins(self, trained_store, capsys):
        code = main([
            "predict", "--store", trained_store, "--name", "cli-bundle",
            "--dataset", "MUTAG", "--scale", "0.08", "--seed", "7",
            "--limit", "4", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bundle"] == "cli-bundle"
        assert len(payload["labels"]) == 4
        assert np.asarray(payload["margins"]).shape == (4, 2)

    def test_deterministic_across_invocations(self, trained_store, capsys):
        args = [
            "predict", "--store", trained_store, "--name", "cli-bundle",
            "--dataset", "MUTAG", "--scale", "0.08", "--seed", "7",
        ]
        main(args)
        first = capsys.readouterr().out
        main(args)
        second = capsys.readouterr().out
        assert first == second


class TestInfo:
    def test_info_prints_identities(self, trained_store, capsys):
        code = main(["info", "--store", trained_store, "--name", "cli-bundle"])
        out = capsys.readouterr().out
        assert code == 0
        assert "kernel_fingerprint:" in out
        assert "training_digest:" in out
        assert "classes: [0, 1]" in out

    def test_info_json_is_machine_readable(self, trained_store, capsys):
        code = main([
            "info", "--store", trained_store, "--name", "cli-bundle", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["kernel_fingerprint"]) == 64
        assert len(payload["training_digest"]) == 64
        assert payload["classes"] == [0, 1]

    def test_info_json_matches_server_document(self, trained_store, capsys):
        """The CLI --json document IS the server's /info body (minus the
        server-runtime section) — one formatter, two transports."""
        from repro.serve.server import ServeApp

        main(["info", "--store", trained_store, "--name", "cli-bundle", "--json"])
        cli_payload = json.loads(capsys.readouterr().out)
        app = ServeApp(trained_store, default_bundle="cli-bundle", jobs_db=":memory:")
        try:
            status, http_payload, _ = app.handle("GET", "/info", {}, None)
        finally:
            app.close()
        assert status == 200
        for key, value in cli_payload.items():
            assert http_payload[key] == value


class TestServeAppClock:
    def test_injected_clock_drives_uptime(self, trained_store):
        """The serve app and its job queue share one injectable clock."""
        from repro.serve.server import ServeApp

        now = [1000.0]
        app = ServeApp(
            trained_store,
            default_bundle="cli-bundle",
            jobs_db=":memory:",
            clock=lambda: now[0],
        )
        try:
            status, payload, _ = app.handle("GET", "/healthz", {}, None)
            assert status == 200
            assert payload["uptime_seconds"] == 0.0
            now[0] += 12.5
            _, payload, _ = app.handle("GET", "/healthz", {}, None)
            assert payload["uptime_seconds"] == 12.5
        finally:
            app.close()


class TestServeParser:
    def test_serve_flags_parse(self):
        from repro.serve.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--store", "mem:x", "--bundle", "b",
            "--batch-window-ms", "12.5", "--max-batch-graphs", "32",
            "--max-queue-graphs", "128", "--port", "0",
        ])
        assert args.batch_window_ms == 12.5
        assert args.max_batch_graphs == 32
        assert args.max_queue_graphs == 128
        assert args.bundle == "b"
        assert args.func.__name__ == "_command_serve"
