"""Fixture: mutable default, exempted (REPRO007 suppressed)."""


def intern_cache(key, _cache={}):  # repro-lint: ignore[REPRO007]
    return _cache.setdefault(key, key)
