"""Fixture: naked acquire, exempted end-of-line (REPRO003 suppressed)."""

import threading

_LOCK = threading.Lock()


def handoff():
    _LOCK.acquire()  # repro-lint: ignore[REPRO003]
    return _LOCK
