"""Fixture: naked acquire/release pair (REPRO003 positive).

An exception between acquire and release leaks the lock forever.
"""

import threading

_LOCK = threading.Lock()


def risky(work):
    _LOCK.acquire()
    result = work()
    _LOCK.release()
    return result
