"""Fixture: naked wall-clock read in lease logic (REPRO004 positive)."""

import time


def lease_deadline(ttl):
    return time.time() + ttl
