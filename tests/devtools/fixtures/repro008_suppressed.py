"""Fixture: untracked thread, exempted (REPRO008 suppressed)."""

import threading


def spawn(target):
    # The caller owns the join; this helper only constructs.
    # repro-lint: ignore[REPRO008]
    worker = threading.Thread(target=target)
    return worker
