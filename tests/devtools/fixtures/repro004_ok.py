"""Fixture: wall clock through the injected seam (REPRO004 negative).

The ``clock=time.time`` default is the one legal bare reference — it
names the function without calling it. ``time.monotonic()`` stays legal
too: it measures elapsed real time, which a FakeClock cannot replace.
"""

import time


class Leases:
    def __init__(self, clock=time.time):
        self.clock = clock

    def deadline(self, ttl):
        return self.clock() + ttl

    def poll_budget(self, started):
        return time.monotonic() - started
