"""Fixture: raw statement on a shared connection (REPRO005 positive)."""


class Store:
    def put(self, key, value):
        self._conn.execute("INSERT INTO kv VALUES (?, ?)", (key, value))
        self._conn.commit()
