"""Fixture: daemon threads, or joined by their owner (REPRO008 negative)."""

import threading


def spawn_daemon(target):
    worker = threading.Thread(target=target, daemon=True)
    worker.start()
    return worker


class Owner:
    def start(self, target):
        self._worker = threading.Thread(target=target)
        self._worker.start()

    def close(self):
        self._worker.join()
