"""Fixture: mutable default arguments (REPRO007 positive)."""


def collect(item, into=[]):
    into.append(item)
    return into


def tally(key, *, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts
