"""Fixture: schedule field in a key function, exempted (REPRO002 suppressed)."""


def node_key(ctx, config):
    # repro-lint: ignore[REPRO002]
    return (config["kernel"], ctx.engine)
