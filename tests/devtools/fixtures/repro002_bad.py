"""Fixture: schedule-only fields inside a key function (REPRO002 positive)."""


def node_key(ctx, config):
    return (config["kernel"], ctx.engine, ctx.tile_size)
