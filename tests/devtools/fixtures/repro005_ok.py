"""Fixture: statements routed through _txn()/_read() (REPRO005 negative)."""

from contextlib import contextmanager


class Store:
    @contextmanager
    def _txn(self):
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield self._conn
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        else:
            self._conn.execute("COMMIT")

    @contextmanager
    def _read(self):
        yield self._conn

    def put(self, key, value):
        with self._txn() as conn:
            conn.execute("INSERT INTO kv VALUES (?, ?)", (key, value))

    def get(self, key):
        with self._read() as conn:
            return conn.execute(
                "SELECT value FROM kv WHERE key=?", (key,)
            ).fetchone()
