"""Fixture: raw statement on a shared connection, exempted (REPRO005)."""


class Store:
    def bootstrap(self):
        # Runs before the instance is shared with any other thread.
        # repro-lint: ignore[REPRO005]
        self._conn.execute("PRAGMA journal_mode=WAL")
