"""Fixture: bare raise, explicitly exempted (REPRO001 suppressed)."""


def lookup(table, key):
    if key not in table:
        # repro-lint: ignore[REPRO001]
        raise KeyError(f"missing {key!r}")
    return table[key]
