"""Fixture: float32 in a reduction, exempted (REPRO006 suppressed)."""

import numpy as np


class Backend:
    def trace(self, matrix):
        # repro-lint: ignore[REPRO006]
        return float(np.trace(matrix, dtype=np.float32))
