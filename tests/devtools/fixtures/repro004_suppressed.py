"""Fixture: naked wall-clock read, exempted (REPRO004 suppressed)."""

import time


def wall_clock_log_stamp():
    # Log timestamps are cosmetic, not lease arithmetic.
    # repro-lint: ignore[REPRO004]
    return time.time()
