"""Fixture: key function reads only value fields (REPRO002 negative).

Reading ``ctx.engine`` outside a key function is also legal — the
boundary constrains what enters content keys, not what schedulers do.
"""


def node_key(ctx, config):
    return (config["kernel"], ctx.precision, ctx.normalize)


def pick_engine(ctx):
    return ctx.engine
