"""Fixture: float32 accumulator inside a reduction (REPRO006 positive)."""

import numpy as np


class Backend:
    def trace(self, matrix):
        return float(np.trace(matrix, dtype=np.float32))
