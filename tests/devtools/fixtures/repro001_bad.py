"""Fixture: bare builtin raise in library code (REPRO001 positive)."""


def lookup(table, key):
    if key not in table:
        raise KeyError(f"missing {key!r}")
    return table[key]
