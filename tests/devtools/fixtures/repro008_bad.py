"""Fixture: fire-and-forget non-daemon thread (REPRO008 positive)."""

import threading


def spawn(target):
    worker = threading.Thread(target=target)
    worker.start()
