"""Fixture: locks held via `with` or acquire+try/finally (REPRO003 negative)."""

import threading

_LOCK = threading.Lock()


def safe_with(work):
    with _LOCK:
        return work()


def safe_manual(work):
    _LOCK.acquire()
    try:
        return work()
    finally:
        _LOCK.release()
