"""Fixture: None defaults materialised in the body (REPRO007 negative)."""


def collect(item, into=None):
    if into is None:
        into = []
    into.append(item)
    return into


def label(item, prefix=""):
    return prefix + str(item)
