"""Fixture: named error from the repro hierarchy (REPRO001 negative)."""

from repro.errors import ValidationError


def lookup(table, key):
    if key not in table:
        raise ValidationError(f"missing {key!r}")
    return table[key]
