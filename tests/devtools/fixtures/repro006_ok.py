"""Fixture: float64 reductions; float32 elsewhere is legal (REPRO006).

Device *compute* may run float32 — the contract binds only the
reduction methods, which must accumulate and return host float64.
"""

import numpy as np


class Backend:
    def trace(self, matrix):
        return float(np.trace(matrix, dtype=np.float64))

    def to_device(self, array):
        return np.asarray(array, dtype=np.float32)
