"""Per-rule fixture tests: positive, negative, and suppressed samples.

Each module-scope rule has three checked-in fixtures under
``fixtures/``: a ``*_bad.py`` the rule must flag, an ``*_ok.py`` that is
completely clean, and a ``*_suppressed.py`` whose inline suppression
silences the finding without tripping the unused-suppression check.
Fixtures are linted under *logical* ``src/repro`` paths so path-keyed
rules (clock, backend) see them as the modules whose contracts they
break.
"""

import pathlib

import pytest

from repro.devtools.lint import lint_source

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: rule id -> the logical path its fixtures are linted under.
CASES = {
    "REPRO001": "src/repro/kernels/sample.py",
    "REPRO002": "src/repro/campaign/sample.py",
    "REPRO003": "src/repro/store/sample.py",
    "REPRO004": "src/repro/jobs/sample.py",
    "REPRO005": "src/repro/store/sample.py",
    "REPRO006": "src/repro/backend/sample.py",
    "REPRO007": "src/repro/utils/sample.py",
    "REPRO008": "src/repro/distributed/sample.py",
}


def fixture(rule_id: str, variant: str) -> str:
    return (FIXTURES / f"{rule_id.lower()}_{variant}.py").read_text()


@pytest.mark.parametrize("rule_id", sorted(CASES))
class TestFixtures:
    def test_positive_fires(self, rule_id):
        findings = lint_source(
            fixture(rule_id, "bad"), path=CASES[rule_id]
        )
        assert any(f.rule == rule_id for f in findings)
        # The bad fixture breaks exactly one contract — no cross-fire.
        assert {f.rule for f in findings} == {rule_id}

    def test_negative_is_clean(self, rule_id):
        findings = lint_source(fixture(rule_id, "ok"), path=CASES[rule_id])
        assert findings == []

    def test_suppression_silences(self, rule_id):
        findings = lint_source(
            fixture(rule_id, "suppressed"), path=CASES[rule_id]
        )
        # Suppressed finding gone, and the suppression counted as used
        # (no REPRO000 unused-suppression report either).
        assert findings == []


class TestFindingDetails:
    def test_finding_carries_location_and_snippet(self):
        findings = lint_source(
            fixture("REPRO001", "bad"), path=CASES["REPRO001"]
        )
        finding = next(f for f in findings if f.rule == "REPRO001")
        assert finding.path == CASES["REPRO001"]
        assert "raise KeyError" in finding.snippet
        assert finding.line > 1
        assert "REPRO001" in finding.render()

    def test_mutable_default_flags_each_argument(self):
        findings = lint_source(
            fixture("REPRO007", "bad"), path=CASES["REPRO007"]
        )
        assert len([f for f in findings if f.rule == "REPRO007"]) == 2

    def test_schedule_fields_each_reported(self):
        findings = lint_source(
            fixture("REPRO002", "bad"), path=CASES["REPRO002"]
        )
        messages = " ".join(f.message for f in findings)
        assert ".engine" in messages and ".tile_size" in messages

    def test_rules_keyed_on_logical_path(self):
        # The clock rule only binds inside the clock-disciplined
        # modules: the same source is legal elsewhere in the tree.
        source = fixture("REPRO004", "bad")
        elsewhere = lint_source(source, path="src/repro/experiments/x.py")
        assert [f for f in elsewhere if f.rule == "REPRO004"] == []

    def test_error_policy_skips_errors_module(self):
        source = "raise ValueError('defining the hierarchy itself')\n"
        findings = lint_source(source, path="src/repro/errors.py")
        assert findings == []

    def test_selected_rules_subset(self):
        from repro.devtools.lint import select_rules

        only = select_rules(select=("REPRO007",))
        findings = lint_source(
            fixture("REPRO007", "bad"),
            path=CASES["REPRO007"],
            rules=only,
        )
        assert {f.rule for f in findings} == {"REPRO007"}
