"""Framework tests: registry, suppressions, baseline, reporters, CLI.

The last class is the self-check the tentpole promises: the shipped
tree lints clean against the committed baseline, and the baseline
itself has no stale or unjustified entries.
"""

import json
import pathlib

import pytest

from repro.devtools.lint import (
    Baseline,
    BaselineEntry,
    Finding,
    all_rules,
    discover_files,
    lint_source,
    run_lint,
    select_rules,
)
from repro.devtools.lint.baseline import TODO_JUSTIFICATION
from repro.devtools.lint.cli import main as lint_main
from repro.devtools.lint.registry import register_rule
from repro.devtools.lint.reporters import (
    parse_json_report,
    render_json,
    render_text,
)
from repro.errors import ValidationError

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

MUTABLE_DEFAULT = "def collect(item, into=[]):\n    return into\n"


def make_project(tmp_path, source=MUTABLE_DEFAULT, name="sample.py"):
    package = tmp_path / "src" / "repro"
    package.mkdir(parents=True)
    (package / name).write_text(source)
    return tmp_path


class TestRegistry:
    def test_all_rules_registered(self):
        ids = [rule.id for rule in all_rules()]
        assert ids == sorted(ids)
        assert {f"REPRO00{i}" for i in range(1, 10)} <= set(ids)

    def test_rules_carry_rationales(self):
        for rule in all_rules():
            assert rule.name and rule.rationale
            assert rule.scope in ("module", "project")

    def test_bad_rule_id_refused(self):
        with pytest.raises(ValidationError):
            register_rule("NOPE1", name="x", rationale="y")(lambda ctx: [])

    def test_duplicate_registration_refused(self):
        with pytest.raises(ValidationError):
            register_rule("REPRO001", name="x", rationale="y")(
                lambda ctx: []
            )

    def test_unknown_selection_refused(self):
        with pytest.raises(ValidationError):
            select_rules(select=("REPRO999",))
        with pytest.raises(ValidationError):
            select_rules(ignore=("REPRO999",))


class TestSuppressions:
    def test_unused_suppression_reported(self):
        source = "x = 1  # repro-lint: ignore[REPRO007]\n"
        findings = lint_source(source, path="src/repro/utils/sample.py")
        assert [f.rule for f in findings] == ["REPRO000"]
        assert "REPRO007" in findings[0].message

    def test_malformed_comment_reported(self):
        source = "x = 1  # repro-lint: ignore-all\n"
        findings = lint_source(source, path="src/repro/utils/sample.py")
        assert [f.rule for f in findings] == ["REPRO000"]
        assert "malformed" in findings[0].message

    def test_suppression_is_rule_specific(self):
        source = (
            "def collect(item, into=[]):  # repro-lint: ignore[REPRO001]\n"
            "    return into\n"
        )
        findings = lint_source(source, path="src/repro/utils/sample.py")
        # The wrong-rule suppression both fails to silence REPRO007 and
        # is itself reported as unused.
        assert sorted(f.rule for f in findings) == ["REPRO000", "REPRO007"]

    def test_docstring_mention_is_not_a_suppression(self):
        source = (
            '"""Docs quoting `# repro-lint: ignore[REPRO007]` literally."""\n'
            "x = 1\n"
        )
        findings = lint_source(source, path="src/repro/utils/sample.py")
        assert findings == []

    def test_one_comment_many_rules(self):
        source = (
            "# repro-lint: ignore[REPRO007, REPRO001]\n"
            "def collect(item, into=[]):\n"
            "    raise ValueError(item)\n"
        )
        findings = lint_source(source, path="src/repro/utils/sample.py")
        # REPRO007 anchors on the def line and is silenced; the raise
        # sits on the *next* line, outside the suppression's reach, so
        # REPRO001 still fires — and the comment's REPRO001 half counts
        # as used? No: nothing on the target line matched REPRO001.
        assert sorted(f.rule for f in findings) == ["REPRO000", "REPRO001"]


class TestBaseline:
    def entry(self, justification="bootstrap runs before sharing"):
        return BaselineEntry(
            rule="REPRO007",
            path="src/repro/sample.py",
            snippet="def collect(item, into=[]):",
            justification=justification,
        )

    def finding(self, snippet="def collect(item, into=[]):"):
        return Finding(
            rule="REPRO007", path="src/repro/sample.py", line=3,
            message="mutable default", snippet=snippet,
        )

    def test_split_matches_on_snippet_not_line(self):
        baseline = Baseline((self.entry(),))
        new, grandfathered, stale = baseline.split([self.finding()])
        assert new == [] and len(grandfathered) == 1 and stale == []

    def test_new_finding_gates(self):
        baseline = Baseline((self.entry(),))
        other = self.finding(snippet="def tally(key, counts={}):")
        new, grandfathered, _ = baseline.split([other])
        assert new == [other] and grandfathered == []

    def test_stale_entry_is_a_problem(self):
        baseline = Baseline((self.entry(),))
        problems = baseline.problems([])
        assert len(problems) == 1 and "stale" in problems[0]

    def test_missing_justification_is_a_problem(self):
        baseline = Baseline((self.entry(justification=""),))
        problems = baseline.problems([self.finding()])
        assert any("justification" in p for p in problems)

    def test_regenerated_adds_and_expires(self):
        kept = self.entry()
        stale = BaselineEntry(
            rule="REPRO001", path="src/repro/gone.py",
            snippet="raise KeyError(x)", justification="was fixed",
        )
        fresh = Finding(
            rule="REPRO003", path="src/repro/new.py", line=9,
            message="naked acquire", snippet="lock.acquire()",
        )
        regenerated = Baseline((kept, stale)).regenerated(
            [self.finding(), fresh]
        )
        by_rule = {entry.rule: entry for entry in regenerated.entries}
        assert set(by_rule) == {"REPRO007", "REPRO003"}
        # Surviving entry keeps its human justification; the new one
        # gets the placeholder --check-baseline rejects.
        assert by_rule["REPRO007"].justification == kept.justification
        assert by_rule["REPRO003"].justification == TODO_JUSTIFICATION

    def test_save_load_roundtrip(self, tmp_path):
        target = tmp_path / "baseline.json"
        Baseline((self.entry(),)).save(str(target))
        loaded = Baseline.load(str(target))
        assert loaded.entries == (self.entry(),)

    def test_load_rejects_bad_shapes(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text("not json")
        with pytest.raises(ValidationError):
            Baseline.load(str(target))
        target.write_text(json.dumps({"entries": [{"rule": "REPRO001"}]}))
        with pytest.raises(ValidationError):
            Baseline.load(str(target))

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(str(tmp_path / "absent.json")).entries == ()


class TestReporters:
    def result(self, tmp_path):
        make_project(tmp_path)
        return run_lint(root=str(tmp_path))

    def test_text_report(self, tmp_path):
        text = render_text(self.result(tmp_path))
        assert "REPRO007" in text
        assert "1 new finding(s)" in text

    def test_json_roundtrip(self, tmp_path):
        result = self.result(tmp_path)
        payload = parse_json_report(render_json(result))
        assert payload["version"] == 1
        assert payload["findings"] == result.new
        assert payload["counts"]["new"] == 1


class TestDriver:
    def test_discover_skips_pycache_and_dedupes(self, tmp_path):
        root = make_project(tmp_path)
        cache = root / "src" / "repro" / "__pycache__"
        cache.mkdir()
        (cache / "sample.cpython-311.py").write_text("x = 1\n")
        files = discover_files(
            str(root), ("src/repro", "src/repro/sample.py")
        )
        assert files == ["src/repro/sample.py"]

    def test_missing_path_is_named_error(self, tmp_path):
        with pytest.raises(ValidationError):
            discover_files(str(tmp_path), ("src/absent",))

    def test_syntax_error_is_named_error(self, tmp_path):
        root = make_project(tmp_path, source="def broken(:\n")
        with pytest.raises(ValidationError):
            run_lint(root=str(root))


class TestPublicSurfaceRule:
    def surface_project(self, tmp_path, *, exports, expected):
        root = make_project(
            tmp_path,
            source="__all__ = [{}]\n".format(
                ", ".join(repr(symbol) for symbol in exports)
            ),
            name="__init__.py",
        )
        if expected is not None:
            api = root / "tests" / "api"
            api.mkdir(parents=True)
            (api / "expected_exports.txt").write_text(
                "".join(f"{symbol}\n" for symbol in expected)
            )
        return root

    def test_agreement_is_clean(self, tmp_path):
        root = self.surface_project(
            tmp_path, exports=["A", "B"], expected=["A", "B"]
        )
        assert run_lint(root=str(root)).new == []

    def test_accidental_export_flagged_with_hint(self, tmp_path):
        root = self.surface_project(
            tmp_path, exports=["A", "B"], expected=["A"]
        )
        findings = run_lint(root=str(root)).new
        assert [f.rule for f in findings] == ["REPRO009"]
        assert "'B'" in findings[0].message
        assert "regenerate" in findings[0].message

    def test_dropped_export_flagged(self, tmp_path):
        root = self.surface_project(
            tmp_path, exports=["A"], expected=["A", "B"]
        )
        findings = run_lint(root=str(root)).new
        assert [f.rule for f in findings] == ["REPRO009"]
        assert "unexported" in findings[0].message

    def test_missing_exports_file_flagged(self, tmp_path):
        root = self.surface_project(
            tmp_path, exports=["A"], expected=None
        )
        findings = run_lint(root=str(root)).new
        assert [f.rule for f in findings] == ["REPRO009"]


class TestCli:
    def test_violation_exits_nonzero(self, tmp_path, capsys):
        root = make_project(tmp_path)
        assert lint_main(["--root", str(root)]) == 1
        assert "REPRO007" in capsys.readouterr().out

    def test_clean_exits_zero(self, tmp_path, capsys):
        root = make_project(tmp_path, source="x = 1\n")
        assert lint_main(["--root", str(root)]) == 0

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        root = make_project(tmp_path, source="x = 1\n")
        code = lint_main(["--root", str(root), "--select", "REPRO999"])
        assert code == 2
        assert "REPRO999" in capsys.readouterr().err

    def test_ignore_silences_rule(self, tmp_path, capsys):
        root = make_project(tmp_path)
        assert lint_main(["--root", str(root), "--ignore", "REPRO007"]) == 0

    def test_json_format(self, tmp_path, capsys):
        root = make_project(tmp_path)
        assert lint_main(["--root", str(root), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["new"] == 1

    def test_write_then_check_baseline_cycle(self, tmp_path, capsys):
        root = make_project(tmp_path)
        baseline_path = root / "lint-baseline.json"
        assert lint_main(["--root", str(root), "--write-baseline"]) == 0
        assert baseline_path.exists()
        # Grandfathered now, but the TODO justification fails the check.
        assert lint_main(["--root", str(root)]) == 0
        assert (
            lint_main(["--root", str(root), "--check-baseline"]) == 1
        )
        payload = json.loads(baseline_path.read_text())
        payload["entries"][0]["justification"] = "legacy helper, tracked"
        baseline_path.write_text(json.dumps(payload))
        assert lint_main(["--root", str(root), "--check-baseline"]) == 0

    def test_stale_baseline_fails_check(self, tmp_path, capsys):
        root = make_project(tmp_path, source="x = 1\n")
        (root / "lint-baseline.json").write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "REPRO007", "path": "src/repro/sample.py",
                "snippet": "def gone(x=[]):",
                "justification": "fixed long ago",
            }],
        }))
        assert lint_main(["--root", str(root)]) == 0
        assert lint_main(["--root", str(root), "--check-baseline"]) == 1
        assert "stale" in capsys.readouterr().out

    def test_no_baseline_gates_everything(self, tmp_path, capsys):
        root = make_project(tmp_path)
        lint_main(["--root", str(root), "--write-baseline"])
        assert lint_main(["--root", str(root)]) == 0
        assert lint_main(["--root", str(root), "--no-baseline"]) == 1

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REPRO001" in out and "REPRO009" in out


class TestSelfCheck:
    """The shipped tree obeys its own contracts, modulo the baseline."""

    def test_repo_lints_clean_modulo_baseline(self):
        baseline = Baseline.load(str(REPO_ROOT / "lint-baseline.json"))
        result = run_lint(root=str(REPO_ROOT), baseline=baseline)
        assert result.new == []
        assert result.baseline_problems == []
        assert result.checked_files > 100

    def test_baseline_entries_all_justified(self):
        baseline = Baseline.load(str(REPO_ROOT / "lint-baseline.json"))
        for entry in baseline.entries:
            assert entry.justification.strip()
            assert entry.justification != TODO_JUSTIFICATION
