"""ProcessEngine pool-lifecycle regression tests.

The historical bug: ``_run`` was a generator, so the pool's
``shutdown(wait=True)`` lived in a ``finally`` that only ran when the
consumer exhausted the iterator — an exception mid-assembly (or an
abandoned iteration) leaked worker processes until GC. These tests pin
the fixed contract with a recording executor double: the pool is shut
down on *every* exit path, ``max_workers`` is respected, and the
in-process degradation announces itself with a RuntimeWarning.
"""

import numpy as np
import pytest

import repro.engine.process as process_module
from repro.engine.process import ProcessEngine


class _StubKernel:
    """Minimal kernel protocol: constant blocks, no real math."""

    def block_values(self, states_a, states_b):
        return np.ones((len(states_a), len(states_b)))

    def symmetric_block_values(self, states):
        return np.ones((len(states), len(states)))

    def pair_value(self, state_a, state_b):
        return 1.0


class _FailingKernel(_StubKernel):
    def block_values(self, states_a, states_b):
        raise RuntimeError("boom in block_values")

    def symmetric_block_values(self, states):
        raise RuntimeError("boom in block_values")


class _FakeFuture:
    def __init__(self, fn, args):
        self._fn, self._args = fn, args

    def result(self):
        return self._fn(*self._args)


class _RecordingExecutor:
    """In-process stand-in recording constructor args and shutdown calls."""

    instances: list = []

    def __init__(self, max_workers=None):
        self.max_workers = max_workers
        self.shutdown_calls: list = []
        _RecordingExecutor.instances.append(self)

    def submit(self, fn, *args):
        return _FakeFuture(fn, args)

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_calls.append({"wait": wait, "cancel_futures": cancel_futures})


class _UnavailableExecutor:
    def __init__(self, max_workers=None):
        raise OSError("no process pools in this sandbox")


@pytest.fixture(autouse=True)
def _reset_recorder():
    _RecordingExecutor.instances = []
    yield
    _RecordingExecutor.instances = []


@pytest.fixture
def recording_pool(monkeypatch):
    monkeypatch.setattr(process_module, "ProcessPoolExecutor", _RecordingExecutor)
    return _RecordingExecutor


def _states(n):
    return list(range(n))


class TestPoolLifecycle:
    def test_pool_shut_down_after_successful_gram(self, recording_pool):
        engine = ProcessEngine(tile_size=2)
        gram = engine.gram(_StubKernel(), _states(5))
        assert np.allclose(gram, 1.0)
        (pool,) = recording_pool.instances
        assert pool.shutdown_calls, "pool was never shut down"
        assert pool.shutdown_calls[-1]["wait"] is True

    def test_pool_shut_down_after_block_values_error(self, recording_pool):
        """The regression: a worker error must still reap the pool."""
        engine = ProcessEngine(tile_size=2)
        with pytest.raises(RuntimeError, match="boom in block_values"):
            engine.gram(_FailingKernel(), _states(5))
        (pool,) = recording_pool.instances
        assert pool.shutdown_calls, "error path leaked the pool"
        assert pool.shutdown_calls[-1]["cancel_futures"] is True

    def test_cross_gram_shuts_down_too(self, recording_pool):
        engine = ProcessEngine(tile_size=2)
        with pytest.raises(RuntimeError):
            engine.cross_gram(_FailingKernel(), _states(4), _states(3))
        (pool,) = recording_pool.instances
        assert pool.shutdown_calls

    def test_no_pool_for_empty_input(self, recording_pool):
        engine = ProcessEngine(tile_size=2)
        assert ProcessEngine(tile_size=2).gram(_StubKernel(), []).shape == (0, 0)
        assert engine.cross_gram(_StubKernel(), [], []).shape == (0, 0)
        assert recording_pool.instances == []


class TestMaxWorkers:
    def test_max_workers_passed_to_pool(self, recording_pool):
        engine = ProcessEngine(tile_size=2, max_workers=2)
        engine.gram(_StubKernel(), _states(8))  # 10 tile jobs at size 2
        (pool,) = recording_pool.instances
        assert pool.max_workers == 2

    def test_workers_capped_by_job_count(self, recording_pool):
        engine = ProcessEngine(tile_size=64, max_workers=16)
        engine.gram(_StubKernel(), _states(4))  # a single diagonal tile
        (pool,) = recording_pool.instances
        assert pool.max_workers == 1

    def test_worker_count_floor(self, recording_pool):
        engine = ProcessEngine(tile_size=2, max_workers=0)  # falsy -> cpu count
        engine.gram(_StubKernel(), _states(4))
        (pool,) = recording_pool.instances
        assert pool.max_workers >= 1


class TestDegradation:
    def test_unavailable_pool_warns_and_degrades(self, monkeypatch):
        monkeypatch.setattr(
            process_module, "ProcessPoolExecutor", _UnavailableExecutor
        )
        engine = ProcessEngine(tile_size=2)
        with pytest.warns(RuntimeWarning, match="in-process"):
            gram = engine.gram(_StubKernel(), _states(5))
        assert np.allclose(gram, 1.0)

    def test_degraded_results_match_real_pool(self, monkeypatch):
        from repro.graphs import generators as gen
        from repro.kernels import QJSKUnaligned

        kernel = QJSKUnaligned()
        graphs = [gen.cycle_graph(5), gen.path_graph(6), gen.star_graph(6)]
        expected = kernel.gram(graphs, engine="serial")
        monkeypatch.setattr(
            process_module, "ProcessPoolExecutor", _UnavailableExecutor
        )
        with pytest.warns(RuntimeWarning):
            degraded = kernel.gram(graphs, engine=ProcessEngine(tile_size=2))
        assert np.allclose(degraded, expected, atol=1e-10, rtol=0.0)

    def test_submission_failure_degrades_and_reaps(self, monkeypatch):
        class _SubmitFails(_RecordingExecutor):
            def submit(self, fn, *args):
                raise OSError("spawn failed at submit")

        monkeypatch.setattr(process_module, "ProcessPoolExecutor", _SubmitFails)
        engine = ProcessEngine(tile_size=2)
        with pytest.warns(RuntimeWarning, match="in-process"):
            gram = engine.gram(_StubKernel(), _states(5))
        assert np.allclose(gram, 1.0)
        (pool,) = _RecordingExecutor.instances
        assert pool.shutdown_calls, "failed submission leaked the pool"
