"""Backend-equivalence tests for the pluggable Gram engines.

Every pairwise kernel in the zoo must produce the same Gram matrix (to
1e-10) under the ``serial``, ``batched`` and ``process`` backends, for
square and rectangular evaluation, at tile sizes that exercise the
single-tile, multi-tile and degenerate paths. The batched path must also
preserve the permutation invariance the HAQJSK kernels claim in Table I.
"""

import numpy as np
import pytest

from repro.engine import (
    BatchedEngine,
    ProcessEngine,
    SerialEngine,
    available_engines,
    default_engine_name,
    resolve_engine,
)
from repro.errors import KernelError
from repro.graphs import generators as gen
from repro.kernels import (
    AlignedSubtreeKernel,
    HAQJSKAttributedD,
    HAQJSKKernelA,
    HAQJSKKernelD,
    JensenShannonKernel,
    JensenTsallisQKernel,
    PairwiseKernel,
    PyramidMatchKernel,
    QJSKAligned,
    QJSKUnaligned,
    RandomWalkKernel,
    RenyiEntropyKernel,
)

#: Pairwise kernels only — the engines schedule pair evaluations, so the
#: feature-map family (one matmul, no pairs) is out of scope by design.
def pairwise_zoo():
    return [
        HAQJSKKernelA(n_prototypes=8, n_levels=2, max_layers=4, seed=0),
        HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=4, seed=0),
        HAQJSKAttributedD(n_prototypes=8, n_levels=2, max_layers=4, seed=0),
        QJSKUnaligned(),
        QJSKAligned(),
        JensenTsallisQKernel(n_iterations=3),
        JensenTsallisQKernel(q=1.7, n_iterations=2),  # generic-q batched path
        PyramidMatchKernel(dimensions=3, n_levels=2),
        AlignedSubtreeKernel(n_iterations=3, max_layers=4),
        RenyiEntropyKernel(n_layers=4),
        JensenShannonKernel(),
        RandomWalkKernel(),
    ]


ZOO = pairwise_zoo()
ZOO_IDS = [f"{k.name}-{i}" for i, k in enumerate(ZOO)]

#: The tolerance the ISSUE acceptance criteria pin the backends to.
ATOL = 1e-10


@pytest.fixture(scope="module")
def probe_graphs():
    return [
        gen.cycle_graph(6),
        gen.path_graph(7),
        gen.star_graph(7),
        gen.barabasi_albert(9, 2, seed=0),
        gen.erdos_renyi(8, 0.4, seed=1).largest_component(),
        gen.watts_strogatz(8, 4, 0.3, seed=2),
        gen.random_tree(8, seed=3),
    ]


@pytest.mark.parametrize("kernel", ZOO, ids=ZOO_IDS)
class TestBackendEquivalence:
    def test_gram_backends_agree(self, kernel, probe_graphs):
        serial = kernel.gram(probe_graphs, engine="serial")
        batched = kernel.gram(probe_graphs, engine="batched")
        process = kernel.gram(probe_graphs, engine="process")
        assert np.allclose(batched, serial, atol=ATOL, rtol=0.0), kernel.name
        assert np.allclose(process, serial, atol=ATOL, rtol=0.0), kernel.name

    def test_cross_gram_backends_agree(self, kernel, probe_graphs):
        left, right = probe_graphs[:4], probe_graphs[4:]
        serial = kernel.cross_gram(left, right, engine="serial")
        batched = kernel.cross_gram(left, right, engine="batched")
        process = kernel.cross_gram(left, right, engine="process")
        assert serial.shape == (4, 3)
        assert np.allclose(batched, serial, atol=ATOL, rtol=0.0), kernel.name
        assert np.allclose(process, serial, atol=ATOL, rtol=0.0), kernel.name

    def test_small_tiles_agree(self, kernel, probe_graphs):
        """Tile edges force the multi-tile diagonal/off-diagonal paths."""
        serial = kernel.gram(probe_graphs, engine="serial")
        tiled = kernel.gram(probe_graphs, engine=BatchedEngine(tile_size=2))
        assert np.allclose(tiled, serial, atol=ATOL, rtol=0.0), kernel.name

    def test_block_values_matches_pair_grid(self, kernel, probe_graphs):
        states = kernel.prepare(list(probe_graphs))
        block = kernel.block_values(states[:3], states[3:])
        expected = np.array(
            [
                [kernel.pair_value(sa, sb) for sb in states[3:]]
                for sa in states[:3]
            ]
        )
        assert np.allclose(block, expected, atol=ATOL, rtol=0.0), kernel.name


@pytest.mark.parametrize(
    "make",
    [
        lambda: HAQJSKKernelA(n_prototypes=8, n_levels=2, max_layers=4, seed=0),
        lambda: HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=4, seed=0),
    ],
    ids=["HAQJSK(A)", "HAQJSK(D)"],
)
def test_batched_path_is_permutation_invariant(make, probe_graphs):
    """Relabelling one graph's vertices must not change the batched Gram."""
    rng = np.random.default_rng(11)
    target = 2
    perm = rng.permutation(probe_graphs[target].n_vertices)
    permuted = list(probe_graphs)
    permuted[target] = probe_graphs[target].permuted(perm)
    kernel = make()
    gram_a = kernel.gram(probe_graphs, normalize=True, engine="batched")
    gram_b = kernel.gram(permuted, normalize=True, engine="batched")
    assert np.allclose(gram_a, gram_b, atol=1e-7)


class TestHierarchyLevelValidation:
    """Mismatched hierarchy depths raise a named KernelError, not IndexError."""

    def _states(self, n_levels):
        kernel = HAQJSKKernelD(
            n_prototypes=8, n_levels=n_levels, max_layers=3, seed=0
        )
        graphs = [gen.cycle_graph(6), gen.path_graph(7)]
        return kernel, kernel.prepare(graphs)

    def test_pair_value_mismatch(self):
        kernel, shallow = self._states(2)
        _, deep = self._states(3)
        with pytest.raises(KernelError, match=r"HAQJSK\(D\).*2 vs 3"):
            kernel.pair_value(shallow[0], deep[1])

    def test_block_values_mismatch(self):
        kernel, shallow = self._states(2)
        _, deep = self._states(3)
        with pytest.raises(KernelError, match=r"HAQJSK\(D\).*level"):
            kernel.block_values(shallow, deep)

    def test_matching_levels_pass(self):
        kernel, states = self._states(2)
        value = kernel.pair_value(states[0], states[1])
        assert np.isfinite(value)

    def test_jtqk_level_mismatch(self):
        graphs = [gen.cycle_graph(6), gen.path_graph(7)]
        shallow = JensenTsallisQKernel(n_iterations=2).prepare(graphs)
        kernel = JensenTsallisQKernel(n_iterations=3)
        deep = kernel.prepare(graphs)
        with pytest.raises(KernelError, match=r"JTQK.*4 vs 3"):
            kernel.pair_value(deep[0], shallow[1])
        with pytest.raises(KernelError, match="JTQK"):
            kernel.block_values(deep, shallow)

    def test_jtqk_vocabulary_mismatch(self):
        kernel = JensenTsallisQKernel(n_iterations=2)
        small = kernel.prepare([gen.cycle_graph(6), gen.path_graph(7)])
        large = kernel.prepare([gen.star_graph(8), gen.barabasi_albert(9, 2, seed=0)])
        if small[0][0].shape == large[0][0].shape:  # pragma: no cover
            pytest.skip("vocabularies happened to coincide")
        with pytest.raises(KernelError, match="vocabulary"):
            kernel.pair_value(small[0], large[0])


class TestEngineResolution:
    def test_available_backends(self):
        assert {"serial", "batched", "process"} <= set(available_engines())

    def test_resolve_by_name(self):
        assert isinstance(resolve_engine("serial"), SerialEngine)
        assert isinstance(resolve_engine("batched"), BatchedEngine)
        assert isinstance(resolve_engine("process"), ProcessEngine)

    def test_resolve_instance_passthrough(self):
        engine = BatchedEngine(tile_size=7)
        assert resolve_engine(engine) is engine

    def test_unknown_name_raises(self):
        with pytest.raises(KernelError, match="unknown gram engine"):
            resolve_engine("gpu")

    def test_bad_type_raises(self):
        with pytest.raises(KernelError):
            resolve_engine(42)

    def test_default_is_batched(self, monkeypatch):
        monkeypatch.delenv("REPRO_GRAM_ENGINE", raising=False)
        assert default_engine_name() == "batched"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAM_ENGINE", "serial")
        assert default_engine_name() == "serial"
        assert isinstance(resolve_engine(None), SerialEngine)

    def test_sticky_kernel_engine(self, probe_graphs):
        kernel = QJSKUnaligned()
        kernel.engine = "serial"
        assert isinstance(kernel._resolve_engine(None), SerialEngine)
        assert isinstance(kernel._resolve_engine("process"), ProcessEngine)

    def test_make_kernel_stamps_engine(self, monkeypatch):
        from repro.experiments.kernel_zoo import make_kernel

        monkeypatch.delenv("REPRO_GRAM_ENGINE", raising=False)
        assert make_kernel("QJSK").engine == "batched"
        assert make_kernel("QJSK", engine="serial").engine == "serial"


class TestTilingMachinery:
    def test_tile_ranges_cover(self):
        from repro.engine.base import tile_ranges

        assert tile_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert tile_ranges(3, 64) == [(0, 3)]
        assert tile_ranges(0, 4) == []

    def test_symmetric_tile_pairs_upper_triangle(self):
        from repro.engine.base import symmetric_tile_pairs

        pairs = list(symmetric_tile_pairs(5, 2))
        assert ((0, 2), (0, 2)) in pairs
        assert ((0, 2), (2, 4)) in pairs
        assert ((2, 4), (0, 2)) not in pairs

    def test_symmetric_block_values_uses_upper_triangle(self, probe_graphs):
        kernel = QJSKUnaligned()
        states = kernel.prepare(list(probe_graphs))
        block = kernel.symmetric_block_values(states)
        assert np.allclose(block, block.T)
        loop = SerialEngine().gram(kernel, states)
        assert np.allclose(block, loop, atol=ATOL, rtol=0.0)
