"""Tile plans, Gram sinks, and tile-boundary edge cases.

The tentpole contract: every backend streams the same tile schedule into
any sink, and the assembled matrix equals the dense reference — at tile
sizes that do not divide ``n``, tile size 1, tile sizes larger than
``n``, and for empty batches. Parametrized across all three backends and
both engine-layer sinks (the store layer's CheckpointSink has its own
suite under ``tests/store``).
"""

import numpy as np
import pytest

from repro.engine import (
    TILE_ENV_VAR,
    BatchedEngine,
    DenseSink,
    MemmapSink,
    ProcessEngine,
    SerialEngine,
    TilePlan,
    default_tile_size,
)
from repro.errors import KernelError
from repro.graphs import generators as gen
from repro.kernels import QJSKUnaligned, WeisfeilerLehmanKernel

ATOL = 1e-10

ENGINES = {
    "serial": SerialEngine,
    "batched": BatchedEngine,
    "process": ProcessEngine,
}

SINKS = {
    "dense": lambda tmp_path: DenseSink(),
    "memmap": lambda tmp_path: MemmapSink(str(tmp_path / "gram.npy")),
}


@pytest.fixture(scope="module")
def probe_graphs():
    return [
        gen.cycle_graph(6),
        gen.path_graph(7),
        gen.star_graph(7),
        gen.barabasi_albert(9, 2, seed=0),
        gen.erdos_renyi(8, 0.4, seed=1).largest_component(),
        gen.watts_strogatz(8, 4, 0.3, seed=2),
        gen.random_tree(8, seed=3),
    ]


class TestTilePlan:
    def test_symmetric_plan_covers_upper_triangle(self):
        plan = TilePlan.gram(5, 2)
        tiles = list(plan.tiles())
        assert ((0, 2), (0, 2)) in tiles
        assert ((0, 2), (2, 4)) in tiles
        assert ((2, 4), (0, 2)) not in tiles
        assert plan.n_tiles() == 6  # 3 ranges -> 3*(3+1)/2 pairs

    def test_cross_plan_covers_rectangle(self):
        plan = TilePlan.cross(5, 3, 2)
        assert plan.n_tiles() == 3 * 2
        assert not plan.symmetric

    def test_is_diagonal(self):
        plan = TilePlan.gram(4, 2)
        assert plan.is_diagonal((0, 2), (0, 2))
        assert not plan.is_diagonal((0, 2), (2, 4))
        assert not TilePlan.cross(4, 4, 2).is_diagonal((0, 2), (0, 2))

    def test_empty_plan(self):
        assert TilePlan.gram(0, 4).n_tiles() == 0
        assert TilePlan.cross(0, 7, 4).n_tiles() == 0


class TestTileSizeResolution:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(TILE_ENV_VAR, "17")
        assert BatchedEngine(tile_size=5).resolved_tile_size() == 5

    def test_env_beats_backend_default(self, monkeypatch):
        monkeypatch.setenv(TILE_ENV_VAR, "17")
        for cls in ENGINES.values():
            assert cls().resolved_tile_size() == 17

    def test_backend_defaults(self, monkeypatch):
        monkeypatch.delenv(TILE_ENV_VAR, raising=False)
        assert SerialEngine().resolved_tile_size() == 128
        assert BatchedEngine().resolved_tile_size() == 64
        assert ProcessEngine().resolved_tile_size() == 32

    def test_malformed_env_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(TILE_ENV_VAR, "sixty-four")
        with pytest.raises(KernelError, match="REPRO_GRAM_TILE"):
            default_tile_size(64)
        monkeypatch.setenv(TILE_ENV_VAR, "0")
        with pytest.raises(KernelError, match=">= 1"):
            default_tile_size(64)


class TestSinkContract:
    def test_write_before_open_raises(self):
        with pytest.raises(KernelError, match="before open"):
            DenseSink().write((0, 1), (0, 1), np.zeros((1, 1)))

    def test_finalize_before_open_raises(self, tmp_path):
        with pytest.raises(KernelError, match="before open"):
            DenseSink().finalize()
        with pytest.raises(KernelError, match="before open"):
            MemmapSink(str(tmp_path / "g.npy")).finalize()

    def test_misshapen_tile_raises(self):
        sink = DenseSink()
        sink.open(TilePlan.gram(4, 2))
        with pytest.raises(KernelError, match="shape"):
            sink.write((0, 2), (0, 2), np.zeros((3, 3)))

    def test_memmap_is_npy_readable(self, tmp_path, probe_graphs):
        kernel = QJSKUnaligned()
        sink = MemmapSink(str(tmp_path / "gram.npy"))
        gram = kernel.gram(probe_graphs, sink=sink)
        loaded = np.load(sink.path)
        assert np.array_equal(loaded, np.asarray(gram))

    def test_memmap_float32_storage_mode(self, tmp_path, probe_graphs):
        """The opt-in storage dtype: computation stays float64, only the
        on-disk store is cast — pinned to the float32 cast tolerance."""
        kernel = QJSKUnaligned()
        dense = kernel.gram(probe_graphs)
        sink = MemmapSink(str(tmp_path / "gram32.npy"), dtype="float32")
        gram32 = kernel.gram(probe_graphs, sink=sink)
        assert np.asarray(gram32).dtype == np.float32
        assert sink.path.endswith(".npy")
        # float32 has ~7 significant digits; values here are O(1).
        assert np.allclose(np.asarray(gram32), dense, atol=1e-6, rtol=1e-6)
        assert not np.allclose(np.asarray(gram32), dense, atol=1e-14, rtol=0.0)
        assert np.array_equal(
            np.asarray(gram32), dense.astype(np.float32)
        )


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
@pytest.mark.parametrize("sink_name", sorted(SINKS))
class TestTileBoundaryEdgeCases:
    """n = 7 graphs against tile sizes hitting every boundary case."""

    def _gram(self, kernel, graphs, engine_name, sink_name, tmp_path, tile):
        engine = ENGINES[engine_name](tile_size=tile)
        sink = SINKS[sink_name](tmp_path)
        return np.asarray(
            kernel.gram(graphs, engine=engine, sink=sink), dtype=float
        )

    @pytest.mark.parametrize("tile", [1, 2, 3, 7, 64])
    def test_gram_matches_serial_reference(
        self, engine_name, sink_name, tile, probe_graphs, tmp_path
    ):
        """Tile 1 (degenerate), 2/3 (n=7 not divisible), 7 (exact), 64
        (tile > n) all agree with the dense serial reference."""
        kernel = QJSKUnaligned()
        reference = kernel.gram(probe_graphs, engine="serial")
        gram = self._gram(
            kernel, probe_graphs, engine_name, sink_name, tmp_path, tile
        )
        assert gram.shape == reference.shape
        assert np.allclose(gram, reference, atol=ATOL, rtol=0.0)
        assert np.array_equal(gram, gram.T)

    @pytest.mark.parametrize("tile", [1, 3, 64])
    def test_cross_gram_matches_reference(
        self, engine_name, sink_name, tile, probe_graphs, tmp_path
    ):
        kernel = QJSKUnaligned()
        states = kernel.prepare(list(probe_graphs))
        left, right = states[:4], states[4:]
        reference = SerialEngine().cross_gram(kernel, left, right)
        engine = ENGINES[engine_name](tile_size=tile)
        block = np.asarray(
            engine.cross_gram(kernel, left, right, sink=SINKS[sink_name](tmp_path))
        )
        assert block.shape == (4, 3)
        assert np.allclose(block, reference, atol=ATOL, rtol=0.0)

    def test_empty_row_batch(
        self, engine_name, sink_name, probe_graphs, tmp_path
    ):
        """An empty new-graph batch yields a (0, N) block, not a crash."""
        kernel = QJSKUnaligned()
        states = kernel.prepare(list(probe_graphs))
        engine = ENGINES[engine_name](tile_size=3)
        block = np.asarray(
            engine.cross_gram(kernel, [], states, sink=SINKS[sink_name](tmp_path))
        )
        assert block.shape == (0, len(states))


@pytest.mark.parametrize("tile", [1, 3, 64])
def test_feature_map_tiled_path(tile, probe_graphs, tmp_path):
    """Feature-map kernels stream per-tile matmuls; dense and memmapped
    results agree with the one-matmul path to strict tolerance."""
    kernel = WeisfeilerLehmanKernel(3)
    dense = kernel.gram(probe_graphs, normalize=True)
    sink = MemmapSink(str(tmp_path / f"wl-{tile}.npy"))
    tiled = kernel.gram(
        probe_graphs, normalize=True, engine=BatchedEngine(tile_size=tile),
        sink=sink,
    )
    assert np.allclose(np.asarray(tiled), dense, atol=1e-12, rtol=0.0)


def test_normalized_memmap_matches_dense(probe_graphs, tmp_path):
    """Tile-wise cosine normalisation on the memmap equals the dense
    normalize path bit-for-bit (same association order per entry)."""
    kernel = QJSKUnaligned()
    dense = kernel.gram(probe_graphs, normalize=True)
    tiled = kernel.gram(
        probe_graphs,
        normalize=True,
        engine=BatchedEngine(tile_size=3),
        sink=MemmapSink(str(tmp_path / "norm.npy")),
    )
    assert np.array_equal(np.asarray(tiled), dense)


def test_ensure_psd_refused_out_of_core(probe_graphs, tmp_path):
    """PSD projection is global; out-of-core sinks must refuse, in-memory
    sinks may densify. The refusal is the unified ExecutionContext
    validation error naming the offending fields — identical whether the
    sink arrives via the legacy kwarg or a context."""
    from repro.api import ExecutionContext
    from repro.errors import ValidationError

    kernel = QJSKUnaligned()
    with pytest.raises(ValidationError, match="ensure_psd.*sink"):
        kernel.gram(
            probe_graphs, ensure_psd=True,
            sink=MemmapSink(str(tmp_path / "psd.npy")),
        )
    with pytest.raises(ValidationError, match="ensure_psd.*sink"):
        kernel.gram(
            probe_graphs,
            ensure_psd=True,
            ctx=ExecutionContext(
                sink_factory=lambda: MemmapSink(str(tmp_path / "psd2.npy"))
            ),
        )
    dense = kernel.gram(probe_graphs, ensure_psd=True)
    sunk = kernel.gram(probe_graphs, ensure_psd=True, sink=DenseSink())
    assert np.allclose(sunk, dense, atol=ATOL, rtol=0.0)


def test_dense_sink_path_is_byte_identical_to_default(probe_graphs):
    """sink=DenseSink() is today's behaviour exactly, for both kernel
    families."""
    for kernel in (QJSKUnaligned(), WeisfeilerLehmanKernel(3)):
        default = kernel.gram(probe_graphs, normalize=True)
        sunk = kernel.gram(probe_graphs, normalize=True, sink=DenseSink())
        assert np.allclose(sunk, default, atol=1e-12, rtol=0.0), kernel.name
