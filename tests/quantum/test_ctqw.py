"""Tests for CTQW evolution (unitarity, norm conservation, reversibility)."""

import numpy as np
import pytest

from repro.errors import QuantumError
from repro.graphs import generators as gen
from repro.quantum.ctqw import CTQW
from repro.quantum.state import (
    degree_initial_state,
    pure_state_density,
    uniform_initial_state,
)


@pytest.fixture
def walk(petersen_like):
    return CTQW.from_graph(petersen_like)


class TestEvolution:
    def test_unitary(self, walk):
        u = walk.unitary(1.3)
        assert np.allclose(u @ u.conj().T, np.eye(walk.n_vertices), atol=1e-9)

    def test_norm_conserved(self, walk):
        for t in (0.0, 0.5, 2.0, 10.0):
            assert np.linalg.norm(walk.state_at(t)) == pytest.approx(1.0)

    def test_initial_state_at_time_zero(self, walk):
        assert np.allclose(walk.state_at(0.0), walk.initial_state)

    def test_reversibility(self, walk):
        """U(-t) U(t) = I: the CTQW is reversible, unlike the CTRW."""
        forward = walk.unitary(2.0)
        backward = walk.unitary(-2.0)
        assert np.allclose(backward @ forward, np.eye(walk.n_vertices), atol=1e-9)

    def test_probabilities_sum_to_one(self, walk):
        probs = walk.probabilities_at(3.7)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= -1e-12)

    def test_composition_property(self, walk):
        """U(s + t) = U(s) U(t) for a time-independent Hamiltonian."""
        u_sum = walk.unitary(1.0 + 2.5)
        u_composed = walk.unitary(1.0) @ walk.unitary(2.5)
        assert np.allclose(u_sum, u_composed, atol=1e-9)

    def test_average_probabilities_is_distribution(self, walk):
        average = walk.average_probabilities(10.0, steps=100)
        assert average.sum() == pytest.approx(1.0, abs=1e-6)

    def test_interference_creates_nonclassical_profile(self):
        """On a path, quantum occupation differs from the stationary
        distribution — the interference the paper credits for reducing
        tottering."""
        g = gen.path_graph(6)
        walk = CTQW.from_graph(g)
        classical_stationary = g.degrees() / g.degrees().sum()
        quantum_average = walk.average_probabilities(50.0, steps=500)
        assert not np.allclose(quantum_average, classical_stationary, atol=1e-3)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(QuantumError):
            CTQW(np.zeros((0, 0)))

    def test_rejects_bad_initial_norm(self, path4):
        with pytest.raises(QuantumError, match="norm"):
            CTQW(path4.adjacency, initial_state=np.asarray([1.0, 1.0, 0.0, 0.0]))

    def test_rejects_size_mismatch(self, path4):
        with pytest.raises(QuantumError):
            CTQW(path4.adjacency, initial_state=uniform_initial_state(3))

    def test_spectrum_sorted(self, walk):
        assert np.all(np.diff(walk.spectrum) >= 0)

    def test_alternative_hamiltonian(self, path4):
        walk = CTQW(path4.adjacency, hamiltonian="adjacency")
        assert walk.hamiltonian_kind == "adjacency"
        assert np.allclose(walk.hamiltonian, path4.adjacency)


class TestStates:
    def test_degree_initial_state_normalised(self, star5):
        psi = degree_initial_state(star5.adjacency)
        assert np.linalg.norm(psi) == pytest.approx(1.0)

    def test_degree_initial_state_prefers_hubs(self, star5):
        psi = degree_initial_state(star5.adjacency)
        assert psi[0] > psi[1]

    def test_degree_initial_state_edgeless_uniform(self):
        psi = degree_initial_state(np.zeros((4, 4)))
        assert np.allclose(psi, 0.5)

    def test_uniform_initial_state(self):
        psi = uniform_initial_state(9)
        assert np.linalg.norm(psi) == pytest.approx(1.0)

    def test_pure_state_density_trace(self):
        rho = pure_state_density(uniform_initial_state(5))
        assert np.trace(rho) == pytest.approx(1.0)

    def test_pure_state_density_rejects_unnormalised(self):
        with pytest.raises(QuantumError):
            pure_state_density(np.asarray([1.0, 1.0]))
