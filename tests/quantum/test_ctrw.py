"""Tests for the classical continuous-time random walk (CTRW)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantumError
from repro.graphs import generators as gen
from repro.quantum.ctqw import CTQW
from repro.quantum.ctrw import CTRW, return_probability_curve


@pytest.fixture(scope="module")
def path_walk():
    return CTRW.from_graph(gen.path_graph(6))


class TestPropagator:
    def test_identity_at_time_zero(self, path_walk):
        assert np.allclose(path_walk.propagator(0.0), np.eye(6))

    def test_doubly_stochastic(self, path_walk):
        heat = path_walk.propagator(0.7)
        assert np.allclose(heat.sum(axis=0), 1.0)
        assert np.allclose(heat.sum(axis=1), 1.0)
        assert heat.min() >= -1e-12

    def test_semigroup_property(self, path_walk):
        """exp(-L(s+t)) = exp(-Ls) exp(-Lt)."""
        a = path_walk.propagator(0.3) @ path_walk.propagator(0.5)
        b = path_walk.propagator(0.8)
        assert np.allclose(a, b, atol=1e-10)

    def test_negative_time_rejected(self, path_walk):
        with pytest.raises(QuantumError):
            path_walk.propagator(-0.1)


class TestDistribution:
    def test_probabilities_normalised(self, path_walk):
        for t in (0.0, 0.1, 1.0, 10.0):
            probs = path_walk.probabilities_at(t)
            assert probs.min() >= 0.0
            assert probs.sum() == pytest.approx(1.0)

    def test_default_initial_is_degree_distribution(self):
        star = gen.star_graph(5)
        walk = CTRW.from_graph(star)
        degrees = star.adjacency.sum(axis=1)
        assert np.allclose(
            walk.initial_distribution, degrees / degrees.sum()
        )

    def test_converges_to_uniform_on_connected_graph(self):
        walk = CTRW.from_graph(gen.cycle_graph(7))
        late = walk.probabilities_at(200.0)
        assert np.allclose(late, 1.0 / 7.0, atol=1e-6)

    def test_stationary_uniform_per_component(self):
        from repro.graphs.ops import disjoint_union

        two = disjoint_union([gen.cycle_graph(4), gen.cycle_graph(4)])
        # start entirely in the first component
        p0 = np.zeros(8)
        p0[0] = 1.0
        walk = CTRW(two.adjacency, initial_distribution=p0)
        stationary = walk.stationary_distribution()
        assert np.allclose(stationary[:4], 0.25, atol=1e-10)
        assert np.allclose(stationary[4:], 0.0, atol=1e-10)

    def test_bad_initial_distribution_rejected(self):
        adjacency = gen.path_graph(3).adjacency
        with pytest.raises(QuantumError):
            CTRW(adjacency, initial_distribution=[0.5, 0.5])  # wrong length
        with pytest.raises(QuantumError):
            CTRW(adjacency, initial_distribution=[0.9, 0.9, -0.8])

    def test_bad_generator_rejected(self):
        with pytest.raises(QuantumError):
            CTRW(gen.path_graph(3).adjacency, generator="hamiltonian")

    def test_normalized_laplacian_generator(self):
        walk = CTRW.from_graph(gen.star_graph(5), generator="normalized_laplacian")
        probs = walk.probabilities_at(1.0)
        assert probs.sum() == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(
        t=st.floats(min_value=0.0, max_value=50.0),
        seed=st.integers(min_value=0, max_value=200),
    )
    def test_distribution_valid_at_any_time(self, t, seed):
        walk = CTRW.from_graph(gen.random_tree(8, seed=seed))
        probs = walk.probabilities_at(t)
        assert probs.min() >= 0.0
        assert probs.sum() == pytest.approx(1.0)


class TestMixing:
    def test_mixing_time_finite_on_connected_graph(self):
        walk = CTRW.from_graph(gen.complete_graph(6))
        assert walk.mixing_time() < 10.0

    def test_denser_graph_mixes_faster(self):
        slow = CTRW.from_graph(gen.path_graph(10)).mixing_time()
        fast = CTRW.from_graph(gen.complete_graph(10)).mixing_time()
        assert fast < slow

    def test_epsilon_validated(self, path_walk):
        with pytest.raises(QuantumError):
            path_walk.mixing_time(epsilon=0.0)


class TestClassicalVsQuantum:
    """The paper's Section II-A remarks, measured."""

    def test_classical_decays_quantum_oscillates(self):
        """Return probability at the start vertex: the CTRW's curve is
        (weakly) monotone toward stationarity; the CTQW's keeps moving.
        """
        cycle = gen.cycle_graph(8)
        p0 = np.zeros(8)
        p0[0] = 1.0
        classical = CTRW(cycle.adjacency, initial_distribution=p0)
        amplitudes = np.zeros(8)
        amplitudes[0] = 1.0
        quantum = CTQW(cycle.adjacency, initial_state=amplitudes)
        times = np.linspace(0.1, 12.0, 60)
        classical_curve = return_probability_curve(classical, times, 0)
        quantum_curve = return_probability_curve(quantum, times, 0)
        # classical: essentially monotone decay (allow float wiggle)
        assert np.all(np.diff(classical_curve) <= 1e-6)
        # quantum: substantial oscillation persists late into the window
        late = quantum_curve[30:]
        assert late.max() - late.min() > 0.1

    def test_quantum_distinguishes_cospectral_sized_graphs_longer(self):
        """After both walks mix classically, the CTQW occupation vectors
        still differ between two same-size graphs (high-frequency info),
        while the CTRW's are both ~uniform."""
        a = gen.cycle_graph(8)
        b = gen.path_graph(8)
        t = 150.0
        classical_gap = np.abs(
            CTRW.from_graph(a).probabilities_at(t)
            - CTRW.from_graph(b).probabilities_at(t)
        ).max()
        quantum_gap = np.abs(
            CTQW.from_graph(a).probabilities_at(t)
            - CTQW.from_graph(b).probabilities_at(t)
        ).max()
        assert quantum_gap > 5 * classical_gap
