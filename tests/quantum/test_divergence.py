"""Tests for QJSD and relatives (Eq. 8), incl. hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantumError
from repro.graphs import generators as gen
from repro.quantum.density import graph_density_matrix
from repro.quantum.divergence import (
    QJSD_MAX,
    classical_jensen_shannon_divergence,
    jensen_tsallis_q_difference,
    qjsd_between_padded,
    quantum_jensen_shannon_divergence,
)


def density_from_seed(seed: int, n: int = 6) -> np.ndarray:
    g = gen.erdos_renyi(n, 0.4, seed=seed)
    return graph_density_matrix(g)


class TestQJSD:
    def test_self_divergence_zero(self):
        rho = density_from_seed(0)
        assert quantum_jensen_shannon_divergence(rho, rho) == pytest.approx(0.0)

    def test_symmetry(self):
        rho, sigma = density_from_seed(1), density_from_seed(2)
        assert quantum_jensen_shannon_divergence(
            rho, sigma
        ) == pytest.approx(quantum_jensen_shannon_divergence(sigma, rho))

    def test_bounded_by_log2(self):
        rho, sigma = density_from_seed(3), density_from_seed(4)
        assert 0.0 <= quantum_jensen_shannon_divergence(rho, sigma) <= QJSD_MAX

    def test_orthogonal_states_maximal(self):
        rho = np.diag([1.0, 0.0])
        sigma = np.diag([0.0, 1.0])
        assert quantum_jensen_shannon_divergence(rho, sigma) == pytest.approx(QJSD_MAX)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(QuantumError, match="equal shapes"):
            quantum_jensen_shannon_divergence(np.eye(2) / 2, np.eye(3) / 3)

    def test_padded_variant_handles_sizes(self):
        rho = density_from_seed(5, n=5)
        sigma = density_from_seed(6, n=8)
        value = qjsd_between_padded(rho, sigma)
        assert 0.0 <= value <= QJSD_MAX

    def test_padding_not_permutation_invariant(self):
        """The unaligned padding protocol depends on vertex order — the
        drawback motivating the paper (Section II-D)."""
        g_small = gen.star_graph(4)
        g_large = gen.barabasi_albert(8, 2, seed=7)
        rho_small = graph_density_matrix(g_small)
        rho_large = graph_density_matrix(g_large)
        baseline = qjsd_between_padded(rho_small, rho_large)
        perm = np.asarray([3, 0, 1, 2, 4, 5, 6, 7])
        rho_perm = graph_density_matrix(g_large.permuted(perm))
        permuted = qjsd_between_padded(rho_small, rho_perm)
        assert abs(baseline - permuted) > 1e-6


class TestClassicalJSD:
    def test_identical_zero(self):
        p = np.asarray([0.2, 0.8])
        assert classical_jensen_shannon_divergence(p, p) == 0.0

    def test_disjoint_maximal(self):
        p = np.asarray([1.0, 0.0])
        q = np.asarray([0.0, 1.0])
        assert classical_jensen_shannon_divergence(p, q) == pytest.approx(QJSD_MAX)

    def test_shape_mismatch(self):
        with pytest.raises(QuantumError):
            classical_jensen_shannon_divergence(np.ones(2) / 2, np.ones(3) / 3)


class TestJensenTsallis:
    def test_self_zero(self):
        rho = density_from_seed(8)
        assert jensen_tsallis_q_difference(rho, rho, 2.0) == pytest.approx(0.0)

    def test_symmetry(self):
        rho, sigma = density_from_seed(9), density_from_seed(10)
        forward = jensen_tsallis_q_difference(rho, sigma, 2.0)
        backward = jensen_tsallis_q_difference(sigma, rho, 2.0)
        assert forward == pytest.approx(backward)

    def test_q2_bounded_by_half(self):
        rho = np.diag([1.0, 0.0])
        sigma = np.diag([0.0, 1.0])
        value = jensen_tsallis_q_difference(rho, sigma, 2.0)
        assert 0.0 < value <= 0.5 + 1e-12


@settings(max_examples=30, deadline=None)
@given(seed_a=st.integers(0, 200), seed_b=st.integers(0, 200))
def test_qjsd_properties_hold_on_random_graph_states(seed_a, seed_b):
    rho = density_from_seed(seed_a)
    sigma = density_from_seed(seed_b)
    value = quantum_jensen_shannon_divergence(rho, sigma)
    assert 0.0 <= value <= QJSD_MAX
    assert value == pytest.approx(quantum_jensen_shannon_divergence(sigma, rho))
    if seed_a == seed_b:
        assert value == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.floats(0.01, 1.0), min_size=2, max_size=6),
    st.lists(st.floats(0.01, 1.0), min_size=2, max_size=6),
)
def test_classical_jsd_bounds(raw_p, raw_q):
    size = min(len(raw_p), len(raw_q))
    p = np.asarray(raw_p[:size])
    q = np.asarray(raw_q[:size])
    p, q = p / p.sum(), q / q.sum()
    value = classical_jensen_shannon_divergence(p, q)
    assert 0.0 <= value <= QJSD_MAX
