"""Tests for the Eq. 4/5 time-averaged density matrices."""

import numpy as np
import pytest

from repro.errors import NotDensityMatrixError, QuantumError
from repro.graphs import generators as gen
from repro.quantum.density import (
    check_density_matrix,
    ctqw_density_matrix,
    finite_time_density_matrix,
    graph_density_matrix,
    mix_density_matrices,
    pad_density_matrix,
    purity,
)


class TestClosedForm:
    def test_is_density_matrix(self, petersen_like):
        rho = graph_density_matrix(petersen_like)
        check_density_matrix(rho)

    def test_trace_one(self, mixed_collection):
        for g in mixed_collection:
            assert np.trace(graph_density_matrix(g)) == pytest.approx(1.0)

    def test_matches_finite_time_limit(self):
        g = gen.erdos_renyi(10, 0.35, seed=11)
        closed = graph_density_matrix(g)
        sampled = finite_time_density_matrix(g.adjacency, 400.0, steps=4000)
        assert np.max(np.abs(closed - sampled)) < 5e-4

    def test_regular_graph_pure_state(self):
        # On a regular graph the degree initial state is the Laplacian's
        # 0-eigenvector, so the time average is the pure initial state.
        g = gen.cycle_graph(8)
        rho = graph_density_matrix(g)
        assert purity(rho) == pytest.approx(1.0, abs=1e-9)

    def test_irregular_graph_mixed_state(self, star5):
        rho = graph_density_matrix(star5)
        assert purity(rho) < 1.0 - 1e-6

    def test_permutation_covariance(self, petersen_like):
        """rho(P G P^T) == P rho(G) P^T — density matrices are covariant."""
        rng = np.random.default_rng(0)
        perm = rng.permutation(petersen_like.n_vertices)
        rho = graph_density_matrix(petersen_like)
        rho_permuted = graph_density_matrix(petersen_like.permuted(perm))
        assert np.allclose(rho_permuted, rho[np.ix_(perm, perm)], atol=1e-9)

    def test_custom_initial_state(self, path4):
        psi0 = np.asarray([1.0, 0.0, 0.0, 0.0])
        rho = ctqw_density_matrix(path4.adjacency, initial_state=psi0)
        check_density_matrix(rho)

    def test_rejects_zero_initial_state(self, path4):
        with pytest.raises(QuantumError, match="non-zero"):
            ctqw_density_matrix(path4.adjacency, initial_state=np.zeros(4))

    def test_rejects_wrong_size_initial_state(self, path4):
        with pytest.raises(QuantumError, match="shape"):
            ctqw_density_matrix(path4.adjacency, initial_state=np.ones(3))

    def test_rejects_empty(self):
        with pytest.raises(QuantumError):
            ctqw_density_matrix(np.zeros((0, 0)))

    def test_adjacency_hamiltonian_also_valid(self, petersen_like):
        rho = graph_density_matrix(petersen_like, hamiltonian="adjacency")
        check_density_matrix(rho)

    def test_edgeless_graph_uniform_pure(self):
        rho = ctqw_density_matrix(np.zeros((4, 4)))
        assert np.allclose(rho, np.full((4, 4), 0.25))


class TestCheckDensityMatrix:
    def test_rejects_trace(self):
        with pytest.raises(NotDensityMatrixError, match="trace"):
            check_density_matrix(np.eye(3))

    def test_rejects_indefinite(self):
        bad = np.diag([1.5, -0.5])
        with pytest.raises(NotDensityMatrixError, match="PSD"):
            check_density_matrix(bad)

    def test_rejects_empty(self):
        with pytest.raises(NotDensityMatrixError):
            check_density_matrix(np.zeros((0, 0)))


class TestMixAndPad:
    def test_mixture_is_density(self, star5, path4):
        rho_a = graph_density_matrix(star5)
        rho_b = graph_density_matrix(gen.cycle_graph(5))
        mixed = mix_density_matrices([rho_a, rho_b])
        check_density_matrix(mixed)

    def test_mixture_weights(self):
        a, b = np.diag([1.0, 0.0]), np.diag([0.0, 1.0])
        mixed = mix_density_matrices([a, b], [3.0, 1.0])
        assert np.allclose(np.diag(mixed), [0.75, 0.25])

    def test_mixture_rejects_size_mismatch(self):
        with pytest.raises(QuantumError):
            mix_density_matrices([np.eye(2) / 2, np.eye(3) / 3])

    def test_mixture_rejects_negative_weights(self):
        with pytest.raises(QuantumError):
            mix_density_matrices([np.eye(2) / 2, np.eye(2) / 2], [1.0, -1.0])

    def test_pad_preserves_trace_and_psd(self, star5):
        rho = graph_density_matrix(star5)
        padded = pad_density_matrix(rho, 9)
        check_density_matrix(padded)
        assert padded.shape == (9, 9)

    def test_pad_identity_when_same_size(self, star5):
        rho = graph_density_matrix(star5)
        assert np.array_equal(pad_density_matrix(rho, 5), rho)

    def test_pad_rejects_shrinking(self, star5):
        rho = graph_density_matrix(star5)
        with pytest.raises(QuantumError):
            pad_density_matrix(rho, 3)

    def test_purity_bounds(self, mixed_collection):
        for g in mixed_collection:
            value = purity(graph_density_matrix(g))
            assert 1.0 / g.n_vertices - 1e-9 <= value <= 1.0 + 1e-9
