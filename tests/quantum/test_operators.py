"""Tests for Hamiltonian constructions."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs import generators as gen
from repro.quantum.operators import (
    available_hamiltonians,
    hamiltonian_from_adjacency,
)


class TestRegistry:
    def test_known_names(self):
        names = available_hamiltonians()
        assert {"laplacian", "adjacency", "normalized_laplacian"} <= set(names)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown"):
            hamiltonian_from_adjacency(np.eye(2) * 0, "bogus")


class TestLaplacian:
    def test_row_sums_zero(self, petersen_like):
        h = hamiltonian_from_adjacency(petersen_like.adjacency, "laplacian")
        assert np.allclose(h.sum(axis=1), 0.0)

    def test_weighted_degrees(self):
        adjacency = np.asarray([[0.0, 2.5], [2.5, 0.0]])
        h = hamiltonian_from_adjacency(adjacency, "laplacian")
        assert h[0, 0] == pytest.approx(2.5)

    def test_psd(self, mixed_collection):
        for g in mixed_collection:
            values = np.linalg.eigvalsh(
                hamiltonian_from_adjacency(g.adjacency, "laplacian")
            )
            assert values.min() >= -1e-9


class TestOthers:
    def test_adjacency_identity_mapping(self, path4):
        h = hamiltonian_from_adjacency(path4.adjacency, "adjacency")
        assert np.array_equal(h, path4.adjacency)

    def test_normalized_laplacian_spectrum(self, petersen_like):
        h = hamiltonian_from_adjacency(petersen_like.adjacency, "normalized_laplacian")
        values = np.linalg.eigvalsh(h)
        assert values.min() >= -1e-9
        assert values.max() <= 2.0 + 1e-9

    def test_rejects_asymmetric(self):
        with pytest.raises(ValidationError):
            hamiltonian_from_adjacency(np.asarray([[0.0, 1.0], [0.0, 0.0]]), "laplacian")
