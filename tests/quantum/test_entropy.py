"""Tests for entropies (Eq. 6/7 + Rényi/Tsallis generalisations)."""

import numpy as np
import pytest

from repro.errors import QuantumError
from repro.graphs import generators as gen
from repro.quantum.density import graph_density_matrix
from repro.quantum.entropy import (
    graph_von_neumann_entropy,
    renyi_entropy,
    shannon_entropy,
    tsallis_entropy,
    von_neumann_entropy,
)


class TestVonNeumann:
    def test_pure_state_zero(self):
        pure = np.zeros((3, 3))
        pure[0, 0] = 1.0
        assert von_neumann_entropy(pure) == pytest.approx(0.0, abs=1e-12)

    def test_maximally_mixed(self):
        n = 5
        assert von_neumann_entropy(np.eye(n) / n) == pytest.approx(np.log(n))

    def test_bounds_on_graph_states(self, mixed_collection):
        for g in mixed_collection:
            entropy = graph_von_neumann_entropy(g)
            assert -1e-10 <= entropy <= np.log(g.n_vertices) + 1e-10

    def test_invariant_under_permutation(self, petersen_like):
        rho = graph_density_matrix(petersen_like)
        perm = np.random.default_rng(1).permutation(10)
        assert von_neumann_entropy(rho[np.ix_(perm, perm)]) == pytest.approx(
            von_neumann_entropy(rho)
        )

    def test_tolerates_tiny_negative_eigenvalues(self):
        rho = np.diag([1.0 + 1e-12, -1e-13, 0.0])
        assert von_neumann_entropy(rho) == pytest.approx(0.0, abs=1e-9)


class TestShannon:
    def test_uniform(self):
        assert shannon_entropy(np.full(8, 1 / 8)) == pytest.approx(np.log(8))

    def test_point_mass_zero(self):
        assert shannon_entropy(np.asarray([1.0, 0.0])) == 0.0

    def test_unnormalised_input_normalised(self):
        assert shannon_entropy(np.asarray([2.0, 2.0])) == pytest.approx(np.log(2))

    def test_empty_is_zero(self):
        assert shannon_entropy(np.asarray([])) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(QuantumError):
            shannon_entropy(np.asarray([-0.5, 1.5]))

    def test_rejects_matrix(self):
        with pytest.raises(QuantumError):
            shannon_entropy(np.eye(2))


class TestRenyiTsallis:
    def test_renyi_alpha_one_matches_von_neumann(self):
        rho = np.diag([0.6, 0.3, 0.1])
        assert renyi_entropy(rho, 1.0) == pytest.approx(von_neumann_entropy(rho))

    def test_renyi_2_collision_entropy(self):
        rho = np.diag([0.5, 0.5])
        assert renyi_entropy(rho, 2.0) == pytest.approx(np.log(2))

    def test_renyi_decreasing_in_alpha(self):
        rho = np.diag([0.7, 0.2, 0.1])
        assert renyi_entropy(rho, 0.5) >= renyi_entropy(rho, 2.0)

    def test_tsallis_q2_formula(self):
        rho = np.diag([0.5, 0.5])
        assert tsallis_entropy(rho, 2.0) == pytest.approx(0.5)

    def test_tsallis_q1_limit(self):
        rho = np.diag([0.6, 0.4])
        assert tsallis_entropy(rho, 1.0) == pytest.approx(von_neumann_entropy(rho))

    def test_tsallis_pure_state_zero(self):
        assert tsallis_entropy(np.diag([1.0, 0.0]), 2.0) == pytest.approx(0.0)

    def test_rejects_nonpositive_order(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            renyi_entropy(np.eye(2) / 2, 0.0)


class TestGraphEntropy:
    def test_star_has_positive_entropy(self, star5):
        assert graph_von_neumann_entropy(star5) > 0.01

    def test_regular_graph_zero_entropy(self):
        assert graph_von_neumann_entropy(gen.cycle_graph(6)) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_deterministic(self, petersen_like):
        assert graph_von_neumann_entropy(petersen_like) == graph_von_neumann_entropy(
            petersen_like
        )
