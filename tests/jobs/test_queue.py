"""JobQueue: lifecycle, priorities, retries, leases, idempotent keys."""

import threading

import pytest

from repro.errors import CampaignError
from repro.jobs import JOB_STATUSES, JobQueue


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = float(now)

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += float(seconds)


@pytest.fixture()
def queue(tmp_path):
    q = JobQueue(str(tmp_path / "jobs.db"))
    yield q
    q.close()


@pytest.fixture()
def clocked(tmp_path):
    clock = FakeClock()
    q = JobQueue(str(tmp_path / "jobs.db"), clock=clock)
    yield q, clock
    q.close()


def test_submit_claim_complete_roundtrip(queue):
    job = queue.submit("work", {"x": 1})
    assert job.status == "pending"
    assert job.payload == {"x": 1}

    claimed = queue.claim("w1")
    assert claimed.id == job.id
    assert claimed.status == "running"
    assert claimed.worker == "w1"
    assert claimed.attempts == 1

    done = queue.complete(claimed.id, {"answer": 42})
    assert done.status == "done"
    assert done.result == {"answer": 42}
    assert queue.claim("w1") is None


def test_claim_orders_by_priority_then_fifo(queue):
    low = queue.submit("work", priority=0)
    first_high = queue.submit("work", priority=5)
    second_high = queue.submit("work", priority=5)
    order = [queue.claim("w").id for _ in range(3)]
    assert order == [first_high.id, second_high.id, low.id]


def test_claim_filters_kinds(queue):
    queue.submit("alpha")
    beta = queue.submit("beta")
    claimed = queue.claim("w", kinds=("beta",))
    assert claimed.id == beta.id
    assert queue.claim("w", kinds=("gamma",)) is None


def test_submit_same_key_is_idempotent(queue):
    first = queue.submit("work", {"n": 1}, key="cell:a")
    again = queue.submit("work", {"n": 2}, key="cell:a")
    assert again.id == first.id
    assert again.payload == {"n": 1}  # original row untouched
    assert len(queue.list_jobs()) == 1

    queue.claim("w")
    running = queue.submit("work", key="cell:a")
    assert running.status == "running"  # still the same in-flight row


def test_submit_revives_failed_key(queue):
    job = queue.submit("work", key="cell:a")
    queue.claim("w")
    failed = queue.fail(job.id, "boom")
    assert failed.status == "failed"

    revived = queue.submit("work", key="cell:a")
    assert revived.id == job.id
    assert revived.status == "pending"
    assert revived.attempts == 0
    assert revived.error is None


def test_submit_revives_cancelled_key(queue):
    job = queue.submit("work", key="cell:a")
    assert queue.cancel(job.id)
    revived = queue.submit("work", key="cell:a")
    assert revived.status == "pending"


def test_fail_retries_with_exponential_backoff(clocked):
    queue, clock = clocked
    job = queue.submit("work", max_retries=2, backoff=10.0)

    queue.claim("w")
    retried = queue.fail(job.id, "first")
    assert retried.status == "pending"
    assert retried.not_before == pytest.approx(clock.now + 10.0)
    assert queue.claim("w") is None  # inside the backoff window
    clock.advance(10.0)

    queue.claim("w")
    retried = queue.fail(job.id, "second")
    assert retried.not_before == pytest.approx(clock.now + 20.0)
    clock.advance(20.0)

    queue.claim("w")
    dead = queue.fail(job.id, "third")
    assert dead.status == "failed"
    assert dead.error == "third"


def test_requeue_expired_recovers_dead_worker(clocked):
    queue, clock = clocked
    job = queue.submit("work", lease_ttl=30.0, max_retries=0)
    claimed = queue.claim("w1")
    assert claimed.lease_deadline == pytest.approx(clock.now + 30.0)

    assert queue.requeue_expired() == []  # lease still live
    clock.advance(31.0)
    requeued = queue.requeue_expired()
    assert [j.id for j in requeued] == [job.id]
    assert requeued[0].status == "pending"
    # Worker death must not consume the retry budget: the job is
    # claimable and failable exactly as before the crash.
    assert requeued[0].attempts == 0
    assert queue.claim("w2").worker == "w2"


def test_requeue_forces_a_running_job_back(queue):
    job = queue.submit("work")
    queue.claim("w1")
    requeued = queue.requeue(job.id)
    assert requeued.status == "pending"
    assert requeued.attempts == 0
    assert queue.requeue(job.id) is None  # only running rows move


def test_heartbeat_extends_lease_and_detects_loss(clocked):
    queue, clock = clocked
    job = queue.submit("work", lease_ttl=30.0)
    queue.claim("w1")
    clock.advance(20.0)
    assert queue.heartbeat(job.id, "w1")
    assert queue.get(job.id).lease_deadline == pytest.approx(clock.now + 30.0)
    assert not queue.heartbeat(job.id, "other-worker")
    queue.cancel(job.id)
    assert not queue.heartbeat(job.id, "w1")


def test_cancel_only_moves_live_jobs(queue):
    job = queue.submit("work")
    queue.claim("w")
    queue.complete(job.id)
    assert not queue.cancel(job.id)


def test_counts_and_list_jobs(queue):
    queue.submit("work", key="a")
    queue.submit("work", key="b")
    claimed = queue.claim("w")
    queue.complete(claimed.id)
    counts = queue.counts()
    assert set(counts) == set(JOB_STATUSES)
    assert counts["pending"] == 1
    assert counts["done"] == 1
    assert len(queue.list_jobs(kind="work")) == 2
    assert [j.key for j in queue.list_jobs(status="done")] == ["a"]
    with pytest.raises(CampaignError):
        queue.list_jobs(status="nonsense")


def test_by_key_and_get(queue):
    job = queue.submit("work", key="cell:a")
    assert queue.by_key("cell:a").id == job.id
    assert queue.by_key("missing") is None
    with pytest.raises(CampaignError):
        queue.get(9999)


def test_lease_ttl_must_be_positive(queue):
    with pytest.raises(CampaignError):
        queue.submit("work", lease_ttl=0.0)


def test_concurrent_claims_find_distinct_jobs(tmp_path):
    path = str(tmp_path / "jobs.db")
    seed_queue = JobQueue(path)
    for i in range(8):
        seed_queue.submit("work", {"i": i})
    seed_queue.close()

    claimed, lock = [], threading.Lock()

    def worker(name):
        q = JobQueue(path)
        try:
            while True:
                job = q.claim(name)
                if job is None:
                    return
                with lock:
                    claimed.append(job.id)
                q.complete(job.id)
        finally:
            q.close()

    threads = [
        threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sorted(claimed) == sorted(set(claimed))
    assert len(claimed) == 8


def test_queue_survives_reopen(tmp_path):
    path = str(tmp_path / "jobs.db")
    q = JobQueue(path)
    job = q.submit("work", {"x": 1}, key="persisted")
    q.close()

    reopened = JobQueue(path)
    try:
        restored = reopened.by_key("persisted")
        assert restored.id == job.id
        assert restored.payload == {"x": 1}
    finally:
        reopened.close()
