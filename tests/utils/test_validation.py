"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    check_in_range,
    check_positive_int,
    check_probability_vector,
    check_square_matrix,
    check_symmetric_matrix,
)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(7), "x") == 7

    def test_rejects_bool(self):
        with pytest.raises(ValidationError, match="x"):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.5, "x")

    def test_rejects_below_minimum(self):
        with pytest.raises(ValidationError, match=">= 2"):
            check_positive_int(1, "x", minimum=2)

    def test_custom_minimum_zero(self):
        assert check_positive_int(0, "x", minimum=0) == 0


class TestCheckInRange:
    def test_within_range(self):
        assert check_in_range(0.5, "p", low=0.0, high=1.0) == 0.5

    def test_boundaries_inclusive_by_default(self):
        assert check_in_range(0.0, "p", low=0.0, high=1.0) == 0.0
        assert check_in_range(1.0, "p", low=0.0, high=1.0) == 1.0

    def test_exclusive_boundary(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, "p", low=0.0, high=1.0, low_inclusive=False)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="finite"):
            check_in_range(float("nan"), "p")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_in_range(float("inf"), "p")

    def test_rejects_non_number(self):
        with pytest.raises(ValidationError):
            check_in_range("abc", "p")


class TestCheckSquareMatrix:
    def test_accepts_square(self):
        out = check_square_matrix([[1, 2], [3, 4]], "m")
        assert out.shape == (2, 2)

    def test_rejects_rectangular(self):
        with pytest.raises(ValidationError, match="square"):
            check_square_matrix(np.zeros((2, 3)), "m")

    def test_rejects_vector(self):
        with pytest.raises(ValidationError):
            check_square_matrix(np.zeros(4), "m")

    def test_rejects_nan_entries(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_square_matrix([[0.0, np.nan], [np.nan, 0.0]], "m")


class TestCheckSymmetricMatrix:
    def test_accepts_symmetric(self):
        out = check_symmetric_matrix([[1.0, 2.0], [2.0, 1.0]], "m")
        assert np.allclose(out, out.T)

    def test_rejects_asymmetric(self):
        with pytest.raises(ValidationError, match="symmetric"):
            check_symmetric_matrix([[0.0, 1.0], [0.0, 0.0]], "m")

    def test_tolerance_allows_roundoff(self):
        m = np.asarray([[0.0, 1.0], [1.0 + 1e-12, 0.0]])
        check_symmetric_matrix(m, "m")


class TestCheckProbabilityVector:
    def test_accepts_distribution(self):
        out = check_probability_vector([0.25, 0.75], "p")
        assert out.sum() == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="negative"):
            check_probability_vector([-0.1, 1.1], "p")

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            check_probability_vector([0.3, 0.3], "p")

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_probability_vector([], "p")

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError):
            check_probability_vector(np.eye(2), "p")
