"""Tests for repro.utils.caching."""

import pytest

from repro.errors import ValidationError
from repro.utils.caching import KeyedCache, cached_on_instance


class Counter:
    def __init__(self):
        self.calls = 0

    @cached_on_instance
    def expensive(self):
        self.calls += 1
        return self.calls


class TestCachedOnInstance:
    def test_computed_once(self):
        counter = Counter()
        assert counter.expensive() == 1
        assert counter.expensive() == 1
        assert counter.calls == 1

    def test_not_shared_across_instances(self):
        a, b = Counter(), Counter()
        a.expensive()
        assert b.calls == 0
        assert b.expensive() == 1

    def test_rejects_arguments(self):
        counter = Counter()
        with pytest.raises(ValidationError):
            counter.expensive(1)

    def test_caches_none(self):
        class NoneReturner:
            calls = 0

            @cached_on_instance
            def get(self):
                type(self).calls += 1
                return None

        obj = NoneReturner()
        assert obj.get() is None
        assert obj.get() is None
        assert NoneReturner.calls == 1


class TestKeyedCache:
    def test_get_or_compute(self):
        cache = KeyedCache()
        assert cache.get_or_compute("k", lambda: 5) == 5
        assert cache.get_or_compute("k", lambda: 99) == 5

    def test_len_and_clear(self):
        cache = KeyedCache()
        cache.get_or_compute(1, lambda: "a")
        cache.get_or_compute(2, lambda: "b")
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_get_and_put(self):
        cache = KeyedCache()
        assert cache.get("missing") is None
        assert cache.get("missing", 7) == 7
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert "k" in cache and "missing" not in cache

    def test_unbounded_by_default(self):
        cache = KeyedCache()
        for i in range(1000):
            cache.put(i, i)
        assert len(cache) == 1000


class TestKeyedCacheEviction:
    def test_fifo_eviction_bounds_size(self):
        cache = KeyedCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a", the oldest insertion
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("b") == 2 and cache.get("c") == 3

    def test_eviction_order_is_first_insertion(self):
        cache = KeyedCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite keeps "a" oldest (FIFO, not LRU)
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("b") == 2

    def test_get_or_compute_respects_bound(self):
        cache = KeyedCache(max_entries=3)
        for i in range(10):
            cache.get_or_compute(i, lambda i=i: i * i)
        assert len(cache) == 3
        assert cache.get(9) == 81

    def test_capacity_one(self):
        cache = KeyedCache(max_entries=1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert len(cache) == 1
        assert cache.get("b") == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            KeyedCache(max_entries=0)
        with pytest.raises(ValueError):
            KeyedCache(max_entries=-3)
