"""Tests for repro.utils.caching."""

import pytest

from repro.utils.caching import KeyedCache, cached_on_instance


class Counter:
    def __init__(self):
        self.calls = 0

    @cached_on_instance
    def expensive(self):
        self.calls += 1
        return self.calls


class TestCachedOnInstance:
    def test_computed_once(self):
        counter = Counter()
        assert counter.expensive() == 1
        assert counter.expensive() == 1
        assert counter.calls == 1

    def test_not_shared_across_instances(self):
        a, b = Counter(), Counter()
        a.expensive()
        assert b.calls == 0
        assert b.expensive() == 1

    def test_rejects_arguments(self):
        counter = Counter()
        with pytest.raises(TypeError):
            counter.expensive(1)

    def test_caches_none(self):
        class NoneReturner:
            calls = 0

            @cached_on_instance
            def get(self):
                type(self).calls += 1
                return None

        obj = NoneReturner()
        assert obj.get() is None
        assert obj.get() is None
        assert NoneReturner.calls == 1


class TestKeyedCache:
    def test_get_or_compute(self):
        cache = KeyedCache()
        assert cache.get_or_compute("k", lambda: 5) == 5
        assert cache.get_or_compute("k", lambda: 99) == 5

    def test_len_and_clear(self):
        cache = KeyedCache()
        cache.get_or_compute(1, lambda: "a")
        cache.get_or_compute(2, lambda: "b")
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
