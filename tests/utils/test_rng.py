"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.rng import as_rng, child_rngs, shuffled, spawn_seed


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = as_rng(42).integers(0, 1000, size=5)
        b = as_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).integers(0, 10**9)
        b = as_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            as_rng(True)

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            as_rng("seed")


class TestSpawnSeed:
    def test_in_range(self):
        seed = spawn_seed(as_rng(0))
        assert 0 <= seed < 2**63

    def test_deterministic(self):
        assert spawn_seed(as_rng(5)) == spawn_seed(as_rng(5))


class TestChildRngs:
    def test_count(self):
        assert len(child_rngs(0, 4)) == 4

    def test_children_independent_of_count(self):
        three = child_rngs(7, 3)
        five = child_rngs(7, 5)
        for a, b in zip(three, five):
            assert a.integers(0, 10**9) == b.integers(0, 10**9)

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            child_rngs(0, -1)


class TestShuffled:
    def test_is_permutation(self):
        items = list(range(20))
        out = shuffled(items, 0)
        assert sorted(out) == items

    def test_deterministic(self):
        assert shuffled(range(10), 3) == shuffled(range(10), 3)

    def test_changes_order(self):
        assert shuffled(range(50), 1) != list(range(50))
