"""Tests for repro.utils.linalg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.linalg import (
    eigh_sorted,
    group_degenerate_eigenvalues,
    is_positive_semidefinite,
    is_symmetric,
    normalized_trace_one,
    project_to_psd,
    safe_xlogx,
)


def random_symmetric(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    m = rng.normal(size=(n, n))
    return (m + m.T) / 2


class TestEighSorted:
    def test_ascending_order(self):
        values, _ = eigh_sorted(random_symmetric(6, 0))
        assert np.all(np.diff(values) >= 0)

    def test_reconstruction(self):
        m = random_symmetric(5, 1)
        values, vectors = eigh_sorted(m)
        assert np.allclose((vectors * values) @ vectors.T, m)

    def test_empty_matrix(self):
        values, vectors = eigh_sorted(np.zeros((0, 0)))
        assert values.size == 0 and vectors.size == 0


class TestGroupDegenerate:
    def test_distinct_values_single_groups(self):
        groups = group_degenerate_eigenvalues(np.asarray([0.0, 1.0, 2.0]))
        assert [g.tolist() for g in groups] == [[0], [1], [2]]

    def test_degenerate_grouped(self):
        groups = group_degenerate_eigenvalues(np.asarray([1.0, 1.0 + 1e-12, 2.0]))
        assert [g.tolist() for g in groups] == [[0, 1], [2]]

    def test_all_equal(self):
        groups = group_degenerate_eigenvalues(np.ones(5))
        assert len(groups) == 1 and groups[0].size == 5

    def test_empty(self):
        assert group_degenerate_eigenvalues(np.empty(0)) == []

    def test_partition_is_complete(self):
        values = np.sort(np.random.default_rng(2).normal(size=20))
        groups = group_degenerate_eigenvalues(values)
        flattened = np.concatenate(groups)
        assert np.array_equal(flattened, np.arange(20))


class TestPsdHelpers:
    def test_identity_is_psd(self):
        assert is_positive_semidefinite(np.eye(4))

    def test_negative_definite_is_not(self):
        assert not is_positive_semidefinite(-np.eye(3))

    def test_projection_makes_psd(self):
        m = random_symmetric(6, 3)
        assert is_positive_semidefinite(project_to_psd(m))

    def test_projection_fixes_small_negatives_only(self):
        m = np.diag([1.0, -0.5, 2.0])
        projected = project_to_psd(m)
        assert np.allclose(np.sort(np.diag(projected)), [0.0, 1.0, 2.0])

    def test_psd_input_unchanged(self):
        m = np.diag([0.5, 1.0, 2.0])
        assert np.allclose(project_to_psd(m), m)

    def test_is_symmetric_rejects_rectangular(self):
        assert not is_symmetric(np.zeros((2, 3)))

    def test_is_symmetric_accepts(self):
        assert is_symmetric(random_symmetric(4, 4))


class TestSafeXlogx:
    def test_zero_maps_to_zero(self):
        assert safe_xlogx(np.asarray([0.0]))[0] == 0.0

    def test_small_negative_clipped(self):
        assert safe_xlogx(np.asarray([-1e-15]))[0] == 0.0

    def test_matches_xlogx(self):
        x = np.asarray([0.5, 1.0, 2.0])
        assert np.allclose(safe_xlogx(x), x * np.log(x))


class TestNormalizedTraceOne:
    def test_scales_to_unit_trace(self):
        out = normalized_trace_one(np.eye(4) * 3.0)
        assert np.trace(out) == pytest.approx(1.0)

    def test_zero_matrix_fallback_uniform(self):
        out = normalized_trace_one(np.zeros((3, 3)))
        assert np.allclose(out, np.eye(3) / 3)


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        np.float64,
        (4, 4),
        elements=st.floats(-5, 5, allow_nan=False, allow_infinity=False),
    )
)
def test_projection_is_idempotent(matrix):
    sym = (matrix + matrix.T) / 2
    once = project_to_psd(sym)
    twice = project_to_psd(once)
    assert np.allclose(once, twice, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        np.float64,
        (5,),
        elements=st.floats(0, 10, allow_nan=False, allow_infinity=False),
    )
)
def test_group_degenerate_covers_all_indices(values):
    sorted_values = np.sort(values)
    groups = group_degenerate_eigenvalues(sorted_values)
    assert sorted(np.concatenate(groups).tolist()) == list(range(5))
