"""Tests for metrics and CV aggregation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.ml.metrics import (
    CVResult,
    accuracy,
    confusion_matrix,
    summarize_repeats,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([1, 2, 3], [1, 2, 3]) == 1.0

    def test_half(self):
        assert accuracy([1, 1, 2, 2], [1, 2, 2, 1]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            accuracy([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            accuracy([], [])


class TestConfusion:
    def test_diagonal_for_perfect(self):
        m = confusion_matrix([0, 1, 1], [0, 1, 1])
        assert np.array_equal(m, [[1, 0], [0, 2]])

    def test_off_diagonal(self):
        m = confusion_matrix([0, 0, 1], [1, 0, 1])
        assert m[0, 1] == 1

    def test_explicit_classes(self):
        m = confusion_matrix([0], [0], classes=[0, 1, 2])
        assert m.shape == (3, 3)

    def test_total_count(self):
        y_true = np.random.default_rng(0).integers(0, 3, 30)
        y_pred = np.random.default_rng(1).integers(0, 3, 30)
        assert confusion_matrix(y_true, y_pred).sum() == 30

    def test_label_outside_explicit_classes_named_error(self):
        """A prediction outside `classes` must raise a named error listing
        the offenders, not a raw KeyError from the index lookup."""
        with pytest.raises(ValidationError, match=r"\[2\]"):
            confusion_matrix([0, 1], [0, 2], classes=[0, 1])

    def test_true_label_outside_explicit_classes(self):
        with pytest.raises(ValidationError, match=r"\[3\]"):
            confusion_matrix([0, 3], [0, 1], classes=[0, 1])

    def test_all_offending_labels_listed(self):
        with pytest.raises(ValidationError, match=r"\[2, 5\]"):
            confusion_matrix([0, 5], [2, 0], classes=[0, 1])

    def test_length_mismatch_rejected(self):
        """Mismatched inputs must raise, not silently truncate via zip."""
        with pytest.raises(ValidationError, match="shape mismatch"):
            confusion_matrix([0, 1, 1], [0, 1])


class TestSummarize:
    def test_mean_and_stderr(self):
        result = summarize_repeats([0.8, 0.9], best_c=1.0)
        assert result.mean_accuracy == pytest.approx(0.85)
        expected_se = np.std([0.8, 0.9], ddof=1) / np.sqrt(2)
        assert result.standard_error == pytest.approx(expected_se)

    def test_single_repeat_zero_stderr(self):
        result = summarize_repeats([0.75], best_c=10.0)
        assert result.standard_error == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            summarize_repeats([], best_c=1.0)

    def test_str_format(self):
        result = CVResult(0.8567, 0.0123, (0.85, 0.86), 1.0)
        assert str(result) == "85.67 ± 1.23"
