"""Tests for the one-vs-one multiclass wrapper."""

import numpy as np
import pytest

from repro.errors import NotFittedError, ValidationError
from repro.ml.multiclass import KernelSVC


def blobs_kernel(n_classes=3, per=20, seed=0, spread=0.5):
    rng = np.random.default_rng(seed)
    centers = [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0), (4.0, 4.0)][:n_classes]
    x = np.vstack([rng.normal(c, spread, (per, 2)) for c in centers])
    y = np.repeat(np.arange(n_classes), per)
    return x @ x.T, y, x


class TestMulticlass:
    def test_three_class_training_accuracy(self):
        kernel, y, _ = blobs_kernel()
        model = KernelSVC(c=10.0).fit(kernel, y)
        assert model.score(kernel, y) >= 0.95

    def test_four_classes(self):
        kernel, y, _ = blobs_kernel(n_classes=4, seed=1)
        model = KernelSVC(c=10.0).fit(kernel, y)
        assert model.score(kernel, y) >= 0.9

    def test_binary_delegation(self):
        kernel, y, _ = blobs_kernel(n_classes=2, seed=2)
        model = KernelSVC(c=1.0).fit(kernel, y)
        assert model.score(kernel, y) >= 0.95

    def test_nonconsecutive_class_labels(self):
        kernel, y, _ = blobs_kernel(seed=3)
        remapped = np.asarray([10, 20, 77])[y]
        model = KernelSVC(c=10.0).fit(kernel, remapped)
        assert set(model.predict(kernel)) <= {10, 20, 77}

    def test_deterministic_predictions(self):
        kernel, y, _ = blobs_kernel(seed=4)
        a = KernelSVC(c=1.0).fit(kernel, y).predict(kernel)
        b = KernelSVC(c=1.0).fit(kernel, y).predict(kernel)
        assert np.array_equal(a, b)

    def test_holdout_generalisation(self):
        rng = np.random.default_rng(5)
        centers = [(0, 0), (4, 0), (0, 4)]
        x_train = np.vstack([rng.normal(c, 0.5, (15, 2)) for c in centers])
        y_train = np.repeat([0, 1, 2], 15)
        x_test = np.vstack([rng.normal(c, 0.5, (5, 2)) for c in centers])
        y_test = np.repeat([0, 1, 2], 5)
        model = KernelSVC(c=10.0).fit(x_train @ x_train.T, y_train)
        predictions = model.predict(x_test @ x_train.T)
        assert np.mean(predictions == y_test) >= 0.85


class TestValidation:
    def test_rejects_single_class(self):
        with pytest.raises(ValidationError):
            KernelSVC().fit(np.eye(3), np.zeros(3))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValidationError):
            KernelSVC().fit(np.eye(3), np.asarray([0, 1]))

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            KernelSVC().predict(np.zeros((2, 3)))

    def test_predict_wrong_width(self):
        kernel, y, _ = blobs_kernel(seed=6)
        model = KernelSVC().fit(kernel, y)
        with pytest.raises(ValidationError):
            model.predict(np.zeros((2, 7)))


class TestEmptyBatch:
    def test_empty_batch_predicts_empty(self):
        """An empty serving batch returns an empty label array instead of
        whatever np.ptp does on zero-size margins."""
        kernel, y, _ = blobs_kernel(seed=7)
        model = KernelSVC(c=1.0).fit(kernel, y)
        predictions = model.predict(np.zeros((0, y.size)))
        assert predictions.shape == (0,)
        assert predictions.dtype == model.classes_.dtype

    def test_empty_batch_vote_margins_shapes(self):
        kernel, y, _ = blobs_kernel(seed=8)
        model = KernelSVC(c=1.0).fit(kernel, y)
        votes, margins = model.vote_margins(np.zeros((0, y.size)))
        assert votes.shape == (0, model.classes_.size)
        assert margins.shape == (0, model.classes_.size)


class TestVoteMargins:
    def test_vote_counts_sum_to_machine_count(self):
        kernel, y, _ = blobs_kernel(n_classes=3, seed=9)
        model = KernelSVC(c=10.0).fit(kernel, y)
        votes, _ = model.vote_margins(kernel)
        assert np.all(votes.sum(axis=1) == 3)  # K(K-1)/2 machines

    def test_margins_are_zero_sum_across_classes(self):
        kernel, y, _ = blobs_kernel(n_classes=3, seed=10)
        model = KernelSVC(c=10.0).fit(kernel, y)
        _, margins = model.vote_margins(kernel)
        assert np.allclose(margins.sum(axis=1), 0.0, atol=1e-9)

    def test_predicted_class_has_max_votes(self):
        kernel, y, _ = blobs_kernel(n_classes=3, seed=11)
        model = KernelSVC(c=10.0).fit(kernel, y)
        votes, _ = model.vote_margins(kernel)
        predictions = model.predict(kernel)
        class_index = {c: i for i, c in enumerate(model.classes_)}
        for t, label in enumerate(predictions):
            assert votes[t, class_index[label]] == votes[t].max()
