"""Tests for kernel PCA on precomputed Gram matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotFittedError, ValidationError
from repro.ml.kpca import KernelPCA, kernel_embedding


def _points(n=20, dim=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, dim))


class TestFitTransform:
    def test_embedding_reproduces_gram_for_full_rank(self):
        """With all components kept, the embedding's inner products must
        reproduce the *centered* Gram matrix."""
        x = _points(n=12, dim=4, seed=1)
        gram = x @ x.T
        embedding = KernelPCA(n_components=12).fit_transform(gram)
        centered = gram - gram.mean(0) - gram.mean(1)[:, None] + gram.mean()
        assert np.allclose(embedding @ embedding.T, centered, atol=1e-8)

    def test_matches_linear_pca_distances(self):
        """Kernel PCA on a linear kernel = PCA: pairwise distances in the
        embedding equal centered-data distances."""
        x = _points(n=15, dim=3, seed=2)
        gram = x @ x.T
        embedding = KernelPCA(n_components=3).fit_transform(gram)
        x_centered = x - x.mean(axis=0)

        def pdist(points):
            diff = points[:, None, :] - points[None, :, :]
            return np.sqrt((diff**2).sum(-1))

        assert np.allclose(pdist(embedding), pdist(x_centered), atol=1e-8)

    def test_eigenvalues_sorted_and_nonnegative(self):
        gram = _points(n=10, seed=3) @ _points(n=10, seed=3).T
        pca = KernelPCA(n_components=10).fit(gram)
        values = pca.eigenvalues_
        assert np.all(values >= 0)
        assert np.all(np.diff(values) <= 1e-12)

    def test_explained_ratio_sums_to_at_most_one(self):
        gram = _points(n=10, dim=2, seed=4) @ _points(n=10, dim=2, seed=4).T
        pca = KernelPCA(n_components=5).fit(gram)
        assert 0.0 < pca.explained_ratio_.sum() <= 1.0 + 1e-12
        # rank 2 data: the first two components explain everything
        assert pca.explained_ratio_[:2].sum() == pytest.approx(1.0)

    def test_rank_deficient_components_are_zero(self):
        x = _points(n=8, dim=2, seed=5)  # rank-2 feature space
        embedding = KernelPCA(n_components=6).fit_transform(x @ x.T)
        assert np.allclose(embedding[:, 2:], 0.0, atol=1e-8)

    def test_components_capped_at_n(self):
        gram = np.eye(4)
        embedding = KernelPCA(n_components=10).fit_transform(gram)
        assert embedding.shape == (4, 4)


class TestTransform:
    def test_train_rows_transform_to_training_embedding(self):
        x = _points(n=10, dim=3, seed=6)
        gram = x @ x.T
        pca = KernelPCA(n_components=3)
        training_embedding = pca.fit_transform(gram)
        projected = pca.transform(gram)
        assert np.allclose(projected, training_embedding, atol=1e-8)

    def test_out_of_sample_matches_linear_projection(self):
        x_train = _points(n=12, dim=3, seed=7)
        x_test = _points(n=4, dim=3, seed=8)
        pca = KernelPCA(n_components=3)
        pca.fit(x_train @ x_train.T)
        projected = pca.transform(x_test @ x_train.T)
        # Distances between projected test points must match distances of
        # the centered test points (projection onto the full PC basis).
        centered_test = x_test - x_train.mean(axis=0)
        diff_p = projected[:, None] - projected[None, :]
        diff_x = centered_test[:, None] - centered_test[None, :]
        assert np.allclose(
            np.linalg.norm(diff_p, axis=-1),
            np.linalg.norm(diff_x, axis=-1),
            atol=1e-8,
        )

    def test_transform_before_fit_rejected(self):
        with pytest.raises(NotFittedError):
            KernelPCA().transform(np.zeros((1, 3)))

    def test_wrong_width_rejected(self):
        pca = KernelPCA().fit(np.eye(5))
        with pytest.raises(ValidationError):
            pca.transform(np.zeros((2, 4)))

    def test_non_square_gram_rejected(self):
        with pytest.raises(ValidationError):
            KernelPCA().fit(np.zeros((3, 5)))


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=20),
        dim=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_embedding_is_centered(self, n, dim, seed):
        x = _points(n=n, dim=dim, seed=seed)
        embedding = kernel_embedding(x @ x.T, n_components=min(n, dim))
        assert np.allclose(embedding.mean(axis=0), 0.0, atol=1e-7)

    def test_helper_matches_class(self):
        gram = _points(n=9, seed=9) @ _points(n=9, seed=9).T
        a = kernel_embedding(gram, n_components=2)
        b = KernelPCA(n_components=2).fit_transform(gram)
        assert np.allclose(a, b)
