"""The ml layer over tile plans: streaming conditioner statistics,
out-of-core cross-validation, and tile-resumable Nyström fits."""

import numpy as np
import pytest

from repro.engine import BatchedEngine, MemmapSink
from repro.errors import ValidationError
from repro.graphs import generators as gen
from repro.kernels import QJSKUnaligned
from repro.ml import (
    GramConditioner,
    NystromApproximation,
    condition_gram,
    cross_validate_graph_kernel,
)
from repro.store import ArtifactStore
from repro.utils.rng import as_rng, spawn_seed


@pytest.fixture(scope="module")
def collection():
    rng = as_rng(5)
    graphs = []
    labels = []
    for i in range(10):
        graphs.append(gen.random_tree(8, seed=spawn_seed(rng)))
        labels.append(0)
        graphs.append(
            gen.erdos_renyi(9, 0.45, seed=spawn_seed(rng)).largest_component()
        )
        labels.append(1)
    return graphs, np.asarray(labels)


def _memmap_gram(kernel, graphs, tmp_path, **gram_kwargs):
    sink = MemmapSink(str(tmp_path / "gram.npy"))
    return kernel.gram(
        graphs, engine=BatchedEngine(tile_size=3), sink=sink, **gram_kwargs
    )


class TestStreamingConditioner:
    def test_memmap_fit_matches_dense_fit(self, collection, tmp_path):
        graphs, _ = collection
        kernel = QJSKUnaligned()
        dense = kernel.gram(graphs, normalize=True)
        mapped = _memmap_gram(kernel, graphs, tmp_path, normalize=True)
        assert isinstance(mapped, np.memmap)
        streamed = GramConditioner().fit(mapped)
        reference = GramConditioner().fit(dense)
        assert streamed.n_train_ == reference.n_train_
        assert np.allclose(
            streamed.column_means_, reference.column_means_, atol=1e-13
        )
        assert abs(streamed.grand_mean_ - reference.grand_mean_) < 1e-13
        assert abs(streamed.scale_ - reference.scale_) < 1e-13

    def test_streaming_fit_respects_small_stripes(self, collection, tmp_path):
        graphs, _ = collection
        kernel = QJSKUnaligned()
        mapped = _memmap_gram(kernel, graphs, tmp_path)
        a = GramConditioner()._fit_streaming(mapped, stripe_rows=3)
        b = GramConditioner().fit(np.asarray(mapped, dtype=float))
        assert np.allclose(a.column_means_, b.column_means_, atol=1e-13)
        assert abs(a.scale_ - b.scale_) < 1e-13

    def test_transform_inplace_tiled_matches_transform(
        self, collection, tmp_path
    ):
        graphs, _ = collection
        kernel = QJSKUnaligned()
        dense = kernel.gram(graphs, normalize=True)
        mapped = _memmap_gram(kernel, graphs, tmp_path, normalize=True)
        expected = condition_gram(dense)
        conditioner = GramConditioner().fit(mapped)
        conditioned = conditioner.transform_inplace_tiled(mapped, tile_size=3)
        assert isinstance(conditioned, np.memmap)
        assert np.allclose(np.asarray(conditioned), expected, atol=1e-12)

    def test_transform_inplace_rejects_foreign_shapes(self, collection):
        graphs, _ = collection
        gram = QJSKUnaligned().gram(graphs)
        conditioner = GramConditioner().fit(gram)
        with pytest.raises(ValidationError):
            conditioner.transform_inplace_tiled(gram[:5, :5])


class TestOutOfCoreCV:
    def test_cv_over_memmap_sink_matches_dense(self, collection, tmp_path):
        graphs, labels = collection
        kernel = QJSKUnaligned()
        reference = cross_validate_graph_kernel(
            kernel, graphs, labels, n_folds=4, n_repeats=2, seed=3
        )
        sink = MemmapSink(str(tmp_path / "cv.npy"))
        out_of_core = cross_validate_graph_kernel(
            kernel, graphs, labels, n_folds=4, n_repeats=2, seed=3, sink=sink
        )
        assert out_of_core.mean_accuracy == reference.mean_accuracy
        assert out_of_core.best_c == reference.best_c

    def test_sink_and_store_are_exclusive(self, collection, tmp_path):
        graphs, labels = collection
        with pytest.raises(ValidationError, match="not both"):
            cross_validate_graph_kernel(
                QJSKUnaligned(),
                graphs,
                labels,
                sink=MemmapSink(str(tmp_path / "x.npy")),
                store=ArtifactStore(str(tmp_path / "store")),
            )

    def test_store_miss_is_tile_checkpointed(self, collection, tmp_path):
        """A CV run with a store leaves per-tile artifacts behind (the
        kill-resume substrate), and reruns reproduce the result."""
        graphs, labels = collection
        store = ArtifactStore(str(tmp_path / "store"))
        kernel = QJSKUnaligned()
        first = cross_validate_graph_kernel(
            kernel, graphs, labels, n_folds=4, n_repeats=1, seed=3, store=store
        )
        from repro.store import tile_keyer_for

        keyer = tile_keyer_for(kernel, graphs)
        tile = BatchedEngine().resolved_tile_size()
        first_tile = (0, min(tile, len(graphs)))
        assert store.has(
            "gram-tile", keyer.key(first_tile, first_tile, diagonal=True)
        )
        again = cross_validate_graph_kernel(
            kernel, graphs, labels, n_folds=4, n_repeats=1, seed=3, store=store
        )
        assert again.mean_accuracy == first.mean_accuracy


class TestNystromTileCheckpoint:
    def test_killed_fit_resumes_from_tiles(self, collection, tmp_path):
        """Drop the whole-rectangle cache after a fit: the refit restores
        the N·m stage tile by tile instead of recomputing it."""
        graphs, _ = collection
        store = ArtifactStore(str(tmp_path / "store"))
        engine = BatchedEngine(tile_size=4)

        # The counter lives outside the instance so both runs share one
        # class (tile keys hash the kernel class + public configuration).
        calls = {"n": 0}
        original = QJSKUnaligned.block_values

        class _Counting(QJSKUnaligned):
            def block_values(self, a, b):
                calls["n"] += 1
                return original(self, a, b)

            symmetric_block_values = block_values

        kernel = _Counting()
        fitted = NystromApproximation(
            kernel, n_landmarks=5, seed=0, engine=engine, store=store
        ).fit(graphs)
        assert calls["n"] > 0

        # Simulate losing the whole-rect artifact (a kill between the
        # tile stream and the rectangle commit): only tiles survive.
        from repro.graphs.hashing import collection_digest
        from repro.store import artifact_key

        key = artifact_key(
            "nystrom-cross",
            kernel.fingerprint(),
            collection_digest(graphs),
            ",".join(str(int(i)) for i in fitted.landmark_indices_),
        )
        store.discard("nystrom", key)

        calls["n"] = 0
        refit = NystromApproximation(
            _Counting(), n_landmarks=5, seed=0, engine=engine, store=store
        ).fit(graphs)
        assert calls["n"] == 0  # every tile restored, nothing recomputed
        assert np.allclose(
            refit.embedding_, fitted.embedding_, atol=1e-12, rtol=0.0
        )
