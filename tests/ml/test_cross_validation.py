"""Tests for the repeated stratified 10-fold CV protocol."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.ml.cross_validation import (
    cross_validate_graph_kernel,
    cross_validate_kernel,
    select_c,
    stratified_k_fold,
)


def separable_gram(per=30, seed=0):
    rng = np.random.default_rng(seed)
    x = np.vstack(
        [rng.normal(-2.0, 0.5, (per, 3)), rng.normal(2.0, 0.5, (per, 3))]
    )
    y = np.asarray([0] * per + [1] * per)
    return x @ x.T, y


class TestStratifiedKFold:
    def test_partition(self):
        y = np.repeat([0, 1], 25)
        splits = stratified_k_fold(y, 5, seed=0)
        all_test = np.concatenate([test for _, test in splits])
        assert sorted(all_test.tolist()) == list(range(50))

    def test_train_test_disjoint(self):
        y = np.repeat([0, 1, 2], 10)
        for train, test in stratified_k_fold(y, 5, seed=1):
            assert set(train) & set(test) == set()

    def test_stratification(self):
        y = np.repeat([0, 1], 20)
        for _, test in stratified_k_fold(y, 4, seed=2):
            labels = y[test]
            assert np.sum(labels == 0) == np.sum(labels == 1)

    def test_deterministic(self):
        y = np.repeat([0, 1], 15)
        a = stratified_k_fold(y, 3, seed=3)
        b = stratified_k_fold(y, 3, seed=3)
        for (ta, sa), (tb, sb) in zip(a, b):
            assert np.array_equal(ta, tb) and np.array_equal(sa, sb)

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValidationError):
            stratified_k_fold(np.asarray([0, 1]), 5)

    def test_small_class_fewer_folds(self):
        y = np.asarray([0] * 20 + [1] * 2)
        splits = stratified_k_fold(y, 5, seed=4)
        assert len(splits) == 5


class TestSelectC:
    def test_returns_grid_value(self):
        gram, y = separable_gram()
        train = np.arange(y.size)
        c = select_c(gram, y, train, c_grid=(0.1, 1.0, 10.0), seed=0)
        assert c in (0.1, 1.0, 10.0)

    def test_tiny_training_set_falls_back(self):
        gram, y = separable_gram(per=3)
        c = select_c(gram, y, np.arange(4), c_grid=(0.1, 1.0, 10.0), seed=0)
        assert c == 1.0  # grid midpoint fallback


class TestCrossValidate:
    def test_high_accuracy_on_separable(self):
        gram, y = separable_gram(seed=5)
        result = cross_validate_kernel(gram, y, n_folds=5, n_repeats=2, seed=0)
        assert result.mean_accuracy >= 0.95

    def test_chance_level_on_random_labels(self):
        rng = np.random.default_rng(6)
        gram, _ = separable_gram(seed=6)
        y = rng.integers(0, 2, size=gram.shape[0])
        result = cross_validate_kernel(gram, y, n_folds=5, n_repeats=2, seed=0)
        assert result.mean_accuracy < 0.75

    def test_result_fields(self):
        gram, y = separable_gram(seed=7)
        result = cross_validate_kernel(gram, y, n_folds=5, n_repeats=3, seed=0)
        assert len(result.per_repeat) == 3
        assert result.standard_error >= 0.0
        assert "±" in str(result)

    def test_deterministic(self):
        gram, y = separable_gram(seed=8)
        a = cross_validate_kernel(gram, y, n_folds=5, n_repeats=2, seed=4)
        b = cross_validate_kernel(gram, y, n_folds=5, n_repeats=2, seed=4)
        assert a.mean_accuracy == b.mean_accuracy

    def test_select_per_fold_mode(self):
        gram, y = separable_gram(seed=9)
        result = cross_validate_kernel(
            gram, y, n_folds=4, n_repeats=1, select_per_fold=True, seed=0
        )
        assert result.mean_accuracy >= 0.9

    def test_rejects_mismatched_inputs(self):
        with pytest.raises(ValidationError):
            cross_validate_kernel(np.eye(4), np.asarray([0, 1]))


class TestGraphKernelEntryPoint:
    """The end-to-end graphs -> Gram -> CV wrapper (engine-aware)."""

    def _collection(self):
        from repro.graphs import generators as gen

        graphs = [gen.cycle_graph(5 + i % 3) for i in range(6)] + [
            gen.star_graph(5 + i % 3) for i in range(6)
        ]
        labels = np.asarray([0] * 6 + [1] * 6)
        return graphs, labels

    def test_runs_end_to_end(self):
        from repro.kernels import WeisfeilerLehmanKernel

        graphs, labels = self._collection()
        result = cross_validate_graph_kernel(
            WeisfeilerLehmanKernel(2), graphs, labels,
            n_folds=3, n_repeats=2, seed=0,
        )
        assert 0.0 <= result.mean_accuracy <= 1.0

    def test_engine_choice_does_not_change_result(self):
        from repro.kernels import QJSKUnaligned

        graphs, labels = self._collection()
        kwargs = dict(
            ensure_psd=True, n_folds=3, n_repeats=2, seed=0
        )
        serial = cross_validate_graph_kernel(
            QJSKUnaligned(), graphs, labels, engine="serial", **kwargs
        )
        batched = cross_validate_graph_kernel(
            QJSKUnaligned(), graphs, labels, engine="batched", **kwargs
        )
        assert serial.mean_accuracy == pytest.approx(batched.mean_accuracy)
