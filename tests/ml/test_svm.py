"""Tests for the SMO binary SVM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotFittedError, ValidationError
from repro.ml.svm import BinarySVM


def linear_problem(n=60, gap=2.0, seed=0):
    rng = np.random.default_rng(seed)
    half = n // 2
    x = np.vstack(
        [rng.normal(-gap / 2, 0.6, (half, 4)), rng.normal(gap / 2, 0.6, (half, 4))]
    )
    y = np.asarray([-1.0] * half + [1.0] * half)
    return x @ x.T, y, x


class TestFit:
    def test_separable_problem_high_accuracy(self):
        kernel, y, _ = linear_problem(gap=4.0)
        svm = BinarySVM(c=1.0).fit(kernel, y)
        accuracy = np.mean(svm.predict(kernel) == y)
        assert accuracy >= 0.95

    def test_box_constraint_respected(self):
        kernel, y, _ = linear_problem(gap=0.5, seed=1)  # overlapping classes
        c = 0.7
        svm = BinarySVM(c=c).fit(kernel, y)
        alphas = np.abs(svm.dual_coef_)
        assert np.all(alphas <= c + 1e-9)

    def test_equality_constraint_respected(self):
        kernel, y, _ = linear_problem(seed=2)
        svm = BinarySVM(c=1.0).fit(kernel, y)
        assert float(svm.dual_coef_.sum()) == pytest.approx(0.0, abs=1e-6)

    def test_support_vectors_subset(self):
        kernel, y, _ = linear_problem(gap=4.0, seed=3)
        svm = BinarySVM(c=10.0).fit(kernel, y)
        # Widely separated data needs few support vectors.
        assert 0 < svm.support_.size < y.size

    def test_deterministic(self):
        kernel, y, _ = linear_problem(seed=4)
        a = BinarySVM(c=1.0).fit(kernel, y)
        b = BinarySVM(c=1.0).fit(kernel, y)
        assert np.allclose(a.dual_coef_, b.dual_coef_)
        assert a.bias_ == pytest.approx(b.bias_)

    def test_matches_margin_property(self):
        """Free support vectors must sit near the +-1 margin."""
        kernel, y, _ = linear_problem(gap=3.0, seed=5)
        c = 1.0
        svm = BinarySVM(c=c).fit(kernel, y)
        decision = svm.decision_function(kernel)
        alphas = np.abs(svm.dual_coef_)
        free = (alphas > 1e-6) & (alphas < c - 1e-6)
        if free.any():
            margins = y[free] * decision[free]
            assert np.allclose(margins, 1.0, atol=5e-2)

    def test_iteration_cap_warns(self):
        kernel, y, _ = linear_problem(seed=6)
        from repro.errors import ConvergenceWarning

        with pytest.warns(ConvergenceWarning):
            BinarySVM(c=1.0, max_iter=2).fit(kernel, y)


class TestValidation:
    def test_rejects_bad_labels(self):
        with pytest.raises(ValidationError, match="-1 or \\+1"):
            BinarySVM().fit(np.eye(3), np.asarray([0.0, 1.0, 2.0]))

    def test_rejects_single_class(self):
        with pytest.raises(ValidationError, match="both classes"):
            BinarySVM().fit(np.eye(3), np.ones(3))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValidationError):
            BinarySVM().fit(np.eye(3), np.asarray([-1.0, 1.0]))

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            BinarySVM().predict(np.zeros((1, 3)))

    def test_predict_wrong_width(self):
        kernel, y, _ = linear_problem()
        svm = BinarySVM().fit(kernel, y)
        with pytest.raises(ValidationError):
            svm.predict(np.zeros((2, 5)))

    def test_rejects_nonpositive_c(self):
        with pytest.raises(ValidationError):
            BinarySVM(c=0.0)


class TestKKTOptimality:
    """Property-based checks of the SMO solution's KKT conditions.

    At the optimum of  min 1/2 aᵀQa - eᵀa  s.t. yᵀa = 0, 0 <= a <= C:

    * feasibility: both constraints hold;
    * stationarity/complementarity (LIBSVM form): with G = Qa - e,
      max over "up" indices of -y_i G_i  minus  min over "low" indices
      of -y_i G_i  is below the stopping tolerance.
    """

    @staticmethod
    def _random_problem(n, seed, rank):
        rng = np.random.default_rng(seed)
        factors = rng.normal(size=(n, rank))
        kernel = factors @ factors.T
        y = np.ones(n)
        y[: n // 2] = -1.0
        rng.shuffle(y)
        if np.unique(y).size < 2:  # n == 1 shrunk away; force both classes
            y[0] = -y[0]
        return kernel, y

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=40),
        seed=st.integers(min_value=0, max_value=10_000),
        c=st.sampled_from([0.1, 1.0, 10.0]),
        rank=st.integers(min_value=1, max_value=6),
    )
    def test_kkt_conditions_hold(self, n, seed, c, rank):
        kernel, y = self._random_problem(n, seed, rank)
        tol = 1e-3
        svm = BinarySVM(c=c, tol=tol).fit(kernel, y)
        alpha = svm.dual_coef_ * y  # dual_coef_ = alpha * y

        # Feasibility.
        assert np.all(alpha >= -1e-9)
        assert np.all(alpha <= c + 1e-9)
        assert abs(float(alpha @ y)) < 1e-6

        # Maximal-violating-pair gap below tolerance.
        gradient = (kernel * np.outer(y, y)) @ alpha - 1.0
        neg_yg = -y * gradient
        up = ((y > 0) & (alpha < c - 1e-12)) | ((y < 0) & (alpha > 1e-12))
        low = ((y > 0) & (alpha > 1e-12)) | ((y < 0) & (alpha < c - 1e-12))
        if up.any() and low.any():
            gap = neg_yg[up].max() - neg_yg[low].min()
            assert gap < tol + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_dual_objective_no_single_step_improvement(self, n, seed):
        """No single coordinate pair move should improve the dual, checked
        via the objective value against a few random feasible directions."""
        kernel, y = self._random_problem(n, seed, rank=4)
        c = 1.0
        svm = BinarySVM(c=c, tol=1e-4).fit(kernel, y)
        alpha = svm.dual_coef_ * y
        q_matrix = kernel * np.outer(y, y)

        def objective(a):
            return 0.5 * a @ q_matrix @ a - a.sum()

        base = objective(alpha)
        rng = np.random.default_rng(seed)
        for _ in range(10):
            i, j = rng.integers(0, n, size=2)
            if i == j:
                continue
            step = rng.uniform(-0.1, 0.1)
            candidate = alpha.copy()
            # Move along the equality-constraint-preserving direction.
            candidate[i] += step * y[i]
            candidate[j] -= step * y[j]
            if np.any(candidate < -1e-12) or np.any(candidate > c + 1e-12):
                continue
            assert objective(candidate) >= base - 1e-6


class TestGeneralisation:
    def test_holdout_accuracy(self):
        rng = np.random.default_rng(7)
        x_train = np.vstack(
            [rng.normal(-1.5, 0.7, (40, 3)), rng.normal(1.5, 0.7, (40, 3))]
        )
        y_train = np.asarray([-1.0] * 40 + [1.0] * 40)
        x_test = np.vstack(
            [rng.normal(-1.5, 0.7, (20, 3)), rng.normal(1.5, 0.7, (20, 3))]
        )
        y_test = np.asarray([-1.0] * 20 + [1.0] * 20)
        svm = BinarySVM(c=1.0).fit(x_train @ x_train.T, y_train)
        predictions = svm.predict(x_test @ x_train.T)
        assert np.mean(predictions == y_test) >= 0.9
