"""Tests for kernel k-NN classification."""

import numpy as np
import pytest

from repro.errors import NotFittedError, ValidationError
from repro.ml.knn import KernelKNN, leave_one_out_knn_accuracy


def _blob_kernel(n_per_class=8, n_classes=3, spread=0.3, seed=0):
    """Linear kernel over Gaussian blobs — an easy, controllable testbed."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=3.0, size=(n_classes, 4))
    points = np.vstack(
        [rng.normal(c, spread, size=(n_per_class, 4)) for c in centers]
    )
    labels = np.repeat(np.arange(n_classes), n_per_class)
    return points @ points.T, labels, points


class TestPredict:
    def test_perfect_on_well_separated_blobs(self):
        gram, y, _ = _blob_kernel()
        model = KernelKNN(n_neighbors=3, metric="distance").fit(gram, y)
        masked = gram - np.eye(y.size) * 1e9
        assert model.score(masked, y) == 1.0

    def test_one_nn_matches_argmax(self):
        gram, y, _ = _blob_kernel(seed=1)
        model = KernelKNN(n_neighbors=1).fit(gram, y)
        masked = gram - np.eye(y.size) * 1e9
        predictions = model.predict(masked)
        expected = y[masked.argmax(axis=1)]
        assert np.array_equal(predictions, expected)

    def test_majority_vote(self):
        # 5 train points: three of class 0 are the nearest under k=3.
        rows = np.array([[0.9, 0.8, 0.7, 1.0, 0.0]])
        y = np.array([0, 0, 0, 1, 1])
        model = KernelKNN(n_neighbors=3).fit(np.eye(5), y)
        assert model.predict(rows)[0] == 0

    def test_tie_breaks_toward_nearest(self):
        # k=2, one vote each: the class of the single nearest point wins.
        rows = np.array([[1.0, 0.9, 0.0]])
        y = np.array([1, 0, 0])
        model = KernelKNN(n_neighbors=2).fit(np.eye(3), y)
        assert model.predict(rows)[0] == 1

    def test_k_larger_than_train_is_capped(self):
        gram, y, _ = _blob_kernel(n_per_class=2, n_classes=2)
        model = KernelKNN(n_neighbors=50).fit(gram, y)
        predictions = model.predict(gram)
        assert predictions.shape == y.shape

    def test_empty_batch_predicts_empty(self):
        """An empty serving batch returns an empty label array of the
        training labels' dtype."""
        gram, y, _ = _blob_kernel(seed=3)
        model = KernelKNN(n_neighbors=3).fit(gram, y)
        predictions = model.predict(np.zeros((0, y.size)))
        assert predictions.shape == (0,)
        assert predictions.dtype == y.dtype

    def test_distance_metric_uses_diagonal(self):
        # Similarity ranks train point 0 first; induced distance must
        # penalise its huge self-similarity and prefer train point 1.
        train_gram = np.array([[100.0, 0.0], [0.0, 1.0]])
        y = np.array([0, 1])
        rows = np.array([[3.0, 0.9]])
        similarity = KernelKNN(n_neighbors=1).fit(train_gram, y)
        assert similarity.predict(rows)[0] == 0
        distance = KernelKNN(n_neighbors=1, metric="distance").fit(train_gram, y)
        assert distance.predict(rows, self_diagonal=np.ones(1))[0] == 1


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            KernelKNN().predict(np.zeros((1, 3)))

    def test_gram_label_mismatch(self):
        with pytest.raises(ValidationError):
            KernelKNN().fit(np.eye(3), [0, 1])

    def test_row_width_mismatch(self):
        model = KernelKNN().fit(np.eye(3), [0, 1, 0])
        with pytest.raises(ValidationError):
            model.predict(np.zeros((2, 4)))

    def test_bad_metric_rejected(self):
        with pytest.raises(ValidationError):
            KernelKNN(metric="cosine")

    def test_bad_neighbor_count_rejected(self):
        with pytest.raises(ValidationError):
            KernelKNN(n_neighbors=0)

    def test_self_diagonal_length_checked(self):
        model = KernelKNN(metric="distance").fit(np.eye(3), [0, 1, 0])
        with pytest.raises(ValidationError):
            model.predict(np.zeros((2, 3)), self_diagonal=np.ones(5))


class TestLeaveOneOut:
    def test_perfect_block_kernel(self):
        y = np.array([0, 0, 0, 1, 1, 1])
        gram = np.equal.outer(y, y).astype(float)
        assert leave_one_out_knn_accuracy(gram, y) == 1.0

    def test_matches_gram_signal_one_nn(self):
        from repro.ml.kernel_utils import gram_signal_summary

        gram, y, _ = _blob_kernel(spread=2.0, seed=3)
        loo = leave_one_out_knn_accuracy(gram, y, n_neighbors=1)
        summary = gram_signal_summary(gram, y)
        assert loo == pytest.approx(summary["one_nn_accuracy"])

    def test_higher_k_smooths_noise(self):
        gram, y, _ = _blob_kernel(n_per_class=20, spread=2.5, seed=4)
        loo_1 = leave_one_out_knn_accuracy(gram, y, n_neighbors=1)
        loo_5 = leave_one_out_knn_accuracy(gram, y, n_neighbors=5)
        assert loo_5 >= loo_1 - 0.1  # k=5 must not collapse
