"""Tests for the Nyström Gram approximation."""

import numpy as np
import pytest

from repro.errors import KernelError, NotFittedError, ValidationError
from repro.graphs import generators as gen
from repro.kernels import HAQJSKKernelD, QJSKUnaligned, WeisfeilerLehmanKernel
from repro.ml.nystrom import NystromApproximation, nystrom_gram


@pytest.fixture(scope="module")
def graphs():
    return (
        [gen.random_tree(9, seed=i) for i in range(6)]
        + [gen.erdos_renyi(10, 0.4, seed=i).largest_component() for i in range(6)]
    )


@pytest.fixture(scope="module")
def kernel():
    return HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=3, seed=0)


@pytest.fixture(scope="module")
def exact_gram(kernel, graphs):
    return kernel.gram(graphs)


class TestExactness:
    def test_all_landmarks_recovers_exact_gram(self, kernel, graphs, exact_gram):
        approx = nystrom_gram(kernel, graphs, n_landmarks=len(graphs))
        assert np.allclose(approx, exact_gram, atol=1e-6)

    def test_landmark_count_capped_at_n(self, kernel, graphs, exact_gram):
        approx = nystrom_gram(kernel, graphs, n_landmarks=500)
        assert np.allclose(approx, exact_gram, atol=1e-6)

    def test_landmark_rows_reproduced_exactly(self, kernel, graphs, exact_gram):
        """Nyström interpolates exactly on the landmark rows/columns."""
        model = NystromApproximation(kernel, n_landmarks=6, seed=1).fit(graphs)
        approx = model.approximate_gram()
        landmarks = model.landmark_indices_
        assert np.allclose(
            approx[np.ix_(landmarks, landmarks)],
            exact_gram[np.ix_(landmarks, landmarks)],
            atol=1e-6,
        )


class TestApproximationQuality:
    def test_error_decreases_with_landmarks(self, kernel, graphs, exact_gram):
        errors = []
        for m in (2, 6, len(graphs)):
            approx = nystrom_gram(kernel, graphs, n_landmarks=m, seed=3)
            errors.append(np.linalg.norm(approx - exact_gram))
        assert errors[-1] <= errors[0] + 1e-9
        assert errors[-1] < 1e-5

    def test_approximation_is_psd(self, kernel, graphs):
        approx = nystrom_gram(kernel, graphs, n_landmarks=4, seed=4)
        assert np.linalg.eigvalsh(approx).min() >= -1e-9

    def test_embedding_reproduces_gram(self, kernel, graphs):
        model = NystromApproximation(kernel, n_landmarks=5, seed=5).fit(graphs)
        assert np.allclose(
            model.embedding_ @ model.embedding_.T,
            model.approximate_gram(),
        )

    def test_deterministic_given_seed(self, kernel, graphs):
        a = nystrom_gram(kernel, graphs, n_landmarks=4, seed=7)
        b = nystrom_gram(kernel, graphs, n_landmarks=4, seed=7)
        assert np.array_equal(a, b)


class TestFeatureMapFallback:
    def test_works_with_feature_map_kernel(self, graphs):
        kernel = WeisfeilerLehmanKernel(n_iterations=2)
        exact = kernel.gram(graphs)
        approx = nystrom_gram(kernel, graphs, n_landmarks=len(graphs))
        assert np.allclose(approx, exact, atol=1e-8)


class TestEngineRouting:
    """The landmark rectangle goes through the pluggable Gram engines."""

    def test_backends_agree(self, kernel, graphs):
        serial = nystrom_gram(kernel, graphs, n_landmarks=5, seed=2, engine="serial")
        batched = nystrom_gram(kernel, graphs, n_landmarks=5, seed=2, engine="batched")
        assert np.allclose(serial, batched, atol=1e-9)

    def test_engine_stored(self, kernel):
        model = NystromApproximation(kernel, n_landmarks=3, engine="batched")
        assert model.engine == "batched"


class TestOutOfSampleTransform:
    """Newcomer embeddings from the fitted landmark system (serving)."""

    def test_transform_reproduces_fitted_embedding(self, graphs):
        model = NystromApproximation(QJSKUnaligned(), n_landmarks=6, seed=0)
        model.fit(graphs)
        assert np.allclose(model.transform(graphs), model.embedding_, atol=1e-8)

    def test_newcomer_cross_values_recovered_exactly_at_full_rank(self, graphs):
        """With landmarks = the whole fitted collection, ``phi_new phi_trainᵀ``
        equals the true cross Gram (pinv identity Aᵀ(AAᵀ)⁺(AAᵀ) = Aᵀ)."""
        kernel = WeisfeilerLehmanKernel(n_iterations=2)
        train, newcomers = graphs[:9], graphs[9:]
        model = NystromApproximation(kernel, n_landmarks=len(train)).fit(train)
        phi_new = model.transform(newcomers)
        cross = kernel.cross_gram(newcomers, train)
        assert np.allclose(phi_new @ model.embedding_.T, cross, atol=1e-6)

    def test_embedding_dimension_matches_fit(self, graphs):
        model = NystromApproximation(QJSKUnaligned(), n_landmarks=5, seed=1)
        model.fit(graphs[:8])
        phi = model.transform(graphs[8:])
        assert phi.shape == (len(graphs) - 8, model.embedding_.shape[1])

    def test_empty_batch(self, graphs):
        model = NystromApproximation(QJSKUnaligned(), n_landmarks=4, seed=2)
        model.fit(graphs)
        phi = model.transform([])
        assert phi.shape == (0, model.embedding_.shape[1])

    def test_unfrozen_haqjsk_refused(self, kernel, graphs):
        """Collection-level kernels cannot serve newcomers: their landmark
        values would shift with the batch."""
        model = NystromApproximation(kernel, n_landmarks=4, seed=0).fit(graphs)
        with pytest.raises(KernelError):
            model.transform(graphs[:2])

    def test_unfrozen_haqjsk_refused_even_on_empty_batch(self, kernel, graphs):
        """An ineligible pipeline must fail on an empty smoke batch too."""
        model = NystromApproximation(kernel, n_landmarks=4, seed=0).fit(graphs)
        with pytest.raises(KernelError):
            model.transform([])

    def test_frozen_haqjsk_allowed(self, graphs):
        frozen = HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=3, seed=0)
        frozen.freeze(graphs[:8])
        model = NystromApproximation(frozen, n_landmarks=5, seed=0)
        model.fit(graphs[:8])
        phi = model.transform(graphs[8:])
        assert phi.shape == (len(graphs) - 8, model.embedding_.shape[1])
        assert np.all(np.isfinite(phi))

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            NystromApproximation(QJSKUnaligned(), n_landmarks=3).transform([])


class TestValidation:
    def test_rejects_non_kernel(self):
        with pytest.raises(ValidationError):
            NystromApproximation(object(), n_landmarks=3)

    def test_rejects_empty_graphs(self, kernel):
        with pytest.raises(ValidationError):
            NystromApproximation(kernel, n_landmarks=3).fit([])

    def test_gram_before_fit(self, kernel):
        with pytest.raises(NotFittedError):
            NystromApproximation(kernel, n_landmarks=3).approximate_gram()

    def test_rejects_zero_landmarks(self, kernel):
        with pytest.raises(ValidationError):
            NystromApproximation(kernel, n_landmarks=0)
