"""Tests for Gram-matrix conditioning (repro.ml.kernel_utils)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotFittedError, ValidationError
from repro.ml.kernel_utils import (
    GramConditioner,
    center_gram,
    condition_gram,
    gram_signal_summary,
    kernel_target_alignment,
    scale_gram,
)


def _random_psd(n: int, seed: int, rank: "int | None" = None) -> np.ndarray:
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(n, rank or n))
    return factors @ factors.T


class TestCenterGram:
    def test_row_and_column_means_vanish(self):
        k = _random_psd(12, seed=0)
        centered = center_gram(k)
        assert np.allclose(centered.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(centered.mean(axis=1), 0.0, atol=1e-10)

    def test_preserves_psd(self):
        k = _random_psd(15, seed=1)
        eigenvalues = np.linalg.eigvalsh(center_gram(k))
        assert eigenvalues.min() >= -1e-9

    def test_removes_constant_component_exactly(self):
        k = _random_psd(10, seed=2)
        shifted = k + 37.0  # constant offset, the QJSD-kernel pathology
        assert np.allclose(center_gram(shifted), center_gram(k), atol=1e-9)

    def test_preserves_pairwise_feature_distances(self):
        # Centering is a translation in feature space: the induced squared
        # distance K_ii + K_jj - 2 K_ij must be unchanged.
        k = _random_psd(9, seed=3)
        centered = center_gram(k)
        for mat in (k, centered):
            diag = np.diag(mat)
            dist = diag[:, None] + diag[None, :] - 2 * mat
            if mat is k:
                expected = dist
        assert np.allclose(dist, expected, atol=1e-9)

    def test_symmetry_preserved(self):
        k = _random_psd(8, seed=4)
        centered = center_gram(k)
        assert np.allclose(centered, centered.T)

    def test_idempotent(self):
        k = _random_psd(8, seed=5)
        once = center_gram(k)
        assert np.allclose(center_gram(once), once, atol=1e-10)

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            center_gram(np.zeros((3, 4)))


class TestScaleGram:
    def test_unit_mean_diagonal(self):
        k = _random_psd(10, seed=6) + np.eye(10)
        scaled = scale_gram(k)
        assert np.isclose(np.trace(scaled) / 10, 1.0)

    def test_degenerate_matrix_returned_unchanged(self):
        zero = np.zeros((5, 5))
        assert np.array_equal(scale_gram(zero), zero)

    def test_scaling_is_positive(self):
        k = _random_psd(7, seed=7)
        scaled = scale_gram(k)
        ratio = k[k != 0] / scaled[scaled != 0]
        assert np.allclose(ratio, ratio.flat[0])
        assert ratio.flat[0] > 0

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            scale_gram(np.zeros((2, 3)))


class TestConditionGram:
    def test_constant_plus_signal_recovers_signal_scale(self):
        # The motivating case: K = c*11^T + eps*S with tiny eps. After
        # conditioning the dynamic range must be O(1), not O(eps).
        signal = _random_psd(20, seed=8)
        compressed = 5.0 + 1e-3 * signal
        conditioned = condition_gram(compressed)
        assert np.trace(conditioned) / 20 == pytest.approx(1.0)
        assert conditioned.std() > 0.1

    def test_preserves_psd(self):
        k = _random_psd(12, seed=9)
        eigenvalues = np.linalg.eigvalsh(condition_gram(k))
        assert eigenvalues.min() >= -1e-9

    def test_all_constant_gram_degenerates_to_zero(self):
        constant = np.full((6, 6), 3.0)
        assert np.allclose(condition_gram(constant), 0.0, atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
        offset=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_offset_invariance_property(self, n, seed, offset):
        """condition(K + c) == condition(K) for any constant shift c."""
        k = _random_psd(n, seed=seed)
        assert np.allclose(
            condition_gram(k + offset), condition_gram(k), atol=1e-7
        )


class TestGramSignalSummary:
    def test_perfect_block_kernel(self):
        y = np.array([0, 0, 0, 1, 1, 1])
        k = (np.equal.outer(y, y)).astype(float)
        summary = gram_signal_summary(k, y)
        assert summary["one_nn_accuracy"] == 1.0
        assert summary["within_mean"] == 1.0
        assert summary["between_mean"] == 0.0
        assert summary["gap"] == 1.0

    def test_anti_signal_kernel(self):
        y = np.array([0, 0, 1, 1])
        k = (~np.equal.outer(y, y)).astype(float)
        summary = gram_signal_summary(k, y)
        assert summary["one_nn_accuracy"] == 0.0
        assert summary["gap"] == -1.0

    def test_diagonal_excluded_from_within(self):
        y = np.array([0, 0])
        k = np.array([[5.0, 0.25], [0.25, 5.0]])
        summary = gram_signal_summary(k, y)
        assert summary["within_mean"] == pytest.approx(0.25)

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            gram_signal_summary(np.eye(3), [0, 1])


class TestKernelTargetAlignment:
    def test_ideal_kernel_aligns_perfectly(self):
        y = np.array([0, 0, 1, 1, 2, 2])
        ideal = np.equal.outer(y, y).astype(float)
        assert kernel_target_alignment(ideal, y) == pytest.approx(1.0)

    def test_anti_kernel_aligns_negatively(self):
        y = np.array([0, 0, 1, 1])
        anti = (~np.equal.outer(y, y)).astype(float)
        assert kernel_target_alignment(anti, y) == pytest.approx(-1.0)

    def test_constant_kernel_has_zero_alignment(self):
        y = np.array([0, 1, 0, 1])
        assert kernel_target_alignment(np.ones((4, 4)), y) == 0.0

    def test_offset_invariant(self):
        """Centering makes the measure invariant to constant Gram shifts —
        the QJSD-kernel pathology must not inflate or deflate it."""
        y = np.array([0, 0, 0, 1, 1, 1])
        k = _random_psd(6, seed=11)
        assert kernel_target_alignment(k + 42.0, y) == pytest.approx(
            kernel_target_alignment(k, y), abs=1e-9
        )

    def test_scale_invariant(self):
        y = np.array([0, 1, 1, 0, 1])
        k = _random_psd(5, seed=12)
        assert kernel_target_alignment(3.7 * k, y) == pytest.approx(
            kernel_target_alignment(k, y), abs=1e-12
        )

    def test_reported_in_signal_summary(self):
        y = np.array([0, 0, 1, 1])
        summary = gram_signal_summary(np.equal.outer(y, y).astype(float), y)
        assert summary["target_alignment"] == pytest.approx(1.0)

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            kernel_target_alignment(np.eye(4), [0, 1])


class TestGramConditioner:
    """The fit/transform split behind inductive serving conditioning."""

    def test_fit_transform_matches_condition_gram_bitwise(self):
        k = _random_psd(14, seed=10)
        assert np.array_equal(
            GramConditioner().fit_transform(k), condition_gram(k)
        )

    def test_transform_cross_on_training_matrix_is_transform(self):
        k = _random_psd(11, seed=11)
        conditioner = GramConditioner().fit(k)
        assert np.array_equal(
            conditioner.transform(k), conditioner.transform_cross(k)
        )

    def test_cross_rows_equal_centered_feature_inner_products(self):
        """transform_cross computes <phi(t)-mu, phi(i)-mu>/s exactly,
        with mu and s the *training* statistics."""
        rng = np.random.default_rng(12)
        x_train = rng.normal(size=(10, 4))
        x_new = rng.normal(size=(3, 4))
        k_train = x_train @ x_train.T
        conditioner = GramConditioner().fit(k_train)
        rows = conditioner.transform_cross(x_new @ x_train.T)
        mu = x_train.mean(axis=0)
        expected = (x_new - mu) @ (x_train - mu).T / conditioner.scale_
        assert np.allclose(rows, expected, atol=1e-10)

    def test_cross_conditioning_differs_from_transductive(self):
        """The bug this class fixes: conditioning the cross block with its
        own statistics produces a different matrix than the training
        statistics do."""
        rng = np.random.default_rng(13)
        x_train = rng.normal(size=(12, 4)) + 1.5  # offset: centering matters
        x_new = rng.normal(size=(5, 4)) - 1.5
        k_train = x_train @ x_train.T
        cross = x_new @ x_train.T
        inductive = GramConditioner().fit(k_train).transform_cross(cross)
        # Transductive misuse: fresh statistics of the (non-square) block
        # via the full-collection Gram's means restricted to the block.
        full = np.vstack([x_train, x_new]) @ np.vstack([x_train, x_new]).T
        transductive = condition_gram(full)[12:, :12]
        assert not np.allclose(inductive, transductive, atol=1e-6)

    def test_degenerate_gram_keeps_unit_scale(self):
        conditioner = GramConditioner().fit(np.ones((6, 6)))
        assert conditioner.scale_ == 1.0

    def test_center_scale_disabled_is_identity(self):
        k = _random_psd(7, seed=14)
        conditioner = GramConditioner(center=False, scale=False).fit(k)
        assert np.allclose(conditioner.transform(k), k)
        rows = k[:3]
        assert np.allclose(conditioner.transform_cross(rows), rows)

    def test_requires_fit_before_transform(self):
        with pytest.raises(NotFittedError):
            GramConditioner().transform(np.eye(3))
        with pytest.raises(NotFittedError):
            GramConditioner().transform_cross(np.ones((2, 3)))

    def test_rejects_wrong_training_width(self):
        conditioner = GramConditioner().fit(_random_psd(8, seed=15))
        with pytest.raises(ValidationError):
            conditioner.transform_cross(np.ones((2, 5)))
        with pytest.raises(ValidationError):
            conditioner.transform(np.eye(5))

    def test_rejects_non_2d_cross_rows(self):
        conditioner = GramConditioner().fit(_random_psd(4, seed=16))
        with pytest.raises(ValidationError):
            conditioner.transform_cross(np.ones(4))

    def test_picklable(self):
        import pickle

        k = _random_psd(9, seed=17)
        conditioner = GramConditioner().fit(k)
        clone = pickle.loads(pickle.dumps(conditioner))
        rows = k[:4]
        assert np.array_equal(
            clone.transform_cross(rows), conditioner.transform_cross(rows)
        )
