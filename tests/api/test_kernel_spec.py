"""KernelSpec + registry: validation, JSON round-trips, zoo parity."""

from __future__ import annotations

import json

import pytest

from repro.errors import KernelError, KernelSpecError
from repro.kernels import (
    GraphKernel,
    HAQJSKKernelD,
    KernelSpec,
    WeisfeilerLehmanKernel,
    make,
    registered_kernels,
    supported_params,
)
from repro.kernels.registry import as_spec, full_scale, kernel_entry


class TestRegistry:
    def test_table4_roster_registered(self):
        from repro.experiments.config import TABLE4_KERNELS

        names = registered_kernels()
        for name in TABLE4_KERNELS:
            assert name in names

    def test_lookup_is_case_insensitive(self):
        assert kernel_entry("wlsk").name == "WLSK"
        assert kernel_entry("HAQJSK(d)").name == "HAQJSK(D)"

    def test_aliases_resolve(self):
        assert kernel_entry("haqjsk-d").name == "HAQJSK(D)"
        assert kernel_entry("core-wl").name == "CORE WL"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KernelSpecError) as excinfo:
            kernel_entry("NOT_A_KERNEL")
        message = str(excinfo.value)
        assert "NOT_A_KERNEL" in message
        assert "WLSK" in message and "HAQJSK(D)" in message

    def test_supported_params(self):
        assert "n_iterations" in supported_params("WLSK")
        assert "n_prototypes" in supported_params("HAQJSK(A)")
        # Non-JSON constructor objects are excluded from the spec surface.
        assert "extractor" not in supported_params("HAQJSK(A)")


class TestKernelSpec:
    def test_canonical_name(self):
        assert KernelSpec("wlsk").name == "WLSK"

    def test_frozen_and_hashable(self):
        spec = KernelSpec("WLSK", n_iterations=3)
        with pytest.raises(AttributeError):
            spec.name = "other"
        assert spec == KernelSpec("wlsk", {"n_iterations": 3})
        assert hash(spec) == hash(KernelSpec("WLSK", n_iterations=3))

    def test_unexpected_param_named_error(self):
        with pytest.raises(KernelSpecError) as excinfo:
            KernelSpec("WLSK", depth=5)
        message = str(excinfo.value)
        assert "depth" in message and "n_iterations" in message

    def test_unknown_kernel_named_error(self):
        with pytest.raises(KernelSpecError, match="registered kernels"):
            KernelSpec("nope")

    def test_non_json_param_rejected(self):
        with pytest.raises(KernelSpecError, match="JSON"):
            KernelSpec("WLSK", n_iterations=object())

    def test_json_round_trip(self):
        spec = KernelSpec("HAQJSK(D)", n_prototypes=8, seed=3)
        assert KernelSpec.from_json(spec.to_json()) == spec
        assert KernelSpec.from_dict(spec.to_dict()) == spec
        payload = json.loads(spec.to_json())
        assert payload["name"] == "HAQJSK(D)"
        assert payload["params"] == {"n_prototypes": 8, "seed": 3}

    def test_from_json_rejects_garbage(self):
        with pytest.raises(KernelSpecError, match="JSON"):
            KernelSpec.from_json("{not json")
        with pytest.raises(KernelSpecError):
            KernelSpec.from_dict({"params": {}})
        with pytest.raises(KernelSpecError, match="unexpected"):
            KernelSpec.from_dict({"name": "WLSK", "extra": 1})

    def test_from_json_rejects_unknown_kernel_and_params(self):
        with pytest.raises(KernelSpecError, match="registered kernels"):
            KernelSpec.from_json('{"name": "GHOST", "params": {}}')
        with pytest.raises(KernelSpecError, match="accepted parameters"):
            KernelSpec.from_json('{"name": "WLSK", "params": {"depth": 2}}')

    def test_resolved_pins_defaults(self):
        resolved = KernelSpec("WLSK").resolved()
        assert resolved.param_dict == {"n_iterations": 4}
        # Already-explicit params survive resolution untouched.
        explicit = KernelSpec("WLSK", n_iterations=9).resolved()
        assert explicit.param_dict == {"n_iterations": 9}

    def test_resolved_tracks_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert full_scale()
        assert KernelSpec("WLSK").resolved().param_dict == {"n_iterations": 10}
        monkeypatch.delenv("REPRO_FULL_SCALE")
        assert KernelSpec("WLSK").resolved().param_dict == {"n_iterations": 4}

    def test_fingerprint_stability(self):
        a = KernelSpec("JTQK")
        b = KernelSpec("JTQK", q=2.0, n_iterations=4).resolved()
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != KernelSpec("JTQK", q=3.0).fingerprint()

    def test_with_params(self):
        spec = KernelSpec("HAQJSK(D)", n_prototypes=8)
        grown = spec.with_params(seed=7)
        assert grown.param_dict == {"n_prototypes": 8, "seed": 7}
        assert spec.param_dict == {"n_prototypes": 8}

    def test_as_spec(self):
        spec = KernelSpec("WLSK")
        assert as_spec(spec) is spec
        assert as_spec("WLSK", n_iterations=2).param_dict == {"n_iterations": 2}
        with pytest.raises(KernelSpecError):
            as_spec(42)


class TestMake:
    def test_make_builds_kernel(self):
        kernel = make("WLSK", n_iterations=3)
        assert isinstance(kernel, WeisfeilerLehmanKernel)
        assert kernel.n_iterations == 3

    def test_make_accepts_spec(self):
        kernel = make(KernelSpec("HAQJSK(D)", n_prototypes=4))
        assert isinstance(kernel, HAQJSKKernelD)
        assert kernel.aligner.n_prototypes == 4

    def test_make_applies_registered_defaults(self):
        kernel = make("HAQJSK(D)")
        assert kernel.aligner.n_prototypes == 32
        assert kernel.aligner.n_levels == 5
        assert kernel.aligner.max_layers == 6  # scaled default

    def test_spec_error_is_kernel_error(self):
        # The spec errors slot into the existing hierarchy so historical
        # ``except KernelError`` call sites keep catching factory misuse.
        with pytest.raises(KernelError):
            make("NOT_A_KERNEL")


class TestZooParity:
    """The legacy experiments-layer factory is a pure delegate now."""

    @pytest.mark.parametrize(
        "name", ["HAQJSK(D)", "QJSK", "JTQK", "WLSK", "GCGK", "CORE WL", "SPEGK"]
    )
    def test_make_kernel_matches_registry(self, name):
        from repro.experiments.kernel_zoo import make_kernel

        legacy = make_kernel(name, n_prototypes=16, seed=2)
        entry = kernel_entry(name)
        params = {
            key: value
            for key, value in {"n_prototypes": 16, "seed": 2}.items()
            if key in entry.parameters
        }
        fresh = make(name, **params)
        assert isinstance(legacy, GraphKernel)
        assert type(legacy) is type(fresh)
        assert legacy.fingerprint() == fresh.fingerprint()

    def test_make_kernel_still_stamps_engine(self):
        from repro.experiments.kernel_zoo import make_kernel

        assert make_kernel("QJSK", engine="serial").engine == "serial"
