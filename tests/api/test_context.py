"""ExecutionContext: env resolution, validation, records, the shim."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.api import ExecutionContext
from repro.api.context import context_for, resolve_context
from repro.engine import BatchedEngine, MemmapSink, TILE_ENV_VAR
from repro.engine.base import ENGINE_ENV_VAR
from repro.errors import ValidationError
from repro.kernels import QJSKUnaligned
from repro.store import ArtifactStore


class TestConstruction:
    def test_defaults(self):
        ctx = ExecutionContext()
        assert ctx.engine is None
        assert ctx.store is None
        assert ctx.sink_factory is None
        assert ctx.tile_checkpoint is True
        assert ctx.normalize is None and ctx.ensure_psd is None

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecutionContext().engine = "serial"

    def test_replace_returns_new(self):
        ctx = ExecutionContext()
        other = ctx.replace(engine="serial")
        assert ctx.engine is None and other.engine == "serial"

    def test_bad_tile_size(self):
        with pytest.raises(ValidationError, match="tile_size"):
            ExecutionContext(tile_size=0)

    def test_sink_instance_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="sink_factory"):
            ExecutionContext(sink_factory=MemmapSink(str(tmp_path / "x.npy")))

    def test_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENGINE_ENV_VAR, "serial")
        monkeypatch.setenv(TILE_ENV_VAR, "7")
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        ctx = ExecutionContext.from_env()
        assert ctx.engine == "serial"
        assert ctx.tile_size == 7
        assert isinstance(ctx.store, ArtifactStore)
        # Overrides win over the environment.
        assert ExecutionContext.from_env(engine="batched").engine == "batched"

    def test_from_env_empty(self, monkeypatch):
        for var in (ENGINE_ENV_VAR, TILE_ENV_VAR, "REPRO_STORE"):
            monkeypatch.delenv(var, raising=False)
        assert ExecutionContext.from_env() == ExecutionContext()

    def test_from_env_bad_tile(self, monkeypatch):
        monkeypatch.setenv(TILE_ENV_VAR, "many")
        with pytest.raises(ValidationError, match=TILE_ENV_VAR):
            ExecutionContext.from_env()


class TestValidate:
    def test_store_and_sink_conflict(self, tmp_path):
        ctx = ExecutionContext(
            store=ArtifactStore(str(tmp_path / "s")),
            sink_factory=lambda: None,
        )
        with pytest.raises(ValidationError, match="not.*both"):
            ctx.validate()

    def test_ensure_psd_out_of_core(self, tmp_path):
        sink = MemmapSink(str(tmp_path / "g.npy"))
        with pytest.raises(ValidationError, match="ensure_psd.*sink"):
            ExecutionContext().validate(ensure_psd=True, sink=sink)

    def test_ensure_psd_policy_field(self, tmp_path):
        sink = MemmapSink(str(tmp_path / "g.npy"))
        ctx = ExecutionContext(ensure_psd=True)
        with pytest.raises(ValidationError, match="offending fields"):
            ctx.validate(sink=sink)

    def test_in_memory_sink_allowed(self):
        from repro.engine import DenseSink

        ctx = ExecutionContext()
        assert ctx.validate(ensure_psd=True, sink=DenseSink()) is ctx

    def test_clean_context_passes(self):
        ctx = ExecutionContext(engine="batched", tile_size=16)
        assert ctx.validate() is ctx


class TestPolicy:
    def test_explicit_wins(self):
        ctx = ExecutionContext(normalize=True)
        assert ctx.policy(False, "normalize", True) is False

    def test_context_fills_none(self):
        ctx = ExecutionContext(normalize=True)
        assert ctx.policy(None, "normalize", False) is True

    def test_default_when_unset(self):
        ctx = ExecutionContext()
        assert ctx.policy(None, "normalize", True) is True
        assert ctx.policy(None, "ensure_psd", False) is False


class TestEngineArgument:
    def test_passthrough_without_tile(self):
        assert ExecutionContext(engine="serial").engine_argument() == "serial"
        assert ExecutionContext().engine_argument() is None

    def test_tile_override_materialises(self):
        engine = ExecutionContext(engine="batched", tile_size=9).engine_argument()
        assert isinstance(engine, BatchedEngine)
        assert engine.resolved_tile_size() == 9

    def test_tile_override_preserves_instance_config(self):
        base = BatchedEngine(tile_size=64)
        ctx = ExecutionContext(engine=base, tile_size=5)
        resolved = ctx.engine_argument()
        assert resolved is not base
        assert resolved.resolved_tile_size() == 5
        assert base.resolved_tile_size() == 64  # the original is untouched

    def test_tile_override_respects_kernel_sticky_engine(self):
        kernel = QJSKUnaligned()
        kernel.engine = "serial"
        resolved = ExecutionContext(tile_size=3).engine_argument(kernel)
        assert resolved.name == "serial"
        assert resolved.resolved_tile_size() == 3


class TestRecord:
    def test_round_trip(self, tmp_path):
        ctx = ExecutionContext(
            engine="process",
            tile_size=32,
            store=ArtifactStore(str(tmp_path / "arts")),
            normalize=True,
        )
        record = ctx.to_record()
        rebuilt = ExecutionContext.from_record(record)
        assert rebuilt.to_record() == record
        assert rebuilt.engine == "process"
        assert rebuilt.tile_size == 32
        assert rebuilt.store.root == ctx.store.root
        assert rebuilt.normalize is True

    def test_record_is_json_able(self):
        import json

        record = ExecutionContext(engine="serial").to_record()
        assert json.loads(json.dumps(record)) == record

    def test_engine_instance_recorded_by_name(self):
        record = ExecutionContext(engine=BatchedEngine()).to_record()
        assert record["engine"] == "batched"

    def test_sink_factory_refused_in_record(self):
        record = ExecutionContext(sink_factory=lambda: None).to_record()
        assert record["sink"] is not None
        with pytest.raises(ValidationError, match="sink"):
            ExecutionContext.from_record(record)

    def test_unknown_keys_refused(self):
        with pytest.raises(ValidationError, match="unexpected"):
            ExecutionContext.from_record({"engine": None, "bogus": 1})


class TestResolveContext:
    def test_nothing_supplied(self):
        assert resolve_context(None, owner="x") is None

    def test_ctx_passthrough(self):
        ctx = ExecutionContext(engine="serial")
        assert resolve_context(ctx, owner="x") is ctx

    def test_mixing_refused(self):
        with pytest.raises(ValidationError, match="not both"):
            resolve_context(ExecutionContext(), owner="x", engine="serial")

    def test_legacy_builds_context_with_one_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ctx = resolve_context(None, owner="x", engine="serial")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "engine" in str(deprecations[0].message)
        assert ctx.engine == "serial"

    def test_context_for(self):
        assert context_for(engine=None, store=None) is None
        assert context_for(engine="serial").engine == "serial"
