"""Session facade: bit-identical to the legacy-kwarg path.

Acceptance: for HAQJSK, QJSK and WLSK across the serial and batched
backends, ``Session.gram`` equals the legacy ``kernel.gram(engine=...)``
bit for bit, ``Session.cross_validate`` reproduces the CV accuracy
exactly, and ``Session.train``/``predict`` serve identical labels.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.api import ExecutionContext, Session
from repro.errors import ServingError, ValidationError
from repro.kernels import KernelSpec, make
from repro.ml.cross_validation import cross_validate_graph_kernel
from repro.serve.bundle import train_bundle
from repro.serve.service import PredictionService
from repro.store import ArtifactStore

#: Small, fast parameterisations of the three acceptance kernels.
SPECS = {
    "HAQJSK(D)": KernelSpec(
        "HAQJSK(D)", n_prototypes=4, n_levels=2, max_layers=3, seed=0
    ),
    "QJSK": KernelSpec("QJSK"),
    "WLSK": KernelSpec("WLSK", n_iterations=3),
}

ENGINES = ("serial", "batched")


def legacy_kernel(name):
    return SPECS[name].make()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", sorted(SPECS))
def test_gram_bit_identical(api_collection, name, engine):
    graphs, _ = api_collection
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = legacy_kernel(name).gram(graphs, engine=engine)
    session = Session(ExecutionContext(engine=engine))
    modern = session.gram(SPECS[name], graphs)
    assert np.array_equal(legacy, modern)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", sorted(SPECS))
def test_cross_validate_accuracy_identical(api_collection, name, engine):
    graphs, labels = api_collection
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = cross_validate_graph_kernel(
            legacy_kernel(name), graphs, labels,
            engine=engine, n_folds=4, n_repeats=2, seed=11,
        )
    session = Session(ExecutionContext(engine=engine))
    modern = session.cross_validate(
        SPECS[name], graphs, labels, n_folds=4, n_repeats=2, seed=11
    )
    assert legacy.mean_accuracy == modern.mean_accuracy
    assert legacy.per_repeat == modern.per_repeat
    assert legacy.best_c == modern.best_c


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", sorted(SPECS))
def test_served_labels_identical(api_collection, name, engine):
    graphs, labels = api_collection
    train_graphs, train_labels = graphs[2:], labels[2:]
    newcomers = graphs[:2]

    kernel = legacy_kernel(name)
    if not kernel.collection_independent and hasattr(kernel, "freeze"):
        kernel.freeze(train_graphs)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy_bundle = train_bundle(
            kernel, train_graphs, train_labels, c=10.0, engine=engine, seed=0
        )
        legacy = PredictionService(legacy_bundle, engine=engine).predict(
            newcomers
        )

    session = Session(ExecutionContext(engine=engine))
    bundle = session.train(
        SPECS[name], train_graphs, train_labels, c=10.0, seed=0
    )
    modern = session.predict(bundle, newcomers)
    assert np.array_equal(legacy.labels, modern.labels)
    assert np.array_equal(legacy.margins, modern.margins)
    assert np.array_equal(legacy.votes, modern.votes)


class TestBundleRecords:
    def test_train_records_spec_and_context(self, api_collection, tmp_path):
        graphs, labels = api_collection
        ctx = ExecutionContext(
            engine="serial", store=ArtifactStore(str(tmp_path / "store"))
        )
        session = Session(ctx)
        bundle = session.train(
            SPECS["WLSK"], graphs, labels, c=1.0, name="recorded"
        )
        # Round-trippable provenance records.
        spec = KernelSpec.from_dict(bundle.kernel_spec)
        assert spec.name == "WLSK"
        assert spec.param_dict["n_iterations"] == 3
        rebuilt = ExecutionContext.from_record(bundle.context_record)
        assert rebuilt.engine == "serial"
        assert rebuilt.store.root == ctx.store.root
        # The persisted bundle carries the records across processes.
        from repro.serve.bundle import ModelBundle

        loaded = ModelBundle.load(ctx.store, "recorded")
        assert loaded.kernel_spec == bundle.kernel_spec
        assert loaded.context_record == bundle.context_record

    def test_retrain_under_name_invalidates_cached_service(
        self, api_collection, tmp_path
    ):
        graphs, labels = api_collection
        session = Session(
            ExecutionContext(store=ArtifactStore(str(tmp_path / "store")))
        )
        session.train(SPECS["WLSK"], graphs, labels, c=1.0, name="prod")
        first = session.service("prod")
        # Retraining with flipped labels must supersede the cached service.
        session.train(SPECS["WLSK"], graphs, 1 - labels, c=1.0, name="prod")
        second = session.service("prod")
        assert second is not first
        flipped = session.predict("prod", graphs[:4]).labels
        assert np.array_equal(flipped, 1 - labels[:4])

    def test_gram_honours_context_store(self, api_collection, tmp_path):
        """kernel.gram(ctx=ctx-with-store) is content-addressed, exactly
        as the ExecutionContext docs promise."""
        graphs, _ = api_collection
        store = ArtifactStore(str(tmp_path / "grams"))
        ctx = ExecutionContext(store=store)
        kernel = make("WLSK", n_iterations=3)
        first = kernel.gram(graphs, ctx=ctx)
        second = kernel.gram(graphs, ctx=ctx)
        assert np.array_equal(first, second)
        # Store-backed arrays are immutable artifacts — the hit proves
        # the second call read the store rather than recomputing.
        assert not second.flags.writeable
        from repro.store import gram_key

        assert store.has("gram", gram_key(kernel, graphs))

    def test_predict_by_name_round_trip(self, api_collection, tmp_path):
        graphs, labels = api_collection
        ctx = ExecutionContext(store=ArtifactStore(str(tmp_path / "store")))
        session = Session(ctx)
        bundle = session.train(SPECS["WLSK"], graphs, labels, c=1.0, name="svc")
        by_name = session.predict("svc", graphs[:3])
        by_object = session.predict(bundle, graphs[:3])
        assert np.array_equal(by_name.labels, by_object.labels)
        # The service is cached per reference.
        assert session.service("svc") is session.service("svc")


class TestSessionValidation:
    def test_invalid_context_rejected_up_front(self, tmp_path):
        from repro.engine import MemmapSink

        ctx = ExecutionContext(
            store=ArtifactStore(str(tmp_path / "s")),
            sink_factory=lambda: MemmapSink(str(tmp_path / "g.npy")),
        )
        with pytest.raises(ValidationError, match="not.*both"):
            Session(ctx)

    def test_train_name_needs_store(self, api_collection):
        graphs, labels = api_collection
        session = Session(ExecutionContext())
        with pytest.raises(ValidationError, match="store"):
            session.train(SPECS["WLSK"], graphs, labels, c=1.0, name="x")

    def test_predict_by_name_needs_store(self, api_collection):
        session = Session(ExecutionContext())
        with pytest.raises(ServingError, match="store"):
            session.predict("ghost", api_collection[0][:1])

    def test_dataset_object_accepted(self, api_collection):
        graphs, labels = api_collection

        class DatasetLike:
            pass

        dataset = DatasetLike()
        dataset.graphs = graphs
        dataset.targets = labels
        session = Session(ExecutionContext(engine="serial"))
        result = session.cross_validate(
            "WLSK", dataset, n_folds=4, n_repeats=1, seed=2
        )
        explicit = session.cross_validate(
            "WLSK", graphs, labels, n_folds=4, n_repeats=1, seed=2
        )
        assert result.mean_accuracy == explicit.mean_accuracy

    def test_normalize_policy_flows_from_context(self, api_collection):
        graphs, _ = api_collection
        raw = Session(ExecutionContext()).gram("WLSK", graphs)
        normalized = Session(ExecutionContext(normalize=True)).gram(
            "WLSK", graphs
        )
        assert not np.array_equal(raw, normalized)
        assert np.allclose(np.diag(normalized), 1.0)
