"""Shared fixtures for the public-API tests: a small labelled collection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators as gen


@pytest.fixture(scope="module")
def api_collection():
    """16 deterministic graphs in two structural classes.

    Cycles/paths (class 0) against stars/completes (class 1) — separable
    enough that CV accuracies are stable, small enough that HAQJSK Grams
    stay fast.
    """
    graphs = []
    labels = []
    for n in (5, 6, 7, 8):
        graphs.append(gen.cycle_graph(n))
        labels.append(0)
        graphs.append(gen.path_graph(n))
        labels.append(0)
        graphs.append(gen.star_graph(n))
        labels.append(1)
        graphs.append(gen.complete_graph(n))
        labels.append(1)
    return graphs, np.asarray(labels)
