"""API-stability smoke: the exported surface + the README quickstart.

Two guarantees CI pins on every push:

* ``repro.__all__`` matches the committed ``expected_exports.txt`` —
  removing or renaming a top-level export is a reviewed decision, not an
  accident;
* the README "Public API" quickstart runs *verbatim* — the documented
  fifteen lines are executed from the markdown itself, so the docs
  cannot rot.
"""

from __future__ import annotations

import os
import re

import pytest

HERE = os.path.dirname(__file__)
README = os.path.join(HERE, os.pardir, os.pardir, "README.md")


def test_exported_surface_matches_committed_list():
    import repro

    with open(os.path.join(HERE, "expected_exports.txt")) as f:
        expected = [line.strip() for line in f if line.strip()]
    assert sorted(repro.__all__) == sorted(expected)
    for name in expected:
        assert getattr(repro, name) is not None


def test_top_level_objects_are_the_canonical_ones():
    import repro
    from repro.api.context import ExecutionContext
    from repro.api.session import Session
    from repro.kernels.registry import KernelSpec, make

    assert repro.ExecutionContext is ExecutionContext
    assert repro.Session is Session
    assert repro.KernelSpec is KernelSpec
    assert repro.make is make


def _quickstart_source() -> str:
    """The first python block of the README's "Public API" section."""
    with open(README) as f:
        text = f.read()
    section = text.split("## Public API", 1)
    assert len(section) == 2, "README lost its Public API section"
    match = re.search(r"```python\n(.*?)```", section[1], flags=re.DOTALL)
    assert match, "Public API section lost its quickstart block"
    return match.group(1)


def test_readme_quickstart_runs_verbatim(capsys):
    source = _quickstart_source()
    # Executed exactly as documented — a doctest over the whole block.
    namespace: dict = {}
    exec(compile(source, "README.md::public-api-quickstart", "exec"), namespace)
    printed = capsys.readouterr().out
    # The quickstart prints the CV result ("xx.xx ± yy.yy") and labels.
    assert "±" in printed
    assert namespace["gram"].shape[0] == len(namespace["dataset"].graphs)
    assert len(namespace["labels"]) == 4
    assert namespace["bundle"].kernel_spec is not None
