"""Legacy execution kwargs: identical results + exactly one warning.

Every historical kwarg combination (``engine=``, ``store=``, ``sink=``,
``tile_checkpoint=``) on ``gram`` / ``cross_validate_graph_kernel`` /
``NystromApproximation`` must produce results identical to the ``ctx=``
form and emit exactly one ``DeprecationWarning`` per call.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.api import ExecutionContext
from repro.engine import DenseSink, MemmapSink
from repro.errors import ValidationError
from repro.kernels import KernelSpec, QJSKUnaligned, make
from repro.ml.cross_validation import cross_validate_graph_kernel
from repro.ml.nystrom import NystromApproximation
from repro.store import ArtifactStore


def one_deprecation(caught) -> str:
    """Assert exactly one DeprecationWarning was raised; return its text."""
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, [str(w.message) for w in caught]
    return str(deprecations[0].message)


@pytest.fixture()
def graphs(api_collection):
    return api_collection[0]


@pytest.fixture()
def labels(api_collection):
    return api_collection[1]


class TestGramShims:
    def test_engine_kwarg(self, graphs):
        kernel = QJSKUnaligned()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = kernel.gram(graphs, engine="serial")
        message = one_deprecation(caught)
        assert "engine" in message and "ExecutionContext" in message
        modern = kernel.gram(graphs, ctx=ExecutionContext(engine="serial"))
        assert np.array_equal(legacy, modern)

    def test_sink_kwarg(self, graphs, tmp_path):
        kernel = QJSKUnaligned()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = kernel.gram(
                graphs, sink=MemmapSink(str(tmp_path / "legacy.npy"))
            )
        assert "sink" in one_deprecation(caught)
        modern = kernel.gram(
            graphs,
            ctx=ExecutionContext(
                sink_factory=lambda: MemmapSink(str(tmp_path / "ctx.npy"))
            ),
        )
        assert np.array_equal(np.asarray(legacy), np.asarray(modern))

    def test_engine_and_sink_warn_once(self, graphs):
        kernel = QJSKUnaligned()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            kernel.gram(graphs, engine="serial", sink=DenseSink())
        message = one_deprecation(caught)
        assert "engine" in message and "sink" in message

    def test_ctx_plus_legacy_refused(self, graphs):
        kernel = QJSKUnaligned()
        with pytest.raises(ValidationError, match="not both"):
            kernel.gram(graphs, engine="serial", ctx=ExecutionContext())

    def test_cross_gram_engine_kwarg(self, graphs):
        kernel = QJSKUnaligned()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = kernel.cross_gram(graphs[:4], graphs[4:], engine="serial")
        one_deprecation(caught)
        modern = kernel.cross_gram(
            graphs[:4], graphs[4:], ctx=ExecutionContext(engine="serial")
        )
        assert np.array_equal(legacy, modern)

    def test_gram_extend_engine_kwarg(self, graphs):
        kernel = QJSKUnaligned()
        cached = kernel.gram(graphs[:6])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = kernel.gram_extend(
                cached, graphs[:6], graphs[6:10], engine="serial"
            )
        one_deprecation(caught)
        modern = kernel.gram_extend(
            cached, graphs[:6], graphs[6:10],
            ctx=ExecutionContext(engine="serial"),
        )
        assert np.array_equal(legacy, modern)

    def test_no_kwargs_no_warning(self, graphs):
        kernel = QJSKUnaligned()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            kernel.gram(graphs)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


class TestCrossValidateShims:
    CV = dict(n_folds=4, n_repeats=1, seed=5)

    def test_engine_kwarg(self, graphs, labels):
        kernel = make("WLSK")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = cross_validate_graph_kernel(
                kernel, graphs, labels, engine="serial", **self.CV
            )
        one_deprecation(caught)
        modern = cross_validate_graph_kernel(
            kernel, graphs, labels, ctx=ExecutionContext(engine="serial"),
            **self.CV,
        )
        assert legacy.mean_accuracy == modern.mean_accuracy
        assert legacy.per_repeat == modern.per_repeat

    def test_store_and_tile_checkpoint_kwargs(self, graphs, labels, tmp_path):
        kernel = make("WLSK")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = cross_validate_graph_kernel(
                kernel, graphs, labels,
                store=ArtifactStore(str(tmp_path / "legacy")),
                tile_checkpoint=True,
                **self.CV,
            )
        message = one_deprecation(caught)
        assert "store" in message and "tile_checkpoint" in message
        modern = cross_validate_graph_kernel(
            kernel, graphs, labels,
            ctx=ExecutionContext(store=ArtifactStore(str(tmp_path / "ctx"))),
            **self.CV,
        )
        assert legacy.mean_accuracy == modern.mean_accuracy

    def test_sink_kwarg(self, graphs, labels, tmp_path):
        kernel = make("WLSK")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = cross_validate_graph_kernel(
                kernel, graphs, labels,
                sink=MemmapSink(str(tmp_path / "cv.npy")),
                **self.CV,
            )
        assert "sink" in one_deprecation(caught)
        modern = cross_validate_graph_kernel(
            kernel, graphs, labels,
            ctx=ExecutionContext(
                sink_factory=lambda: MemmapSink(str(tmp_path / "cv2.npy"))
            ),
            **self.CV,
        )
        assert legacy.mean_accuracy == modern.mean_accuracy

    def test_store_plus_sink_unified_refusal(self, graphs, labels, tmp_path):
        kernel = make("WLSK")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValidationError, match="not.*both"):
                cross_validate_graph_kernel(
                    kernel, graphs, labels,
                    store=ArtifactStore(str(tmp_path / "s")),
                    sink=MemmapSink(str(tmp_path / "g.npy")),
                    **self.CV,
                )

    def test_ensure_psd_out_of_core_unified_refusal(
        self, graphs, labels, tmp_path
    ):
        """Satellite: the CV wrapper and gram refuse through the *same*
        ExecutionContext.validate error, naming the offending fields."""
        kernel = QJSKUnaligned()
        ctx = ExecutionContext(
            sink_factory=lambda: MemmapSink(str(tmp_path / "psd.npy"))
        )
        with pytest.raises(ValidationError, match="offending fields"):
            cross_validate_graph_kernel(
                kernel, graphs, labels, ctx=ctx, ensure_psd=True, **self.CV
            )
        with pytest.raises(ValidationError, match="offending fields"):
            kernel.gram(graphs, ensure_psd=True, ctx=ctx)


class TestNystromShims:
    def test_engine_and_store_kwargs(self, graphs, tmp_path):
        kernel = QJSKUnaligned()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = NystromApproximation(
                kernel, n_landmarks=4, seed=0, engine="serial",
                store=ArtifactStore(str(tmp_path / "legacy")),
            ).fit(graphs)
        message = one_deprecation(caught)
        assert "engine" in message and "store" in message
        modern = NystromApproximation(
            kernel, n_landmarks=4, seed=0,
            ctx=ExecutionContext(
                engine="serial", store=ArtifactStore(str(tmp_path / "ctx"))
            ),
        ).fit(graphs)
        assert np.array_equal(legacy.embedding_, modern.embedding_)
        assert np.array_equal(
            legacy.approximate_gram(), modern.approximate_gram()
        )

    def test_fit_and_transform_emit_no_further_warnings(self, graphs):
        approximation = NystromApproximation(
            kernel=QJSKUnaligned(), n_landmarks=4, seed=0,
            ctx=ExecutionContext(engine="serial"),
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            approximation.fit(graphs)
            approximation.transform(graphs[:3])
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
