"""Tests for Umeyama spectral matching."""

import numpy as np
import pytest

from repro.errors import AlignmentError
from repro.alignment.umeyama import (
    permute_with,
    umeyama_correspondence,
    umeyama_similarity,
)
from repro.graphs import generators as gen
from repro.quantum.density import graph_density_matrix


class TestCorrespondence:
    def test_is_permutation_matrix(self):
        g_a = gen.barabasi_albert(7, 2, seed=0)
        g_b = gen.erdos_renyi(7, 0.4, seed=1)
        q = umeyama_correspondence(g_a.adjacency, g_b.adjacency)
        assert np.array_equal(q.sum(axis=0), np.ones(7))
        assert np.array_equal(q.sum(axis=1), np.ones(7))

    def test_identity_for_identical_inputs(self):
        g = gen.barabasi_albert(6, 2, seed=2)
        rho = graph_density_matrix(g)
        q = umeyama_correspondence(rho, rho)
        aligned = permute_with(rho, q)
        # Matching a matrix to itself must preserve the QJSD-relevant
        # structure (spectrum), even if the permutation is not identity
        # under eigenvector sign ambiguity.
        assert np.allclose(
            np.linalg.eigvalsh(aligned), np.linalg.eigvalsh(rho), atol=1e-9
        )

    def test_recovers_a_permutation(self):
        """Matching G against a permuted copy should recover an isomorphism
        that maps the density matrix back (up to eigen-degeneracies)."""
        g = gen.barabasi_albert(8, 2, seed=3)
        rho = graph_density_matrix(g)
        perm = np.random.default_rng(0).permutation(8)
        rho_perm = rho[np.ix_(perm, perm)]
        q = umeyama_correspondence(rho, rho_perm)
        aligned = permute_with(rho_perm, q)
        # At minimum, alignment must not increase the distance vs naive.
        assert np.linalg.norm(aligned - rho) <= np.linalg.norm(rho_perm - rho) + 1e-9

    def test_size_padding(self):
        small = gen.path_graph(3)
        large = gen.cycle_graph(6)
        q = umeyama_correspondence(large.adjacency, small.adjacency)
        assert q.shape == (6, 6)


class TestSimilarity:
    def test_shape(self):
        s = umeyama_similarity(np.eye(4), np.eye(6))
        assert s.shape == (6, 6)

    def test_nonnegative(self):
        g_a = gen.erdos_renyi(5, 0.5, seed=4)
        g_b = gen.erdos_renyi(5, 0.5, seed=5)
        assert np.all(umeyama_similarity(g_a.adjacency, g_b.adjacency) >= 0)


class TestPermuteWith:
    def test_identity(self):
        m = np.diag([1.0, 2.0])
        assert np.allclose(permute_with(m, np.eye(2)), m)

    def test_swap(self):
        m = np.diag([1.0, 2.0])
        swap = np.asarray([[0.0, 1.0], [1.0, 0.0]])
        assert np.allclose(permute_with(m, swap), np.diag([2.0, 1.0]))

    def test_rejects_nonsquare_permutation(self):
        with pytest.raises(AlignmentError):
            permute_with(np.eye(2), np.zeros((2, 3)))

    def test_rejects_oversized_matrix(self):
        with pytest.raises(AlignmentError):
            permute_with(np.eye(3), np.eye(2))
