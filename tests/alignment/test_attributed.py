"""Tests for the label-augmented vertex representations."""

import numpy as np
import pytest

from repro.alignment.attributed import AttributedDBExtractor
from repro.alignment.depth_based import DBRepresentationExtractor
from repro.errors import AlignmentError, ValidationError
from repro.graphs import generators as gen


@pytest.fixture(scope="module")
def labelled_graphs():
    rng = np.random.default_rng(0)
    graphs = []
    for i in range(4):
        graph = gen.random_tree(8, seed=i)
        graphs.append(
            graph.with_labels(rng.integers(0, 3, size=graph.n_vertices))
        )
    return graphs


class TestFit:
    def test_alphabet_is_union_over_collection(self, labelled_graphs):
        extractor = AttributedDBExtractor(max_layers=3).fit(labelled_graphs)
        expected = sorted(
            {int(v) for g in labelled_graphs for v in g.labels}
        )
        assert extractor.alphabet_.tolist() == expected

    def test_static_column_count(self, labelled_graphs):
        extractor = AttributedDBExtractor(max_layers=3, radius=2).fit(
            labelled_graphs
        )
        assert extractor.n_static_ == extractor.alphabet_.size * 3

    def test_layer_count_matches_plain_extractor(self, labelled_graphs):
        attributed = AttributedDBExtractor(max_layers=4).fit(labelled_graphs)
        plain = DBRepresentationExtractor(max_layers=4).fit(labelled_graphs)
        assert attributed.n_layers_ == plain.n_layers_

    def test_empty_collection_rejected(self):
        with pytest.raises(AlignmentError):
            AttributedDBExtractor().fit([])

    def test_transform_before_fit_rejected(self, labelled_graphs):
        with pytest.raises(AlignmentError):
            AttributedDBExtractor().transform(labelled_graphs[0])

    def test_invalid_label_weight_rejected(self):
        with pytest.raises(ValidationError):
            AttributedDBExtractor(label_weight=0.0)


class TestTransform:
    def test_shape_is_layers_plus_static(self, labelled_graphs):
        extractor = AttributedDBExtractor(max_layers=3, radius=1).fit(
            labelled_graphs
        )
        matrix = extractor.transform(labelled_graphs[0])
        n = labelled_graphs[0].n_vertices
        assert matrix.shape == (n, extractor.n_layers_ + extractor.n_static_)

    def test_geometry_block_matches_plain_db(self, labelled_graphs):
        attributed = AttributedDBExtractor(max_layers=3).fit(labelled_graphs)
        plain = DBRepresentationExtractor(max_layers=3).fit(labelled_graphs)
        for graph in labelled_graphs:
            geometry = attributed.transform(graph)[:, : attributed.n_layers_]
            assert np.allclose(geometry, plain.transform(graph))

    def test_one_hot_block_encodes_own_label(self, labelled_graphs):
        extractor = AttributedDBExtractor(max_layers=2, label_weight=2.5).fit(
            labelled_graphs
        )
        graph = labelled_graphs[0]
        block = extractor.transform(graph)[:, extractor.n_layers_ :]
        index = {int(l): i for i, l in enumerate(extractor.alphabet_)}
        for v, label in enumerate(graph.labels):
            expected = np.zeros(extractor.alphabet_.size)
            expected[index[int(label)]] = 2.5
            assert np.allclose(block[v], expected)

    def test_unlabelled_graph_falls_back_to_degrees(self):
        graphs = [gen.star_graph(5), gen.path_graph(6)]
        extractor = AttributedDBExtractor(max_layers=2).fit(graphs)
        # star on 5 vertices: degrees {1, 4}; path: {1, 2} -> {1, 2, 4}
        assert extractor.alphabet_.tolist() == [1, 2, 4]

    def test_unseen_label_maps_to_zero_row(self, labelled_graphs):
        extractor = AttributedDBExtractor(max_layers=2).fit(labelled_graphs)
        stranger = gen.path_graph(4).with_labels([99, 99, 99, 99])
        block = extractor.transform(stranger)[:, extractor.n_layers_ :]
        assert np.allclose(block, 0.0)

    def test_radius_histograms_are_normalised(self, labelled_graphs):
        extractor = AttributedDBExtractor(
            max_layers=2, radius=2, label_weight=1.0
        ).fit(labelled_graphs)
        graph = labelled_graphs[1]
        matrix = extractor.transform(graph)
        alphabet_size = extractor.alphabet_.size
        for r in range(1, 3):
            start = extractor.n_layers_ + r * alphabet_size
            histograms = matrix[:, start : start + alphabet_size]
            assert np.allclose(histograms.sum(axis=1), 1.0)

    def test_radius_one_histogram_counts_closed_neighbourhood(self):
        # path 0-1-2 with labels a, b, a: vertex 1 sees {a, b, a}.
        graph = gen.path_graph(3).with_labels([0, 1, 0])
        extractor = AttributedDBExtractor(max_layers=1, radius=1).fit([graph])
        matrix = extractor.transform(graph)
        histogram = matrix[0, extractor.n_layers_ + 2 :]
        assert np.allclose(histogram, [0.5, 0.5])  # vertex 0 sees {a, b}
        histogram_mid = matrix[1, extractor.n_layers_ + 2 :]
        assert np.allclose(histogram_mid, [2 / 3, 1 / 3])

    def test_label_weight_scales_channels(self, labelled_graphs):
        light = AttributedDBExtractor(max_layers=2, label_weight=1.0).fit(
            labelled_graphs
        )
        heavy = AttributedDBExtractor(max_layers=2, label_weight=4.0).fit(
            labelled_graphs
        )
        graph = labelled_graphs[2]
        block_light = light.transform(graph)[:, light.n_layers_ :]
        block_heavy = heavy.transform(graph)[:, heavy.n_layers_ :]
        assert np.allclose(block_heavy, 4.0 * block_light)
