"""Tests for the hierarchical prototype system (Eq. 14/16, Fig. 2)."""

import numpy as np
import pytest

from repro.errors import AlignmentError
from repro.alignment.prototypes import (
    PrototypeHierarchy,
    fit_prototype_hierarchy,
    level_sizes,
)


def points(seed=0, n=60, dim=3):
    return np.random.default_rng(seed).normal(size=(n, dim))


class TestLevelSizes:
    def test_halving(self):
        assert level_sizes(16, 3) == [16, 8, 4]

    def test_floor(self):
        assert level_sizes(4, 4) == [4, 2, 2, 2]

    def test_small_start(self):
        assert level_sizes(1, 3) == [1, 1, 1]

    def test_custom_shrink(self):
        assert level_sizes(27, 3, shrink_factor=1.0 / 3.0) == [27, 9, 3]


class TestFit:
    def test_level_structure(self):
        hierarchy = fit_prototype_hierarchy(
            points(), n_prototypes=8, n_levels=3, seed=0
        )
        assert hierarchy.n_levels == 3
        assert [hierarchy.size(h) for h in (1, 2, 3)] == [8, 4, 2]

    def test_memberships_shapes(self):
        hierarchy = fit_prototype_hierarchy(
            points(1), n_prototypes=8, n_levels=3, seed=0
        )
        assert hierarchy.memberships[0].shape == (8,)
        assert hierarchy.memberships[1].shape == (4,)

    def test_membership_targets_valid(self):
        hierarchy = fit_prototype_hierarchy(
            points(2), n_prototypes=8, n_levels=3, seed=0
        )
        assert hierarchy.memberships[0].max() < 4
        assert hierarchy.memberships[1].max() < 2

    def test_deterministic(self):
        a = fit_prototype_hierarchy(points(3), n_prototypes=6, n_levels=2, seed=9)
        b = fit_prototype_hierarchy(points(3), n_prototypes=6, n_levels=2, seed=9)
        for ca, cb in zip(a.centers, b.centers):
            assert np.allclose(ca, cb)

    def test_rejects_empty(self):
        with pytest.raises(AlignmentError):
            fit_prototype_hierarchy(np.zeros((0, 2)), n_prototypes=4, n_levels=2)

    def test_warm_start_accepted(self):
        pts = points(4)
        warm = pts[:6].copy()
        hierarchy = fit_prototype_hierarchy(
            pts, n_prototypes=6, n_levels=2, seed=0, init_centers=warm
        )
        assert hierarchy.size(1) == 6


class TestAssignment:
    def test_level1_assignment_nearest(self):
        hierarchy = fit_prototype_hierarchy(
            points(5), n_prototypes=5, n_levels=2, seed=0
        )
        pts = points(6, n=10)
        assignment = hierarchy.assign_level1(pts)
        centers = hierarchy.centers[0]
        for i, a in enumerate(assignment):
            dists = np.linalg.norm(centers - pts[i], axis=1)
            assert dists[a] == pytest.approx(dists.min())

    def test_lift_consistency(self):
        """Lifting level-1 assignments must agree with membership chains."""
        hierarchy = fit_prototype_hierarchy(
            points(7), n_prototypes=8, n_levels=3, seed=1
        )
        pts = points(8, n=15)
        level1 = hierarchy.assign_level1(pts)
        level3 = hierarchy.lift_assignment(level1, 3)
        manual = hierarchy.memberships[1][hierarchy.memberships[0][level1]]
        assert np.array_equal(level3, manual)

    def test_assign_shortcut(self):
        hierarchy = fit_prototype_hierarchy(
            points(9), n_prototypes=8, n_levels=2, seed=2
        )
        pts = points(10, n=12)
        direct = hierarchy.assign(pts, 2)
        chained = hierarchy.lift_assignment(hierarchy.assign_level1(pts), 2)
        assert np.array_equal(direct, chained)

    def test_level_bounds_checked(self):
        hierarchy = fit_prototype_hierarchy(
            points(11), n_prototypes=4, n_levels=2, seed=0
        )
        with pytest.raises(AlignmentError):
            hierarchy.size(3)
        with pytest.raises(AlignmentError):
            hierarchy.assign(points(12, n=3), 0)

    def test_constructor_validates_membership_count(self):
        with pytest.raises(AlignmentError):
            PrototypeHierarchy([np.zeros((4, 2)), np.zeros((2, 2))], [])
