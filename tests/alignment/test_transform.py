"""Tests for the aligned structures (Eq. 18-25)."""

import numpy as np
import pytest

from repro.errors import AlignmentError
from repro.alignment.correspondence import one_hot
from repro.alignment.transform import (
    AlignedGraphStructures,
    aligned_adjacency,
    aligned_density,
    average_over_k,
)
from repro.graphs import generators as gen
from repro.quantum.density import check_density_matrix, graph_density_matrix


@pytest.fixture
def correspondence():
    # 5 vertices mapped onto 3 prototypes.
    return one_hot(np.asarray([0, 0, 1, 2, 2]), 3)


class TestAlignedAdjacency:
    def test_shape_and_symmetry(self, correspondence):
        g = gen.cycle_graph(5)
        out = aligned_adjacency(g.adjacency, correspondence)
        assert out.shape == (3, 3)
        assert np.allclose(out, out.T)

    def test_total_weight_conserved(self, correspondence):
        """C^T A C preserves the total edge weight (sum of all entries)."""
        g = gen.erdos_renyi(5, 0.7, seed=0)
        out = aligned_adjacency(g.adjacency, correspondence)
        assert out.sum() == pytest.approx(g.adjacency.sum())

    def test_diagonal_counts_intra_cluster_edges(self):
        g = gen.path_graph(4)  # edges 0-1, 1-2, 2-3
        c = one_hot(np.asarray([0, 0, 1, 1]), 2)
        out = aligned_adjacency(g.adjacency, c)
        # Edge 0-1 is inside prototype 0; C^T A C doubles it on the diagonal.
        assert out[0, 0] == pytest.approx(2.0)
        assert out[0, 1] == pytest.approx(1.0)

    def test_rejects_size_mismatch(self, correspondence):
        with pytest.raises(AlignmentError):
            aligned_adjacency(np.zeros((4, 4)), correspondence)


class TestAlignedDensity:
    def test_valid_density_after_renormalisation(self, correspondence):
        g = gen.barabasi_albert(5, 2, seed=1)
        rho = graph_density_matrix(g)
        out = aligned_density(rho, correspondence)
        check_density_matrix(out)

    def test_without_renormalisation_psd_but_not_unit_trace(self, correspondence):
        g = gen.star_graph(5)
        rho = graph_density_matrix(g)
        out = aligned_density(rho, correspondence, renormalize=False)
        values = np.linalg.eigvalsh(out)
        assert values.min() >= -1e-9  # congruence preserves PSD

    def test_rejects_size_mismatch(self, correspondence):
        with pytest.raises(AlignmentError):
            aligned_density(np.eye(4) / 4, correspondence)


class TestAverageOverK:
    def test_mean(self):
        out = average_over_k([np.zeros((2, 2)), np.full((2, 2), 2.0)])
        assert np.allclose(out, 1.0)

    def test_single(self):
        m = np.eye(3)
        assert np.array_equal(average_over_k([m]), m)

    def test_rejects_empty(self):
        with pytest.raises(AlignmentError):
            average_over_k([])

    def test_rejects_mixed_shapes(self):
        with pytest.raises(AlignmentError):
            average_over_k([np.zeros((2, 2)), np.zeros((3, 3))])


class TestAlignedGraphStructures:
    def test_accessors(self):
        structure = AlignedGraphStructures(
            [np.eye(2), np.eye(3)], [np.eye(2) / 2, np.eye(3) / 3]
        )
        assert structure.n_levels == 2
        assert structure.level_adjacency(1).shape == (2, 2)
        assert structure.level_density(2).shape == (3, 3)

    def test_level_bounds(self):
        structure = AlignedGraphStructures([np.eye(2)], [np.eye(2) / 2])
        with pytest.raises(AlignmentError):
            structure.level_adjacency(2)

    def test_rejects_inconsistent_lists(self):
        with pytest.raises(AlignmentError):
            AlignedGraphStructures([np.eye(2)], [])
