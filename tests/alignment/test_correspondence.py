"""Tests for correspondence matrices and the transitivity guarantee."""

import numpy as np
import pytest

from repro.errors import AlignmentError
from repro.alignment.correspondence import (
    aligned_vertex_pairs,
    check_correspondence_matrix,
    correspondence_is_transitive,
    correspondence_matrices,
    one_hot,
)
from repro.alignment.depth_based import DBRepresentationExtractor
from repro.alignment.prototypes import fit_prototype_hierarchy


@pytest.fixture
def fitted(mixed_collection):
    extractor = DBRepresentationExtractor(max_layers=4)
    reps = extractor.fit_transform(mixed_collection)
    hierarchy = fit_prototype_hierarchy(
        np.vstack(reps), n_prototypes=6, n_levels=3, seed=0
    )
    return reps, hierarchy


class TestOneHot:
    def test_structure(self):
        m = one_hot(np.asarray([0, 2, 1]), 3)
        assert m.shape == (3, 3)
        assert np.array_equal(m.sum(axis=1), np.ones(3))

    def test_rejects_out_of_range(self):
        with pytest.raises(AlignmentError):
            one_hot(np.asarray([0, 5]), 3)

    def test_rejects_matrix_input(self):
        with pytest.raises(AlignmentError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestCorrespondenceMatrices:
    def test_family_shapes(self, fitted):
        reps, hierarchy = fitted
        matrices = correspondence_matrices(reps[0], hierarchy)
        assert len(matrices) == 3
        for level, matrix in enumerate(matrices, start=1):
            assert matrix.shape == (reps[0].shape[0], hierarchy.size(level))
            check_correspondence_matrix(matrix)

    def test_row_sums_exactly_one(self, fitted):
        reps, hierarchy = fitted
        for rep in reps:
            for matrix in correspondence_matrices(rep, hierarchy):
                assert np.all(matrix.sum(axis=1) == 1.0)

    def test_hierarchy_nesting(self, fitted):
        """If two vertices share a level-1 prototype they must share every
        higher-level prototype (the chain preserves nesting)."""
        reps, hierarchy = fitted
        matrices = correspondence_matrices(reps[0], hierarchy)
        level1 = np.argmax(matrices[0], axis=1)
        level3 = np.argmax(matrices[2], axis=1)
        for u in range(len(level1)):
            for v in range(len(level1)):
                if level1[u] == level1[v]:
                    assert level3[u] == level3[v]


class TestValidation:
    def test_rejects_nonbinary(self):
        with pytest.raises(AlignmentError, match="binary"):
            check_correspondence_matrix(np.full((2, 2), 0.5))

    def test_rejects_multi_assignment(self):
        bad = np.asarray([[1.0, 1.0], [1.0, 0.0]])
        with pytest.raises(AlignmentError, match="one 1"):
            check_correspondence_matrix(bad)

    def test_rejects_1d(self):
        with pytest.raises(AlignmentError):
            check_correspondence_matrix(np.ones(3))


class TestAlignedPairs:
    def test_pairs_via_shared_prototype(self):
        c_p = one_hot(np.asarray([0, 1]), 3)
        c_q = one_hot(np.asarray([1, 2]), 3)
        assert aligned_vertex_pairs(c_p, c_q) == [(1, 0)]

    def test_rejects_different_prototype_sets(self):
        with pytest.raises(AlignmentError):
            aligned_vertex_pairs(one_hot(np.asarray([0]), 2), one_hot(np.asarray([0]), 3))


class TestTransitivity:
    def test_one_hot_always_transitive(self, fitted):
        reps, hierarchy = fitted
        for level in range(3):
            matrices = [
                correspondence_matrices(rep, hierarchy)[level] for rep in reps
            ]
            assert correspondence_is_transitive(matrices)

    def test_detects_violation(self):
        """Hand-built non-functional alignment: a~b, b~c but not a~c."""
        c_p = np.asarray([[1.0, 0.0, 0.0]])  # vertex a -> prototype 0
        c_q = np.asarray([[1.0, 1.0, 0.0]])  # vertex b -> prototypes 0 and 1 (invalid row)
        with pytest.raises(AlignmentError):
            correspondence_is_transitive([c_p, c_q])
