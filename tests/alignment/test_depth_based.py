"""Tests for depth-based vertex representations."""

import numpy as np
import pytest

from repro.errors import AlignmentError, ValidationError
from repro.graphs import generators as gen
from repro.alignment.depth_based import DBRepresentationExtractor, db_representations


class TestDBRepresentations:
    def test_shape(self, petersen_like):
        reps = db_representations(petersen_like, 4)
        assert reps.shape == (10, 4)

    def test_entropies_nonnegative(self, mixed_collection):
        for g in mixed_collection:
            reps = db_representations(g, 5)
            assert np.all(reps >= -1e-12)

    def test_saturation_beyond_eccentricity(self, path4):
        reps = db_representations(path4, 10)
        # Beyond the diameter the expansion subgraph stops growing.
        assert np.allclose(reps[:, 3], reps[:, 9])

    def test_distinguishes_hub_from_leaf(self, star5):
        reps = db_representations(star5, 2)
        assert not np.allclose(reps[0], reps[1])

    def test_symmetric_vertices_equal(self):
        g = gen.cycle_graph(6)
        reps = db_representations(g, 3)
        # All cycle vertices are equivalent by symmetry.
        assert np.allclose(reps, reps[0])

    def test_permutation_equivariance(self, petersen_like):
        perm = np.random.default_rng(3).permutation(10)
        reps = db_representations(petersen_like, 4)
        reps_perm = db_representations(petersen_like.permuted(perm), 4)
        assert np.allclose(reps_perm, reps[perm])

    def test_von_neumann_variant(self, star5):
        reps = db_representations(star5, 3, entropy="von_neumann")
        assert reps.shape == (5, 3)
        assert np.all(np.isfinite(reps))

    def test_rejects_unknown_entropy(self, star5):
        with pytest.raises(ValidationError, match="entropy"):
            db_representations(star5, 3, entropy="boltzmann")

    def test_rejects_zero_layers(self, star5):
        with pytest.raises(ValidationError):
            db_representations(star5, 0)

    def test_edgeless_graph_zero(self):
        from repro.graphs.graph import Graph

        reps = db_representations(Graph(np.zeros((3, 3))), 2)
        assert np.allclose(reps, 0.0)


class TestExtractor:
    def test_layer_count_from_collection(self, mixed_collection):
        extractor = DBRepresentationExtractor(max_layers=100)
        extractor.fit(mixed_collection)
        expected = max(g.diameter() for g in mixed_collection if g.diameter() > 0)
        assert extractor.n_layers_ == expected

    def test_cap_applies(self, mixed_collection):
        extractor = DBRepresentationExtractor(max_layers=2)
        extractor.fit(mixed_collection)
        assert extractor.n_layers_ == 2

    def test_transform_before_fit_rejected(self, star5):
        with pytest.raises(AlignmentError, match="fitted"):
            DBRepresentationExtractor().transform(star5)

    def test_fit_transform_shapes(self, mixed_collection):
        extractor = DBRepresentationExtractor(max_layers=4)
        reps = extractor.fit_transform(mixed_collection)
        assert len(reps) == len(mixed_collection)
        for g, rep in zip(mixed_collection, reps):
            assert rep.shape == (g.n_vertices, extractor.n_layers_)

    def test_fit_empty_rejected(self):
        with pytest.raises(AlignmentError):
            DBRepresentationExtractor().fit([])
