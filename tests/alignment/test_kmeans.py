"""Tests for the from-scratch k-means."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlignmentError
from repro.alignment.kmeans import assign_to_centers, kmeans, kmeans_plusplus_init


def blobs(seed: int = 0, per: int = 20):
    rng = np.random.default_rng(seed)
    return np.vstack(
        [rng.normal(center, 0.15, (per, 2)) for center in ((0, 0), (3, 0), (0, 3))]
    )


class TestKMeans:
    def test_recovers_blobs(self):
        points = blobs()
        result = kmeans(points, 3, seed=0)
        # Each blob should land in its own cluster.
        assignments = result.assignments
        groups = [set(assignments[i * 20 : (i + 1) * 20]) for i in range(3)]
        assert all(len(g) == 1 for g in groups)
        assert len(set.union(*groups)) == 3

    def test_deterministic(self):
        points = blobs(1)
        a = kmeans(points, 3, seed=42)
        b = kmeans(points, 3, seed=42)
        assert np.array_equal(a.assignments, b.assignments)
        assert np.allclose(a.centers, b.centers)

    def test_inertia_decreases_with_more_clusters(self):
        points = blobs(2)
        loose = kmeans(points, 2, seed=0).inertia
        tight = kmeans(points, 6, seed=0).inertia
        assert tight < loose

    def test_clamps_clusters_to_points(self):
        points = np.asarray([[0.0, 0.0], [1.0, 1.0]])
        result = kmeans(points, 10, seed=0)
        assert result.centers.shape[0] == 2

    def test_empty_cluster_reseeding(self):
        # Duplicated points force potential empty clusters.
        points = np.vstack([np.zeros((5, 2)), np.ones((5, 2)), np.full((5, 2), 9.0)])
        result = kmeans(points, 3, seed=0)
        assert len(set(result.assignments.tolist())) == 3

    def test_single_point(self):
        result = kmeans(np.asarray([[2.0, 2.0]]), 1, seed=0)
        assert np.allclose(result.centers, [[2.0, 2.0]])
        assert result.inertia == pytest.approx(0.0)

    def test_warm_start_respected(self):
        points = blobs(3)
        warm = np.asarray([[0.0, 0.0], [3.0, 0.0], [0.0, 3.0]])
        result = kmeans(points, 3, seed=0, init_centers=warm)
        assert result.converged
        # Warm start at the true centers converges immediately-ish.
        assert result.n_iterations <= 5

    def test_warm_start_wrong_dim_rejected(self):
        with pytest.raises(AlignmentError):
            kmeans(blobs(), 3, init_centers=np.zeros((3, 5)))

    def test_rejects_empty(self):
        with pytest.raises(AlignmentError):
            kmeans(np.zeros((0, 2)), 2)

    def test_rejects_nan(self):
        with pytest.raises(AlignmentError):
            kmeans(np.asarray([[np.nan, 0.0]]), 1)

    def test_result_repr(self):
        result = kmeans(blobs(), 3, seed=0)
        assert "KMeansResult" in repr(result)


class TestInit:
    def test_plusplus_centers_are_points(self):
        points = blobs(4)
        rng = np.random.default_rng(0)
        centers = kmeans_plusplus_init(points, 3, rng)
        for c in centers:
            assert any(np.allclose(c, p) for p in points)

    def test_plusplus_spreads_centers(self):
        points = blobs(5)
        rng = np.random.default_rng(1)
        centers = kmeans_plusplus_init(points, 3, rng)
        dists = [
            np.linalg.norm(centers[i] - centers[j])
            for i in range(3)
            for j in range(i + 1, 3)
        ]
        assert min(dists) > 1.0  # one per blob

    def test_identical_points(self):
        points = np.zeros((5, 2))
        rng = np.random.default_rng(2)
        centers = kmeans_plusplus_init(points, 3, rng)
        assert centers.shape == (3, 2)


class TestAssign:
    def test_nearest(self):
        centers = np.asarray([[0.0, 0.0], [10.0, 0.0]])
        points = np.asarray([[1.0, 0.0], [9.0, 0.0]])
        assert assign_to_centers(points, centers).tolist() == [0, 1]

    def test_rejects_dim_mismatch(self):
        with pytest.raises(AlignmentError):
            assign_to_centers(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_rejects_no_centers(self):
        with pytest.raises(AlignmentError):
            assign_to_centers(np.zeros((2, 2)), np.zeros((0, 2)))


@settings(max_examples=20, deadline=None)
@given(
    n_points=st.integers(3, 40),
    n_clusters=st.integers(1, 6),
    seed=st.integers(0, 100),
)
def test_kmeans_invariants(n_points, n_clusters, seed):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n_points, 3))
    result = kmeans(points, n_clusters, seed=seed)
    k = min(n_clusters, n_points)
    assert result.centers.shape == (k, 3)
    assert result.assignments.shape == (n_points,)
    assert result.assignments.min() >= 0
    assert result.assignments.max() < k
    assert result.inertia >= 0.0
    # Every cluster is non-empty (reseeding guarantees it).
    assert len(set(result.assignments.tolist())) == k
