"""Tests for the numpy autograd engine (incl. numerical gradient checks)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gnn.autograd import Parameter, Tensor, glorot


def numeric_grad(build_loss, param, eps=1e-6):
    """Central-difference gradient of ``build_loss(param_data)``."""
    base = param.data.copy()
    grad = np.zeros_like(base)
    it = np.nditer(base, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        plus, minus = base.copy(), base.copy()
        plus[idx] += eps
        minus[idx] -= eps
        grad[idx] = (build_loss(plus) - build_loss(minus)) / (2 * eps)
        it.iternext()
    return grad


class TestBasicOps:
    def test_add_backward(self):
        a = Parameter([1.0, 2.0])
        b = Parameter([3.0, 4.0])
        (a + b).sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 1.0)

    def test_mul_backward(self):
        a = Parameter([2.0, 3.0])
        b = Parameter([5.0, 7.0])
        (a * b).sum().backward()
        assert np.allclose(a.grad, b.data)
        assert np.allclose(b.grad, a.data)

    def test_sub_and_neg(self):
        a = Parameter([4.0])
        b = Parameter([1.0])
        (a - b).sum().backward()
        assert a.grad[0] == 1.0 and b.grad[0] == -1.0

    def test_div_backward(self):
        a = Parameter([6.0])
        b = Parameter([2.0])
        (a / b).sum().backward()
        assert a.grad[0] == pytest.approx(0.5)
        assert b.grad[0] == pytest.approx(-1.5)

    def test_matmul_gradient_numeric(self):
        rng = np.random.default_rng(0)
        w = Parameter(rng.normal(size=(3, 2)))
        x = Tensor(rng.normal(size=(4, 3)))

        def loss_of(data):
            return float(((x.data @ data) ** 2).sum())

        (x @ w * (x @ w)).sum().backward()
        assert np.allclose(w.grad, numeric_grad(loss_of, w), atol=1e-5)

    def test_broadcast_bias_gradient(self):
        bias = Parameter(np.zeros((1, 3)))
        x = Tensor(np.ones((5, 3)))
        (x + bias).sum().backward()
        assert np.allclose(bias.grad, 5.0)  # summed over the broadcast axis

    def test_gradient_accumulates_over_reuse(self):
        a = Parameter([2.0])
        (a * a).sum().backward()
        assert a.grad[0] == pytest.approx(4.0)  # d(a^2)/da = 2a


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["relu", "tanh", "sigmoid"])
    def test_numeric_gradient(self, op):
        rng = np.random.default_rng(1)
        w = Parameter(rng.normal(size=(4,)) + 0.1)

        def forward(t):
            return getattr(t, op)().sum()

        forward(w).backward()

        def loss_of(data):
            return float(forward(Tensor(data)).data)

        assert np.allclose(w.grad, numeric_grad(loss_of, w), atol=1e-5)

    def test_relu_kills_negative(self):
        w = Parameter([-1.0, 2.0])
        w.relu().sum().backward()
        assert w.grad.tolist() == [0.0, 1.0]


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        w = Parameter(np.arange(6.0).reshape(2, 3))
        w.reshape(3, 2).sum().backward()
        assert np.allclose(w.grad, 1.0)

    def test_transpose_gradient(self):
        w = Parameter(np.asarray([[1.0, 2.0]]))
        (w.transpose() * Tensor([[3.0], [4.0]])).sum().backward()
        assert np.allclose(w.grad, [[3.0, 4.0]])

    def test_gather_rows_scatter_adds(self):
        w = Parameter(np.asarray([[1.0], [2.0], [3.0]]))
        w.gather_rows([0, 0, 2]).sum().backward()
        assert w.grad.ravel().tolist() == [2.0, 0.0, 1.0]

    def test_concatenate_gradient_split(self):
        a = Parameter(np.ones((2, 2)))
        b = Parameter(np.ones((2, 3)))
        Tensor.concatenate([a, b], axis=1).sum().backward()
        assert a.grad.shape == (2, 2) and np.allclose(a.grad, 1.0)
        assert b.grad.shape == (2, 3) and np.allclose(b.grad, 1.0)

    def test_mean_axis_gradient(self):
        w = Parameter(np.ones((4, 2)))
        w.mean(axis=0).sum().backward()
        assert np.allclose(w.grad, 0.25)


class TestLoss:
    def test_softmax_cross_entropy_value(self):
        logits = Parameter(np.asarray([[0.0, 0.0]]))
        loss = logits.softmax_cross_entropy(0)
        assert float(loss.data) == pytest.approx(np.log(2))

    def test_softmax_cross_entropy_gradient(self):
        logits = Parameter(np.asarray([[2.0, -1.0, 0.5]]))
        logits.softmax_cross_entropy(1).backward()

        def loss_of(data):
            return float(Tensor(data).softmax_cross_entropy(1).data)

        assert np.allclose(logits.grad, numeric_grad(loss_of, logits), atol=1e-5)

    def test_extreme_logits_stable(self):
        logits = Parameter(np.asarray([[1000.0, -1000.0]]))
        loss = logits.softmax_cross_entropy(0)
        assert np.isfinite(float(loss.data))


class TestBackwardValidation:
    def test_backward_requires_scalar(self):
        w = Parameter(np.ones((2, 2)))
        with pytest.raises(ValidationError):
            (w * 2).backward()

    def test_no_grad_for_constants(self):
        const = Tensor([1.0, 2.0])
        w = Parameter([3.0, 4.0])
        (const * w).sum().backward()
        assert const.grad is None
        assert w.grad is not None


class TestGlorot:
    def test_bounds(self):
        w = glorot(np.random.default_rng(0), 100, 100)
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(w) <= limit)

    def test_shape(self):
        assert glorot(np.random.default_rng(0), 3, 7).shape == (3, 7)
