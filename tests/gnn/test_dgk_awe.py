"""Tests for the embedding baselines DGK and AWE."""

import numpy as np
import pytest

from repro.gnn.awe import AnonymousWalkKernel, anonymous_pattern, sample_awe_distribution
from repro.gnn.dgk import DeepGraphKernel
from repro.graphs import generators as gen
from repro.utils.linalg import is_positive_semidefinite
from repro.utils.rng import as_rng


class TestAnonymousPattern:
    def test_basic(self):
        assert anonymous_pattern([7, 3, 7, 9]) == (0, 1, 0, 2)

    def test_label_free(self):
        """Anonymisation forgets identities: any relabelling gives the same
        pattern."""
        assert anonymous_pattern([1, 2, 1]) == anonymous_pattern([9, 4, 9])

    def test_all_distinct(self):
        assert anonymous_pattern([5, 6, 7]) == (0, 1, 2)


class TestAWEDistribution:
    def test_probabilities_sum_to_one(self):
        g = gen.barabasi_albert(10, 2, seed=0)
        dist = sample_awe_distribution(g, walk_length=4, n_walks=300, rng=as_rng(0))
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_cycle_patterns_limited(self):
        """On a cycle, anonymous walks can only step to new or previous
        vertices — far fewer patterns than on a clique."""
        cycle_dist = sample_awe_distribution(
            gen.cycle_graph(10), walk_length=4, n_walks=400, rng=as_rng(1)
        )
        clique_dist = sample_awe_distribution(
            gen.complete_graph(10), walk_length=4, n_walks=400, rng=as_rng(1)
        )
        assert len(cycle_dist) < len(clique_dist)

    def test_edgeless_graph_empty(self):
        from repro.graphs.graph import Graph

        dist = sample_awe_distribution(
            Graph(np.zeros((3, 3))), walk_length=3, n_walks=50, rng=as_rng(2)
        )
        assert dist == {}


class TestAWEKernel:
    def test_gram_psd(self):
        graphs = [gen.cycle_graph(8), gen.star_graph(8), gen.complete_graph(6)]
        gram = AnonymousWalkKernel(n_walks=200, seed=0).gram(graphs, normalize=True)
        assert is_positive_semidefinite(gram, tol=1e-7)

    def test_similar_structures_closer(self):
        graphs = [
            gen.cycle_graph(10),
            gen.cycle_graph(12),
            gen.complete_graph(8),
        ]
        gram = AnonymousWalkKernel(n_walks=400, seed=0).gram(graphs, normalize=True)
        assert gram[0, 1] > gram[0, 2]

    def test_deterministic(self):
        graphs = [gen.cycle_graph(6), gen.star_graph(6)]
        kernel = AnonymousWalkKernel(n_walks=100, seed=5)
        assert np.allclose(kernel.gram(graphs), kernel.gram(graphs))


class TestDGK:
    def test_gram_psd(self):
        graphs = [
            gen.cycle_graph(7), gen.path_graph(7), gen.star_graph(7),
            gen.barabasi_albert(8, 2, seed=0),
        ]
        gram = DeepGraphKernel().gram(graphs, normalize=True)
        assert is_positive_semidefinite(gram, tol=1e-7)

    def test_dominates_plain_wl_similarity(self):
        """The PMI matrix M has an identity component, so DGK >= WL gram."""
        from repro.kernels.wl import wl_feature_matrix

        graphs = [gen.cycle_graph(7), gen.star_graph(7)]
        dgk = DeepGraphKernel(n_iterations=2)
        gram = dgk.gram(graphs)
        features = wl_feature_matrix(graphs, 2)
        plain = features @ features.T
        assert np.all(gram >= plain - 1e-6)

    def test_separates_structures(self):
        graphs = [gen.cycle_graph(8), gen.cycle_graph(8), gen.star_graph(8)]
        gram = DeepGraphKernel(n_iterations=2).gram(graphs, normalize=True)
        assert gram[0, 1] > gram[0, 2]
