"""Tests for the Table V models (DGCNN, DCNN, PSGCNN) and training."""

import numpy as np
import pytest

from repro.gnn.models import DCNN, DGCNN, PSGCNN, evaluate_model
from repro.gnn.training import Adam, train_graph_classifier
from repro.graphs import generators as gen

MODELS = [DGCNN, DCNN, PSGCNN]


@pytest.fixture(scope="module")
def toy_problem():
    graphs = (
        [gen.random_tree(10, seed=i) for i in range(10)]
        + [gen.erdos_renyi(10, 0.6, seed=i).largest_component() for i in range(10)]
    )
    labels = np.asarray([0] * 10 + [1] * 10)
    return graphs, labels


@pytest.mark.parametrize("model_cls", MODELS)
class TestModels:
    def test_logits_shape(self, model_cls, toy_problem):
        graphs, _ = toy_problem
        model = model_cls(2, seed=0)
        assert model.logits(graphs[0]).data.shape == (1, 2)

    def test_loss_positive(self, model_cls, toy_problem):
        graphs, labels = toy_problem
        model = model_cls(2, seed=0)
        loss = model.loss(graphs[0], int(labels[0]))
        assert float(loss.data) > 0.0

    def test_gradients_flow_to_all_parameters(self, model_cls, toy_problem):
        graphs, labels = toy_problem
        model = model_cls(2, seed=0)
        model.loss(graphs[0], int(labels[0])).backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).max() > 0 for g in grads)

    def test_learns_separable_problem(self, model_cls, toy_problem):
        graphs, labels = toy_problem
        model = model_cls(2, seed=0)
        train_graph_classifier(model, graphs, labels, n_epochs=30, seed=1)
        assert evaluate_model(model, graphs, labels) >= 0.85

    def test_three_class_head(self, model_cls, toy_problem):
        graphs, _ = toy_problem
        model = model_cls(3, seed=0)
        assert model.logits(graphs[0]).data.shape == (1, 3)

    def test_prediction_in_range(self, model_cls, toy_problem):
        graphs, _ = toy_problem
        model = model_cls(2, seed=0)
        assert model.predict(graphs[0]) in (0, 1)


class TestAdam:
    def test_reduces_quadratic(self):
        from repro.gnn.autograd import Parameter

        w = Parameter(np.asarray([5.0]))
        optimizer = Adam([w], learning_rate=0.2)
        for _ in range(100):
            optimizer.zero_grad()
            (w * w).sum().backward()
            optimizer.step()
        assert abs(float(w.data[0])) < 0.1

    def test_rejects_empty_params(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            Adam([])

    def test_skips_none_gradients(self):
        from repro.gnn.autograd import Parameter

        w = Parameter(np.ones(2))
        optimizer = Adam([w])
        optimizer.step()  # no gradient accumulated; must not crash
        assert np.allclose(w.data, 1.0)


class TestTraining:
    def test_loss_curve_decreases(self, toy_problem):
        graphs, labels = toy_problem
        model = DCNN(2, seed=0)
        curve = train_graph_classifier(model, graphs, labels, n_epochs=20, seed=0)
        assert curve[-1] < curve[0]

    def test_deterministic_training(self, toy_problem):
        graphs, labels = toy_problem
        a = DCNN(2, seed=3)
        b = DCNN(2, seed=3)
        train_graph_classifier(a, graphs, labels, n_epochs=5, seed=4)
        train_graph_classifier(b, graphs, labels, n_epochs=5, seed=4)
        assert np.allclose(a.head.weight.data, b.head.weight.data)

    def test_evaluate_model_rejects_empty(self, toy_problem):
        from repro.errors import ValidationError

        graphs, labels = toy_problem
        model = DCNN(2, seed=0)
        with pytest.raises(ValidationError):
            evaluate_model(model, [], [])
