"""Tests for the GNN layers."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gnn.autograd import Tensor
from repro.gnn.layers import (
    Conv1D,
    Dense,
    GCNLayer,
    degree_features,
    renormalized_adjacency,
    sort_pooling_indices,
)
from repro.graphs import generators as gen


class TestDense:
    def test_output_shape(self):
        layer = Dense(4, 3, np.random.default_rng(0))
        out = layer(Tensor(np.ones((5, 4))))
        assert out.data.shape == (5, 3)

    def test_parameters_registered(self):
        layer = Dense(4, 3, np.random.default_rng(0))
        assert len(layer.parameters()) == 2


class TestGCN:
    def test_renormalized_adjacency_rows(self, petersen_like):
        a_hat = renormalized_adjacency(petersen_like)
        # D^{-1/2}(A+I)D^{-1/2} for a 3-regular graph has row sums 1.
        assert np.allclose(a_hat.sum(axis=1), 1.0)

    def test_gcn_layer_shape(self, petersen_like):
        layer = GCNLayer(5, 7, np.random.default_rng(0))
        a_hat = Tensor(renormalized_adjacency(petersen_like))
        x = Tensor(np.ones((10, 5)))
        assert layer(a_hat, x).data.shape == (10, 7)

    def test_gcn_propagates_information(self, star5):
        layer = GCNLayer(1, 1, np.random.default_rng(1))
        a_hat = Tensor(renormalized_adjacency(star5))
        x = np.zeros((5, 1))
        x[0, 0] = 1.0  # signal at the hub
        out = layer(a_hat, Tensor(x)).data
        assert abs(out[1, 0]) > 1e-6  # leaves receive hub signal


class TestConv1D:
    def test_output_length(self):
        conv = Conv1D(channels=3, filters=4, kernel=2, rng=np.random.default_rng(0))
        out = conv(Tensor(np.ones((6, 3))))
        assert out.data.shape == (5, 4)

    def test_rejects_too_short_input(self):
        conv = Conv1D(channels=2, filters=1, kernel=5, rng=np.random.default_rng(0))
        with pytest.raises(ValidationError):
            conv(Tensor(np.ones((3, 2))))

    def test_translation_structure(self):
        """Equal windows produce equal conv outputs."""
        conv = Conv1D(channels=1, filters=2, kernel=2, rng=np.random.default_rng(1))
        x = Tensor(np.asarray([[1.0], [2.0], [1.0], [2.0]]))
        out = conv(x).data
        assert np.allclose(out[0], out[2])


class TestFeaturesAndPooling:
    def test_degree_features_one_hot(self, star5):
        features = degree_features(star5, max_degree=5)
        assert features.shape == (5, 6)
        assert np.all(features.sum(axis=1) == 1.0)
        assert features[0, 4] == 1.0  # hub degree 4

    def test_degree_features_clipped(self, star5):
        features = degree_features(star5, max_degree=2)
        assert features[0, 2] == 1.0  # clipped to the cap

    def test_sort_pooling_descending(self):
        features = np.asarray([[0.1], [0.9], [0.5]])
        order = sort_pooling_indices(features, 3)
        assert order.tolist() == [1, 2, 0]

    def test_sort_pooling_pads_small_graphs(self):
        features = np.asarray([[0.3], [0.7]])
        order = sort_pooling_indices(features, 5)
        assert order.shape == (5,)
        assert order[2:].tolist() == [0, 0, 0]  # pad with the last vertex

    def test_sort_pooling_truncates(self):
        features = np.random.default_rng(0).random((10, 2))
        assert sort_pooling_indices(features, 4).shape == (4,)

    def test_sort_pooling_rejects_empty(self):
        with pytest.raises(ValidationError):
            sort_pooling_indices(np.zeros((0, 2)), 3)
