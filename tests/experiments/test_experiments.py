"""Integration tests for the experiment modules (tiny configurations)."""

import numpy as np
import pytest

from repro.experiments import complexity, figure2, properties, table2
from repro.experiments.reporting import format_table
from repro.experiments.runner import main as runner_main, run_table3


class TestTable2:
    def test_rows_cover_requested_datasets(self):
        rows = table2.run_table2(scale=0.05, size_scale=0.2, seed=0,
                                 names=["MUTAG", "IMDB-B"])
        assert [r["Dataset"] for r in rows] == ["MUTAG", "IMDB-B"]

    def test_paper_columns_present(self):
        rows = table2.run_table2(scale=0.05, size_scale=0.2, seed=0,
                                 names=["MUTAG"])
        row = rows[0]
        assert row["Graphs (paper)"] == 188
        assert row["Classes"] == 2
        assert row["Labels"] == 7

    def test_means_close_to_paper_at_full_size(self):
        rows = table2.run_table2(scale=0.1, size_scale=1.0, seed=0,
                                 names=["MUTAG", "PTC"])
        for row in rows:
            ratio = row["Mean V (ours)"] / row["Mean V (paper)"]
            assert 0.75 < ratio < 1.25, row["Dataset"]


class TestProperties:
    @pytest.fixture(scope="class")
    def rows(self):
        return properties.run_properties(
            seed=0, kernels=("HAQJSK(A)", "HAQJSK(D)", "QJSK", "WLSK")
        )

    def test_haqjsk_psd_and_invariant(self, rows):
        for row in rows:
            if row["Kernel"].startswith("HAQJSK"):
                assert float(row["min Gram eig"]) > -1e-7
                assert float(row["Perm. dev"]) < 1e-9
                assert row["Transitive"] == "Yes"

    def test_qjsk_not_invariant(self, rows):
        qjsk = next(r for r in rows if r["Kernel"] == "QJSK")
        assert float(qjsk["Perm. dev"]) > 1e-9

    def test_wlsk_invariant_but_untransitive(self, rows):
        wlsk = next(r for r in rows if r["Kernel"] == "WLSK")
        assert float(wlsk["Perm. dev"]) < 1e-9
        assert wlsk["Transitive"] == "-"


class TestFigure2:
    def test_levels_shrink(self):
        result = figure2.run_figure2(n_prototypes=8, n_levels=3, seed=0)
        sizes = [row["Prototypes |P^h|"] for row in result["levels"]]
        assert sizes == sorted(sizes, reverse=True)

    def test_ascii_plot_contains_marks(self):
        result = figure2.run_figure2(n_prototypes=8, n_levels=2, seed=0)
        assert "#" in result["ascii"]
        assert "." in result["ascii"]

    def test_inertia_grows_with_level(self):
        """Fewer prototypes cannot fit the points better."""
        result = figure2.run_figure2(n_prototypes=8, n_levels=3, seed=0)
        inertias = [row["Inertia"] for row in result["levels"]]
        assert inertias[0] <= inertias[-1] + 1e-9


class TestComplexity:
    def test_slopes_polynomial(self):
        result = complexity.run_complexity(
            vertex_sweep=(10, 16, 24), graph_sweep=(8, 16, 32), seed=0
        )
        # Preparation is linear in N; the pairwise QJSD stage is the
        # paper's quadratic term. Tiny sweeps are noisy, so only sane
        # polynomial ranges are asserted (the full-size sweep in
        # results/complexity.md measures ~1.1 and ~2.2).
        assert 0.5 < result["graph_prepare_slope"] < 2.0
        assert 1.2 < result["graph_pairwise_slope"] < 3.5
        assert result["vertex_slope"] < 4.0

    def test_timings_positive(self):
        result = complexity.run_complexity(
            vertex_sweep=(10, 14), graph_sweep=(4, 6), seed=0
        )
        for row in result["vertex_rows"] + result["graph_rows"]:
            assert row["total s"] > 0

    def test_stage_split_sums_to_total(self):
        stages = complexity.time_gram_stages(6, 12, seed=0)
        assert stages["total"] == pytest.approx(
            stages["prepare"] + stages["pairwise"]
        )


class TestRunner:
    def test_table3_contains_all_kernels(self):
        output = run_table3()
        for name in ("HAQJSK(A)", "QJSK", "WLSK", "PMGK"):
            assert name in output

    def test_usage_on_unknown(self, capsys):
        code = runner_main(["definitely_not_an_experiment"])
        assert code == 2
        assert "usage" in capsys.readouterr().out

    def test_help(self, capsys):
        assert runner_main(["--help"]) == 0


class TestTable4Cell:
    def test_single_cell_smoke(self):
        from repro.experiments.table4 import cells_to_rows, evaluate_cell

        cell = evaluate_cell("WLSK", "MUTAG", seed=0, n_repeats=1)
        assert 0.0 <= cell["accuracy"] <= 100.0
        assert cell["paper"] == pytest.approx(82.88)
        rows = cells_to_rows([cell])
        assert rows[0]["Kernel"] == "WLSK"
        assert "MUTAG" in rows[0]


class TestTable5Cell:
    def test_embedding_model_cell(self):
        from repro.experiments.table5 import evaluate_cell

        cell = evaluate_cell("DGK", "MUTAG", seed=0, n_repeats=1)
        assert 0.0 <= cell["accuracy"] <= 100.0

    def test_trained_model_cell(self):
        from repro.experiments.table5 import evaluate_cell

        cell = evaluate_cell("DCNN", "MUTAG", seed=0, n_repeats=1, n_epochs=5)
        assert 0.0 <= cell["accuracy"] <= 100.0
