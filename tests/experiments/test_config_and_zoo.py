"""Tests for experiment configuration and the kernel factory."""

import pytest

from repro.errors import KernelError
from repro.experiments.config import (
    SCALED,
    TABLE4_DATASETS,
    TABLE4_KERNELS,
    TABLE5_DATASETS,
    TABLE5_MODELS,
    cv_repeats,
    dataset_scale,
    full_scale,
    haqjsk_levels,
)
from repro.experiments.kernel_zoo import INDEFINITE_KERNELS, make_kernel
from repro.kernels.base import GraphKernel


class TestConfig:
    def test_every_table4_dataset_has_scale(self):
        for name in TABLE4_DATASETS:
            cfg = dataset_scale(name)
            assert 0 < cfg.scale <= 1.0
            assert 0 < cfg.size_scale <= 1.0

    def test_table5_subset_of_table4(self):
        assert set(TABLE5_DATASETS) <= set(TABLE4_DATASETS)

    def test_table5_models_include_haqjsk(self):
        assert "HAQJSK(A)" in TABLE5_MODELS and "HAQJSK(D)" in TABLE5_MODELS

    def test_scaled_mode_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert not full_scale()
        assert cv_repeats() == 3

    def test_full_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert full_scale()
        assert cv_repeats() == 10
        assert dataset_scale("MUTAG").scale == 1.0
        assert dataset_scale("MUTAG").haqjsk_prototypes == 256

    def test_haqjsk_levels_paper_value(self):
        assert haqjsk_levels() == 5

    def test_scaled_keeps_cv_feasible(self):
        from repro.datasets import PAPER_STATISTICS

        for name, cfg in SCALED.items():
            paper = PAPER_STATISTICS[name]
            n_graphs = max(
                int(round(paper.n_graphs * cfg.scale)), 2 * paper.n_classes
            )
            assert n_graphs >= 2 * paper.n_classes


class TestKernelZoo:
    @pytest.mark.parametrize("name", TABLE4_KERNELS)
    def test_factory_builds_all(self, name):
        kernel = make_kernel(name, n_prototypes=8)
        assert isinstance(kernel, GraphKernel)

    def test_rejects_unknown(self):
        with pytest.raises(KernelError):
            make_kernel("NOT_A_KERNEL")

    def test_indefinite_set_members_exist(self):
        assert INDEFINITE_KERNELS <= set(TABLE4_KERNELS)

    def test_haqjsk_prototype_override(self):
        kernel = make_kernel("HAQJSK(A)", n_prototypes=17)
        assert kernel.aligner.n_prototypes == 17

    @pytest.mark.parametrize("name", ["HAQJSK-L(A)", "HAQJSK-L(D)"])
    def test_attributed_variants_registered(self, name):
        """The Section V future-work kernels are part of the zoo (used by
        the Table I property experiment)."""
        kernel = make_kernel(name, n_prototypes=8)
        assert isinstance(kernel, GraphKernel)
        assert kernel.name == name
        assert "Vertex Labels" in kernel.traits.structure_patterns

    def test_property_roster_builds(self):
        from repro.experiments.properties import PROPERTY_KERNELS

        for name in PROPERTY_KERNELS:
            assert isinstance(make_kernel(name, n_prototypes=4), GraphKernel)
