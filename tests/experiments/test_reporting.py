"""Tests for report formatting."""

import os

from repro.experiments.reporting import bold_best, format_table, save_report


class TestFormatTable:
    def test_basic_render(self):
        table = format_table([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        lines = table.splitlines()
        assert lines[0].startswith("| a")
        assert len(lines) == 4

    def test_missing_cells_dash(self):
        table = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "-" in table.splitlines()[2]

    def test_float_formatting(self):
        table = format_table([{"value": 3.14159}])
        assert "3.14" in table and "3.14159" not in table

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_explicit_column_order(self):
        table = format_table([{"b": 1, "a": 2}], columns=["a", "b"])
        header = table.splitlines()[0]
        assert header.index("a") < header.index("b")


class TestSaveReport:
    def test_writes_file(self, tmp_path):
        path = save_report("test", "hello", directory=str(tmp_path))
        assert os.path.isfile(path)
        with open(path) as f:
            assert f.read() == "hello\n"

    def test_creates_directory(self, tmp_path):
        target = os.path.join(str(tmp_path), "nested")
        save_report("x", "y", directory=target)
        assert os.path.isdir(target)


class TestBoldBest:
    def test_bolds_maximum(self):
        rows = [{"k": "a", "acc": 80.0}, {"k": "b", "acc": 90.0}]
        bold_best(rows, ["acc"])
        assert rows[1]["acc"] == "**90.00**"
        assert rows[0]["acc"] == 80.0

    def test_minimum_mode(self):
        rows = [{"t": 1.0}, {"t": 2.0}]
        bold_best(rows, ["t"], larger_is_better=False)
        assert rows[0]["t"] == "**1.00**"

    def test_ignores_non_numeric(self):
        rows = [{"acc": "n/a"}, {"acc": 5.0}]
        bold_best(rows, ["acc"])
        assert rows[0]["acc"] == "n/a"


class TestReportOutput:
    def test_is_a_string_carrying_failures(self):
        from repro.experiments.reporting import ReportOutput

        plain = ReportOutput("| table |")
        assert plain == "| table |" and plain.failed == ()
        failed = ReportOutput("| table |", failed=[("cell:a", "boom")])
        assert failed.failed == (("cell:a", "boom"),)

    def test_runner_exit_code_reflects_failed_cells(
        self, monkeypatch, capsys, tmp_path
    ):
        from repro.experiments import runner
        from repro.experiments.reporting import ReportOutput

        monkeypatch.chdir(tmp_path)  # save_report writes ./results
        bad = ReportOutput(
            "| partial |",
            failed=(("cell:X:Y", "Traceback ...\nValueError: bad cell"),),
        )
        monkeypatch.setitem(runner._EXPERIMENTS, "fake", lambda argv: bad)
        assert runner.main(["fake"]) == 1
        err = capsys.readouterr().err
        assert "1 cells failed" in err
        assert "cell:X:Y: ValueError: bad cell" in err

        good = ReportOutput("| full |")
        monkeypatch.setitem(runner._EXPERIMENTS, "fake", lambda argv: good)
        assert runner.main(["fake"]) == 0
