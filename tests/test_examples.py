"""Smoke tests: the fast example scripts must run end to end.

Examples are the public face of the library; a refactor that breaks one
should fail CI, not a reader. Only the sub-5-second scripts run here (the
dataset-heavy ones — quickstart, molecule/social/shape classification,
embedding_and_scaling — are exercised implicitly through the experiment
harness they share code with).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = (
    "viewpoint_alignment.py",
    "quantum_walk_demo.py",
    "hierarchy_visualisation.py",
    "ctqw_vs_ctrw.py",
    "attributed_kernels.py",
    "session_api.py",
)


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    # Examples read no argv; make sure a pytest flag doesn't leak in.
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_all_examples_have_docstring_and_main():
    """Every example documents itself and is import-safe."""
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), f"{path.name}: no docstring"
        assert '__name__ == "__main__"' in source, f"{path.name}: no main guard"
