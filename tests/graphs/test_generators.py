"""Tests for the graph generators (determinism + structural invariants)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.graphs import generators as gen


class TestDeterministicFamilies:
    def test_complete(self):
        g = gen.complete_graph(6)
        assert g.n_edges == 15
        assert np.all(g.degrees() == 5)

    def test_path(self):
        g = gen.path_graph(5)
        assert g.n_edges == 4
        assert g.diameter() == 4

    def test_cycle(self):
        g = gen.cycle_graph(7)
        assert g.n_edges == 7
        assert np.all(g.degrees() == 2)

    def test_cycle_minimum_size(self):
        with pytest.raises(ValidationError):
            gen.cycle_graph(2)

    def test_star(self):
        g = gen.star_graph(6)
        assert g.degrees()[0] == 5

    def test_grid(self):
        g = gen.grid_graph(3, 4)
        assert g.n_vertices == 12
        assert g.n_edges == 3 * 3 + 2 * 4  # vertical + horizontal

    def test_wheel(self):
        g = gen.wheel_graph(6)
        assert g.degrees()[0] == 5
        assert np.all(g.degrees()[1:] == 3)

    def test_empty(self):
        g = gen.empty_graph(4)
        assert g.n_edges == 0


class TestRandomFamilies:
    def test_erdos_renyi_deterministic(self):
        assert gen.erdos_renyi(15, 0.3, seed=1) == gen.erdos_renyi(15, 0.3, seed=1)

    def test_erdos_renyi_extreme_p(self):
        assert gen.erdos_renyi(8, 0.0, seed=0).n_edges == 0
        assert gen.erdos_renyi(8, 1.0, seed=0).n_edges == 28

    def test_erdos_renyi_m_exact_edges(self):
        g = gen.erdos_renyi_m(10, 17, seed=2)
        assert g.n_edges == 17

    def test_erdos_renyi_m_rejects_too_many(self):
        with pytest.raises(ValidationError):
            gen.erdos_renyi_m(4, 10, seed=0)

    def test_barabasi_albert_edge_count(self):
        g = gen.barabasi_albert(30, 2, seed=3)
        # seed clique of 3 gives 3 edges; 27 more vertices x 2 edges each
        assert g.n_edges == 3 + 27 * 2

    def test_barabasi_albert_hub_formation(self):
        g = gen.barabasi_albert(100, 2, seed=4)
        assert g.degrees().max() >= 10  # heavy-tailed degrees

    def test_barabasi_albert_rejects_m_ge_n(self):
        with pytest.raises(ValidationError):
            gen.barabasi_albert(3, 3, seed=0)

    def test_watts_strogatz_no_rewiring_regular(self):
        g = gen.watts_strogatz(12, 4, 0.0, seed=0)
        assert np.all(g.degrees() == 4)

    def test_watts_strogatz_preserves_edge_count(self):
        base = gen.watts_strogatz(20, 4, 0.0, seed=0)
        rewired = gen.watts_strogatz(20, 4, 0.5, seed=0)
        assert rewired.n_edges == base.n_edges

    def test_random_tree_is_tree(self):
        g = gen.random_tree(25, seed=5)
        assert g.n_edges == 24
        assert g.is_connected()

    def test_random_tree_small_sizes(self):
        assert gen.random_tree(1, seed=0).n_vertices == 1
        assert gen.random_tree(2, seed=0).n_edges == 1

    def test_planted_partition_block_structure(self):
        g = gen.planted_partition([20, 20], 0.9, 0.01, seed=6)
        block_a = g.adjacency[:20, :20]
        cross = g.adjacency[:20, 20:]
        assert block_a.sum() > cross.sum() * 3

    def test_random_regular_ish_degrees(self):
        g = gen.random_regular_ish(20, 4, seed=7)
        degrees = g.unweighted_degrees()
        assert degrees.max() <= 4
        assert degrees.mean() > 3.0

    def test_random_geometric_radius_zero(self):
        g = gen.random_geometric(10, 0.0, seed=8)
        assert g.n_edges == 0

    def test_attach_random_labels_range(self):
        g = gen.attach_random_labels(gen.erdos_renyi(20, 0.3, seed=9), 5, seed=10)
        assert g.labels.min() >= 0
        assert g.labels.max() < 5

    def test_attach_random_labels_correlates_with_degree(self):
        g = gen.attach_random_labels(gen.barabasi_albert(60, 2, seed=11), 6, seed=12)
        correlation = np.corrcoef(g.degrees(), g.labels)[0, 1]
        assert correlation > 0.3


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(4, 30),
    p=st.floats(0.0, 1.0),
    seed=st.integers(0, 1000),
)
def test_erdos_renyi_always_valid(n, p, seed):
    g = gen.erdos_renyi(n, p, seed=seed)
    assert g.n_vertices == n
    assert np.allclose(g.adjacency, g.adjacency.T)
    assert np.all(np.diag(g.adjacency) == 0)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(3, 40), seed=st.integers(0, 1000))
def test_random_tree_always_connected_acyclic(n, seed):
    g = gen.random_tree(n, seed=seed)
    assert g.is_connected()
    assert g.n_edges == n - 1
