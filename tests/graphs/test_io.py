"""Tests for TU-format IO (round trips and malformed inputs)."""

import os

import pytest

from repro.errors import DatasetError
from repro.graphs import generators as gen
from repro.graphs.io import read_tu_dataset, write_tu_dataset


@pytest.fixture
def sample_collection():
    graphs = [
        gen.cycle_graph(4),
        gen.path_graph(3),
        gen.star_graph(5),
    ]
    targets = [0, 1, 0]
    return graphs, targets


class TestRoundTrip:
    def test_unlabelled(self, tmp_path, sample_collection):
        graphs, targets = sample_collection
        write_tu_dataset(str(tmp_path), "TOY", graphs, targets)
        back_graphs, back_targets = read_tu_dataset(str(tmp_path), "TOY")
        assert back_targets == targets
        assert [g.n_vertices for g in back_graphs] == [4, 3, 5]
        assert [g.n_edges for g in back_graphs] == [4, 2, 4]

    def test_labelled(self, tmp_path):
        graphs = [
            gen.attach_random_labels(gen.cycle_graph(5), 3, seed=0),
            gen.attach_random_labels(gen.path_graph(4), 3, seed=1),
        ]
        write_tu_dataset(str(tmp_path), "LAB", graphs, [1, 2])
        back, _ = read_tu_dataset(str(tmp_path), "LAB")
        for original, restored in zip(graphs, back):
            assert restored.labels.tolist() == original.labels.tolist()

    def test_read_from_dataset_folder_directly(self, tmp_path, sample_collection):
        graphs, targets = sample_collection
        write_tu_dataset(str(tmp_path), "TOY", graphs, targets)
        back, _ = read_tu_dataset(os.path.join(str(tmp_path), "TOY"), "TOY")
        assert len(back) == 3

    def test_structure_preserved(self, tmp_path, sample_collection):
        graphs, targets = sample_collection
        write_tu_dataset(str(tmp_path), "TOY", graphs, targets)
        back, _ = read_tu_dataset(str(tmp_path), "TOY")
        for original, restored in zip(graphs, back):
            assert sorted(original.degrees()) == sorted(restored.degrees())


class TestErrors:
    def test_missing_dataset(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            read_tu_dataset(str(tmp_path), "NOPE")

    def test_length_mismatch(self, tmp_path, sample_collection):
        graphs, _ = sample_collection
        with pytest.raises(DatasetError):
            write_tu_dataset(str(tmp_path), "BAD", graphs, [0])

    def test_malformed_edge_line(self, tmp_path, sample_collection):
        graphs, targets = sample_collection
        write_tu_dataset(str(tmp_path), "TOY", graphs, targets)
        with open(os.path.join(str(tmp_path), "TOY", "TOY_A.txt"), "a") as f:
            f.write("not, numbers\n")
        with pytest.raises(DatasetError, match="malformed"):
            read_tu_dataset(str(tmp_path), "TOY")

    def test_out_of_range_vertex(self, tmp_path, sample_collection):
        graphs, targets = sample_collection
        write_tu_dataset(str(tmp_path), "TOY", graphs, targets)
        with open(os.path.join(str(tmp_path), "TOY", "TOY_A.txt"), "a") as f:
            f.write("999, 1\n")
        with pytest.raises(DatasetError, match="out of range"):
            read_tu_dataset(str(tmp_path), "TOY")

    def test_cross_graph_edge(self, tmp_path, sample_collection):
        graphs, targets = sample_collection
        write_tu_dataset(str(tmp_path), "TOY", graphs, targets)
        with open(os.path.join(str(tmp_path), "TOY", "TOY_A.txt"), "a") as f:
            f.write("1, 5\n")  # vertex 1 is in graph 1, vertex 5 in graph 2
        with pytest.raises(DatasetError, match="crosses"):
            read_tu_dataset(str(tmp_path), "TOY")
