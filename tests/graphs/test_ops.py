"""Tests for repro.graphs.ops."""

import numpy as np
import pytest

from repro.errors import GraphError, ValidationError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.ops import (
    clustering_coefficient,
    core_numbers,
    degeneracy,
    degree_distribution,
    disjoint_union,
    k_core_subgraph,
    max_shortest_path_length,
    normalized_laplacian,
    transition_matrix,
    triangle_count,
)


class TestLaplacians:
    def test_normalized_laplacian_spectrum_range(self, petersen_like):
        values = np.linalg.eigvalsh(normalized_laplacian(petersen_like))
        assert values.min() >= -1e-9
        assert values.max() <= 2.0 + 1e-9

    def test_normalized_laplacian_isolated_vertex(self):
        g = Graph(np.zeros((2, 2)))
        assert np.allclose(normalized_laplacian(g), np.eye(2))

    def test_transition_matrix_row_stochastic(self, petersen_like):
        t = transition_matrix(petersen_like)
        assert np.allclose(t.sum(axis=1), 1.0)

    def test_transition_matrix_isolated_self_loop(self):
        g = Graph(np.zeros((3, 3)))
        assert np.allclose(transition_matrix(g), np.eye(3))


class TestDegreeDistribution:
    def test_sums_to_one(self, star5):
        assert degree_distribution(star5).sum() == pytest.approx(1.0)

    def test_star_distribution(self, star5):
        dist = degree_distribution(star5)
        assert dist[0] == pytest.approx(0.5)

    def test_edgeless_uniform(self):
        dist = degree_distribution(Graph(np.zeros((4, 4))))
        assert np.allclose(dist, 0.25)


class TestCores:
    def test_complete_graph_core(self):
        core = core_numbers(gen.complete_graph(5))
        assert np.all(core == 4)

    def test_tree_core_is_one(self):
        core = core_numbers(gen.random_tree(10, seed=0))
        assert np.all(core == 1)

    def test_mixed_core(self):
        # Triangle with a pendant vertex: triangle has core 2, pendant 1.
        adjacency = np.zeros((4, 4))
        for u, v in [(0, 1), (1, 2), (0, 2), (2, 3)]:
            adjacency[u, v] = adjacency[v, u] = 1.0
        core = core_numbers(Graph(adjacency))
        assert core.tolist() == [2, 2, 2, 1]

    def test_k_core_subgraph(self):
        adjacency = np.zeros((4, 4))
        for u, v in [(0, 1), (1, 2), (0, 2), (2, 3)]:
            adjacency[u, v] = adjacency[v, u] = 1.0
        sub, members = k_core_subgraph(Graph(adjacency), 2)
        assert members.tolist() == [0, 1, 2]
        assert sub.n_edges == 3

    def test_k_core_rejects_negative(self, triangle):
        with pytest.raises(ValidationError):
            k_core_subgraph(triangle, -1)

    def test_degeneracy(self, petersen_like):
        assert degeneracy(petersen_like) == 3

    def test_degeneracy_empty(self):
        assert degeneracy(Graph(np.zeros((0, 0)))) == 0


class TestCounts:
    def test_triangle_count(self, triangle):
        assert triangle_count(triangle) == 1

    def test_triangle_count_complete(self):
        assert triangle_count(gen.complete_graph(5)) == 10

    def test_triangle_count_tree_zero(self):
        assert triangle_count(gen.random_tree(12, seed=1)) == 0

    def test_clustering_coefficient_complete(self):
        assert clustering_coefficient(gen.complete_graph(6)) == pytest.approx(1.0)

    def test_clustering_coefficient_star(self, star5):
        assert clustering_coefficient(star5) == 0.0


class TestDisjointUnion:
    def test_sizes(self, triangle, path4):
        union = disjoint_union([triangle, path4])
        assert union.n_vertices == 7
        assert union.n_edges == 6

    def test_no_cross_edges(self, triangle, path4):
        union = disjoint_union([triangle, path4])
        assert np.all(union.adjacency[:3, 3:] == 0)

    def test_empty_input(self):
        assert disjoint_union([]).n_vertices == 0

    def test_labels_preserved(self, labelled_graph):
        union = disjoint_union([labelled_graph, labelled_graph])
        assert union.labels.tolist() == [0, 1, 1, 2, 0, 1, 1, 2]


class TestMaxShortestPath:
    def test_single_path(self, path4):
        assert max_shortest_path_length([path4]) == 3

    def test_collection_max(self, path4, triangle):
        assert max_shortest_path_length([triangle, path4]) == 3

    def test_minimum_one(self):
        g = Graph(np.zeros((3, 3)))
        assert max_shortest_path_length([g]) == 1

    def test_empty_collection_rejected(self):
        with pytest.raises(GraphError):
            max_shortest_path_length([])
