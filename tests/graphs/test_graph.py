"""Tests for the core Graph type."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph


class TestConstruction:
    def test_basic(self, triangle):
        assert triangle.n_vertices == 3
        assert triangle.n_edges == 3

    def test_rejects_rectangular(self):
        with pytest.raises(GraphError, match="square"):
            Graph(np.zeros((2, 3)))

    def test_rejects_asymmetric(self):
        with pytest.raises(GraphError, match="symmetric"):
            Graph([[0, 1], [0, 0]])

    def test_rejects_self_loops(self):
        with pytest.raises(GraphError, match="loops"):
            Graph([[1.0, 0.0], [0.0, 0.0]])

    def test_rejects_negative_weights(self):
        with pytest.raises(GraphError, match="non-negative"):
            Graph([[0, -1.0], [-1.0, 0]])

    def test_rejects_nan(self):
        with pytest.raises(GraphError, match="non-finite"):
            Graph([[0, np.nan], [np.nan, 0]])

    def test_rejects_wrong_label_length(self):
        with pytest.raises(GraphError, match="labels"):
            Graph(np.zeros((3, 3)), labels=[1, 2])

    def test_adjacency_read_only(self, triangle):
        with pytest.raises(ValueError):
            triangle.adjacency[0, 1] = 5.0

    def test_empty_graph(self):
        g = Graph(np.zeros((0, 0)))
        assert g.n_vertices == 0 and g.n_edges == 0

    def test_equality_and_hash(self, triangle):
        other = gen.cycle_graph(3)
        assert triangle == other
        assert hash(triangle) == hash(other)

    def test_inequality_on_labels(self, triangle):
        labelled = triangle.with_labels([0, 1, 2])
        assert triangle != labelled

    def test_repr(self, triangle):
        assert "n=3" in repr(triangle)


class TestDerivedQuantities:
    def test_degrees(self, star5):
        degrees = star5.degrees()
        assert degrees[0] == 4.0
        assert np.all(degrees[1:] == 1.0)

    def test_weighted_vs_unweighted_degrees(self):
        g = Graph([[0, 2.0], [2.0, 0]])
        assert g.degrees()[0] == 2.0
        assert g.unweighted_degrees()[0] == 1.0
        assert g.is_weighted

    def test_laplacian_row_sums_zero(self, petersen_like):
        lap = petersen_like.laplacian()
        assert np.allclose(lap.sum(axis=1), 0.0)

    def test_laplacian_psd(self, petersen_like):
        values = np.linalg.eigvalsh(petersen_like.laplacian())
        assert values.min() >= -1e-10

    def test_shortest_paths_path_graph(self, path4):
        dist = path4.shortest_path_lengths()
        assert dist[0, 3] == 3
        assert dist[1, 2] == 1
        assert np.all(np.diag(dist) == 0)

    def test_shortest_paths_disconnected(self):
        g = Graph(np.zeros((3, 3)))
        dist = g.shortest_path_lengths()
        assert dist[0, 1] == -1

    def test_shortest_paths_symmetric(self, petersen_like):
        dist = petersen_like.shortest_path_lengths()
        assert np.array_equal(dist, dist.T)

    def test_diameter(self, path4, petersen_like):
        assert path4.diameter() == 3
        assert petersen_like.diameter() == 2

    def test_diameter_disconnected(self):
        assert Graph(np.zeros((2, 2))).diameter() == -1

    def test_neighbors(self, star5):
        assert star5.neighbors(0) == [1, 2, 3, 4]
        assert star5.neighbors(3) == [0]

    def test_neighbors_out_of_range(self, star5):
        with pytest.raises(GraphError):
            star5.neighbors(17)

    def test_effective_labels_fallback_to_degrees(self, star5):
        labels = star5.effective_labels()
        assert labels[0] == 4 and labels[1] == 1

    def test_effective_labels_uses_labels(self, labelled_graph):
        assert labelled_graph.effective_labels().tolist() == [0, 1, 1, 2]


class TestStructureOps:
    def test_edges_iteration(self, triangle):
        edges = sorted((u, v) for u, v, _ in triangle.edges())
        assert edges == [(0, 1), (0, 2), (1, 2)]

    def test_subgraph(self, petersen_like):
        sub = petersen_like.subgraph([0, 1, 2])
        assert sub.n_vertices == 3
        assert sub.n_edges == 2  # 0-1 and 1-2 on the outer cycle

    def test_subgraph_rejects_duplicates(self, triangle):
        with pytest.raises(GraphError, match="unique"):
            triangle.subgraph([0, 0])

    def test_subgraph_keeps_labels(self, labelled_graph):
        sub = labelled_graph.subgraph([1, 3])
        assert sub.labels.tolist() == [1, 2]

    def test_expansion_subgraph_layers(self, path4):
        assert path4.expansion_subgraph(0, 1).n_vertices == 2
        assert path4.expansion_subgraph(0, 2).n_vertices == 3
        assert path4.expansion_subgraph(0, 99).n_vertices == 4

    def test_expansion_subgraph_rejects_negative_layer(self, path4):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            path4.expansion_subgraph(0, -1)

    def test_permuted_isomorphic_invariants(self, petersen_like):
        perm = np.random.default_rng(0).permutation(10)
        permuted = petersen_like.permuted(perm)
        assert permuted.n_edges == petersen_like.n_edges
        assert sorted(permuted.degrees()) == sorted(petersen_like.degrees())

    def test_permuted_rejects_bad_permutation(self, triangle):
        with pytest.raises(GraphError):
            triangle.permuted([0, 0, 1])

    def test_connected_components(self):
        adjacency = np.zeros((5, 5))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        adjacency[2, 3] = adjacency[3, 2] = 1.0
        g = Graph(adjacency)
        components = g.connected_components()
        assert [len(c) for c in components] == [2, 2, 1]

    def test_largest_component(self):
        adjacency = np.zeros((6, 6))
        for u, v in [(0, 1), (1, 2), (3, 4)]:
            adjacency[u, v] = adjacency[v, u] = 1.0
        g = Graph(adjacency)
        assert g.largest_component().n_vertices == 3

    def test_is_connected(self, petersen_like):
        assert petersen_like.is_connected()
        assert not Graph(np.zeros((2, 2))).is_connected()


class TestNetworkxInterop:
    def test_roundtrip(self, petersen_like):
        back = Graph.from_networkx(petersen_like.to_networkx())
        assert back == petersen_like

    def test_labels_roundtrip(self, labelled_graph):
        back = Graph.from_networkx(labelled_graph.to_networkx())
        assert back.labels.tolist() == labelled_graph.labels.tolist()

    def test_networkx_validation(self, petersen_like):
        import networkx as nx

        nx_graph = petersen_like.to_networkx()
        assert nx.is_connected(nx_graph)
        assert nx_graph.number_of_edges() == petersen_like.n_edges
