"""Shared fixtures: small deterministic graphs and collections."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.graph import Graph


@pytest.fixture
def triangle() -> Graph:
    return gen.cycle_graph(3)


@pytest.fixture
def path4() -> Graph:
    return gen.path_graph(4)


@pytest.fixture
def star5() -> Graph:
    return gen.star_graph(5)


@pytest.fixture
def petersen_like() -> Graph:
    """A 10-vertex 3-regular graph (two pentagons + spokes)."""
    adjacency = np.zeros((10, 10))
    for i in range(5):
        adjacency[i, (i + 1) % 5] = adjacency[(i + 1) % 5, i] = 1.0
        adjacency[5 + i, 5 + (i + 2) % 5] = adjacency[5 + (i + 2) % 5, 5 + i] = 1.0
        adjacency[i, 5 + i] = adjacency[5 + i, i] = 1.0
    return Graph(adjacency)


@pytest.fixture
def labelled_graph() -> Graph:
    adjacency = np.zeros((4, 4))
    for u, v in [(0, 1), (1, 2), (2, 3)]:
        adjacency[u, v] = adjacency[v, u] = 1.0
    return Graph(adjacency, labels=[0, 1, 1, 2])


@pytest.fixture
def mixed_collection() -> "list[Graph]":
    """Connected graphs of several families and sizes (deterministic)."""
    return [
        gen.cycle_graph(5),
        gen.path_graph(6),
        gen.star_graph(6),
        gen.complete_graph(5),
        gen.erdos_renyi(10, 0.4, seed=3).largest_component(),
        gen.barabasi_albert(12, 2, seed=4),
        gen.watts_strogatz(11, 4, 0.2, seed=5),
        gen.random_tree(9, seed=6),
    ]


@pytest.fixture
def two_class_graphs() -> tuple:
    """A small separable 2-class problem (trees vs dense ER)."""
    class_a = [gen.random_tree(10, seed=i) for i in range(8)]
    class_b = [
        gen.erdos_renyi(10, 0.5, seed=100 + i).largest_component() for i in range(8)
    ]
    graphs = class_a + class_b
    labels = np.asarray([0] * 8 + [1] * 8)
    return graphs, labels
