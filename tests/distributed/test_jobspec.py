"""Tests for job specs: the coordinator↔worker contract."""

import numpy as np
import pytest

from repro.api import ExecutionContext
from repro.errors import DistributedError
from repro.graphs import generators as gen
from repro.store import ArtifactStore
from repro.distributed import JobSpec, job_spec_for, load_job, seed_job
from repro.distributed.jobspec import tile_computer


@pytest.fixture
def graphs():
    return [
        gen.cycle_graph(6),
        gen.path_graph(7),
        gen.star_graph(7),
        gen.random_tree(8, seed=3),
        gen.complete_graph(5),
    ]


@pytest.fixture
def ctx():
    return ExecutionContext(engine="batched", tile_size=2)


class TestJobSpec:
    def test_record_roundtrip(self, graphs, ctx):
        spec = job_spec_for("WLSK", graphs, ctx=ctx)
        again = JobSpec.from_record(spec.to_record())
        assert again == spec
        assert again.job_id == spec.job_id

    def test_resolution_pins_schedule(self, graphs, ctx):
        spec = job_spec_for("WLSK", graphs, ctx=ctx)
        assert spec.engine == "batched"
        assert spec.tile_size == 2
        assert spec.n_graphs == len(graphs)
        # Compute policy resolves to the reference defaults here.
        assert spec.backend == "numpy"
        assert spec.precision == "float64"

    def test_job_id_depends_on_schedule(self, graphs, ctx):
        a = job_spec_for("WLSK", graphs, ctx=ctx)
        b = job_spec_for("WLSK", graphs, ctx=ctx.replace(tile_size=3))
        assert a.job_id != b.job_id

    def test_normalize_flag_carried(self, graphs, ctx):
        spec = job_spec_for("WLSK", graphs, ctx=ctx, normalize=True)
        assert spec.normalize is True
        assert spec.job_id != job_spec_for("WLSK", graphs, ctx=ctx).job_id

    def test_version_mismatch_refused(self, graphs, ctx):
        record = job_spec_for("WLSK", graphs, ctx=ctx).to_record()
        record["version"] = "job-v0"
        with pytest.raises(DistributedError, match="version"):
            JobSpec.from_record(record)

    def test_malformed_record_refused(self):
        with pytest.raises(DistributedError):
            JobSpec.from_record("not a dict")
        with pytest.raises(DistributedError, match="malformed"):
            JobSpec.from_record({"version": "job-v1", "surprise": 1})

    def test_dense_replay_kernels_refused(self, graphs, ctx):
        # Core variants recompute the full matrix before any tile
        # streams — distributing their "tiles" would be a lie.
        with pytest.raises(DistributedError, match="tile"):
            job_spec_for("CORE WL", graphs, ctx=ctx)

    def test_materialisation(self, graphs, ctx):
        spec = job_spec_for("WLSK", graphs, ctx=ctx)
        kernel = spec.make_kernel()
        assert kernel.name == "WLSK"
        engine = spec.resolved_engine()
        assert engine.name == "batched"
        assert engine.resolved_tile_size() == 2
        assert spec.plan().n_tiles() == 6


class TestSeedAndLoad:
    def test_roundtrip(self, graphs, ctx):
        store = ArtifactStore("mem:seed-roundtrip")
        spec = job_spec_for("WLSK", graphs, ctx=ctx)
        job_id = seed_job(store, spec, graphs)
        assert job_id == spec.job_id
        loaded_spec, loaded_graphs = load_job(store, job_id)
        assert loaded_spec == spec
        assert len(loaded_graphs) == len(graphs)

    def test_seed_is_idempotent(self, graphs, ctx):
        store = ArtifactStore("mem:seed-idem")
        spec = job_spec_for("WLSK", graphs, ctx=ctx)
        assert seed_job(store, spec, graphs) == seed_job(store, spec, graphs)

    def test_seed_refuses_wrong_collection(self, graphs, ctx):
        store = ArtifactStore("mem:seed-wrong")
        spec = job_spec_for("WLSK", graphs, ctx=ctx)
        with pytest.raises(DistributedError, match="graphs"):
            seed_job(store, spec, graphs[:-1])
        shuffled = [graphs[-1]] + graphs[:-1]
        with pytest.raises(DistributedError, match="digest"):
            seed_job(store, spec, shuffled)

    def test_load_unknown_job_is_named_error(self):
        store = ArtifactStore("mem:seed-unknown")
        with pytest.raises(DistributedError, match="no job"):
            load_job(store, "f" * 64)


class TestTileComputer:
    def test_feature_map_blocks(self, graphs, ctx):
        spec = job_spec_for("WLSK", graphs, ctx=ctx)
        kernel = spec.make_kernel()
        compute = tile_computer(kernel, graphs, spec.resolved_engine())
        features = np.asarray(kernel.feature_matrix(graphs), dtype=float)
        block = compute((0, 2), (2, 4), False)
        assert np.array_equal(block, features[0:2] @ features[2:4].T)
        diag = compute((0, 2), (0, 2), True)
        assert np.array_equal(diag, diag.T)

    def test_pairwise_blocks_match_engine(self, graphs, ctx):
        spec = job_spec_for("QJSK", graphs, ctx=ctx)
        kernel = spec.make_kernel()
        engine = spec.resolved_engine()
        compute = tile_computer(kernel, graphs, engine)
        states = kernel._prepared_states(graphs)
        expected = engine.compute_tile(kernel, states[0:2], states[2:4], False)
        assert np.array_equal(compute((0, 2), (2, 4), False), expected)
