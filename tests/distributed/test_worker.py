"""In-process worker/coordinator tests (memory store, no subprocesses)."""

import threading

import numpy as np
import pytest

from repro.api import ExecutionContext, Session
from repro.errors import DistributedError
from repro.graphs import generators as gen
from repro.store import ArtifactStore, gram_key
from repro.distributed import DistributedJob, TileWorker, run_distributed_gram


@pytest.fixture
def graphs():
    return [
        gen.cycle_graph(6),
        gen.path_graph(7),
        gen.star_graph(7),
        gen.random_tree(8, seed=3),
        gen.complete_graph(5),
        gen.wheel_graph(6),
        gen.random_tree(7, seed=11),
    ]


@pytest.fixture
def ctx():
    return ExecutionContext(engine="batched", tile_size=3)


def reference_gram(name, graphs, ctx, **kwargs):
    return np.asarray(Session(ctx=ctx).gram(name, graphs, **kwargs))


class TestSingleWorker:
    @pytest.mark.parametrize("kernel_name", ["WLSK", "QJSK"])
    def test_byte_identical_to_session(self, graphs, ctx, kernel_name):
        store = ArtifactStore(f"mem:single-{kernel_name}")
        job = DistributedJob.submit(store, kernel_name, graphs, ctx=ctx)
        stats = job.run_inline(worker_id="w0")
        assert stats["computed"] == job.ledger.total()
        out = job.assemble(persist=False)
        ref = reference_gram(kernel_name, graphs, ctx)
        assert out.tobytes() == ref.tobytes()

    def test_normalized_byte_identical(self, graphs, ctx):
        store = ArtifactStore("mem:single-norm")
        job = DistributedJob.submit(store, "WLSK", graphs, ctx=ctx, normalize=True)
        job.run_inline(worker_id="w0")
        out = job.assemble(persist=False)
        ref = reference_gram("WLSK", graphs, ctx, normalize=True)
        assert out.tobytes() == ref.tobytes()

    def test_max_tiles_stops_early(self, graphs, ctx):
        store = ArtifactStore("mem:single-max")
        job = DistributedJob.submit(store, "WLSK", graphs, ctx=ctx)
        worker = TileWorker(store, job.job_id, worker_id="w0")
        stats = worker.run(max_tiles=2)
        assert stats["computed"] == 2
        assert job.ledger.done_count() == 2

    def test_resumes_partial_job(self, graphs, ctx):
        store = ArtifactStore("mem:single-resume")
        job = DistributedJob.submit(store, "WLSK", graphs, ctx=ctx)
        TileWorker(store, job.job_id, worker_id="w0").run(max_tiles=2)
        # A second worker (fresh process in real life) finishes the rest.
        stats = TileWorker(store, job.job_id, worker_id="w1").run()
        assert stats["computed"] == job.ledger.total() - 2
        out = job.assemble(persist=False)
        ref = reference_gram("WLSK", graphs, ctx)
        assert out.tobytes() == ref.tobytes()


class TestCoordinator:
    def test_progress_counts(self, graphs, ctx):
        store = ArtifactStore("mem:coord-progress")
        job = DistributedJob.submit(store, "WLSK", graphs, ctx=ctx)
        before = job.progress()
        assert before["done"] == 0
        assert before["total"] == job.ledger.total()
        job.run_inline(worker_id="w0")
        after = job.progress()
        assert after["done"] == after["total"]
        assert after["active_leases"] == 0

    def test_attach_rebuilds_job(self, graphs, ctx):
        store = ArtifactStore("mem:coord-attach")
        job = DistributedJob.submit(store, "WLSK", graphs, ctx=ctx)
        again = DistributedJob.attach(store, job.job_id)
        assert again.spec == job.spec
        assert again.ledger.total() == job.ledger.total()

    def test_assemble_refuses_incomplete(self, graphs, ctx):
        store = ArtifactStore("mem:coord-incomplete")
        job = DistributedJob.submit(store, "WLSK", graphs, ctx=ctx)
        with pytest.raises(DistributedError, match="pending"):
            job.assemble()

    def test_wait_timeout_reports_progress(self, graphs, ctx):
        store = ArtifactStore("mem:coord-timeout")
        job = DistributedJob.submit(store, "WLSK", graphs, ctx=ctx)
        with pytest.raises(DistributedError, match="incomplete"):
            job.wait(timeout=0.05, poll=0.01)

    def test_assemble_persists_whole_gram(self, graphs, ctx):
        store = ArtifactStore("mem:coord-persist")
        job = DistributedJob.submit(store, "WLSK", graphs, ctx=ctx)
        job.run_inline(worker_id="w0")
        out = job.assemble()
        key = gram_key(job.kernel, graphs, normalize=False, ensure_psd=False)
        cached = store.get_array("gram", key)
        assert cached is not None
        assert np.asarray(cached).tobytes() == out.tobytes()
        # ... so a store-backed Session on the same store is a cache hit
        # that returns the assembled bytes.
        session_ctx = ctx.replace(store=store)
        hit = reference_gram("WLSK", graphs, session_ctx)
        assert hit.tobytes() == out.tobytes()

    def test_assemble_cleans_up_leases(self, graphs, ctx):
        store = ArtifactStore("mem:coord-cleanup")
        job = DistributedJob.submit(store, "WLSK", graphs, ctx=ctx)
        job.run_inline(worker_id="w0")
        job.assemble()
        assert store.list_keys("tile-lease") == []

    def test_run_distributed_gram_refuses_memory_store(self, graphs, ctx):
        with pytest.raises(DistributedError, match="dir"):
            run_distributed_gram(
                "WLSK", graphs, "mem:coord-refuse", workers=1, ctx=ctx
            )


class TestWorkStealingThreads:
    def test_two_workers_converge(self, graphs, ctx):
        # Thread-level convergence on the memory backend: same claim
        # protocol the directory backend gives separate processes.
        store = ArtifactStore("mem:threads-converge")
        job = DistributedJob.submit(store, "QJSK", graphs, ctx=ctx)
        results = {}

        def participate(worker_id):
            worker = TileWorker(store, job.job_id, worker_id=worker_id, poll=0.01)
            results[worker_id] = worker.run()

        threads = [
            threading.Thread(target=participate, args=(f"w{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(stats["computed"] for stats in results.values())
        assert total == job.ledger.total()  # every tile landed exactly once
        out = job.assemble(persist=False)
        ref = reference_gram("QJSK", graphs, ctx)
        assert out.tobytes() == ref.tobytes()

    def test_expired_lease_is_stolen_and_job_completes(self, graphs, ctx):
        store = ArtifactStore("mem:threads-steal")
        job = DistributedJob.submit(store, "WLSK", graphs, ctx=ctx)
        # A "dead" worker claimed a tile and vanished: plant its stale
        # lease by hand with an already-expired timestamp.
        rows, cols, key = job.ledger.pending()[0]
        from repro.store import Lease

        stale = Lease(key=key, worker="dead", timestamp=1.0, ttl=0.001)
        store.put_bytes("tile-lease", key, stale.to_bytes(), suffix=".json")
        stats = TileWorker(store, job.job_id, worker_id="w0", ttl=5.0).run()
        assert stats["computed"] == job.ledger.total()
        out = job.assemble(persist=False)
        ref = reference_gram("WLSK", graphs, ctx)
        assert out.tobytes() == ref.tobytes()


class TestWatchMode:
    def test_watch_works_every_seeded_job(self, graphs, ctx):
        from repro.distributed import watch_jobs

        store = ArtifactStore("mem:watch-two")
        jobs = [
            DistributedJob.submit(store, name, graphs, ctx=ctx)
            for name in ("WLSK", "QJSK")
        ]
        totals = watch_jobs(store, worker_id="watcher", max_jobs=2)
        assert totals["jobs"] == 2
        assert totals["computed"] == sum(j.ledger.total() for j in jobs)
        for job, name in zip(jobs, ("WLSK", "QJSK")):
            out = job.assemble(persist=False)
            ref = reference_gram(name, graphs, ctx)
            assert out.tobytes() == ref.tobytes()

    def test_watch_idle_timeout_returns(self, ctx):
        from repro.distributed import watch_jobs

        store = ArtifactStore("mem:watch-idle")
        totals = watch_jobs(
            store, worker_id="watcher", watch_poll=0.01, idle_timeout=0.05
        )
        assert totals["jobs"] == 0
        assert totals["sweeps"] >= 1

    def test_watch_picks_up_jobs_seeded_later(self, graphs, ctx):
        from repro.distributed import watch_jobs

        store = ArtifactStore("mem:watch-late")
        seeded = {}

        def seed_after_delay():
            import time as _time

            _time.sleep(0.1)
            seeded["job"] = DistributedJob.submit(store, "WLSK", graphs, ctx=ctx)

        seeder = threading.Thread(target=seed_after_delay)
        seeder.start()
        # The watcher starts against an empty store; the job arrives
        # mid-watch and must still be worked to completion.
        totals = watch_jobs(
            store, worker_id="watcher", watch_poll=0.01, max_jobs=1
        )
        seeder.join()
        assert totals["jobs"] == 1
        assert not seeded["job"].ledger.pending()

    def test_worker_cli_requires_exactly_one_mode(self, capsys):
        from repro.distributed.worker import main

        with pytest.raises(SystemExit):
            main(["--store", "mem:cli-mode"])
        with pytest.raises(SystemExit):
            main(["--store", "mem:cli-mode", "--job", "x", "--watch"])
