"""Multi-process convergence: subprocess workers, SIGKILL recovery, and
two concurrent store-backed writers sharing one directory store."""

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.api import ExecutionContext, Session
from repro.datasets import load_dataset
from repro.distributed import DistributedJob, run_distributed_gram
from repro.distributed.coordinator import spawn_worker


@pytest.fixture(scope="module")
def mutag_graphs():
    return load_dataset("MUTAG", scale=0.25).graphs


@pytest.fixture
def ctx():
    return ExecutionContext(engine="batched", tile_size=8)


def test_workers_converge_and_match_single_process(tmp_path, mutag_graphs, ctx):
    ref = np.asarray(Session(ctx=ctx).gram("WLSK", mutag_graphs))
    out = run_distributed_gram(
        "WLSK",
        mutag_graphs,
        f"dir:{tmp_path / 'store'}",
        workers=2,
        ctx=ctx,
        timeout=120,
    )
    assert out.tobytes() == ref.tobytes()


def test_sigkill_mid_run_still_byte_identical(tmp_path, mutag_graphs, ctx):
    # Three workers race a 21-tile HAQJSK job with an artificial per-tile
    # delay; one is SIGKILLed mid-run. Its expired leases are stolen and
    # the survivors converge on the byte-identical matrix.
    ref = np.asarray(Session(ctx=ctx).gram("HAQJSK(A)", mutag_graphs, normalize=True))
    job = DistributedJob.submit(
        f"dir:{tmp_path / 'store'}",
        "HAQJSK(A)",
        mutag_graphs,
        ctx=ctx,
        normalize=True,
        ttl=1.5,
    )
    procs = [
        spawn_worker(
            job.store.address, job.job_id, worker_id=f"w{i}", ttl=1.5,
            tile_delay=0.15,
        )
        for i in range(3)
    ]
    try:
        time.sleep(1.0)
        procs[0].kill()  # SIGKILL: no cleanup, leases left dangling
        job.wait(timeout=180)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
    assert not job.ledger.pending()
    out = job.assemble(persist=False)
    assert out.tobytes() == ref.tobytes()


_CONCURRENT_WRITER = """
import sys
import numpy as np
from repro.api import ExecutionContext, Session
from repro.datasets import load_dataset

store_root, out_path = sys.argv[1], sys.argv[2]
graphs = load_dataset("MUTAG", scale=0.25).graphs
ctx = ExecutionContext(engine="batched", tile_size=8, store=store_root)
gram = Session(ctx=ctx).gram("WLSK", graphs)
np.save(out_path, np.asarray(gram))
"""


def test_concurrent_store_backed_writers_converge(tmp_path, mutag_graphs, ctx):
    # Two unsynchronised processes compute the same store-backed Gram
    # against one directory simultaneously. Tile commits are idempotent
    # CAS writes and the whole-Gram put is atomic, so both land on the
    # same bytes — worst case is duplicate work, never a torn artifact.
    store_root = str(tmp_path / "store")
    outs = [str(tmp_path / f"out-{i}.npy") for i in range(2)]
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _CONCURRENT_WRITER, store_root, out],
            env=os.environ.copy(),
        )
        for out in outs
    ]
    for proc in procs:
        assert proc.wait(timeout=300) == 0
    a, b = (np.load(out) for out in outs)
    assert a.tobytes() == b.tobytes()
    ref = np.asarray(Session(ctx=ctx).gram("WLSK", mutag_graphs))
    assert a.tobytes() == ref.tobytes()
