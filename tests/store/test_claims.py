"""Tests for the lease/heartbeat claim protocol and the tile ledger."""

import threading

import numpy as np
import pytest

from repro.engine.tiles import TilePlan
from repro.errors import ValidationError
from repro.graphs import generators as gen
from repro.kernels import WeisfeilerLehmanKernel
from repro.store import (
    ArtifactStore,
    Lease,
    TileClaims,
    TileLedger,
    tile_keyer_for,
)


class FakeClock:
    """Deterministic time source so expiry tests never sleep."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "arts"))


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def claims(store, clock):
    return TileClaims(store, ttl=10.0, clock=clock)


KEY = "k" * 64


class TestLeaseRecord:
    def test_roundtrip(self):
        lease = Lease(key=KEY, worker="w1", timestamp=5.0, ttl=10.0)
        assert Lease.from_bytes(KEY, lease.to_bytes()) == lease

    def test_corrupt_record_decodes_to_none(self):
        assert Lease.from_bytes(KEY, b"not json") is None
        assert Lease.from_bytes(KEY, b'{"worker": "w"}') is None

    def test_expiry(self):
        lease = Lease(key=KEY, worker="w", timestamp=100.0, ttl=10.0)
        assert not lease.expired(105.0)
        assert lease.expired(111.0)

    def test_future_dated_lease_is_fresh(self):
        # Clock skew between workers must not trigger steals.
        lease = Lease(key=KEY, worker="w", timestamp=200.0, ttl=10.0)
        assert not lease.expired(100.0)


class TestClaimProtocol:
    def test_first_claim_wins(self, claims):
        assert claims.claim(KEY, "w1") is not None
        assert claims.claim(KEY, "w2") is None

    def test_claim_is_reentrant_per_worker(self, claims, clock):
        first = claims.claim(KEY, "w1")
        clock.advance(3.0)
        again = claims.claim(KEY, "w1")
        assert again is not None
        assert again.timestamp > first.timestamp

    def test_expired_lease_is_stolen(self, claims, clock):
        claims.claim(KEY, "w1")
        clock.advance(11.0)  # past the 10s TTL
        stolen = claims.claim(KEY, "w2")
        assert stolen is not None
        assert claims.holder(KEY).worker == "w2"

    def test_fresh_lease_is_not_stolen(self, claims, clock):
        claims.claim(KEY, "w1")
        clock.advance(9.0)
        assert claims.claim(KEY, "w2") is None
        assert claims.holder(KEY).worker == "w1"

    def test_corrupt_lease_is_reclaimed(self, claims, store):
        store.put_bytes(claims.kind, KEY, b"garbage", suffix=".json")
        assert claims.claim(KEY, "w1") is not None

    def test_heartbeat_refreshes(self, claims, clock):
        lease = claims.claim(KEY, "w1")
        clock.advance(9.0)
        renewed = claims.heartbeat(lease)
        assert renewed is not None
        clock.advance(9.0)  # 18s after claim, 9s after renewal
        assert claims.claim(KEY, "w2") is None

    def test_heartbeat_detects_stolen_lease(self, claims, clock):
        lease = claims.claim(KEY, "w1")
        clock.advance(11.0)
        claims.claim(KEY, "w2")
        assert claims.heartbeat(lease) is None
        # And the stealer's lease is untouched.
        assert claims.holder(KEY).worker == "w2"

    def test_release_drops_own_lease(self, claims):
        lease = claims.claim(KEY, "w1")
        claims.release(lease)
        assert claims.holder(KEY) is None
        assert claims.claim(KEY, "w2") is not None

    def test_release_spares_a_stealers_lease(self, claims, clock):
        lease = claims.claim(KEY, "w1")
        clock.advance(11.0)
        claims.claim(KEY, "w2")
        claims.release(lease)  # stale handle must not delete w2's claim
        assert claims.holder(KEY).worker == "w2"

    def test_release_is_idempotent(self, claims):
        lease = claims.claim(KEY, "w1")
        claims.release(lease)
        claims.release(lease)

    def test_active_filters_expired(self, claims, clock):
        other = "o" * 64
        claims.claim(KEY, "w1")
        clock.advance(6.0)
        claims.claim(other, "w2")
        clock.advance(6.0)  # KEY now 12s old (expired), other 6s (fresh)
        held = claims.active([KEY, other])
        assert set(held) == {other}
        assert held[other].worker == "w2"

    def test_validation(self, store):
        with pytest.raises(ValidationError):
            TileClaims(store, ttl=0)
        with pytest.raises(ValidationError):
            TileClaims("not a store")

    def test_threaded_contention_single_winner(self, store):
        claims = TileClaims(store, ttl=30.0)
        barrier = threading.Barrier(6)
        won = []

        def contend(worker):
            barrier.wait()
            if claims.claim(KEY, worker) is not None:
                won.append(worker)

        threads = [
            threading.Thread(target=contend, args=(f"w{i}",)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(won) == 1
        assert claims.holder(KEY).worker == won[0]


@pytest.fixture
def graphs():
    return [
        gen.cycle_graph(6),
        gen.path_graph(7),
        gen.star_graph(7),
        gen.random_tree(8, seed=3),
        gen.complete_graph(5),
    ]


class TestTileLedger:
    def make_ledger(self, store, graphs, tile_size=2):
        kernel = WeisfeilerLehmanKernel()
        plan = TilePlan.gram(len(graphs), tile_size)
        return kernel, TileLedger(store, tile_keyer_for(kernel, graphs), plan)

    def test_pending_shrinks_as_tiles_commit(self, store, graphs):
        kernel, ledger = self.make_ledger(store, graphs)
        total = ledger.total()
        assert total == 6  # ceil(5/2) = 3 row blocks -> 3+2+1 upper tiles
        assert len(ledger.pending()) == total
        rows, cols, _ = ledger.pending()[0]
        ledger.commit(rows, cols, np.ones((rows[1] - rows[0], cols[1] - cols[0])))
        assert len(ledger.pending()) == total - 1
        assert ledger.done_count() == 1
        assert not ledger.complete()

    def test_commit_is_first_writer_wins(self, store, graphs):
        _, ledger = self.make_ledger(store, graphs)
        rows, cols, key = next(iter(ledger.entries()))
        shape = (rows[1] - rows[0], cols[1] - cols[0])
        ledger.commit(rows, cols, np.full(shape, 7.0))
        ledger.commit(rows, cols, np.full(shape, 9.0))  # duplicate loses
        assert np.array_equal(
            store.get_array(ledger.kind, key), np.full(shape, 7.0)
        )

    def test_restore_into_matches_live_gram(self, store, graphs):
        kernel, ledger = self.make_ledger(store, graphs)
        reference = kernel.gram(graphs)
        # The same per-tile block math the kernel's streaming path runs.
        features = np.asarray(kernel.feature_matrix(graphs), dtype=float)
        for rows, cols, _ in ledger.entries():
            diagonal = ledger.plan.is_diagonal(rows, cols)
            tile = features[rows[0] : rows[1]] @ features[cols[0] : cols[1]].T
            if diagonal:
                tile = (tile + tile.T) / 2.0
            ledger.commit(rows, cols, tile)
        assert ledger.complete()
        matrix = ledger.restore_into()
        assert np.asarray(matrix).tobytes() == np.asarray(reference).tobytes()

    def test_restore_refuses_missing_tiles(self, store, graphs):
        _, ledger = self.make_ledger(store, graphs)
        with pytest.raises(ValidationError, match="not committed"):
            ledger.restore_into()

    def test_two_ledgers_share_state(self, store, graphs):
        _, a = self.make_ledger(store, graphs)
        _, b = self.make_ledger(store, graphs)
        rows, cols, _ = a.pending()[0]
        a.commit(rows, cols, np.zeros((rows[1] - rows[0], cols[1] - cols[0])))
        assert b.done_count() == 1
