"""Tile keys, CheckpointSink resume, and tile-granular gram_extend reuse.

The acceptance contract: a killed Gram run resumes by recomputing *only*
the unfinished tiles (pinned exactly with a counting kernel) and yields a
byte-identical matrix; tile keys are content-addressed by graph-slice
digests, so a grown collection reuses the prior run's interior tiles
without ever touching the prior matrix.
"""

import numpy as np
import pytest

from repro.engine import BatchedEngine, DenseSink, MemmapSink, SerialEngine, TilePlan
from repro.errors import ValidationError
from repro.graphs import generators as gen
from repro.kernels import HAQJSKKernelD, QJSKUnaligned, WeisfeilerLehmanKernel
from repro.store import ArtifactStore, CheckpointSink, TileKeyer, tile_keyer_for
from repro.utils.rng import as_rng, spawn_seed


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


@pytest.fixture(scope="module")
def graphs():
    rng = as_rng(0)
    return [
        gen.erdos_renyi(8, 0.4, seed=spawn_seed(rng)) for _ in range(13)
    ]


@pytest.fixture(scope="module")
def newcomers():
    rng = as_rng(99)
    return [gen.erdos_renyi(8, 0.4, seed=spawn_seed(rng)) for _ in range(4)]


class _CountingQJSK(QJSKUnaligned):
    """QJSK counting its tile-block evaluations (batched backend).

    The counter is underscore-prefixed so it stays out of the
    configuration fingerprint — a public mutable counter would change the
    kernel's tile keys between runs and silently defeat every restore.
    """

    def __init__(self):
        super().__init__()
        self._block_calls = 0

    @property
    def block_calls(self):
        return self._block_calls

    @block_calls.setter
    def block_calls(self, value):
        self._block_calls = value

    def block_values(self, states_a, states_b):
        self._block_calls += 1
        return super().block_values(states_a, states_b)

    def symmetric_block_values(self, states):
        self._block_calls += 1
        return super().symmetric_block_values(states)


class _DyingSink(CheckpointSink):
    """Simulates a kill: raises after ``survive`` committed tiles."""

    def __init__(self, *args, survive, **kwargs):
        super().__init__(*args, **kwargs)
        self.survive = survive

    def write(self, rows, cols, block):
        if self.tiles_computed >= self.survive:
            raise KeyboardInterrupt("simulated kill mid-run")
        super().write(rows, cols, block)


class TestTileKeyer:
    def test_keys_are_stable_and_slice_addressed(self, graphs):
        kernel = QJSKUnaligned()
        keyer_a = tile_keyer_for(kernel, graphs)
        keyer_b = tile_keyer_for(kernel, graphs)
        assert keyer_a.key((0, 4), (4, 8)) == keyer_b.key((0, 4), (4, 8))
        assert keyer_a.key((0, 4), (4, 8)) != keyer_a.key((0, 4), (8, 12))

    def test_diagonal_flag_distinguishes(self, graphs):
        keyer = tile_keyer_for(QJSKUnaligned(), graphs)
        assert keyer.key((0, 4), (0, 4), diagonal=True) != keyer.key(
            (0, 4), (0, 4), diagonal=False
        )

    def test_dtype_is_part_of_the_key(self, graphs):
        kernel = QJSKUnaligned()
        f64 = tile_keyer_for(kernel, graphs)
        f32 = tile_keyer_for(kernel, graphs, dtype="float32")
        assert f64.key((0, 4), (0, 4)) != f32.key((0, 4), (0, 4))

    def test_collection_dependent_kernels_mix_collection(self, graphs):
        """Unfrozen HAQJSK pair values depend on the whole collection —
        its tile keys must not be reusable across collections."""
        kernel = HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=4, seed=0)
        assert not kernel.collection_independent
        short = tile_keyer_for(kernel, graphs[:8])
        longer = tile_keyer_for(kernel, graphs[:10])
        assert short.key((0, 4), (4, 8)) != longer.key((0, 4), (4, 8))
        # Collection-independent kernels share slice keys across growth.
        qjsk = QJSKUnaligned()
        assert tile_keyer_for(qjsk, graphs[:8]).key((0, 4), (4, 8)) == (
            tile_keyer_for(qjsk, graphs[:10]).key((0, 4), (4, 8))
        )

    def test_out_of_range_tiles_rejected(self, graphs):
        keyer = tile_keyer_for(QJSKUnaligned(), graphs[:4])
        with pytest.raises(ValidationError, match="outside"):
            keyer.key((0, 5), (0, 4))


class TestCheckpointResume:
    def test_kill_resume_recomputes_only_unfinished_tiles(
        self, store, graphs
    ):
        """The acceptance pin: with 10 tiles total and 4 committed before
        the kill, the resume computes exactly 6 block evaluations and the
        result is byte-identical to an uninterrupted run."""
        engine = BatchedEngine(tile_size=4)
        plan_tiles = TilePlan.gram(len(graphs), 4).n_tiles()
        assert plan_tiles == 10
        survive = 4

        kernel = _CountingQJSK()
        dying = _DyingSink(
            store, tile_keyer_for(kernel, graphs), survive=survive
        )
        with pytest.raises(KeyboardInterrupt):
            kernel.gram(graphs, engine=engine, sink=dying)
        assert dying.tiles_computed == survive

        kernel = _CountingQJSK()
        resumed_sink = CheckpointSink(store, tile_keyer_for(kernel, graphs))
        resumed = kernel.gram(graphs, engine=engine, sink=resumed_sink)
        assert resumed_sink.tiles_restored == survive
        assert resumed_sink.tiles_computed == plan_tiles - survive
        assert kernel.block_calls == plan_tiles - survive

        reference = QJSKUnaligned().gram(graphs, engine=engine)
        assert np.array_equal(np.asarray(resumed), reference)

    def test_resume_into_memmap(self, store, graphs, tmp_path):
        """CheckpointSink composes with MemmapSink: out-of-core *and*
        resumable, and still byte-identical."""
        engine = BatchedEngine(tile_size=4)
        kernel = QJSKUnaligned()
        dying = _DyingSink(
            store, tile_keyer_for(kernel, graphs), survive=5,
            inner=MemmapSink(str(tmp_path / "a.npy")),
        )
        with pytest.raises(KeyboardInterrupt):
            kernel.gram(graphs, engine=engine, sink=dying)
        sink = CheckpointSink(
            store, tile_keyer_for(kernel, graphs),
            inner=MemmapSink(str(tmp_path / "b.npy")),
        )
        resumed = kernel.gram(graphs, engine=engine, sink=sink)
        assert sink.tiles_restored == 5
        assert isinstance(resumed, np.memmap)
        assert np.array_equal(
            np.asarray(resumed), kernel.gram(graphs, engine=engine)
        )

    def test_float32_tiles_resume_byte_identical(self, store, graphs):
        """Reduced-precision storage keeps the resume guarantee: the
        inner sink always sees the *stored* (cast) values, so fresh and
        resumed runs assemble the same bytes."""
        engine = BatchedEngine(tile_size=4)
        kernel = QJSKUnaligned()
        keyer = tile_keyer_for(kernel, graphs, dtype="float32")
        dying = _DyingSink(store, keyer, survive=3, dtype="float32")
        with pytest.raises(KeyboardInterrupt):
            kernel.gram(graphs, engine=engine, sink=dying)
        sink = CheckpointSink(store, keyer, dtype="float32")
        resumed = np.asarray(kernel.gram(graphs, engine=engine, sink=sink))
        clean_store = ArtifactStore(store.root + "-clean")
        clean_sink = CheckpointSink(clean_store, keyer, dtype="float32")
        clean = np.asarray(kernel.gram(graphs, engine=engine, sink=clean_sink))
        assert np.array_equal(resumed, clean)
        # Pinned cast tolerance against the full-precision Gram.
        exact = kernel.gram(graphs, engine=engine)
        assert np.allclose(resumed, exact, atol=1e-6, rtol=1e-6)
        assert np.array_equal(resumed, exact.astype(np.float32).astype(float))

    def test_sink_dtype_binds_into_keys_even_without_keyer_dtype(
        self, store, graphs
    ):
        """A float32 CheckpointSink built over a dtype-less keyer must not
        share keys with a float64 run: the sink injects its storage dtype
        into the key context, so the f64 pass recomputes instead of
        silently restoring cast tiles."""
        engine = BatchedEngine(tile_size=4)
        kernel = QJSKUnaligned()
        f32 = CheckpointSink(
            store, tile_keyer_for(kernel, graphs), dtype="float32"
        )
        kernel.gram(graphs, engine=engine, sink=f32)
        assert f32.tiles_computed == 10
        # Matches the explicit-dtype keyer (the documented pairing)...
        explicit = CheckpointSink(
            store, tile_keyer_for(kernel, graphs, dtype="float32"),
            dtype="float32",
        )
        kernel.gram(graphs, engine=engine, sink=explicit)
        assert explicit.tiles_restored == 10
        # ...and a default full-precision sink misses all of them.
        f64 = CheckpointSink(store, tile_keyer_for(kernel, graphs))
        gram = kernel.gram(graphs, engine=engine, sink=f64)
        assert f64.tiles_restored == 0
        assert f64.tiles_computed == 10
        assert np.array_equal(
            np.asarray(gram), kernel.gram(graphs, engine=engine)
        )

    def test_discard_tiles(self, store, graphs):
        kernel = QJSKUnaligned()
        sink = CheckpointSink(store, tile_keyer_for(kernel, graphs))
        kernel.gram(graphs, engine=BatchedEngine(tile_size=4), sink=sink)
        keyer = tile_keyer_for(kernel, graphs)
        key = keyer.key((0, 4), (0, 4), diagonal=True)
        assert store.has("gram-tile", key)
        sink.discard_tiles()
        assert not store.has("gram-tile", key)


class TestTileGranularExtend:
    def test_grown_collection_reuses_interior_tiles(
        self, store, graphs, newcomers
    ):
        """gram(old + new) after gram(old) against the same store
        recomputes only the tiles that touch new graphs or the moved
        boundary — the tile-granular gram_extend."""
        engine = BatchedEngine(tile_size=4)
        kernel = QJSKUnaligned()
        first = CheckpointSink(store, tile_keyer_for(kernel, graphs))
        kernel.gram(graphs, engine=engine, sink=first)
        assert first.tiles_computed == 10  # 13 graphs / tile 4 -> 4 ranges

        grown = list(graphs) + list(newcomers)
        second = CheckpointSink(store, tile_keyer_for(kernel, grown))
        counted = _CountingQJSK()
        result = counted.gram(grown, engine=engine, sink=second)
        # 17 graphs -> ranges (0,4)(4,8)(8,12)(12,16)(16,17): 15 tiles.
        # Reusable: pairs among the first three (unchanged) ranges = 6;
        # the old partial range (12,13) moved, so its tiles recompute.
        assert second.tiles_restored == 6
        assert second.tiles_computed == 9
        assert counted.block_calls == 9
        reference = QJSKUnaligned().gram(grown, engine=engine)
        assert np.array_equal(np.asarray(result), reference)

    def test_gram_extend_with_store_checkpoints_blocks(
        self, store, graphs, newcomers
    ):
        """gram_extend(store=...) commits its cross/diagonal tiles, so a
        second identical extension restores everything."""
        kernel = _CountingQJSK()
        engine = BatchedEngine(tile_size=4)
        cached = kernel.gram(graphs, engine=engine)
        extended = kernel.gram_extend(
            cached, graphs, newcomers, engine=engine, store=store
        )
        kernel.block_calls = 0
        again = kernel.gram_extend(
            cached, graphs, newcomers, engine=engine, store=store
        )
        assert kernel.block_calls == 0  # every block tile came from disk
        assert np.array_equal(extended, again)
        full = QJSKUnaligned().gram(
            list(graphs) + list(newcomers), engine=engine
        )
        assert np.allclose(extended, full, atol=1e-10, rtol=0.0)


class TestMemmapArtifacts:
    def test_memmap_sink_roundtrips_through_store(self, store, graphs):
        kernel = WeisfeilerLehmanKernel(3)
        sink = store.memmap_sink("gram", "wl-demo")
        gram = kernel.gram(graphs, sink=sink, engine=BatchedEngine(tile_size=4))
        mapped = store.get_memmap("gram", "wl-demo")
        assert isinstance(mapped, np.memmap)
        assert np.array_equal(np.asarray(mapped), np.asarray(gram))
        # The same .npy is also readable through the dense accessor.
        assert np.array_equal(store.get_array("gram", "wl-demo"), gram)

    def test_get_memmap_absent_returns_none(self, store):
        assert store.get_memmap("gram", "no-such-key") is None

    def test_staged_sink_publishes_only_on_commit(self, store, graphs):
        """A run killed mid-assembly must leave *nothing* at the canonical
        key — half-written memmaps look complete (valid header, zero
        tiles) and would poison every later cache hit."""
        kernel = WeisfeilerLehmanKernel(3)
        sink = store.memmap_sink("gram", "staged-demo")
        plan_tile = BatchedEngine(tile_size=4)

        class _Dies(Exception):
            pass

        original_write = sink.write
        writes = {"n": 0}

        def dying_write(rows, cols, block):
            if writes["n"] >= 2:
                raise _Dies()
            writes["n"] += 1
            original_write(rows, cols, block)

        sink.write = dying_write  # instance-level patch; sink is discarded
        with pytest.raises(_Dies):
            kernel.gram(graphs, engine=plan_tile, sink=sink)
        assert store.get_memmap("gram", "staged-demo") is None
        assert store.get_array("gram", "staged-demo") is None

        # A completed run publishes atomically on commit.
        done = store.memmap_sink("gram", "staged-demo")
        gram = kernel.gram(graphs, engine=plan_tile, sink=done)
        published = store.get_memmap("gram", "staged-demo")
        assert np.array_equal(np.asarray(published), np.asarray(gram))


class TestStreamsTilesGate:
    def test_dense_replay_kernels_skip_tile_checkpointing(self, store, graphs):
        """Core-variant kernels recompute the whole Gram before any tile
        streams: store_backed_gram must not commit useless tiles for
        them, but still persists (and reloads) the whole matrix."""
        from repro.kernels import core_wl_kernel
        from repro.store import store_backed_gram

        kernel = core_wl_kernel(3)
        assert not kernel.streams_tiles
        assert QJSKUnaligned().streams_tiles
        assert WeisfeilerLehmanKernel(3).streams_tiles

        first = store_backed_gram(kernel, graphs, store, tile_checkpoint=True)
        tile_dir = f"{store.root}/gram-tile"
        import os

        assert not os.path.isdir(tile_dir)
        second = store_backed_gram(kernel, graphs, store, tile_checkpoint=True)
        assert np.array_equal(first, second)


class TestDeadTileReclamation:
    def test_collection_dependent_tiles_dropped_after_whole_gram_commit(
        self, store, graphs
    ):
        """store_backed_gram keeps reusable (collection-independent)
        tiles but reclaims collection-dependent ones, whose keys can
        never match another computation once the Gram is committed."""
        from repro.store import store_backed_gram

        dependent = HAQJSKKernelD(
            n_prototypes=8, n_levels=2, max_layers=3, seed=0
        )
        store_backed_gram(dependent, graphs, store, tile_checkpoint=True)
        keyer = tile_keyer_for(dependent, graphs)
        tile = (0, min(64, len(graphs)))
        assert not store.has("gram-tile", keyer.key(tile, tile, diagonal=True))

        independent = QJSKUnaligned()
        store_backed_gram(independent, graphs, store, tile_checkpoint=True)
        keyer = tile_keyer_for(independent, graphs)
        assert store.has("gram-tile", keyer.key(tile, tile, diagonal=True))
