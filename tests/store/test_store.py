"""Tests for the content-addressed artifact store and its key machinery."""

import os

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs import generators as gen
from repro.graphs.hashing import collection_digest, graph_digest
from repro.kernels import HAQJSKKernelD, QJSKUnaligned, WeisfeilerLehmanKernel
from repro.store import (
    ArtifactStore,
    IncrementalGram,
    artifact_key,
    gram_key,
    store_backed_gram,
)


@pytest.fixture
def graphs():
    return [
        gen.cycle_graph(6),
        gen.path_graph(7),
        gen.star_graph(7),
        gen.random_tree(8, seed=3),
    ]


class TestGraphDigest:
    def test_deterministic_and_content_addressed(self):
        a = gen.cycle_graph(6)
        b = gen.cycle_graph(6)
        assert graph_digest(a) == graph_digest(b)

    def test_name_is_cosmetic(self):
        a = gen.cycle_graph(6)
        b = gen.cycle_graph(6)
        b.name = "renamed"
        assert graph_digest(a) == graph_digest(b)

    def test_structure_sensitivity(self):
        assert graph_digest(gen.cycle_graph(6)) != graph_digest(gen.path_graph(6))

    def test_label_sensitivity(self):
        plain = gen.path_graph(4)
        labelled = plain.with_labels([0, 1, 1, 0])
        assert graph_digest(plain) != graph_digest(labelled)

    def test_permutation_changes_digest(self):
        # A representation hash, not an isomorphism invariant — just like
        # the Gram matrix rows it addresses. (The permutation must actually
        # move the adjacency matrix: reversing a path would not.)
        g = gen.path_graph(5)
        permuted = g.permuted([1, 0, 2, 3, 4])
        assert not np.array_equal(g.adjacency, permuted.adjacency)
        assert graph_digest(g) != graph_digest(permuted)

    def test_rejects_non_graph(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            graph_digest(np.eye(3))


class TestCollectionDigest:
    def test_order_sensitive(self, graphs):
        assert collection_digest(graphs) != collection_digest(graphs[::-1])

    def test_count_sensitive(self, graphs):
        assert collection_digest(graphs) != collection_digest(graphs[:-1])

    def test_deterministic(self, graphs):
        assert collection_digest(graphs) == collection_digest(list(graphs))


class TestKernelFingerprint:
    def test_same_config_same_fingerprint(self):
        assert QJSKUnaligned(mu=2.0).fingerprint() == QJSKUnaligned(mu=2.0).fingerprint()

    def test_config_changes_fingerprint(self):
        assert QJSKUnaligned(mu=1.0).fingerprint() != QJSKUnaligned(mu=2.0).fingerprint()

    def test_class_disambiguates(self):
        assert QJSKUnaligned().fingerprint() != WeisfeilerLehmanKernel(3).fingerprint()

    def test_engine_is_excluded(self):
        a = QJSKUnaligned()
        b = QJSKUnaligned()
        b.engine = "process"
        assert a.fingerprint() == b.fingerprint()

    def test_nested_config_is_covered(self):
        a = HAQJSKKernelD(n_prototypes=8, n_levels=2, seed=0)
        b = HAQJSKKernelD(n_prototypes=16, n_levels=2, seed=0)
        assert a.fingerprint() != b.fingerprint()

    def test_frozen_reference_enters_fingerprint(self, graphs):
        a = HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=4, seed=0)
        unfrozen = a.fingerprint()
        a.freeze(graphs[:3])
        frozen_small = a.fingerprint()
        a.freeze(graphs)
        frozen_all = a.fingerprint()
        assert len({unfrozen, frozen_small, frozen_all}) == 3


class TestGramKey:
    def test_options_distinguish(self, graphs):
        kernel = QJSKUnaligned()
        raw = gram_key(kernel, graphs)
        normalized = gram_key(kernel, graphs, normalize=True)
        psd = gram_key(kernel, graphs, ensure_psd=True)
        extra = gram_key(kernel, graphs, extra={"conditioned": True})
        assert len({raw, normalized, psd, extra}) == 4

    def test_artifact_key_separates_parts(self):
        assert artifact_key("ab", "c") != artifact_key("a", "bc")


class TestArtifactStore:
    def test_array_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        array = np.arange(12.0).reshape(3, 4)
        path = store.put_array("gram", "k1", array)
        assert os.path.exists(path)
        assert np.array_equal(store.get_array("gram", "k1"), array)
        assert store.has("gram", "k1")
        assert store.get_array("gram", "missing") is None
        assert not store.has("gram", "missing")

    def test_object_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        payload = {"states": [np.eye(2), np.ones(3)], "n": 7}
        store.put_object("states", "k1", payload)
        loaded = store.get_object("states", "k1")
        assert loaded["n"] == 7
        assert np.array_equal(loaded["states"][0], np.eye(2))
        assert store.get_object("states", "missing", default="nope") == "nope"

    def test_survives_process_boundary(self, tmp_path, graphs):
        """Same root, fresh store object — the warm-restart property."""
        root = str(tmp_path / "store")
        kernel = QJSKUnaligned()
        key = gram_key(kernel, graphs)
        ArtifactStore(root).put_array("gram", key, kernel.gram(graphs))
        reloaded = ArtifactStore(root).get_array("gram", key)
        assert np.allclose(reloaded, kernel.gram(graphs))

    def test_memory_layer_is_bounded(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"), max_memory_entries=2)
        for i in range(5):
            store.put_array("gram", f"k{i}", np.full((2, 2), float(i)))
        assert len(store._memory) == 2
        # Disk still holds everything the memory layer evicted.
        assert np.allclose(store.get_array("gram", "k0"), 0.0)

    def test_discard_removes_memory_and_disk(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        store.put_array("gram", "k1", np.eye(2))
        store.discard("gram", "k1")
        assert not store.has("gram", "k1")
        assert store.get_array("gram", "k1") is None
        store.discard("gram", "never-existed")  # no-op, no error

    def test_returned_arrays_are_read_only(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        store.put_array("gram", "k1", np.eye(2))
        loaded = store.get_array("gram", "k1")
        with pytest.raises(ValueError):
            loaded[0, 0] = 99.0
        # The caller's own array stays writable (defensive copy on put).
        original = np.eye(2)
        store.put_array("gram", "k2", original)
        original[0, 0] = 5.0  # must not raise, must not poison the store
        assert store.get_array("gram", "k2")[0, 0] == 1.0

    def test_rejects_unsafe_keys(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        with pytest.raises(ValidationError):
            store.path_for("gram", "../escape")
        with pytest.raises(ValidationError):
            store.path_for("bad/kind", "key")
        with pytest.raises(ValidationError):
            ArtifactStore("")


class _CountingKernel(QJSKUnaligned):
    """QJSK counting its gram() calls.

    The counter lives in an underscore attribute on purpose: public
    instance attributes are configuration and enter the fingerprint, so a
    public mutable counter would change the kernel's store key mid-test.
    """

    def __init__(self):
        super().__init__()
        self._counter = [0]

    @property
    def gram_calls(self) -> int:
        return self._counter[0]

    def gram(self, *args, **kwargs):
        self._counter[0] += 1
        return super().gram(*args, **kwargs)


class TestStoreBackedGram:
    def test_computes_once(self, tmp_path, graphs):
        store = ArtifactStore(str(tmp_path / "store"))
        kernel = _CountingKernel()
        first = store_backed_gram(kernel, graphs, store)
        second = store_backed_gram(kernel, graphs, store)
        assert kernel.gram_calls == 1
        assert np.array_equal(first, second)

    def test_none_store_passthrough(self, graphs):
        kernel = _CountingKernel()
        gram = store_backed_gram(kernel, graphs, None)
        assert kernel.gram_calls == 1
        assert gram.shape == (len(graphs), len(graphs))

    def test_options_are_part_of_the_key(self, tmp_path, graphs):
        # WLSK has a non-unit diagonal, so normalisation visibly changes
        # the matrix (QJSK's diagonal is already 1).
        store = ArtifactStore(str(tmp_path / "store"))
        kernel = WeisfeilerLehmanKernel(2)
        raw = store_backed_gram(kernel, graphs, store)
        normalized = store_backed_gram(kernel, graphs, store, normalize=True)
        assert not np.allclose(raw, normalized)
        assert np.allclose(np.diag(normalized), 1.0)


class TestIncrementalGram:
    def test_grows_and_matches_scratch(self, graphs):
        kernel = QJSKUnaligned()
        inc = IncrementalGram(kernel, graphs[:2])
        inc.extend(graphs[2:])
        assert len(inc) == len(graphs)
        assert np.allclose(inc.gram, kernel.gram(graphs), atol=1e-10)

    def test_starts_empty(self, graphs):
        kernel = QJSKUnaligned()
        inc = IncrementalGram(kernel)
        assert inc.gram.shape == (0, 0)
        inc.extend(graphs)
        assert np.allclose(inc.gram, kernel.gram(graphs), atol=1e-10)

    def test_warm_restart_skips_recompute(self, tmp_path, graphs):
        root = str(tmp_path / "store")
        store = ArtifactStore(root)
        kernel = _CountingKernel()
        IncrementalGram(kernel, graphs, store=store)
        assert kernel.gram_calls == 1
        restarted = IncrementalGram(kernel, graphs, store=ArtifactStore(root))
        assert kernel.gram_calls == 1  # loaded, not recomputed
        assert np.allclose(restarted.gram, QJSKUnaligned().gram(graphs))

    def test_extended_gram_is_persisted(self, tmp_path, graphs):
        store = ArtifactStore(str(tmp_path / "store"))
        kernel = QJSKUnaligned()
        inc = IncrementalGram(kernel, graphs[:2], store=store)
        inc.extend(graphs[2:])
        key = gram_key(kernel, graphs)
        assert np.allclose(store.get_array("gram", key), inc.gram)

    def test_superseded_intermediates_are_pruned(self, tmp_path, graphs):
        """Disk growth stays bounded: initial + latest Gram only."""
        store = ArtifactStore(str(tmp_path / "store"))
        kernel = QJSKUnaligned()
        inc = IncrementalGram(kernel, graphs[:1], store=store)
        inc.extend(graphs[1:2])
        inc.extend(graphs[2:3])
        inc.extend(graphs[3:])
        initial_key = gram_key(kernel, graphs[:1])
        latest_key = gram_key(kernel, graphs)
        assert store.has("gram", initial_key)  # warm-restart anchor kept
        assert store.has("gram", latest_key)
        for upto in (2, 3):  # the intermediates are gone
            assert not store.has("gram", gram_key(kernel, graphs[:upto]))


class TestMLRouting:
    def test_cross_validation_reuses_store(self, tmp_path):
        from repro.ml import cross_validate_graph_kernel

        class_a = [gen.random_tree(8, seed=i) for i in range(5)]
        class_b = [
            gen.erdos_renyi(8, 0.6, seed=50 + i).largest_component()
            for i in range(5)
        ]
        graphs = class_a + class_b
        labels = [0] * 5 + [1] * 5
        store = ArtifactStore(str(tmp_path / "store"))
        kernel = _CountingKernel()
        first = cross_validate_graph_kernel(
            kernel, graphs, labels, n_folds=2, n_repeats=1, seed=0, store=store
        )
        second = cross_validate_graph_kernel(
            kernel, graphs, labels, n_folds=2, n_repeats=1, seed=0, store=store
        )
        assert kernel.gram_calls == 1
        assert first.mean_accuracy == second.mean_accuracy

    def test_nystrom_reuses_store(self, tmp_path, graphs):
        from repro.ml.nystrom import NystromApproximation

        store = ArtifactStore(str(tmp_path / "store"))
        kernel = QJSKUnaligned()
        first = NystromApproximation(
            kernel, n_landmarks=2, seed=0, store=store
        ).fit(graphs)
        second = NystromApproximation(
            kernel, n_landmarks=2, seed=0, store=store
        ).fit(graphs)
        assert np.allclose(first.approximate_gram(), second.approximate_gram())
        assert store.has(
            "nystrom",
            _nystrom_key(kernel, graphs, first.landmark_indices_),
        )

    def test_table4_cell_resumes_from_store(self, tmp_path, monkeypatch):
        from repro.experiments.table4 import evaluate_cell

        store = ArtifactStore(str(tmp_path / "store"))
        first = evaluate_cell(
            "QJSK", "MUTAG", seed=0, n_repeats=1, store=store
        )
        second = evaluate_cell(
            "QJSK", "MUTAG", seed=0, n_repeats=1, store=store
        )
        assert first["gram_cached"] is False
        assert second["gram_cached"] is True
        assert first["accuracy"] == second["accuracy"]


class TestFrozenSystemPersistence:
    def test_frozen_system_roundtrips_through_store(self, tmp_path, graphs):
        """A serving process can warm-restart its frozen HAQJSK system
        from the store instead of refitting prototypes."""
        store = ArtifactStore(str(tmp_path / "store"))
        kernel = HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=4, seed=0)
        kernel.freeze(graphs[:3])
        reference_gram = kernel.gram(graphs)
        store.put_object("frozen-system", "ref", kernel.aligner.frozen_)

        restarted = HAQJSKKernelD(
            n_prototypes=8, n_levels=2, max_layers=4, seed=0
        )
        restarted.aligner.frozen_ = ArtifactStore(
            str(tmp_path / "store")
        ).get_object("frozen-system", "ref")
        assert restarted.collection_independent
        assert restarted.fingerprint() == kernel.fingerprint()
        assert np.allclose(restarted.gram(graphs), reference_gram, atol=1e-10)


def _nystrom_key(kernel, graphs, landmarks):
    return artifact_key(
        "nystrom-cross",
        kernel.fingerprint(),
        collection_digest(graphs),
        ",".join(str(int(i)) for i in landmarks),
    )
