"""Tests for the pluggable store backends and address parsing."""

import os
import threading

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.store import (
    ArtifactStore,
    DirectoryBackend,
    MemoryBackend,
    StoreBackend,
    backend_for,
    register_store_scheme,
)
from repro.store.backends import STORE_SCHEMES


class TestAddressParsing:
    def test_bare_path_is_directory(self, tmp_path):
        backend = backend_for(str(tmp_path / "arts"))
        assert isinstance(backend, DirectoryBackend)

    def test_dir_scheme(self, tmp_path):
        backend = backend_for(f"dir:{tmp_path / 'arts'}")
        assert isinstance(backend, DirectoryBackend)
        assert backend.root == str(tmp_path / "arts")

    def test_mem_scheme(self):
        backend = backend_for("mem:parse-test")
        assert isinstance(backend, MemoryBackend)
        assert backend.address == "mem:parse-test"

    def test_mem_addresses_are_shared_per_name(self):
        a = backend_for("mem:shared-name")
        b = backend_for("mem:shared-name")
        assert a is b
        assert backend_for("mem:other-name") is not a

    def test_windows_style_path_is_not_a_scheme(self, tmp_path):
        # Single-letter prefixes ("C:\\...") must parse as paths.
        backend = backend_for(f"{tmp_path / 'arts'}")
        assert isinstance(backend, DirectoryBackend)

    def test_unknown_scheme_is_named_error(self):
        with pytest.raises(ValidationError, match="unknown store scheme"):
            backend_for("s3://bucket/prefix")

    def test_empty_address_rejected(self):
        with pytest.raises(ValidationError):
            backend_for("")

    def test_backend_instance_passes_through(self, tmp_path):
        backend = DirectoryBackend(str(tmp_path))
        assert backend_for(backend) is backend

    def test_dir_address_round_trips(self, tmp_path):
        backend = backend_for(str(tmp_path / "arts"))
        again = backend_for(backend.address)
        assert isinstance(again, DirectoryBackend)
        assert again.root == backend.root

    def test_register_store_scheme(self, tmp_path):
        @register_store_scheme
        class _TestOnlyBackend(MemoryBackend):
            scheme = "testonly"

        try:
            backend = backend_for("testonly:whatever")
            assert isinstance(backend, _TestOnlyBackend)
        finally:
            STORE_SCHEMES.pop("testonly", None)


class TestDirectoryBackend:
    def test_roundtrip(self, tmp_path):
        backend = DirectoryBackend(str(tmp_path / "arts"))
        backend.put_atomic("kind/ab/key.bin", b"payload")
        assert backend.exists("kind/ab/key.bin")
        assert backend.get("kind/ab/key.bin") == b"payload"

    def test_get_missing_is_none(self, tmp_path):
        backend = DirectoryBackend(str(tmp_path))
        assert backend.get("nope.bin") is None

    def test_overwrite_replaces(self, tmp_path):
        backend = DirectoryBackend(str(tmp_path))
        backend.put_atomic("k.bin", b"one")
        backend.put_atomic("k.bin", b"two")
        assert backend.get("k.bin") == b"two"

    def test_delete(self, tmp_path):
        backend = DirectoryBackend(str(tmp_path))
        backend.put_atomic("k.bin", b"x")
        assert backend.delete("k.bin") is True
        assert backend.delete("k.bin") is False
        assert not backend.exists("k.bin")

    def test_put_if_absent_first_wins(self, tmp_path):
        backend = DirectoryBackend(str(tmp_path))
        assert backend.put_if_absent("k.bin", b"first") is True
        assert backend.put_if_absent("k.bin", b"second") is False
        assert backend.get("k.bin") == b"first"

    def test_no_temp_files_linger(self, tmp_path):
        backend = DirectoryBackend(str(tmp_path / "arts"))
        backend.put_atomic("a/b/c.bin", b"x")
        backend.put_if_absent("a/b/d.bin", b"y")
        backend.put_if_absent("a/b/d.bin", b"z")
        files = [
            name
            for _, _, names in os.walk(tmp_path / "arts")
            for name in names
        ]
        assert all(not name.endswith(".tmp") for name in files)

    def test_list_keys_prefix(self, tmp_path):
        backend = DirectoryBackend(str(tmp_path))
        backend.put_atomic("gram/aa/x.npy", b"1")
        backend.put_atomic("gram/bb/y.npy", b"2")
        backend.put_atomic("tile/aa/z.npy", b"3")
        keys = sorted(backend.list_keys("gram/"))
        assert keys == ["gram/aa/x.npy", "gram/bb/y.npy"]

    def test_creates_missing_root(self, tmp_path):
        root = tmp_path / "deep" / "nested" / "store"
        DirectoryBackend(str(root))
        assert root.is_dir()

    def test_uncreatable_root_is_named_error(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        with pytest.raises(ValidationError, match="cannot create store directory"):
            DirectoryBackend(str(blocker / "store"))

    def test_local_path_points_into_root(self, tmp_path):
        backend = DirectoryBackend(str(tmp_path))
        path = backend.local_path("kind/key.npy")
        assert path == os.path.join(str(tmp_path), "kind", "key.npy")


class TestMemoryBackend:
    def test_roundtrip(self):
        backend = MemoryBackend()
        backend.put_atomic("k.bin", b"payload")
        assert backend.get("k.bin") == b"payload"
        assert backend.exists("k.bin")

    def test_put_if_absent(self):
        backend = MemoryBackend()
        assert backend.put_if_absent("k.bin", b"first")
        assert not backend.put_if_absent("k.bin", b"second")
        assert backend.get("k.bin") == b"first"

    def test_delete_and_list(self):
        backend = MemoryBackend()
        backend.put_atomic("a/x.bin", b"1")
        backend.put_atomic("b/y.bin", b"2")
        assert sorted(backend.list_keys("")) == ["a/x.bin", "b/y.bin"]
        assert backend.list_keys("a/") == ["a/x.bin"]
        assert backend.delete("a/x.bin")
        assert backend.list_keys("a/") == []

    def test_no_local_path(self):
        assert MemoryBackend().local_path("k.npy") is None

    def test_payload_isolated_from_caller(self):
        backend = MemoryBackend()
        payload = bytearray(b"abc")
        backend.put_atomic("k.bin", bytes(payload))
        payload[0] = ord("x")
        assert backend.get("k.bin") == b"abc"


@pytest.mark.parametrize("make_backend", [
    lambda tmp_path: DirectoryBackend(str(tmp_path / "contend")),
    lambda tmp_path: MemoryBackend(),
])
def test_put_if_absent_contention_single_winner(tmp_path, make_backend):
    # N threads race one CAS slot: exactly one wins, and the stored
    # bytes are the winner's (no interleaving, no torn payloads).
    backend = make_backend(tmp_path)
    barrier = threading.Barrier(8)
    outcomes = [None] * 8

    def contend(index):
        barrier.wait()
        outcomes[index] = backend.put_if_absent(
            "slot.bin", f"writer-{index}".encode()
        )

    threads = [threading.Thread(target=contend, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert sum(outcomes) == 1
    winner = outcomes.index(True)
    assert backend.get("slot.bin") == f"writer-{winner}".encode()


class TestArtifactStoreOverBackends:
    def test_store_accepts_address_string(self, tmp_path):
        store = ArtifactStore(f"dir:{tmp_path / 'arts'}")
        store.put_array("gram", "k" * 64, np.eye(3))
        assert np.array_equal(store.get_array("gram", "k" * 64), np.eye(3))

    def test_store_accepts_backend_instance(self):
        store = ArtifactStore(MemoryBackend())
        store.put_array("gram", "k" * 64, np.eye(2))
        assert np.array_equal(store.get_array("gram", "k" * 64), np.eye(2))

    def test_mem_store_has_no_memmap(self):
        store = ArtifactStore("mem:no-memmap")
        key = "a" * 64
        store.put_array("gram", key, np.eye(4))
        # No local file: get_memmap degrades to an in-memory array.
        arr = store.get_memmap("gram", key)
        assert np.array_equal(np.asarray(arr), np.eye(4))
        with pytest.raises(ValidationError, match="local files"):
            store.memmap_sink("gram", key)

    def test_dir_store_root_is_plain_path(self, tmp_path):
        # Back-compat: callers join paths off .root for dir stores.
        store = ArtifactStore(str(tmp_path / "arts"))
        assert store.root == str(tmp_path / "arts")
        assert store.address == str(tmp_path / "arts")

    def test_raw_bytes_roundtrip_and_cas(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert store.put_if_absent("lease", "k" * 64, b"one", suffix=".json")
        assert not store.put_if_absent("lease", "k" * 64, b"two", suffix=".json")
        assert store.get_bytes("lease", "k" * 64, suffix=".json") == b"one"
        store.put_bytes("lease", "k" * 64, b"three", suffix=".json")
        assert store.get_bytes("lease", "k" * 64, suffix=".json") == b"three"
        assert store.delete_bytes("lease", "k" * 64, suffix=".json")
        assert store.get_bytes("lease", "k" * 64, suffix=".json") is None

    def test_bytes_bypass_memory_cache(self, tmp_path):
        # Two store handles on one directory must see each other's
        # mutable records immediately — no stale cache layer.
        a = ArtifactStore(str(tmp_path))
        b = ArtifactStore(str(tmp_path))
        a.put_bytes("lease", "k" * 64, b"from-a", suffix=".json")
        assert b.get_bytes("lease", "k" * 64, suffix=".json") == b"from-a"
        b.put_bytes("lease", "k" * 64, b"from-b", suffix=".json")
        assert a.get_bytes("lease", "k" * 64, suffix=".json") == b"from-b"

    def test_list_keys_by_kind(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_array("gram", "a" * 64, np.eye(2))
        store.put_array("gram-tile", "b" * 64, np.eye(2))
        assert len(store.list_keys("gram")) == 1
        assert len(store.list_keys("gram-tile")) == 1

    def test_custom_backend_subclasses_plug_in(self, tmp_path):
        class Recording(DirectoryBackend):
            def __init__(self, root):
                super().__init__(root)
                self.puts = 0

            def put_atomic(self, name, payload):
                self.puts += 1
                super().put_atomic(name, payload)

        backend = Recording(str(tmp_path / "rec"))
        assert isinstance(backend, StoreBackend)
        store = ArtifactStore(backend)
        store.put_array("gram", "c" * 64, np.eye(2))
        assert backend.puts == 1
