"""Tests for the CORE kernel framework."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.graphs import generators as gen
from repro.kernels.core_variants import (
    CoreVariantKernel,
    core_sp_kernel,
    core_wl_kernel,
)
from repro.kernels.wl import WeisfeilerLehmanKernel


@pytest.fixture(scope="module")
def graphs():
    return [
        gen.complete_graph(6),
        gen.random_tree(8, seed=0),
        gen.barabasi_albert(9, 3, seed=1),
    ]


class TestCoreWrapper:
    def test_name_includes_base(self):
        assert core_wl_kernel(2).name == "CORE WLSK"
        assert core_sp_kernel().name == "CORE SPGK"

    def test_rejects_non_kernel_base(self):
        with pytest.raises(KernelError):
            CoreVariantKernel("not a kernel")

    def test_core_sum_dominates_base(self, graphs):
        """The 0-core term equals the base kernel, so the CORE variant's
        raw values are lower-bounded by the base kernel's."""
        base = WeisfeilerLehmanKernel(2)
        wrapped = CoreVariantKernel(WeisfeilerLehmanKernel(2))
        k_base = base.gram(graphs)
        k_core = wrapped.gram(graphs)
        assert np.all(k_core >= k_base - 1e-9)

    def test_tree_contributes_only_low_cores(self, graphs):
        """A tree has degeneracy 1, so levels >= 2 add nothing to its row
        except via the always-present 0/1-cores."""
        wrapped = CoreVariantKernel(WeisfeilerLehmanKernel(1))
        capped = CoreVariantKernel(WeisfeilerLehmanKernel(1), max_core=1)
        full_gram = wrapped.gram(graphs)
        capped_gram = capped.gram(graphs)
        tree_index = 1
        # The tree's self-similarity saturates at core level 1.
        assert full_gram[tree_index, tree_index] == pytest.approx(
            capped_gram[tree_index, tree_index]
        )

    def test_max_core_caps_work(self, graphs):
        capped = CoreVariantKernel(WeisfeilerLehmanKernel(1), max_core=0)
        base = WeisfeilerLehmanKernel(1)
        assert np.allclose(capped.gram(graphs), base.gram(graphs))

    def test_psd(self, graphs):
        from repro.utils.linalg import is_positive_semidefinite

        gram = core_sp_kernel().gram(graphs, normalize=True)
        assert is_positive_semidefinite(gram, tol=1e-7)
