"""Tests for the QJSK baselines (unaligned + Umeyama-aligned)."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.kernels.qjsk import QJSKAligned, QJSKUnaligned


@pytest.fixture(scope="module")
def graphs():
    return [
        gen.star_graph(6),
        gen.path_graph(8),
        gen.barabasi_albert(7, 2, seed=0),
        gen.erdos_renyi(9, 0.35, seed=1).largest_component(),
    ]


class TestQJSKUnaligned:
    def test_self_similarity_one(self, graphs):
        kernel = QJSKUnaligned()
        gram = kernel.gram(graphs)
        assert np.allclose(np.diag(gram), 1.0)

    def test_values_in_unit_interval(self, graphs):
        gram = QJSKUnaligned().gram(graphs)
        assert np.all(gram > 0.0) and np.all(gram <= 1.0 + 1e-12)

    def test_mu_monotonicity(self, graphs):
        """Larger decay factor shrinks off-diagonal similarities."""
        soft = QJSKUnaligned(mu=0.5).gram(graphs)
        hard = QJSKUnaligned(mu=4.0).gram(graphs)
        off = ~np.eye(len(graphs), dtype=bool)
        assert np.all(hard[off] <= soft[off] + 1e-12)

    def test_not_permutation_invariant(self):
        """The paper's core criticism: padding depends on vertex order."""
        small = gen.star_graph(4)
        large = gen.barabasi_albert(9, 2, seed=3)
        kernel = QJSKUnaligned()
        baseline = kernel(small, large)
        permuted = kernel(small, large.permuted(
            np.random.default_rng(0).permutation(9)
        ))
        assert abs(baseline - permuted) > 1e-8

    def test_handles_equal_sizes(self):
        a = gen.cycle_graph(5)
        b = gen.star_graph(5)
        value = QJSKUnaligned()(a, b)
        assert 0.0 < value <= 1.0

    def test_rejects_nonpositive_mu(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            QJSKUnaligned(mu=0.0)


class TestQJSKAligned:
    def test_alignment_never_hurts(self, graphs):
        """Eq. 11 maximises over permutations, so the aligned kernel value
        should dominate the unaligned one (up to Umeyama's heuristic)."""
        unaligned = QJSKUnaligned().gram(graphs)
        aligned = QJSKAligned().gram(graphs)
        # Umeyama is a heuristic for the max, so allow small slack.
        assert np.all(aligned >= unaligned - 0.05)

    def test_more_robust_to_permutation(self):
        small = gen.star_graph(4)
        large = gen.barabasi_albert(9, 2, seed=3)
        perm = np.random.default_rng(0).permutation(9)
        unaligned_dev = abs(
            QJSKUnaligned()(small, large)
            - QJSKUnaligned()(small, large.permuted(perm))
        )
        aligned_dev = abs(
            QJSKAligned()(small, large)
            - QJSKAligned()(small, large.permuted(perm))
        )
        assert aligned_dev <= unaligned_dev + 1e-9

    def test_self_similarity_one(self, graphs):
        gram = QJSKAligned().gram(graphs)
        assert np.allclose(np.diag(gram), 1.0, atol=1e-9)

    def test_traits_indefinite(self):
        assert not QJSKUnaligned().traits.positive_definite
        assert not QJSKAligned().traits.positive_definite
