"""Tests for the shortest-path kernel."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.kernels.shortest_path import ShortestPathKernel


class TestFeatureMap:
    def test_path_graph_counts(self):
        # P3: distances 1 (x2) and 2 (x1); unlabelled mode.
        kernel = ShortestPathKernel(use_labels=False)
        features = kernel.feature_matrix([gen.path_graph(3)])
        assert sorted(features[0][features[0] > 0].tolist()) == [1.0, 2.0]

    def test_labels_split_features(self):
        plain = ShortestPathKernel(use_labels=False)
        labelled = ShortestPathKernel(use_labels=True)
        graphs = [gen.star_graph(5), gen.path_graph(5)]
        assert (
            labelled.feature_matrix(graphs).shape[1]
            >= plain.feature_matrix(graphs).shape[1]
        )

    def test_distance_cap(self):
        kernel = ShortestPathKernel(max_distance=2, use_labels=False)
        features = kernel.feature_matrix([gen.path_graph(10)])
        # All long distances collapse into the cap bucket -> 2 features.
        assert np.count_nonzero(features[0]) == 2

    def test_disconnected_pairs_ignored(self):
        from repro.graphs.graph import Graph

        adjacency = np.zeros((4, 4))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        kernel = ShortestPathKernel(use_labels=False)
        features = kernel.feature_matrix([Graph(adjacency)])
        assert features[0].sum() == 1.0  # only the 0-1 pair counts


class TestKernelBehaviour:
    def test_identical_graphs_maximal(self):
        g = gen.barabasi_albert(8, 2, seed=0)
        gram = ShortestPathKernel().gram([g, g], normalize=True)
        assert gram[0, 1] == pytest.approx(1.0)

    def test_distinguishes_star_from_path(self):
        gram = ShortestPathKernel(use_labels=False).gram(
            [gen.star_graph(7), gen.path_graph(7)], normalize=True
        )
        assert gram[0, 1] < 0.9
