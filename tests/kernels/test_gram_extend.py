"""Incremental Gram extension: exactness, eligibility gating, serving path.

The ISSUE acceptance criterion: ``gram_extend`` must agree with a
from-scratch ``gram`` to 1e-10 for every collection-independent kernel
and for frozen-prototype HAQJSK, on all three engine backends — and must
refuse loudly (named :class:`KernelError`) whenever a kernel's
collection semantics would silently change the cached entries.
"""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.graphs import generators as gen
from repro.kernels import (
    AlignedSubtreeKernel,
    GraphletKernel,
    HAQJSKAttributedD,
    HAQJSKKernelA,
    HAQJSKKernelD,
    JensenShannonKernel,
    JensenTsallisQKernel,
    PyramidMatchKernel,
    QJSKAligned,
    QJSKUnaligned,
    RandomWalkKernel,
    RenyiEntropyKernel,
    ShortestPathKernel,
    WeisfeilerLehmanKernel,
)

ATOL = 1e-10

ENGINES = ("serial", "batched", "process")


def eligible_zoo():
    """Every collection-independent kernel: pairwise opt-ins + feature maps."""
    return [
        QJSKUnaligned(),
        QJSKAligned(),
        JensenTsallisQKernel(n_iterations=3),
        JensenTsallisQKernel(q=1.7, n_iterations=2),
        JensenShannonKernel(),
        RenyiEntropyKernel(n_layers=4),
        PyramidMatchKernel(dimensions=3, n_levels=2),
        WeisfeilerLehmanKernel(3),
        ShortestPathKernel(),
        GraphletKernel(size=3),
    ]


ZOO = eligible_zoo()
ZOO_IDS = [f"{k.name}-{i}" for i, k in enumerate(ZOO)]


@pytest.fixture(scope="module")
def old_graphs():
    return [
        gen.cycle_graph(6),
        gen.path_graph(7),
        gen.star_graph(7),
        gen.barabasi_albert(9, 2, seed=0),
        gen.erdos_renyi(8, 0.4, seed=1).largest_component(),
    ]


@pytest.fixture(scope="module")
def new_graphs():
    return [gen.watts_strogatz(8, 4, 0.3, seed=2), gen.random_tree(8, seed=3)]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("kernel", ZOO, ids=ZOO_IDS)
class TestExtensionMatchesFullGram:
    def test_extend_matches_scratch(self, kernel, engine, old_graphs, new_graphs):
        full = kernel.gram(old_graphs + new_graphs, engine=engine)
        cached = kernel.gram(old_graphs, engine=engine)
        extended = kernel.gram_extend(cached, old_graphs, new_graphs, engine=engine)
        assert extended.shape == full.shape
        assert np.allclose(extended, full, atol=ATOL, rtol=0.0), kernel.name

    def test_repeated_extension(self, kernel, engine, old_graphs, new_graphs):
        """Extending twice (one newcomer at a time) still matches scratch."""
        full = kernel.gram(old_graphs + new_graphs, engine=engine)
        gram = kernel.gram(old_graphs, engine=engine)
        graphs = list(old_graphs)
        for newcomer in new_graphs:
            gram = kernel.gram_extend(gram, graphs, [newcomer], engine=engine)
            graphs.append(newcomer)
        assert np.allclose(gram, full, atol=ATOL, rtol=0.0), kernel.name


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "make",
    [
        lambda: HAQJSKKernelA(n_prototypes=8, n_levels=2, max_layers=4, seed=0),
        lambda: HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=4, seed=0),
        lambda: HAQJSKAttributedD(n_prototypes=8, n_levels=2, max_layers=4, seed=0),
    ],
    ids=["HAQJSK(A)", "HAQJSK(D)", "HAQJSK-L(D)"],
)
class TestFrozenPrototypeExtension:
    def test_frozen_extension_matches_scratch(
        self, make, engine, old_graphs, new_graphs
    ):
        kernel = make().freeze(old_graphs)
        full = kernel.gram(old_graphs + new_graphs, engine=engine)
        cached = kernel.gram(old_graphs, engine=engine)
        extended = kernel.gram_extend(cached, old_graphs, new_graphs, engine=engine)
        assert np.allclose(extended, full, atol=ATOL, rtol=0.0), kernel.name


class TestFrozenMode:
    def test_unfrozen_refuses_with_named_error(self, old_graphs, new_graphs):
        kernel = HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=4, seed=0)
        cached = kernel.gram(old_graphs)
        with pytest.raises(KernelError, match=r"HAQJSK\(D\).*freeze"):
            kernel.gram_extend(cached, old_graphs, new_graphs)

    def test_freeze_unfreeze_toggles_eligibility(self, old_graphs):
        kernel = HAQJSKKernelA(n_prototypes=8, n_levels=2, max_layers=4, seed=0)
        assert not kernel.collection_independent
        kernel.freeze(old_graphs)
        assert kernel.collection_independent
        kernel.unfreeze()
        assert not kernel.collection_independent

    def test_frozen_gram_is_stable_under_collection_growth(
        self, old_graphs, new_graphs
    ):
        """The defining frozen property: old entries never move."""
        kernel = HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=4, seed=0)
        kernel.freeze(old_graphs)
        reference = kernel.gram(old_graphs)
        combined = kernel.gram(old_graphs + new_graphs)
        n = len(old_graphs)
        assert np.allclose(combined[:n, :n], reference, atol=ATOL, rtol=0.0)

    def test_unfrozen_gram_depends_on_collection(self, old_graphs, new_graphs):
        """Sanity: without freezing, the old block genuinely moves —
        which is exactly why gram_extend must refuse."""
        kernel = HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=4, seed=0)
        reference = kernel.gram(old_graphs)
        combined = kernel.gram(old_graphs + new_graphs)
        n = len(old_graphs)
        assert not np.allclose(combined[:n, :n], reference, atol=1e-6)

    def test_frozen_system_is_picklable(self, old_graphs):
        import pickle

        kernel = HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=4, seed=0)
        kernel.freeze(old_graphs)
        system = pickle.loads(pickle.dumps(kernel.aligner.frozen_))
        assert system.reference_digest == kernel.aligner.frozen_.reference_digest
        assert system.n_layers == kernel.aligner.frozen_.n_layers


class TestCollectionDependentRefusals:
    @pytest.mark.parametrize(
        "kernel",
        [
            RandomWalkKernel(),
            AlignedSubtreeKernel(n_iterations=3, max_layers=4),
            GraphletKernel(size=4, n_samples=50, seed=0),
        ],
        ids=["RWK", "ASK", "GCGK-4"],
    )
    def test_refuses(self, kernel, old_graphs, new_graphs):
        cached = kernel.gram(old_graphs)
        with pytest.raises(KernelError, match="gram_extend refused"):
            kernel.gram_extend(cached, old_graphs, new_graphs)

    def test_graphlet_size3_is_eligible(self, old_graphs, new_graphs):
        kernel = GraphletKernel(size=3)
        assert kernel.collection_independent


class TestExtensionValidation:
    def test_shape_mismatch_rejected(self, old_graphs, new_graphs):
        kernel = QJSKUnaligned()
        bad = np.zeros((2, 2))
        with pytest.raises(KernelError, match="cached_gram"):
            kernel.gram_extend(bad, old_graphs, new_graphs)

    def test_empty_lists_rejected(self, old_graphs):
        kernel = QJSKUnaligned()
        cached = kernel.gram(old_graphs)
        with pytest.raises(KernelError):
            kernel.gram_extend(cached, old_graphs, [])
        with pytest.raises(KernelError):
            kernel.gram_extend(cached, [], old_graphs)
