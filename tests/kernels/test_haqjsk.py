"""Tests for the HAQJSK kernels (the paper's core contribution)."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.graphs import generators as gen
from repro.kernels.haqjsk import (
    HAQJSKKernelA,
    HAQJSKKernelD,
    HierarchicalAligner,
)
from repro.quantum.density import check_density_matrix
from repro.utils.linalg import is_positive_semidefinite


@pytest.fixture(scope="module")
def collection():
    return (
        [gen.random_tree(10, seed=i) for i in range(4)]
        + [gen.erdos_renyi(11, 0.4, seed=i).largest_component() for i in range(4)]
        + [gen.barabasi_albert(12, 2, seed=i) for i in range(4)]
    )


@pytest.fixture(scope="module")
def aligner():
    return HierarchicalAligner(n_prototypes=8, n_levels=3, max_layers=4, seed=0)


class TestHierarchicalAligner:
    def test_fixed_sizes_across_graphs(self, collection, aligner):
        structures = aligner.transform(collection)
        for level in range(1, 4):
            sizes = {s.level_adjacency(level).shape for s in structures}
            assert len(sizes) == 1  # all graphs share the level size

    def test_level_sizes_shrink(self, collection, aligner):
        structure = aligner.transform(collection)[0]
        sizes = [structure.level_adjacency(h).shape[0] for h in range(1, 4)]
        assert sizes == sorted(sizes, reverse=True)

    def test_aligned_densities_are_density_matrices(self, collection, aligner):
        for structure in aligner.transform(collection):
            for level in range(1, structure.n_levels + 1):
                check_density_matrix(structure.level_density(level))

    def test_aligned_adjacency_nonnegative_symmetric(self, collection, aligner):
        for structure in aligner.transform(collection):
            for level in range(1, structure.n_levels + 1):
                adjacency = structure.level_adjacency(level)
                assert np.allclose(adjacency, adjacency.T)
                assert np.all(adjacency >= -1e-12)

    def test_edge_mass_conserved(self, collection, aligner):
        structures = aligner.transform(collection)
        for graph, structure in zip(collection, structures):
            total = structure.level_adjacency(1).sum()
            assert total == pytest.approx(graph.adjacency.sum())

    def test_deterministic(self, collection):
        a = HierarchicalAligner(n_prototypes=8, n_levels=2, max_layers=3, seed=5)
        b = HierarchicalAligner(n_prototypes=8, n_levels=2, max_layers=3, seed=5)
        sa = a.transform(collection)
        sb = b.transform(collection)
        for x, y in zip(sa, sb):
            assert np.allclose(x.level_adjacency(1), y.level_adjacency(1))

    def test_rejects_empty_collection(self, aligner):
        with pytest.raises(KernelError):
            aligner.transform([])

    def test_inconsistent_k_option(self, collection):
        aligner = HierarchicalAligner(
            n_prototypes=8, n_levels=2, max_layers=3, seed=0,
            consistent_across_k=False,
        )
        structures = aligner.transform(collection)
        assert len(structures) == len(collection)


class TestHAQJSKKernels:
    @pytest.mark.parametrize("cls", [HAQJSKKernelA, HAQJSKKernelD])
    def test_psd_without_repair(self, cls, collection):
        kernel = cls(n_prototypes=8, n_levels=3, max_layers=4, seed=0)
        gram = kernel.gram(collection, normalize=True)
        assert is_positive_semidefinite(gram, tol=1e-7)

    @pytest.mark.parametrize("cls", [HAQJSKKernelA, HAQJSKKernelD])
    def test_permutation_invariance_exact(self, cls, collection):
        kernel = cls(n_prototypes=8, n_levels=2, max_layers=4, seed=0)
        rng = np.random.default_rng(0)
        permuted = [
            g.permuted(rng.permutation(g.n_vertices)) for g in collection
        ]
        gram_a = kernel.gram(collection)
        gram_b = kernel.gram(permuted)
        assert np.allclose(gram_a, gram_b, atol=1e-9)

    @pytest.mark.parametrize("cls", [HAQJSKKernelA, HAQJSKKernelD])
    def test_diagonal_is_maximal(self, cls, collection):
        """exp(-QJSD) is maximised at zero divergence, so self-similarity
        bounds every off-diagonal value."""
        kernel = cls(n_prototypes=8, n_levels=2, max_layers=4, seed=0)
        gram = kernel.gram(collection)
        diag = np.diag(gram)
        assert np.all(gram <= np.minimum(diag[:, None], diag[None, :]) + 1e-9)

    @pytest.mark.parametrize("cls", [HAQJSKKernelA, HAQJSKKernelD])
    def test_value_range(self, cls, collection):
        """Each level contributes exp(-D) in [exp(-log 2), 1], H levels."""
        kernel = cls(n_prototypes=8, n_levels=3, max_layers=4, seed=0)
        gram = kernel.gram(collection)
        assert np.all(gram <= 3.0 + 1e-9)
        assert np.all(gram >= 3.0 * 0.5 - 1e-9)

    def test_class_separation(self, collection):
        """Trees vs dense graphs must be separable in the Gram structure."""
        kernel = HAQJSKKernelD(n_prototypes=8, n_levels=3, max_layers=4, seed=0)
        gram = kernel.gram(collection, normalize=True)
        trees = slice(0, 4)
        dense = slice(4, 8)
        within = gram[trees, trees].mean()
        between = gram[trees, dense].mean()
        assert within > between

    def test_rejects_aligner_and_kwargs(self):
        with pytest.raises(KernelError):
            HAQJSKKernelA(HierarchicalAligner(), n_prototypes=4)

    def test_shared_aligner_instance(self, collection):
        aligner = HierarchicalAligner(
            n_prototypes=8, n_levels=2, max_layers=3, seed=0
        )
        kernel = HAQJSKKernelA(aligner)
        assert kernel.aligner is aligner
        kernel.gram(collection[:4])

    def test_traits_match_paper_claims(self):
        for cls in (HAQJSKKernelA, HAQJSKKernelD):
            traits = cls(n_prototypes=4).traits
            assert traits.positive_definite
            assert traits.aligned and traits.transitive
            assert traits.hierarchical
            assert traits.captures_local and traits.captures_global
            assert traits.computing_model == "Quantum Walks"
