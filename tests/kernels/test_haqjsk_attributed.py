"""Tests for the attributed HAQJSK kernels (paper Section V future work)."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.kernels import (
    HAQJSKAttributedA,
    HAQJSKAttributedD,
    HAQJSKKernelD,
)
from repro.utils.linalg import is_positive_semidefinite

KERNEL_CLASSES = (HAQJSKAttributedA, HAQJSKAttributedD)


def _labelled_collection(seed: int = 0, n: int = 8):
    rng = np.random.default_rng(seed)
    graphs = []
    for i in range(n):
        graph = gen.random_tree(9, seed=seed * 100 + i)
        graphs.append(
            graph.with_labels(rng.integers(0, 2, size=graph.n_vertices))
        )
    return graphs


@pytest.mark.parametrize("kernel_cls", KERNEL_CLASSES)
class TestContract:
    def test_gram_is_psd(self, kernel_cls):
        graphs = _labelled_collection()
        kernel = kernel_cls(n_prototypes=8, n_levels=2, max_layers=3)
        gram = kernel.gram(graphs)
        assert is_positive_semidefinite(gram, tol=1e-8)

    def test_gram_symmetric_with_unit_normalised_diagonal(self, kernel_cls):
        graphs = _labelled_collection(seed=1)
        kernel = kernel_cls(n_prototypes=8, n_levels=2, max_layers=3)
        gram = kernel.gram(graphs, normalize=True)
        assert np.allclose(gram, gram.T)
        assert np.allclose(np.diag(gram), 1.0)

    def test_permutation_invariance(self, kernel_cls):
        graphs = _labelled_collection(seed=2, n=6)
        kernel = kernel_cls(n_prototypes=8, n_levels=2, max_layers=3, seed=0)
        gram = kernel.gram(graphs)
        rng = np.random.default_rng(7)
        permuted = [
            g.permuted(rng.permutation(g.n_vertices)) for g in graphs
        ]
        gram_permuted = kernel.gram(permuted)
        assert np.allclose(gram, gram_permuted, atol=1e-8)

    def test_deterministic_given_seed(self, kernel_cls):
        graphs = _labelled_collection(seed=3, n=5)
        kwargs = dict(n_prototypes=8, n_levels=2, max_layers=3, seed=11)
        gram_a = kernel_cls(**kwargs).gram(graphs)
        gram_b = kernel_cls(**kwargs).gram(graphs)
        assert np.array_equal(gram_a, gram_b)

    def test_works_on_unlabelled_graphs(self, kernel_cls):
        graphs = [gen.random_tree(8, seed=i) for i in range(5)]
        kernel = kernel_cls(n_prototypes=8, n_levels=2, max_layers=3)
        gram = kernel.gram(graphs)
        assert np.all(np.isfinite(gram))


class TestLabelSensitivity:
    def test_labels_change_kernel_values(self):
        """Same topology, different labelling -> different Gram."""
        base = [gen.random_tree(10, seed=i) for i in range(6)]
        uniform = [g.with_labels([0] * g.n_vertices) for g in base]
        rng = np.random.default_rng(5)
        mixed = [
            g.with_labels(rng.integers(0, 3, size=g.n_vertices)) for g in base
        ]
        kernel = HAQJSKAttributedD(n_prototypes=8, n_levels=2, max_layers=3)
        gram_uniform = kernel.gram(uniform, normalize=True)
        gram_mixed = kernel.gram(mixed, normalize=True)
        assert not np.allclose(gram_uniform, gram_mixed, atol=1e-6)

    def test_label_pattern_separates_topologically_identical_graphs(self):
        """Two groups share topology and differ only in label placement;
        the attributed kernel must see higher within-group similarity.

        Uses the (A) variant: the aligned adjacency concentrates edge mass
        within label blocks for the "halves" placement and across blocks
        for the "alternating" placement. (The path's CTQW density has a
        parity symmetry that makes the two placements' *density* blocks
        coincide, so the (D) variant is tested on a tree below.)
        """
        path = gen.path_graph(10)
        # group A: labels alternate; group B: labels split in halves.
        alternating = [0, 1] * 5
        halves = [0] * 5 + [1] * 5
        graphs = (
            [path.with_labels(alternating) for _ in range(3)]
            + [path.with_labels(halves) for _ in range(3)]
        )
        kernel = HAQJSKAttributedA(
            n_prototypes=8, n_levels=2, max_layers=3, label_weight=2.0
        )
        gram = kernel.gram(graphs, normalize=True)
        within = (gram[0, 1] + gram[3, 4]) / 2
        between = gram[0, 3]
        assert within > between

    def test_density_variant_separates_label_placements_on_trees(self):
        """Same design on an asymmetric tree, where the (D) variant's
        aligned density blocks do differ between label placements."""
        tree = gen.random_tree(12, seed=4)
        rng = np.random.default_rng(2)
        placement_a = rng.permutation([0] * 6 + [1] * 6)
        placement_b = rng.permutation([0] * 6 + [1] * 6)
        assert not np.array_equal(placement_a, placement_b)
        graphs = (
            [tree.with_labels(placement_a) for _ in range(3)]
            + [tree.with_labels(placement_b) for _ in range(3)]
        )
        kernel = HAQJSKAttributedD(
            n_prototypes=8, n_levels=2, max_layers=3, label_weight=2.0
        )
        gram = kernel.gram(graphs, normalize=True)
        within = (gram[0, 1] + gram[3, 4]) / 2
        between = gram[0, 3]
        assert within > between

    def test_plain_kernel_blind_to_label_placement(self):
        """Control for the test above: the un-attributed kernel cannot
        distinguish the two label placements at all."""
        path = gen.path_graph(10)
        graphs = (
            [path.with_labels([0, 1] * 5) for _ in range(3)]
            + [path.with_labels([0] * 5 + [1] * 5) for _ in range(3)]
        )
        kernel = HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=3)
        gram = kernel.gram(graphs, normalize=True)
        assert np.allclose(gram, 1.0, atol=1e-9)

    def test_radius_widens_label_context(self):
        """radius=1 separates graphs whose vertices have identical own
        labels but different neighbour label mixes."""
        path = gen.path_graph(8)
        clustered = path.with_labels([0, 0, 0, 0, 1, 1, 1, 1])
        spread = path.with_labels([0, 1, 0, 1, 0, 1, 0, 1])
        collection = [clustered, clustered, spread, spread]
        kernel = HAQJSKAttributedD(
            n_prototypes=6, n_levels=2, max_layers=2, radius=1
        )
        gram = kernel.gram(collection, normalize=True)
        assert gram[0, 1] > gram[0, 2]


class TestQuantizationRegression:
    def test_invariance_under_float_jitter_on_labelled_molecules(self):
        """Regression: recomputing DB entropies on a permuted graph shifts
        sums by ~1e-16; without representation quantisation that reordered
        the canonical pooled matrix and flipped k-means++ picks, breaking
        permutation invariance at the 1e-2 level (caught by the Table I
        property experiment on the MUTAG probe)."""
        from repro.datasets import load_dataset

        dataset = load_dataset("MUTAG", scale=0.1, seed=0)
        graphs = dataset.graphs
        rng = np.random.default_rng(0)
        target = int(rng.integers(0, len(graphs)))
        permutation = rng.permutation(graphs[target].n_vertices)
        permuted = list(graphs)
        permuted[target] = graphs[target].permuted(permutation)
        kwargs = dict(n_prototypes=16, n_levels=5, max_layers=6, seed=0)
        gram_a = HAQJSKAttributedD(**kwargs).gram(graphs, normalize=True)
        gram_b = HAQJSKAttributedD(**kwargs).gram(permuted, normalize=True)
        assert np.allclose(gram_a, gram_b, atol=1e-10)

    def test_quantization_can_be_disabled(self):
        graphs = _labelled_collection(seed=9, n=4)
        kernel = HAQJSKAttributedD(
            n_prototypes=6, n_levels=2, max_layers=3, quantize_decimals=None
        )
        gram = kernel.gram(graphs)
        assert np.all(np.isfinite(gram))


class TestTraits:
    @pytest.mark.parametrize("kernel_cls", KERNEL_CLASSES)
    def test_traits_declare_label_awareness(self, kernel_cls):
        traits = kernel_cls(n_prototypes=4).traits
        assert "Vertex Labels" in traits.structure_patterns
        assert traits.positive_definite
        assert traits.transitive

    def test_names_distinguish_attributed_variants(self):
        assert HAQJSKAttributedA(n_prototypes=4).name == "HAQJSK-L(A)"
        assert HAQJSKAttributedD(n_prototypes=4).name == "HAQJSK-L(D)"
