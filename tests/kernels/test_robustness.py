"""Robustness of every kernel on pathological-but-legal inputs.

The Table II surrogates exercise these regimes for real: BSPHERE31 graphs
are forests with isolated vertices, RED-B graphs are huge sparse trees,
molecule graphs can be a single edge. Every kernel in the zoo must produce
finite, symmetric Gram matrices on all of them — silently propagating NaNs
from a zero-degree vertex into the SVM is the classic failure mode here.
"""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.ops import disjoint_union
from repro.kernels import (
    AlignedSubtreeKernel,
    GraphletKernel,
    HAQJSKAttributedD,
    HAQJSKKernelA,
    HAQJSKKernelD,
    JensenShannonKernel,
    JensenTsallisQKernel,
    PyramidMatchKernel,
    QJSKAligned,
    QJSKUnaligned,
    RandomWalkKernel,
    RenyiEntropyKernel,
    ShortestPathKernel,
    WeisfeilerLehmanKernel,
)


def small_zoo():
    """One cheap instance of every kernel family."""
    return [
        HAQJSKKernelA(n_prototypes=6, n_levels=2, max_layers=3, seed=0),
        HAQJSKKernelD(n_prototypes=6, n_levels=2, max_layers=3, seed=0),
        HAQJSKAttributedD(n_prototypes=6, n_levels=2, max_layers=3, seed=0),
        QJSKUnaligned(),
        QJSKAligned(),
        WeisfeilerLehmanKernel(2),
        ShortestPathKernel(),
        GraphletKernel(3),
        PyramidMatchKernel(dimensions=3, n_levels=2),
        JensenTsallisQKernel(n_iterations=2),
        AlignedSubtreeKernel(n_iterations=2, max_layers=3),
        RenyiEntropyKernel(n_layers=3),
        JensenShannonKernel(),
        RandomWalkKernel(),
    ]


def _check_gram(kernel, graphs):
    gram = kernel.gram(graphs, normalize=True)
    assert np.all(np.isfinite(gram)), f"{kernel.name}: non-finite Gram"
    assert np.allclose(gram, gram.T), f"{kernel.name}: asymmetric Gram"
    # A zero diagonal entry is legitimate for feature-count kernels when a
    # graph is smaller than the substructure (e.g. GCGK's 3-graphlets on a
    # 2-vertex graph: no 3-subsets, empty profile). Every non-degenerate
    # entry must normalise to exactly 1.
    diagonal = np.diag(gram)
    nonzero = diagonal != 0.0
    assert np.allclose(diagonal[nonzero], 1.0), f"{kernel.name}: bad diagonal"
    return gram


@pytest.mark.parametrize("kernel", small_zoo(), ids=lambda k: k.name)
class TestPathologicalCollections:
    def test_disconnected_graphs(self, kernel):
        graphs = [
            disjoint_union([gen.path_graph(3), gen.path_graph(4)]),
            disjoint_union([gen.cycle_graph(3), gen.cycle_graph(5)]),
            disjoint_union([gen.path_graph(2)] * 4),
            gen.path_graph(7),
        ]
        _check_gram(kernel, graphs)

    def test_isolated_vertices(self, kernel):
        """The BSPHERE31 regime: singleton components (degree 0)."""
        graphs = [
            disjoint_union([gen.path_graph(4), gen.empty_graph(3)]),
            disjoint_union([gen.path_graph(5), gen.empty_graph(1)]),
            gen.star_graph(5),
        ]
        _check_gram(kernel, graphs)

    def test_single_edge_graphs(self, kernel):
        graphs = [gen.path_graph(2), gen.path_graph(2), gen.path_graph(3)]
        _check_gram(kernel, graphs)

    def test_mixed_extreme_sizes(self, kernel):
        """2-vertex next to 30-vertex graphs (Table II's size spreads)."""
        graphs = [
            gen.path_graph(2),
            gen.erdos_renyi(30, 0.15, seed=0).largest_component(),
            gen.random_tree(18, seed=1),
        ]
        _check_gram(kernel, graphs)

    def test_weighted_edges(self, kernel):
        """Weighted adjacency (the aligned structures are weighted too)."""
        rng = np.random.default_rng(0)
        graphs = []
        for i in range(3):
            base = gen.random_tree(7, seed=i)
            weights = np.array(base.adjacency)
            mask = weights > 0
            jitter = rng.uniform(0.5, 2.0, size=weights.shape)
            jitter = (jitter + jitter.T) / 2
            weights[mask] = jitter[mask]
            graphs.append(Graph(weights))
        _check_gram(kernel, graphs)

    def test_identical_graphs(self, kernel):
        """Duplicates must produce a constant-1 normalised block."""
        tree = gen.random_tree(8, seed=3)
        gram = _check_gram(kernel, [tree, tree, gen.cycle_graph(8)])
        assert gram[0, 1] == pytest.approx(1.0, abs=1e-8)

    def test_complete_graphs(self, kernel):
        graphs = [gen.complete_graph(n) for n in (3, 5, 7)]
        _check_gram(kernel, graphs)
