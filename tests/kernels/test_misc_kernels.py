"""Tests for PMGK, JTQK, ASK, SPEGK, JSDK and RWK specifics."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.kernels.aligned_subtree import AlignedSubtreeKernel
from repro.kernels.jsd import JensenShannonKernel
from repro.kernels.jtqk import (
    JensenTsallisQKernel,
    jensen_tsallis_q_difference_classical,
)
from repro.kernels.pyramid_match import PyramidMatchKernel
from repro.kernels.random_walk import RandomWalkKernel
from repro.kernels.renyi import RenyiEntropyKernel, renyi2_db_representations


class TestPyramidMatch:
    def test_identical_graphs_match_fully(self):
        g = gen.barabasi_albert(8, 2, seed=0)
        kernel = PyramidMatchKernel()
        gram = kernel.gram([g, g], normalize=True)
        assert gram[0, 1] == pytest.approx(1.0)

    def test_match_counts_bounded_by_sizes(self):
        a, b = gen.star_graph(6), gen.path_graph(9)
        value = PyramidMatchKernel().gram([a, b])[0, 1]
        assert value <= min(a.n_vertices, b.n_vertices) + 1e-9

    def test_finer_levels_refine(self):
        a = gen.erdos_renyi(10, 0.3, seed=1)
        b = gen.erdos_renyi(10, 0.6, seed=2)
        coarse = PyramidMatchKernel(n_levels=1).gram([a, b], normalize=True)[0, 1]
        fine = PyramidMatchKernel(n_levels=4).gram([a, b], normalize=True)[0, 1]
        assert fine <= coarse + 0.05


class TestJTQK:
    def test_q_difference_zero_for_identical(self):
        p = np.asarray([0.5, 0.5])
        assert jensen_tsallis_q_difference_classical(p, p, 2.0) == 0.0

    def test_q_difference_positive_for_disjoint(self):
        p = np.asarray([1.0, 0.0])
        q = np.asarray([0.0, 1.0])
        # S_2((P+Q)/2) = 1 - 1/2 = 1/2 while both pure parts have S_2 = 0.
        assert jensen_tsallis_q_difference_classical(p, q, 2.0) == pytest.approx(0.5)

    def test_kernel_upper_bound_levels(self):
        kernel = JensenTsallisQKernel(n_iterations=3)
        g = gen.cycle_graph(5)
        assert kernel(g, g) == pytest.approx(4.0)  # levels 0..3, exp(0) each

    def test_uses_quantum_occupations(self):
        """Graphs with equal WL histograms but different walk occupations
        still get separated."""
        a = gen.star_graph(7)
        b = gen.star_graph(7)
        kernel = JensenTsallisQKernel(n_iterations=2)
        assert kernel(a, b) == pytest.approx(3.0)


class TestASK:
    def test_self_value_counts_all_vertices(self):
        g = gen.path_graph(5)
        kernel = AlignedSubtreeKernel(n_iterations=3, max_layers=4)
        # Perfect self-alignment: every vertex matches at every level.
        assert kernel(g, g) == pytest.approx(5 * 4)

    def test_alignment_size_bound(self):
        a, b = gen.star_graph(5), gen.path_graph(9)
        kernel = AlignedSubtreeKernel(n_iterations=2, max_layers=3)
        assert kernel(a, b) <= min(5, 9) * 3 + 1e-9


class TestSPEGK:
    def test_renyi2_shapes(self):
        reps = renyi2_db_representations(gen.cycle_graph(6), 4)
        assert reps.shape == (6, 4)
        assert np.all(reps >= 0)

    def test_renyi2_symmetric_vertices(self):
        reps = renyi2_db_representations(gen.cycle_graph(6), 3)
        assert np.allclose(reps, reps[0])

    def test_self_similarity_counts_vertices(self):
        g = gen.star_graph(6)
        kernel = RenyiEntropyKernel(n_layers=3)
        assert kernel(g, g) == pytest.approx(6.0)  # exp(0) per aligned pair

    def test_gamma_shrinks_similarity(self):
        a, b = gen.star_graph(6), gen.path_graph(6)
        soft = RenyiEntropyKernel(n_layers=3, gamma=0.1)(a, b)
        hard = RenyiEntropyKernel(n_layers=3, gamma=10.0)(a, b)
        assert hard <= soft + 1e-12


class TestJSDK:
    def test_self_one(self):
        g = gen.barabasi_albert(7, 2, seed=0)
        assert JensenShannonKernel()(g, g) == pytest.approx(1.0)

    def test_regular_graphs_identical_distributions(self):
        a, b = gen.cycle_graph(6), gen.cycle_graph(6)
        assert JensenShannonKernel()(a, b) == pytest.approx(1.0)


class TestRWK:
    def test_self_similarity_largest(self):
        graphs = [gen.path_graph(5), gen.star_graph(5), gen.cycle_graph(5)]
        gram = RandomWalkKernel().gram(graphs, normalize=True)
        assert np.all(np.diag(gram) >= gram.max(axis=1) - 1e-9)

    def test_labels_restrict_product(self):
        a = gen.attach_random_labels(gen.path_graph(5), 3, seed=0)
        b = gen.attach_random_labels(gen.star_graph(5), 3, seed=1)
        labelled = RandomWalkKernel(use_labels=True)
        unlabelled = RandomWalkKernel(use_labels=False)
        assert labelled([a, b][0], [a, b][1]) <= unlabelled(a, b) + 1e-9

    def test_psd_with_shared_decay(self):
        from repro.utils.linalg import is_positive_semidefinite

        graphs = [
            gen.path_graph(4), gen.star_graph(5), gen.cycle_graph(4),
            gen.complete_graph(4),
        ]
        gram = RandomWalkKernel().gram(graphs, normalize=True)
        assert is_positive_semidefinite(gram, tol=1e-6)
