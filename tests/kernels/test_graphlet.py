"""Tests for the graphlet kernel."""

import itertools

import numpy as np
import pytest

from repro.errors import KernelError
from repro.graphs import generators as gen
from repro.kernels.graphlet import (
    GraphletKernel,
    four_graphlet_type,
    three_graphlet_counts,
)


class TestThreeGraphlets:
    def test_triangle(self):
        counts = three_graphlet_counts(gen.cycle_graph(3))
        assert counts.tolist() == [0.0, 0.0, 0.0, 1.0]

    def test_path3(self):
        counts = three_graphlet_counts(gen.path_graph(3))
        assert counts.tolist() == [0.0, 0.0, 1.0, 0.0]

    def test_complete_graph(self):
        counts = three_graphlet_counts(gen.complete_graph(5))
        assert counts[3] == pytest.approx(10.0)
        assert counts[:3].sum() == pytest.approx(0.0)

    def test_total_is_n_choose_3(self):
        g = gen.erdos_renyi(10, 0.4, seed=0)
        counts = three_graphlet_counts(g)
        assert counts.sum() == pytest.approx(120.0)

    def test_matches_bruteforce(self):
        g = gen.erdos_renyi(8, 0.5, seed=1)
        skeleton = (g.adjacency > 0).astype(int)
        manual = np.zeros(4)
        for trio in itertools.combinations(range(8), 3):
            idx = np.ix_(trio, trio)
            edges = int(skeleton[idx].sum() // 2)
            manual[edges] += 1
        assert np.allclose(three_graphlet_counts(g), manual)


class TestFourGraphletTypes:
    def test_all_eleven_types_recognised(self):
        seen = set()
        for bits in range(64):
            adjacency = np.zeros((4, 4))
            for index, (u, v) in enumerate(itertools.combinations(range(4), 2)):
                if bits >> index & 1:
                    adjacency[u, v] = adjacency[v, u] = 1.0
            seen.add(four_graphlet_type(adjacency))
        assert seen == set(range(11))

    def test_k4(self):
        adjacency = np.ones((4, 4)) - np.eye(4)
        assert four_graphlet_type(adjacency) == 10


class TestGraphletKernel:
    def test_rejects_bad_size(self):
        with pytest.raises(KernelError):
            GraphletKernel(5)

    def test_exact_enumeration_small_graphs(self):
        # n=6 -> 15 subsets < n_samples, so enumeration is exact and the
        # Gram is permutation invariant even with sampling enabled.
        g = gen.erdos_renyi(6, 0.5, seed=2)
        perm = np.random.default_rng(0).permutation(6)
        kernel = GraphletKernel(4, n_samples=100, seed=0)
        features_a = kernel.feature_matrix([g])
        features_b = kernel.feature_matrix([g.permuted(perm)])
        assert np.allclose(features_a, features_b)

    def test_feature_normalisation(self):
        kernel = GraphletKernel(3)
        features = kernel.feature_matrix([gen.erdos_renyi(12, 0.3, seed=3)])
        assert features[0].sum() == pytest.approx(1.0)

    def test_size4_features_longer(self):
        g = gen.erdos_renyi(10, 0.4, seed=4)
        f3 = GraphletKernel(3).feature_matrix([g])
        f4 = GraphletKernel(4, n_samples=50, seed=0).feature_matrix([g])
        assert f4.shape[1] > f3.shape[1]

    def test_dense_vs_sparse_separation(self):
        gram = GraphletKernel(3).gram(
            [gen.complete_graph(8), gen.random_tree(8, seed=5)], normalize=True
        )
        assert gram[0, 1] < 0.5
