"""Tests for WL refinement and the WLSK kernel."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.kernels.wl import (
    WeisfeilerLehmanKernel,
    wl_feature_matrix,
    wl_label_sequences,
)


class TestRefinement:
    def test_iteration_zero_is_initial_labels(self, labelled_graph):
        sequences = wl_label_sequences([labelled_graph], 0)
        assert len(sequences) == 1
        # Vertices 1 and 2 share label 1 -> same compressed label.
        labels = sequences[0][0]
        assert labels[1] == labels[2]
        assert labels[0] != labels[1]

    def test_refinement_distinguishes_by_neighborhood(self, labelled_graph):
        sequences = wl_label_sequences([labelled_graph], 1)
        refined = sequences[1][0]
        # Vertex 1 has neighbours {0, 2} (labels 0, 1); vertex 2 has {1, 3}
        # (labels 1, 2) — they split after one iteration.
        assert refined[1] != refined[2]

    def test_shared_vocabulary_across_graphs(self):
        graphs = [gen.cycle_graph(5), gen.cycle_graph(7)]
        sequences = wl_label_sequences(graphs, 2)
        for iteration in sequences:
            # All cycle vertices are 2-regular and stay identical.
            union = {int(x) for labels in iteration for x in labels}
            assert len(union) == 1

    def test_isomorphic_graphs_same_histograms(self):
        g = gen.barabasi_albert(10, 2, seed=0)
        perm = np.random.default_rng(1).permutation(10)
        features = wl_feature_matrix([g, g.permuted(perm)], 3)
        assert np.allclose(features[0], features[1])

    def test_stable_partition_reached(self):
        g = gen.path_graph(6)
        sequences = wl_label_sequences([g], 8)
        # Partition sizes stop changing once WL stabilises.
        sizes = [len(set(labels[0].tolist())) for labels in sequences]
        assert sizes == sorted(sizes)
        assert sizes[-1] == sizes[-2]


class TestWLSK:
    def test_counts_match_manual(self):
        triangle = gen.cycle_graph(3)
        features = wl_feature_matrix([triangle], 1)
        # 3 identical vertices at iterations 0 and 1 -> two vocabulary slots
        # with count 3 each.
        assert sorted(features[0][features[0] > 0].tolist()) == [3.0, 3.0]

    def test_kernel_value_is_dot_product(self):
        graphs = [gen.cycle_graph(4), gen.star_graph(4)]
        kernel = WeisfeilerLehmanKernel(2)
        gram = kernel.gram(graphs)
        features = kernel.feature_matrix(graphs)
        assert np.allclose(gram, features @ features.T)

    def test_discriminates_structures(self):
        gram = WeisfeilerLehmanKernel(3).gram(
            [gen.cycle_graph(6), gen.cycle_graph(6), gen.star_graph(6)],
            normalize=True,
        )
        assert gram[0, 1] == pytest.approx(1.0)
        assert gram[0, 2] < 0.9

    def test_cross_gram_shape(self):
        kernel = WeisfeilerLehmanKernel(2)
        cross = kernel.cross_gram(
            [gen.cycle_graph(4)], [gen.star_graph(5), gen.path_graph(3)]
        )
        assert cross.shape == (1, 2)

    def test_more_iterations_refine_similarity(self):
        a = gen.watts_strogatz(12, 4, 0.0, seed=0)
        b = gen.watts_strogatz(12, 4, 0.6, seed=1)
        coarse = WeisfeilerLehmanKernel(0).gram([a, b], normalize=True)[0, 1]
        fine = WeisfeilerLehmanKernel(4).gram([a, b], normalize=True)[0, 1]
        assert fine <= coarse + 1e-9
