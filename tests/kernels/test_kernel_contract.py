"""Contract tests every kernel must satisfy (parametrized over the zoo).

Checks: Gram symmetry, positive diagonal, normalisation, determinism,
isomorphism invariance (for the kernels that claim it), and PSD-ness for
the kernels whose traits claim positive definiteness.
"""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.kernels import (
    AlignedSubtreeKernel,
    GraphletKernel,
    HAQJSKKernelA,
    HAQJSKKernelD,
    JensenShannonKernel,
    JensenTsallisQKernel,
    PyramidMatchKernel,
    QJSKAligned,
    QJSKUnaligned,
    RandomWalkKernel,
    RenyiEntropyKernel,
    ShortestPathKernel,
    WeisfeilerLehmanKernel,
    core_sp_kernel,
    core_wl_kernel,
)
from repro.utils.linalg import is_positive_semidefinite


def kernel_zoo():
    return [
        HAQJSKKernelA(n_prototypes=8, n_levels=2, max_layers=4, seed=0),
        HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=4, seed=0),
        QJSKUnaligned(),
        QJSKAligned(),
        WeisfeilerLehmanKernel(3),
        ShortestPathKernel(),
        GraphletKernel(3),
        core_wl_kernel(2),
        core_sp_kernel(),
        PyramidMatchKernel(dimensions=3, n_levels=2),
        JensenTsallisQKernel(n_iterations=3),
        AlignedSubtreeKernel(n_iterations=3, max_layers=4),
        RenyiEntropyKernel(n_layers=4),
        JensenShannonKernel(),
        RandomWalkKernel(),
    ]


ZOO = kernel_zoo()
ZOO_IDS = [k.name for k in ZOO]

#: Kernels that are exactly invariant to vertex relabelling of one graph.
#: (GCGK with 4-graphlet sampling and the QJSD-padding kernels are not.)
INVARIANT = {
    "HAQJSK(A)", "HAQJSK(D)", "WLSK", "SPGK", "CORE WLSK", "CORE SPGK",
    "GCGK", "PMGK", "JTQK", "SPEGK", "JSDK", "RWK", "ASK",
}


@pytest.fixture(scope="module")
def probe_graphs():
    return [
        gen.cycle_graph(6),
        gen.path_graph(7),
        gen.star_graph(7),
        gen.barabasi_albert(9, 2, seed=0),
        gen.erdos_renyi(8, 0.4, seed=1).largest_component(),
        gen.watts_strogatz(8, 4, 0.3, seed=2),
    ]


@pytest.mark.parametrize("kernel", ZOO, ids=ZOO_IDS)
class TestKernelContract:
    def test_gram_symmetric(self, kernel, probe_graphs):
        gram = kernel.gram(probe_graphs)
        assert np.allclose(gram, gram.T)

    def test_diagonal_positive(self, kernel, probe_graphs):
        gram = kernel.gram(probe_graphs)
        assert np.all(np.diag(gram) > 0)

    def test_normalized_diagonal_one(self, kernel, probe_graphs):
        gram = kernel.gram(probe_graphs, normalize=True)
        assert np.allclose(np.diag(gram), 1.0)

    def test_deterministic(self, kernel, probe_graphs):
        first = kernel.gram(probe_graphs)
        second = kernel.gram(probe_graphs)
        assert np.allclose(first, second)

    def test_pair_call_matches_gram(self, kernel, probe_graphs):
        if kernel.name.startswith("HAQJSK"):
            pytest.skip("HAQJSK is collection-level: pairs depend on the set")
        gram = kernel.gram(probe_graphs[:2])
        assert kernel(probe_graphs[0], probe_graphs[1]) == pytest.approx(
            gram[0, 1]
        )

    def test_ensure_psd_flag(self, kernel, probe_graphs):
        gram = kernel.gram(probe_graphs, normalize=True, ensure_psd=True)
        assert is_positive_semidefinite(gram, tol=1e-6)

    def test_rejects_empty_list(self, kernel):
        from repro.errors import KernelError

        with pytest.raises(KernelError):
            kernel.gram([])

    def test_rejects_empty_graph(self, kernel):
        from repro.errors import KernelError
        from repro.graphs.graph import Graph

        with pytest.raises(KernelError):
            kernel.gram([Graph(np.zeros((0, 0)))])


@pytest.mark.parametrize(
    "kernel",
    [k for k in ZOO if k.traits.positive_definite],
    ids=[k.name for k in ZOO if k.traits.positive_definite],
)
def test_claimed_pd_kernels_have_psd_gram(kernel, probe_graphs):
    gram = kernel.gram(probe_graphs, normalize=True)
    assert is_positive_semidefinite(gram, tol=1e-6), kernel.name


@pytest.mark.parametrize(
    "kernel",
    [k for k in ZOO if k.name in INVARIANT],
    ids=[k.name for k in ZOO if k.name in INVARIANT],
)
def test_isomorphism_invariance(kernel, probe_graphs):
    """Relabelling one graph's vertices must not change the Gram matrix
    (sampling-based kernels are seeded per position, so GCGK uses its
    exact 3-graphlet configuration here)."""
    if kernel.name == "GCGK":
        kernel = GraphletKernel(3)
    rng = np.random.default_rng(7)
    target = 3
    perm = rng.permutation(probe_graphs[target].n_vertices)
    permuted = list(probe_graphs)
    permuted[target] = probe_graphs[target].permuted(perm)
    gram_a = kernel.gram(probe_graphs, normalize=True)
    gram_b = kernel.gram(permuted, normalize=True)
    assert np.allclose(gram_a, gram_b, atol=1e-7), kernel.name


class TestCrossGram:
    """The rectangular Gram API (used by the Nyström approximation)."""

    def test_pairwise_cross_gram_matches_full_gram_block(self):
        graphs = [gen.random_tree(8, seed=i) for i in range(6)]
        kernel = HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=3, seed=0)
        full = kernel.gram(graphs)
        cross = kernel.cross_gram(graphs[:4], graphs[4:])
        # Same collection overall (4 + 2 graphs), so the block must match.
        assert cross.shape == (4, 2)
        assert np.allclose(cross, full[:4, 4:], atol=1e-9)

    def test_feature_map_cross_gram_matches_block(self):
        graphs = [gen.erdos_renyi(9, 0.3, seed=i) for i in range(5)]
        kernel = WeisfeilerLehmanKernel(2)
        full = kernel.gram(graphs)
        cross = kernel.cross_gram(graphs[:3], graphs[3:])
        assert np.allclose(cross, full[:3, 3:], atol=1e-9)

    def test_cross_gram_rejects_empty(self):
        from repro.errors import KernelError

        kernel = HAQJSKKernelD(n_prototypes=4, n_levels=2, max_layers=2)
        with pytest.raises(KernelError):
            kernel.cross_gram([], [gen.path_graph(3)])
