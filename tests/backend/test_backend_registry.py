"""Backend registry and selection-error tests (ISSUE satellite).

Unknown backend names must raise a named
:class:`~repro.errors.BackendError` listing the registered backends;
selecting an optional backend whose library is absent must raise the
same named error (with the import failure in the message) — never leak a
raw ``ImportError``.
"""

import numpy as np
import pytest

from repro.backend import (
    BACKENDS,
    available_backends,
    default_backend_name,
    resolve_backend,
    usable_backends,
)
from repro.backend.numpy_backend import NumpyBackend
from repro.errors import BackendError, KernelError


class TestRegistry:
    def test_numpy_registered_and_always_usable(self):
        assert "numpy" in BACKENDS
        assert "numpy" in available_backends()
        assert "numpy" in usable_backends()
        assert NumpyBackend.is_available()

    def test_optional_backends_registered_eagerly(self):
        # Registration never imports torch/cupy — the names are always
        # listed even where the libraries are absent.
        assert "torch" in available_backends()
        assert "cupy" in available_backends()

    def test_resolve_none_uses_default(self):
        backend = resolve_backend(None)
        assert backend.name == default_backend_name()

    def test_resolve_default_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert default_backend_name() == "numpy"
        monkeypatch.delenv("REPRO_BACKEND")
        assert default_backend_name() == "numpy"

    def test_resolve_instance_passthrough(self):
        instance = resolve_backend("numpy")
        assert resolve_backend(instance) is instance

    def test_instances_cached(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")


class TestSelectionErrors:
    def test_unknown_name_raises_named_error_listing_backends(self):
        with pytest.raises(BackendError) as info:
            resolve_backend("tensorflow")
        message = str(info.value)
        assert "tensorflow" in message
        for name in available_backends():
            assert name in message

    def test_backend_error_is_a_kernel_error(self):
        assert issubclass(BackendError, KernelError)

    @pytest.mark.parametrize("name", ["torch", "cupy"])
    def test_unavailable_optional_backend_raises_clean_error(self, name):
        cls = BACKENDS[name]
        if cls.is_available():  # pragma: no cover - GPU/torch machines
            pytest.skip(f"{name} is installed here")
        # The failure must surface as a BackendError carrying the reason,
        # never as a raw ImportError escaping resolve_backend.
        with pytest.raises(BackendError) as info:
            resolve_backend(name)
        message = str(info.value)
        assert name in message
        assert cls.unavailable_reason()
        assert not isinstance(info.value, ImportError)

    def test_unavailable_error_lists_usable_backends(self):
        cls = BACKENDS["torch"]
        if cls.is_available():  # pragma: no cover - torch machines
            pytest.skip("torch is installed here")
        with pytest.raises(BackendError) as info:
            resolve_backend("torch")
        assert "numpy" in str(info.value)


class TestNumpyBackendPrimitives:
    """The reference implementation of the device protocol."""

    @pytest.fixture()
    def stack(self):
        rng = np.random.default_rng(7)
        raw = rng.normal(size=(5, 6, 6))
        sym = (raw + np.swapaxes(raw, -1, -2)) / 2.0
        return sym

    def test_symmetrize_matches_definition(self):
        backend = resolve_backend("numpy")
        raw = np.random.default_rng(0).normal(size=(4, 3, 3))
        expected = (raw + np.swapaxes(raw, -1, -2)) / 2.0
        np.testing.assert_array_equal(backend.symmetrize(raw), expected)

    def test_eigvalsh_matches_numpy(self, stack):
        backend = resolve_backend("numpy")
        device = backend.asarray(stack, "float64")
        np.testing.assert_array_equal(
            backend.eigvalsh(device), np.linalg.eigvalsh(stack)
        )

    def test_mix_matches_historical_halved_sum(self, stack):
        backend = resolve_backend("numpy")
        a, b = stack[:3], stack[2:]
        expected = a + b
        expected *= 0.5
        np.testing.assert_array_equal(backend.mix(a.copy(), b.copy()), expected)

    def test_trace_and_pair_trace(self, stack):
        backend = resolve_backend("numpy")
        np.testing.assert_allclose(
            backend.trace(stack),
            np.trace(stack, axis1=-2, axis2=-1),
            atol=1e-14,
        )
        np.testing.assert_allclose(
            backend.pair_trace(stack, stack),
            (stack * stack).sum(axis=(-2, -1)),
            atol=1e-12,
        )

    def test_gershgorin_bounds_contain_spectrum(self, stack):
        backend = resolve_backend("numpy")
        lo, hi = backend.gershgorin(stack)
        values = np.linalg.eigvalsh(stack)
        assert (values.min(axis=-1) >= lo - 1e-12).all()
        assert (values.max(axis=-1) <= hi + 1e-12).all()

    def test_zero_row_counts(self):
        backend = resolve_backend("numpy")
        stack = np.zeros((2, 4, 4))
        stack[0, :2, :2] = np.eye(2)
        stack[1] = np.eye(4)
        np.testing.assert_array_equal(
            backend.zero_row_counts(stack), np.array([2, 0])
        )

    def test_float32_asarray_roundtrip(self, stack):
        backend = resolve_backend("numpy")
        device = backend.asarray(stack, "float32")
        assert device.dtype == np.float32
        host = backend.to_numpy(device)
        np.testing.assert_allclose(host, stack, atol=1e-6)

    def test_custom_backend_registration_is_isolated(self):
        from repro.backend import register_backend

        @register_backend
        class _ProbeBackend(NumpyBackend):
            name = "probe-test-backend"

        try:
            assert resolve_backend("probe-test-backend").name == (
                "probe-test-backend"
            )
        finally:
            BACKENDS.pop("probe-test-backend", None)
            from repro.backend.base import _INSTANCES

            _INSTANCES.pop("probe-test-backend", None)
