"""ComputePolicy construction, scoping and dispatch tests."""

import pickle

import numpy as np
import pytest

from repro.backend import (
    DEFAULT_CHEBYSHEV_DEGREE,
    REFERENCE_POLICY,
    ComputePolicy,
    active_policy,
    collect_phase_timings,
    policy_scope,
    scoped_policy,
)
from repro.errors import BackendError
from repro.utils.linalg import safe_xlogx


def _psd_stack(batch=16, m=12, seed=0):
    rng = np.random.default_rng(seed)
    raw = rng.normal(size=(batch, m, m))
    stack = np.matmul(raw, np.swapaxes(raw, -1, -2)) / m
    return stack / np.trace(stack, axis1=-2, axis2=-1)[:, None, None]


def _historical_entropies(stack):
    sym = (stack + np.swapaxes(stack, -1, -2)) / 2.0
    values = np.clip(np.linalg.eigvalsh(sym), 0.0, None)
    return -safe_xlogx(values).sum(axis=-1)


class TestConstruction:
    def test_defaults_are_the_reference(self):
        policy = ComputePolicy()
        assert policy.is_reference
        assert policy.describe() == "numpy/float64/eig"
        assert policy.chebyshev_degree == DEFAULT_CHEBYSHEV_DEGREE

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError, match="numpy"):
            ComputePolicy(backend="not-a-backend")

    def test_unknown_precision_rejected(self):
        with pytest.raises(BackendError, match="float64"):
            ComputePolicy(precision="float16")

    def test_unknown_entropy_rejected(self):
        with pytest.raises(BackendError, match="chebyshev"):
            ComputePolicy(entropy="lanczos")

    def test_degenerate_degree_rejected(self):
        with pytest.raises(BackendError, match="degree"):
            ComputePolicy(chebyshev_degree=1)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        monkeypatch.setenv("REPRO_PRECISION", "float32")
        monkeypatch.setenv("REPRO_ENTROPY", "auto")
        policy = ComputePolicy.from_env()
        assert policy.describe() == "numpy/float32/auto"
        # Overrides beat environment.
        assert ComputePolicy.from_env(precision="float64").precision == "float64"

    def test_from_env_defaults_to_reference(self, monkeypatch):
        for var in ("REPRO_BACKEND", "REPRO_PRECISION", "REPRO_ENTROPY"):
            monkeypatch.delenv(var, raising=False)
        assert ComputePolicy.from_env() == REFERENCE_POLICY

    def test_policies_pickle(self):
        policy = ComputePolicy(precision="float32", entropy="auto")
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestScoping:
    def test_active_policy_defaults_to_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PRECISION", raising=False)
        assert active_policy() == ComputePolicy.from_env()
        assert scoped_policy() is None

    def test_scope_installs_and_restores(self):
        fast = ComputePolicy(precision="float32")
        with policy_scope(fast):
            assert active_policy() is fast
            assert scoped_policy() is fast
        assert scoped_policy() is None

    def test_scopes_nest(self):
        outer = ComputePolicy(precision="float32")
        inner = ComputePolicy(entropy="chebyshev")
        with policy_scope(outer):
            with policy_scope(inner):
                assert active_policy() is inner
            assert active_policy() is outer

    def test_none_scope_is_transparent(self):
        outer = ComputePolicy(precision="float32")
        with policy_scope(outer):
            with policy_scope(None):
                assert active_policy() is outer

    def test_scope_rejects_non_policy(self):
        with pytest.raises(BackendError, match="ComputePolicy"):
            with policy_scope("float32"):  # type: ignore[arg-type]
                pass  # pragma: no cover


class TestEntropyDispatch:
    def test_reference_entropies_bitwise_stable(self):
        stack = _psd_stack()
        np.testing.assert_array_equal(
            REFERENCE_POLICY.entropies(stack), _historical_entropies(stack)
        )

    def test_reference_mixed_entropies_bitwise_stable(self):
        stack = _psd_stack()
        idx_a = np.array([0, 1, 2, 5, 9])
        idx_b = np.array([3, 3, 7, 0, 11])
        mixed = stack[idx_a] + stack[idx_b]
        mixed *= 0.5
        np.testing.assert_array_equal(
            REFERENCE_POLICY.mixed_entropies(stack, stack, idx_a, idx_b),
            _historical_entropies(mixed),
        )

    def test_float32_entropies_within_tier(self):
        stack = _psd_stack()
        fast = ComputePolicy(precision="float32")
        np.testing.assert_allclose(
            fast.entropies(stack), _historical_entropies(stack), atol=1e-5
        )
        assert fast.entropies(stack).dtype == np.float64

    def test_chebyshev_entropies_within_tier(self):
        stack = _psd_stack(m=24)
        approx = ComputePolicy(precision="float32", entropy="chebyshev")
        np.testing.assert_allclose(
            approx.entropies(stack), _historical_entropies(stack), atol=1e-2
        )

    def test_uses_approx_gating(self):
        assert not ComputePolicy().uses_approx(64)
        forced = ComputePolicy(entropy="chebyshev")
        assert forced.uses_approx(3)
        assert not forced.uses_approx(2)  # closed-form sizes stay exact
        auto64 = ComputePolicy(precision="float32", entropy="auto")
        assert auto64.uses_approx(32)
        assert not auto64.uses_approx(8)  # below approx_min_dim
        # float64 numpy never prefers the eig-free path on CPU.
        assert not ComputePolicy(entropy="auto").uses_approx(64)

    def test_matmul_matches_numpy_at_float64(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(9, 7))
        b = rng.normal(size=(7, 5))
        np.testing.assert_array_equal(REFERENCE_POLICY.matmul(a, b), a @ b)

    def test_phase_timings_collected(self):
        stack = _psd_stack()
        with collect_phase_timings() as timings:
            REFERENCE_POLICY.entropies(stack)
            REFERENCE_POLICY.matmul(stack[0], stack[1])
        assert set(timings) >= {"assembly", "eig", "reduce", "matmul"}
        assert all(value >= 0.0 for value in timings.values())

    def test_phase_timings_scope_is_isolated(self):
        stack = _psd_stack(batch=2, m=4)
        REFERENCE_POLICY.entropies(stack)  # no collector: must not raise
        with collect_phase_timings() as outer:
            with collect_phase_timings() as inner:
                REFERENCE_POLICY.entropies(stack)
            assert "eig" in inner
            REFERENCE_POLICY.entropies(stack)
        assert "eig" in outer
