"""End-to-end Gram equivalence under compute policies.

The documented tolerance tiers (README "Backends & precision"):

* ``numpy/float64/eig`` — the reference; bit-stable (1e-10 against the
  historical arithmetic, and engines agree bitwise with each other);
* ``numpy/float32/eig`` — Gram entries within ``1e-5`` of the reference;
* Chebyshev (``entropy="chebyshev"`` / ``auto`` at float32) — Gram
  entries within ``2e-2`` of the reference at the default degree.
"""

import numpy as np
import pytest

from repro.api import ExecutionContext
from repro.backend import ComputePolicy, policy_scope
from repro.engine import BatchedEngine, ProcessEngine, SerialEngine
from repro.graphs import generators as gen
from repro.kernels import (
    HAQJSKKernelA,
    HAQJSKKernelD,
    JensenTsallisQKernel,
    QJSKAligned,
    QJSKUnaligned,
)

FLOAT32_ATOL = 1e-5
CHEBYSHEV_ATOL = 2e-2

FP32 = ComputePolicy(precision="float32")
CHEB = ComputePolicy(precision="float32", entropy="chebyshev")
AUTO = ComputePolicy(precision="float32", entropy="auto", approx_min_dim=8)


def make_kernels():
    return [
        HAQJSKKernelA(n_prototypes=8, n_levels=2, max_layers=4, seed=0),
        HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=4, seed=0),
        QJSKUnaligned(),
        QJSKAligned(),
        JensenTsallisQKernel(n_iterations=3),
    ]


KERNELS = make_kernels()
KERNEL_IDS = [k.name for k in KERNELS]


@pytest.fixture(scope="module")
def graphs():
    return [
        gen.cycle_graph(8),
        gen.path_graph(9),
        gen.star_graph(9),
        gen.barabasi_albert(12, 2, seed=0),
        gen.erdos_renyi(11, 0.4, seed=1).largest_component(),
        gen.watts_strogatz(10, 4, 0.3, seed=2),
        gen.random_tree(10, seed=3),
    ]


@pytest.fixture(scope="module")
def reference_grams(graphs):
    return {
        kernel.name: kernel.gram(graphs, engine="batched")
        for kernel in make_kernels()
    }


@pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
class TestPolicyTiers:
    def test_reference_policy_is_bitwise_stable(
        self, kernel, graphs, reference_grams
    ):
        with policy_scope(ComputePolicy()):
            gram = kernel.gram(graphs, engine="batched")
        np.testing.assert_array_equal(gram, reference_grams[kernel.name])

    def test_float32_within_documented_tier(
        self, kernel, graphs, reference_grams
    ):
        with policy_scope(FP32):
            gram = kernel.gram(graphs, engine="batched")
        np.testing.assert_allclose(
            gram, reference_grams[kernel.name], atol=FLOAT32_ATOL
        )

    def test_chebyshev_within_documented_tier(
        self, kernel, graphs, reference_grams
    ):
        with policy_scope(CHEB):
            gram = kernel.gram(graphs, engine="batched")
        np.testing.assert_allclose(
            gram, reference_grams[kernel.name], atol=CHEBYSHEV_ATOL
        )

    def test_float64_engines_agree_bitwise(self, kernel, graphs):
        serial = kernel.gram(graphs, engine=SerialEngine())
        batched = kernel.gram(graphs, engine=BatchedEngine())
        np.testing.assert_allclose(serial, batched, atol=1e-10)


class TestEngineThreading:
    def test_engine_policy_attribute_installs_scope(self, graphs):
        kernel = QJSKUnaligned()
        reference = kernel.gram(graphs, engine=BatchedEngine())
        fast = kernel.gram(graphs, engine=BatchedEngine(policy=FP32))
        assert not np.array_equal(fast, reference)
        np.testing.assert_allclose(fast, reference, atol=FLOAT32_ATOL)

    def test_process_engine_ships_policy_to_workers(self, graphs):
        kernel = QJSKUnaligned()
        reference = kernel.gram(graphs, engine=BatchedEngine())
        engine = ProcessEngine(policy=CHEB, max_workers=2)
        with pytest.warns(RuntimeWarning) if _pool_blocked() else _nullcontext():
            approx = kernel.gram(graphs, engine=engine)
        np.testing.assert_allclose(approx, reference, atol=CHEBYSHEV_ATOL)

    def test_ambient_scope_reaches_process_workers(self, graphs):
        kernel = QJSKUnaligned()
        reference = kernel.gram(graphs, engine=BatchedEngine())
        with policy_scope(FP32):
            with pytest.warns(RuntimeWarning) if _pool_blocked() else (
                _nullcontext()
            ):
                fast = kernel.gram(graphs, engine=ProcessEngine(max_workers=2))
        assert not np.array_equal(fast, reference)
        np.testing.assert_allclose(fast, reference, atol=FLOAT32_ATOL)

    def test_auto_routes_large_levels_only(self, graphs):
        # auto + float32: levels >= approx_min_dim go eigenvalue-free,
        # the rest stay exact — the result must sit inside the loosest
        # (Chebyshev) tier.
        kernel = HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=4, seed=0)
        reference = kernel.gram(graphs, engine="batched")
        with policy_scope(AUTO):
            mixed = kernel.gram(graphs, engine="batched")
        np.testing.assert_allclose(mixed, reference, atol=CHEBYSHEV_ATOL)


class TestContextThreading:
    def test_context_fields_reach_the_tiles(self, graphs):
        kernel = QJSKUnaligned()
        reference = kernel.gram(graphs)
        ctx = ExecutionContext(precision="float32")
        fast = kernel.gram(graphs, ctx=ctx)
        assert not np.array_equal(fast, reference)
        np.testing.assert_allclose(fast, reference, atol=FLOAT32_ATOL)

    def test_context_record_carries_resolved_policy(self):
        record = ExecutionContext(precision="float32").to_record()
        assert record["backend"] == "numpy"
        assert record["precision"] == "float32"
        assert record["entropy"] == "eig"
        rebuilt = ExecutionContext.from_record(record)
        assert rebuilt.to_record() == record

    def test_context_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRECISION", "float32")
        monkeypatch.setenv("REPRO_ENTROPY", "auto")
        ctx = ExecutionContext.from_env()
        assert ctx.precision == "float32"
        assert ctx.entropy == "auto"
        policy = ctx.compute_policy()
        assert policy.describe() == "numpy/float32/auto"

    def test_context_rejects_unknown_backend_at_construction(self):
        from repro.errors import BackendError

        with pytest.raises(BackendError, match="numpy"):
            ExecutionContext(backend="not-a-backend")

    def test_validate_checks_backend_availability(self):
        from repro.backend import BACKENDS
        from repro.errors import BackendError

        if BACKENDS["torch"].is_available():  # pragma: no cover
            pytest.skip("torch is installed here")
        ctx = ExecutionContext(backend="torch")
        with pytest.raises(BackendError, match="torch"):
            ctx.validate()

    def test_reference_context_still_validates(self):
        ctx = ExecutionContext()
        assert ctx.validate() is ctx

    def test_bundle_records_compute_policy(self, graphs):
        from repro.serve import train_bundle

        labels = [i % 2 for i in range(len(graphs))]
        bundle = train_bundle(
            QJSKUnaligned(),
            graphs,
            labels,
            ctx=ExecutionContext(precision="float32"),
        )
        assert bundle.context_record["precision"] == "float32"
        assert bundle.context_record["backend"] == "numpy"


def _pool_blocked() -> bool:
    """Whether this environment degrades ProcessEngine to in-process."""
    import warnings

    engine = ProcessEngine(max_workers=1)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        engine.run_tiles(
            iter([(("k",), (_IdentityKernel(), [1.0], [1.0], False))]),
            lambda key, block: None,
        )
    return any(issubclass(w.category, RuntimeWarning) for w in caught)


class _IdentityKernel:
    def block_values(self, states_a, states_b):
        return np.ones((len(states_a), len(states_b)))

    def symmetric_block_values(self, states):
        return np.ones((len(states), len(states)))


from contextlib import nullcontext as _nullcontext  # noqa: E402
