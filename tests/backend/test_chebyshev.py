"""Accuracy tests for the eigenvalue-free Chebyshev entropy path."""

import numpy as np
import pytest

from repro.backend import chebyshev_entropies, resolve_backend
from repro.errors import BackendError
from repro.utils.linalg import safe_xlogx


def _psd_stack(batch=32, m=20, seed=1):
    rng = np.random.default_rng(seed)
    raw = rng.normal(size=(batch, m, m))
    stack = np.matmul(raw, np.swapaxes(raw, -1, -2)) / m
    return stack / np.trace(stack, axis1=-2, axis2=-1)[:, None, None]


def _exact(stack):
    values = np.clip(np.linalg.eigvalsh(stack), 0.0, None)
    return -safe_xlogx(values).sum(axis=-1)


BACKEND = resolve_backend("numpy")


class TestChebyshevAccuracy:
    def test_default_degree_within_documented_tier(self):
        stack = _psd_stack()
        approx = chebyshev_entropies(BACKEND, stack, 16)
        np.testing.assert_allclose(approx, _exact(stack), atol=1e-2)

    def test_error_shrinks_with_degree(self):
        stack = _psd_stack()
        exact = _exact(stack)
        errors = [
            np.abs(chebyshev_entropies(BACKEND, stack, d) - exact).max()
            for d in (8, 16, 32)
        ]
        assert errors[1] < errors[0]
        assert errors[2] < errors[1]
        assert errors[2] < 5e-4

    def test_float32_stack_within_tier(self):
        stack = _psd_stack()
        device = BACKEND.asarray(stack, "float32")
        approx = chebyshev_entropies(BACKEND, device, 16)
        assert approx.dtype == np.float64
        np.testing.assert_allclose(approx, _exact(stack), atol=1e-2)

    def test_padded_zero_rows_match_unpadded(self):
        # The QJSK invariant: zero-padding a density matrix must not move
        # its entropy. The correction term makes padded and unpadded
        # stacks agree to interpolation error, not just to p(0) drift.
        stack = _psd_stack(batch=8, m=12)
        padded = np.zeros((8, 20, 20))
        padded[:, :12, :12] = stack
        direct = chebyshev_entropies(BACKEND, stack, 24)
        via_pad = chebyshev_entropies(BACKEND, padded, 24)
        np.testing.assert_allclose(via_pad, direct, atol=1e-3)
        np.testing.assert_allclose(via_pad, _exact(stack), atol=1e-3)

    def test_pure_state_entropy_near_zero(self):
        # A rank-one projector has entropy exactly 0.
        v = np.ones(16) / 4.0
        rho = np.outer(v, v)[None]
        approx = chebyshev_entropies(BACKEND, rho, 16)
        assert abs(float(approx[0])) < 2e-2

    def test_maximally_mixed_state_exact_regime(self):
        m = 16
        rho = (np.eye(m) / m)[None]
        approx = chebyshev_entropies(BACKEND, rho, 16)
        np.testing.assert_allclose(approx, [np.log(m)], atol=1e-6)

    def test_all_zero_matrix_entropy_zero(self):
        stack = np.zeros((3, 10, 10))
        approx = chebyshev_entropies(BACKEND, stack, 16)
        np.testing.assert_allclose(approx, np.zeros(3), atol=1e-10)

    def test_degenerate_degree_rejected(self):
        with pytest.raises(BackendError, match="degree"):
            chebyshev_entropies(BACKEND, _psd_stack(batch=2, m=4), 1)
