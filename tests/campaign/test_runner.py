"""CampaignRunner: queue-backed scheduling, resume, reuse, failure."""

import pytest

from repro.campaign import (
    Campaign,
    CampaignDB,
    CampaignNode,
    CampaignPlan,
    CampaignRunner,
    node_key,
    register_executor,
    run_campaign_plan,
)
from repro.errors import CampaignError
from repro.jobs import JobQueue

#: Execution trace the synthetic executors append to (reset per test).
CALLS = []


@register_executor("runnertest.ok")
def _ok_executor(payload, ctx):
    CALLS.append(payload["name"])
    return {"value": payload.get("value", 0)}


@register_executor("runnertest.boom")
def _boom_executor(payload, ctx):
    CALLS.append(payload["name"])
    raise RuntimeError(f"boom in {payload['name']}")


@pytest.fixture(autouse=True)
def _reset_calls():
    CALLS.clear()


@pytest.fixture()
def db(tmp_path):
    db = CampaignDB(str(tmp_path / "campaign.db"))
    yield db
    db.close()


def _node(name, deps=(), kind="runnertest.ok", value=0, **params):
    return CampaignNode(
        name,
        kind,
        node_key(kind, params={"name": name, "value": value, **params}),
        payload={"name": name, "value": value},
        deps=deps,
    )


def _chain(campaign_name="chain", **params):
    return Campaign(
        campaign_name,
        [
            _node("gram", value=1, **params),
            _node("cell", deps=("gram",), value=2, **params),
            _node("row", deps=("cell",), value=3, **params),
        ],
    )


def test_runs_nodes_in_dependency_order(db):
    run = CampaignRunner(_chain(), db).run()
    assert run.ok
    assert run.executed == 3
    assert CALLS == ["gram", "cell", "row"]
    assert run.results["row"] == {"value": 3}
    assert run.counts["done"] == 3


def test_resume_skips_every_done_node(db):
    campaign = _chain()
    CampaignRunner(campaign, db).run()
    CALLS.clear()

    resumed = CampaignRunner(_chain(), db).run()
    assert resumed.ok
    assert resumed.executed == 0
    assert resumed.restored == 3
    assert CALLS == []
    # The resumed results render to the identical report.
    plan = CampaignPlan(campaign, render=lambda r: repr(sorted(r.items())))
    assert plan.report(resumed.results) == plan.report(db.results(resumed.campaign_id))


def test_max_nodes_stops_then_resume_finishes_the_rest(db):
    partial = CampaignRunner(_chain(), db).run(max_nodes=1)
    assert partial.stopped
    assert not partial.ok
    assert partial.executed == 1
    assert partial.counts["done"] == 1
    assert partial.counts["pending"] == 2

    resumed = CampaignRunner(_chain(), db).run()
    assert resumed.ok
    assert resumed.executed == 2
    assert resumed.restored == 1
    assert CALLS == ["gram", "cell", "row"]


def test_results_are_reused_across_campaigns_by_content_key(db):
    first = CampaignRunner(Campaign("one", [_node("a", value=7)]), db).run()
    assert first.executed == 1
    CALLS.clear()

    # A *different* campaign declares a node with the same content key:
    # the recorded result is adopted without executing anything.
    other = Campaign("two", [_node("a", value=7), _node("b", value=8)])
    run = CampaignRunner(other, db).run()
    assert run.ok
    assert run.reused == 1
    assert run.executed == 1
    assert CALLS == ["b"]
    assert run.results["a"] == {"value": 7}
    states = db.node_states(run.campaign_id)
    assert states["a"].reused and not states["b"].reused


def test_changed_params_recompute_only_the_changed_node(db):
    v1 = Campaign("grid", [_node("a", value=1), _node("b", value=2)])
    CampaignRunner(v1, db).run()
    CALLS.clear()

    # Same grid, one cell's inputs changed: new campaign identity, but
    # the unchanged cell still skips through key-level reuse.
    v2 = Campaign("grid", [_node("a", value=1), _node("b", value=2, seed=1)])
    assert v2.campaign_id != v1.campaign_id
    run = CampaignRunner(v2, db).run()
    assert run.ok
    assert run.reused == 1
    assert run.executed == 1
    assert CALLS == ["b"]


def test_failed_node_blocks_dependents(db):
    campaign = Campaign(
        "failing",
        [
            _node("bad", kind="runnertest.boom"),
            _node("downstream", deps=("bad",)),
            _node("independent"),
        ],
    )
    run = CampaignRunner(campaign, db).run()
    assert not run.ok
    assert [s.name for s in run.failed] == ["bad"]
    assert run.blocked == ["downstream"]
    assert run.executed == 1  # only `independent` completed
    assert CALLS == ["bad", "independent"]
    assert "RuntimeError: boom in bad" in run.failed[0].error
    assert run.counts == {
        "pending": 1, "running": 0, "done": 1, "failed": 1, "cancelled": 0,
    }


def test_resume_retries_failed_and_cancelled_nodes(db):
    campaign = Campaign("flaky", [_node("bad", kind="runnertest.boom")])
    first = CampaignRunner(campaign, db).run()
    assert [s.name for s in first.failed] == ["bad"]
    db.cancel_pending(first.campaign_id)  # no-op: nothing pending

    # Running again is the retry: the failed node is revived and
    # re-executed (and fails again here, with a fresh stored error).
    again = CampaignRunner(campaign, db).run()
    assert CALLS == ["bad", "bad"]
    assert [s.name for s in again.failed] == ["bad"]


def test_reconcile_requeues_torn_claim_from_a_killed_run(db):
    campaign = Campaign("torn", [_node("a")])
    queue = JobQueue(db.path)
    cid = db.ensure(campaign)
    node = campaign.node("a")
    job = queue.submit(
        f"campaign:{cid}",
        {"campaign": cid, "node": "a"},
        key=f"{cid}:a:{node.key[:16]}",
    )
    queue.claim("dead-worker", kinds=(f"campaign:{cid}",))

    # DB says pending, queue says running: the runner must heal the tear
    # immediately (not wait out the lease) and execute the node.
    run = CampaignRunner(campaign, db, queue).run()
    assert run.ok and run.executed == 1
    assert queue.get(job.id).status == "done"
    queue.close()


def test_reconcile_completes_job_for_already_done_node(db):
    campaign = Campaign("torn2", [_node("a")])
    queue = JobQueue(db.path)
    cid = db.ensure(campaign)
    node = campaign.node("a")
    job = queue.submit(
        f"campaign:{cid}",
        {"campaign": cid, "node": "a"},
        key=f"{cid}:a:{node.key[:16]}",
    )
    queue.claim("dead-worker", kinds=(f"campaign:{cid}",))
    db.mark_running(cid, "a")
    db.mark_done(cid, "a", {"value": 0})

    # Killed between the DB commit and the queue ack: nothing re-runs.
    run = CampaignRunner(campaign, db, queue).run()
    assert run.ok
    assert run.executed == 0 and run.restored == 1
    assert CALLS == []
    assert queue.get(job.id).status == "done"
    queue.close()


def test_unknown_executor_kind_is_a_stored_failure(db):
    campaign = Campaign(
        "unknown", [_node("a", kind="runnertest.not-registered")]
    )
    run = CampaignRunner(campaign, db).run()
    assert [s.name for s in run.failed] == ["a"]
    assert "no executor registered" in run.failed[0].error


def test_runner_rejects_non_plans(db):
    with pytest.raises(CampaignError):
        CampaignRunner(object(), db)


def test_run_campaign_plan_is_ephemeral_without_db():
    plan = CampaignPlan(
        Campaign("ephemeral", [_node("a", value=5)]),
        render=lambda results: f"value={results['a']['value']}",
    )
    run = run_campaign_plan(plan)
    assert run.ok
    assert run.report() == "value=5"


def test_summary_line_counts(db):
    run = CampaignRunner(_chain(), db).run()
    summary = run.summary()
    assert "done 3/3" in summary
    assert "executed 3" in summary
    resumed = CampaignRunner(_chain(), db).run()
    assert "executed 0, skipped 3" in resumed.summary()
