"""Campaign DAG layer: node keys, validation, toposort, identity."""

import pytest

from repro.api import ExecutionContext
from repro.campaign import (
    Campaign,
    CampaignNode,
    CampaignPlan,
    context_cache_record,
    node_key,
)
from repro.errors import CampaignError


def _node(name, deps=(), kind="t.kind", **params):
    return CampaignNode(
        name, kind, node_key(kind, params={"name": name, **params}), deps=deps
    )


# ---------------------------------------------------------------------- #
# node_key: exactly the value-relevant inputs enter the key
# ---------------------------------------------------------------------- #


def test_node_key_is_deterministic():
    kwargs = dict(fingerprint="fp", digest="dg", params={"seed": 0, "n": 3})
    assert node_key("cell", **kwargs) == node_key("cell", **kwargs)


@pytest.mark.parametrize(
    "change",
    [
        {"fingerprint": "other"},
        {"digest": "other"},
        {"params": {"seed": 1}},
    ],
)
def test_node_key_tracks_each_input(change):
    base = dict(fingerprint="fp", digest="dg", params={"seed": 0})
    assert node_key("cell", **base) != node_key("cell", **{**base, **change})
    assert node_key("cell", **base) != node_key("other-kind", **base)


def test_scheduling_context_fields_do_not_enter_the_key():
    # Engine, tile size, store and checkpointing are pinned to identical
    # results by the engine-equivalence tests, so moving a campaign to
    # another engine or store must key-match (skip), not recompute.
    a = ExecutionContext(engine="batched", tile_size=8, normalize=True)
    b = ExecutionContext(engine="strided", tile_size=64, normalize=True,
                         store="mem:elsewhere")
    assert node_key("cell", ctx=a) == node_key("cell", ctx=b)


def test_value_context_fields_change_the_key():
    base = ExecutionContext(normalize=True)
    assert node_key("cell", ctx=base) != node_key(
        "cell", ctx=base.replace(normalize=False)
    )
    assert node_key("cell", ctx=base) != node_key(
        "cell", ctx=base.replace(precision="float32")
    )


def test_context_cache_record_accepts_ctx_dict_and_none():
    ctx = ExecutionContext(engine="batched", normalize=True)
    from_ctx = context_cache_record(ctx)
    assert from_ctx == context_cache_record(ctx.to_record())
    assert "engine" not in from_ctx
    assert from_ctx["normalize"] is True
    assert set(context_cache_record(None)) == set(from_ctx)


# ---------------------------------------------------------------------- #
# CampaignNode / Campaign validation
# ---------------------------------------------------------------------- #


def test_node_rejects_blank_fields_and_unjsonable_payload():
    with pytest.raises(CampaignError):
        CampaignNode("", "kind", "key")
    with pytest.raises(CampaignError):
        CampaignNode("a", "", "key")
    with pytest.raises(CampaignError):
        CampaignNode("a", "kind", "")
    with pytest.raises(CampaignError):
        CampaignNode("a", "kind", "key", payload={"fn": object()})


def test_campaign_rejects_duplicate_names():
    with pytest.raises(CampaignError, match="duplicate"):
        Campaign("c", [_node("a"), _node("a")])


def test_campaign_rejects_unknown_dependency():
    with pytest.raises(CampaignError, match="unknown node"):
        Campaign("c", [_node("a", deps=("ghost",))])


def test_campaign_rejects_cycles():
    nodes = [_node("a", deps=("b",)), _node("b", deps=("a",))]
    with pytest.raises(CampaignError, match="cycle"):
        Campaign("c", nodes)


def test_campaign_rejects_empty():
    with pytest.raises(CampaignError):
        Campaign("c", [])


def test_unknown_node_lookup_raises():
    campaign = Campaign("c", [_node("a")])
    with pytest.raises(CampaignError):
        campaign.node("ghost")


# ---------------------------------------------------------------------- #
# Order and identity
# ---------------------------------------------------------------------- #


def test_toposort_respects_deps_and_declared_order():
    campaign = Campaign(
        "c",
        [
            _node("row", deps=("gram2", "gram1")),
            _node("gram1"),
            _node("gram2"),
        ],
    )
    assert [n.name for n in campaign.toposort()] == ["gram1", "gram2", "row"]
    # Declared order is preserved among ready peers and by iteration.
    assert [n.name for n in campaign] == ["row", "gram1", "gram2"]


def test_dependents_are_transitive():
    campaign = Campaign(
        "c",
        [_node("a"), _node("b", deps=("a",)), _node("c", deps=("b",)),
         _node("d")],
    )
    assert campaign.dependents("a") == ("b", "c")
    assert campaign.dependents("d") == ()


def test_campaign_id_tracks_node_keys():
    one = Campaign("c", [_node("a", seed=0)])
    same = Campaign("c", [_node("a", seed=0)])
    changed = Campaign("c", [_node("a", seed=1)])
    renamed = Campaign("other", [_node("a", seed=0)])
    assert one.campaign_id == same.campaign_id
    assert one.campaign_id != changed.campaign_id
    assert one.campaign_id != renamed.campaign_id


def test_plan_report_requires_renderer():
    campaign = Campaign("c", [_node("a")])
    with pytest.raises(CampaignError):
        CampaignPlan(campaign).report({})
    plan = CampaignPlan(campaign, render=lambda results: f"{len(results)} rows")
    assert plan.report({"a": {"v": 1}}) == "1 rows"
