"""``python -m repro.campaign`` CLI: run/status/resume/cancel in-process."""

import pytest

from repro.campaign import (
    Campaign,
    CampaignNode,
    CampaignPlan,
    node_key,
    register_campaign,
    register_executor,
)
from repro.campaign.cli import main

CALLS = []


@register_executor("clitest.ok")
def _ok(payload, ctx):
    CALLS.append(payload["name"])
    return {"value": payload["value"]}


@register_executor("clitest.boom")
def _boom(payload, ctx):
    raise RuntimeError("kaboom")


def _node(name, kind="clitest.ok", value=0, deps=()):
    return CampaignNode(
        name,
        kind,
        node_key(kind, params={"name": name, "value": value}),
        payload={"name": name, "value": value},
        deps=deps,
    )


@register_campaign("clitest-pair")
def _pair_campaign(*, ctx=None, **_):
    nodes = [_node("a", value=1), _node("b", value=2, deps=("a",))]
    return CampaignPlan(
        Campaign("clitest-pair", nodes),
        render=lambda results: "\n".join(
            f"{name}={results[name]['value']}" for name in sorted(results)
        ),
    )


@register_campaign("clitest-boom")
def _boom_campaign(*, ctx=None, **_):
    return CampaignPlan(
        Campaign("clitest-boom", [_node("bad", kind="clitest.boom")]),
        render=lambda results: "(unreachable)",
    )


@pytest.fixture(autouse=True)
def _reset_calls():
    CALLS.clear()


@pytest.fixture()
def db_path(tmp_path):
    return str(tmp_path / "campaign.db")


def test_run_then_resume_is_idempotent(db_path, tmp_path, capsys):
    report1 = str(tmp_path / "report1.md")
    report2 = str(tmp_path / "report2.md")
    assert main(["run", "clitest-pair", "--db", db_path, "--report", report1]) == 0
    err = capsys.readouterr().err
    assert "executed 2" in err
    assert CALLS == ["a", "b"]

    assert main(["resume", "clitest-pair", "--db", db_path, "--report", report2]) == 0
    err = capsys.readouterr().err
    assert "executed 0, skipped 2" in err
    assert CALLS == ["a", "b"]  # nothing recomputed
    with open(report1) as f1, open(report2) as f2:
        assert f1.read() == f2.read() == "a=1\nb=2\n"


def test_run_without_report_prints_it(db_path, capsys):
    assert main(["run", "clitest-pair", "--db", db_path]) == 0
    assert "a=1\nb=2" in capsys.readouterr().out


def test_run_without_db_or_store_is_ephemeral(capsys):
    assert main(["run", "clitest-pair"]) == 0
    assert "ephemeral" in capsys.readouterr().err


def test_failed_node_sets_exit_code_and_is_listed_in_status(db_path, capsys):
    assert main(["run", "clitest-boom", "--db", db_path]) == 1
    err = capsys.readouterr().err
    assert "failed: bad: RuntimeError: kaboom" in err

    # `status` exits non-zero too and prints the stored traceback.
    assert main(["status", "--db", db_path]) == 1
    out = capsys.readouterr().out
    assert "clitest-boom: 1 failed" in out
    assert "failed node bad:" in out
    assert "RuntimeError: kaboom" in out
    assert 'raise RuntimeError("kaboom")' in out


def test_status_lists_nodes_and_filters_campaigns(db_path, capsys):
    main(["run", "clitest-pair", "--db", db_path])
    capsys.readouterr()
    assert main(["status", "--db", db_path, "--nodes"]) == 0
    out = capsys.readouterr().out
    assert "clitest-pair: 2 done" in out
    assert "done  a" in out and "done  b" in out

    assert main(["status", "--db", db_path, "--campaign", "nonsense"]) == 2
    assert "no campaign 'nonsense'" in capsys.readouterr().err


def test_status_on_empty_db(db_path, capsys):
    assert main(["status", "--db", db_path]) == 0
    assert "no campaigns recorded" in capsys.readouterr().out


def test_status_without_db_errors(capsys):
    assert main(["status"]) == 2
    assert "no campaign database" in capsys.readouterr().err


def test_cancel_then_run_revives(db_path, capsys):
    # Stop after one node: the second stays pending.
    assert main(["run", "clitest-pair", "--db", db_path, "--max-nodes", "1"]) == 1
    assert CALLS == ["a"]
    assert main(["cancel", "clitest-pair", "--db", db_path]) == 0
    assert "cancelled 1 nodes" in capsys.readouterr().out
    assert main(["status", "--db", db_path]) == 0
    assert "1 cancelled" in capsys.readouterr().out

    # Running again revives the cancelled node; the done one still skips.
    assert main(["run", "clitest-pair", "--db", db_path]) == 0
    assert CALLS == ["a", "b"]


def test_cancel_unknown_campaign(db_path, capsys):
    assert main(["cancel", "nonsense", "--db", db_path]) == 2
    assert "no campaign 'nonsense'" in capsys.readouterr().err


def test_unknown_campaign_name_is_a_clean_error(db_path, capsys):
    assert main(["run", "no-such-campaign", "--db", db_path]) == 2
    assert "error:" in capsys.readouterr().err
