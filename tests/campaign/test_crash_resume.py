"""SIGKILL a campaign mid-node; resume recomputes only the unfinished DAG.

The acceptance path for the campaign layer: ``python -m repro.campaign
run table4 --store DIR`` killed at an arbitrary instant, then resumed —
the campaign database must show only the unfinished nodes executing on
the second run, and the final report must be byte-identical to an
uninterrupted run.
"""

import os
import re
import sqlite3
import subprocess
import sys
import time

#: table4 restricted to 2 kernels x 1 dataset = 4 nodes (gram + cell each).
TOTAL_NODES = 4


def _run_cmd(store, report):
    return [
        sys.executable, "-m", "repro.campaign", "run", "table4",
        "--store", store, "--kernels", "QJSK", "WLSK",
        "--datasets", "MUTAG", "--repeats", "1", "--report", report,
    ]


def _done_count(db_path):
    """Committed done nodes, read from outside the dying process."""
    if not os.path.exists(db_path):
        return 0
    try:
        conn = sqlite3.connect(db_path, timeout=5.0)
        try:
            row = conn.execute(
                "SELECT COUNT(*) FROM campaign_nodes WHERE status='done'"
            ).fetchone()
            return int(row[0])
        finally:
            conn.close()
    except sqlite3.OperationalError:
        return 0  # schema not created yet


def test_sigkill_mid_campaign_resume_recomputes_only_unfinished(tmp_path):
    store = str(tmp_path / "store")
    db_path = os.path.join(store, "campaign.db")

    # Reference: the same campaign run uninterrupted in a fresh store.
    ref_report = str(tmp_path / "reference.md")
    ref = subprocess.run(
        _run_cmd(str(tmp_path / "ref-store"), ref_report),
        capture_output=True, text=True, timeout=600, env=os.environ.copy(),
    )
    assert ref.returncode == 0, ref.stderr

    # Start the real run and SIGKILL it as soon as one node has landed.
    proc = subprocess.Popen(
        _run_cmd(store, str(tmp_path / "killed.md")),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        env=os.environ.copy(),
    )
    try:
        deadline = time.monotonic() + 300
        while _done_count(db_path) < 1:
            if proc.poll() is not None:
                raise AssertionError(
                    "campaign finished before it could be killed"
                )
            if time.monotonic() > deadline:
                raise AssertionError("campaign never recorded a done node")
            time.sleep(0.01)
    finally:
        proc.kill()  # SIGKILL: no cleanup, schedule left mid-flight
    proc.wait(timeout=60)

    done_before = _done_count(db_path)
    assert 1 <= done_before < TOTAL_NODES

    # Resume against the surviving sqlite file: only the unfinished
    # nodes may execute; everything recorded as done must be skipped.
    resumed_report = str(tmp_path / "resumed.md")
    resumed = subprocess.run(
        _run_cmd(store, resumed_report),
        capture_output=True, text=True, timeout=600, env=os.environ.copy(),
    )
    assert resumed.returncode == 0, resumed.stderr
    summary = re.search(
        r"done (\d+)/(\d+) \(executed (\d+), skipped (\d+)", resumed.stderr
    )
    assert summary is not None, resumed.stderr
    done, total, executed, skipped = map(int, summary.groups())
    assert (done, total) == (TOTAL_NODES, TOTAL_NODES)
    assert executed == TOTAL_NODES - done_before
    assert skipped == done_before
    assert _done_count(db_path) == TOTAL_NODES

    # The interrupted-then-resumed report is byte-identical to the
    # uninterrupted one.
    with open(ref_report, "rb") as ref_file, open(resumed_report, "rb") as res_file:
        assert ref_file.read() == res_file.read()
