"""Tests for the synthetic dataset machinery."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.datasets.synthetic import (
    ClassRecipe,
    broadcast_tree,
    build_dataset,
    community_graph,
    ego_collaboration,
    molecule_like,
    perturbed_template,
    shape_skeleton,
)
from repro.graphs import generators as gen
from repro.utils.rng import as_rng


class TestBuildDataset:
    def test_balanced_classes(self):
        recipes = [
            ClassRecipe(0, lambda rng: gen.cycle_graph(4)),
            ClassRecipe(1, lambda rng: gen.path_graph(4)),
        ]
        ds = build_dataset("toy", recipes, 10, seed=0)
        assert np.sum(ds.targets == 0) == 5

    def test_remainder_to_early_classes(self):
        recipes = [
            ClassRecipe(i, lambda rng: gen.cycle_graph(4)) for i in range(3)
        ]
        ds = build_dataset("toy", recipes, 10, seed=0)
        counts = np.bincount(ds.targets)
        assert counts.tolist() == [4, 3, 3]

    def test_rejects_fewer_graphs_than_classes(self):
        recipes = [ClassRecipe(i, lambda rng: gen.cycle_graph(3)) for i in range(5)]
        with pytest.raises(DatasetError):
            build_dataset("toy", recipes, 3, seed=0)

    def test_rejects_no_recipes(self):
        with pytest.raises(DatasetError):
            build_dataset("toy", [], 5, seed=0)

    def test_vertex_labels_attached(self):
        recipes = [ClassRecipe(0, lambda rng: gen.cycle_graph(5))]
        ds = build_dataset("toy", recipes, 3, seed=0, n_vertex_labels=4)
        for g in ds.graphs:
            assert g.labels is not None
            assert g.labels.max() < 4

    def test_instance_seeds_stable_across_counts(self):
        """Instance (class, index) must generate the same graph regardless
        of how many other instances exist."""
        recipe = ClassRecipe(0, lambda rng: gen.erdos_renyi(8, 0.4, seed=rng))
        small = build_dataset("toy", [recipe], 3, seed=7)
        large = build_dataset("toy", [recipe], 6, seed=7)
        for a, b in zip(small.graphs, large.graphs[:3]):
            assert a == b


class TestBuildingBlocks:
    def test_molecule_like_connected(self):
        g = molecule_like(as_rng(0), n_vertices=15, n_rings=2)
        assert g.is_connected()
        assert g.n_vertices >= 12  # rings may slightly exceed the target

    def test_molecule_like_ring_count_increases_edges(self):
        flat = molecule_like(as_rng(1), n_vertices=20, n_rings=0)
        ringy = molecule_like(as_rng(1), n_vertices=20, n_rings=3)
        flat_cyclomatic = flat.n_edges - flat.n_vertices + 1
        ringy_cyclomatic = ringy.n_edges - ringy.n_vertices + 1
        assert ringy_cyclomatic > flat_cyclomatic

    def test_community_graph_structure(self):
        g = community_graph(as_rng(2), n_vertices=60, n_communities=3,
                            p_in=0.6, p_out=0.02)
        assert g.n_vertices == 60

    def test_ego_collaboration_clustering(self):
        from repro.graphs.ops import clustering_coefficient

        g = ego_collaboration(as_rng(3), n_cliques=3, clique_low=4,
                              clique_high=7, overlap=0.4)
        assert clustering_coefficient(g) > 0.6

    def test_broadcast_tree_is_tree(self):
        g = broadcast_tree(as_rng(4), n_vertices=40, hub_bias=1.0)
        assert g.n_edges == 39
        assert g.is_connected()

    def test_broadcast_tree_hub_bias(self):
        flat = broadcast_tree(as_rng(5), n_vertices=120, hub_bias=0.2)
        hubby = broadcast_tree(as_rng(5), n_vertices=120, hub_bias=2.0)
        assert hubby.unweighted_degrees().max() > flat.unweighted_degrees().max()

    def test_perturbed_template_edge_count_stable(self):
        template = gen.watts_strogatz(30, 4, 0.1, seed=6)
        noisy = perturbed_template(template, as_rng(7), rewire_fraction=0.1)
        assert abs(noisy.n_edges - template.n_edges) <= 3

    def test_perturbed_template_zero_noise_identity(self):
        template = gen.cycle_graph(10)
        copy = perturbed_template(template, as_rng(8), rewire_fraction=0.0)
        assert copy == template

    def test_shape_skeleton_sizes(self):
        g = shape_skeleton(as_rng(9), n_vertices=50, n_limbs=4,
                           limb_ratio=0.3, loop_fraction=0.0)
        assert g.n_vertices == 50
        assert g.is_connected()

    def test_shape_skeleton_loops_add_edges(self):
        loopless = shape_skeleton(as_rng(10), n_vertices=40, n_limbs=3,
                                  limb_ratio=0.3, loop_fraction=0.0)
        loopy = shape_skeleton(as_rng(10), n_vertices=40, n_limbs=3,
                               limb_ratio=0.3, loop_fraction=0.5)
        assert loopy.n_edges > loopless.n_edges
