"""Tests for the 12 Table II dataset surrogates."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.datasets import DATASET_NAMES, PAPER_STATISTICS, load_dataset

SMALL_SCALES = {
    "MUTAG": 0.1, "PPIs": 0.12, "CATH2": 0.1, "PTC": 0.08,
    "GatorBait": 0.6, "BAR31": 0.2, "BSPHERE31": 0.2, "GEOD31": 0.2,
    "IMDB-B": 0.03, "IMDB-M": 0.02, "RED-B": 0.015, "COLLAB": 0.01,
}
SIZE_SCALES = {"CATH2": 0.2, "GatorBait": 0.2, "RED-B": 0.1, "COLLAB": 0.5}


@pytest.fixture(scope="module")
def small_datasets():
    return {
        name: load_dataset(
            name,
            scale=SMALL_SCALES[name],
            size_scale=SIZE_SCALES.get(name, 1.0),
            seed=0,
        )
        for name in DATASET_NAMES
    }


class TestRegistry:
    def test_all_names_present(self):
        assert len(DATASET_NAMES) == 12

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError, match="unknown"):
            load_dataset("NOT_A_DATASET")

    def test_class_counts_match_paper(self, small_datasets):
        for name, ds in small_datasets.items():
            assert ds.n_classes == PAPER_STATISTICS[name].n_classes, name

    def test_every_graph_nonempty(self, small_datasets):
        for name, ds in small_datasets.items():
            for g in ds.graphs:
                assert g.n_vertices >= 2, name
                assert g.n_edges >= 1, name

    def test_domains_match_paper(self, small_datasets):
        for name, ds in small_datasets.items():
            assert ds.domain == PAPER_STATISTICS[name].domain

    def test_labelled_datasets(self, small_datasets):
        for name in ("MUTAG", "PTC"):
            for g in small_datasets[name].graphs:
                assert g.labels is not None, name

    def test_unlabelled_datasets(self, small_datasets):
        for name in ("IMDB-B", "COLLAB", "BAR31"):
            for g in small_datasets[name].graphs:
                assert g.labels is None, name

    def test_deterministic(self):
        a = load_dataset("MUTAG", scale=0.05, seed=3)
        b = load_dataset("MUTAG", scale=0.05, seed=3)
        for ga, gb in zip(a.graphs, b.graphs):
            assert ga == gb

    def test_seed_changes_content(self):
        a = load_dataset("MUTAG", scale=0.05, seed=1)
        b = load_dataset("MUTAG", scale=0.05, seed=2)
        assert any(ga != gb for ga, gb in zip(a.graphs, b.graphs))

    def test_minimum_two_per_class(self):
        ds = load_dataset("GatorBait", scale=0.01, seed=0)
        counts = np.bincount(ds.targets)
        assert counts.min() >= 2

    def test_scale_bounds_checked(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            load_dataset("MUTAG", scale=0.0)
        with pytest.raises(ValidationError):
            load_dataset("MUTAG", scale=1.5)


class TestClassSignal:
    """Classes must be topologically distinguishable — the whole point of
    the surrogates (DESIGN.md substitution table)."""

    @pytest.mark.parametrize("name", ["MUTAG", "IMDB-B", "RED-B"])
    def test_wl_separates_classes_better_than_chance(self, name, small_datasets):
        from repro.kernels import WeisfeilerLehmanKernel
        from repro.ml import condition_gram, cross_validate_kernel

        # IMDB-B's classes overlap by design (paper band ~63-74%); the
        # 30-graph fixture is too small for a stable CV there, so test it
        # at the Table IV harness scale instead.
        ds = (
            load_dataset("IMDB-B", scale=0.06, seed=0)
            if name == "IMDB-B"
            else small_datasets[name]
        )
        gram = WeisfeilerLehmanKernel(3).gram(ds.graphs, normalize=True)
        result = cross_validate_kernel(
            condition_gram(gram), ds.targets, n_folds=4, n_repeats=1, seed=0
        )
        chance = 1.0 / ds.n_classes
        assert result.mean_accuracy > chance + 0.1, name

    def test_ppis_separated_by_haqjsk(self):
        """PPIs classes differ by community structure + density — a global
        signal the HAQJSK kernels should see well above chance (the WL test
        above would under-perform here at tiny scale, matching the paper's
        relative ordering)."""
        from repro.kernels import HAQJSKKernelD
        from repro.ml import cross_validate_kernel

        ds = load_dataset("PPIs", scale=0.25, size_scale=0.6, seed=0)
        kernel = HAQJSKKernelD(n_prototypes=48, n_levels=3, max_layers=6, seed=0)
        gram = kernel.gram(ds.graphs, normalize=True)
        result = cross_validate_kernel(gram, ds.targets, n_folds=5, n_repeats=1, seed=0)
        assert result.mean_accuracy > 0.2 + 0.15

    def test_mutag_ring_signal(self, small_datasets):
        from repro.graphs.ops import triangle_count

        ds = small_datasets["MUTAG"]
        # Mutagenic class has more cycles: check mean cyclomatic number.
        cyclomatic = np.asarray(
            [g.n_edges - g.n_vertices + len(g.connected_components()) for g in ds.graphs]
        )
        assert cyclomatic[ds.targets == 1].mean() > cyclomatic[ds.targets == 0].mean()

    def test_imdb_clique_signal(self, small_datasets):
        from repro.graphs.ops import clustering_coefficient

        ds = small_datasets["IMDB-B"]
        coefficients = np.asarray(
            [clustering_coefficient(g) for g in ds.graphs]
        )
        assert coefficients.mean() > 0.5  # ego nets are clique unions

    def test_redb_hub_signal(self, small_datasets):
        ds = small_datasets["RED-B"]
        hubiness = np.asarray(
            [g.unweighted_degrees().max() / g.n_vertices for g in ds.graphs]
        )
        assert hubiness[ds.targets == 1].mean() > hubiness[ds.targets == 0].mean()

    @pytest.mark.parametrize("name", ["BAR31", "GEOD31", "BSPHERE31"])
    def test_shape_datasets_have_positive_haqjsk_alignment(self, name, small_datasets):
        """Smooth counterpart of the CV checks: the HAQJSK Gram must carry
        positive kernel-target alignment on the shape surrogates, where
        per-class counts are too small for stable CV assertions."""
        from repro.kernels import HAQJSKKernelD
        from repro.ml import kernel_target_alignment

        ds = small_datasets[name]
        kernel = HAQJSKKernelD(n_prototypes=24, n_levels=3, max_layers=5, seed=0)
        gram = kernel.gram(ds.graphs, normalize=True)
        assert kernel_target_alignment(gram, ds.targets) > 0.02, name
