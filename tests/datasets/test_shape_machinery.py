"""Tests for the shape-dataset machinery (weighted templates, forests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import (
    WeightedTemplate,
    grow_weighted,
    limb_forest,
    make_weighted_template,
    triangulate_chords,
)
from repro.errors import DatasetError
from repro.graphs import generators as gen


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestWeightedTemplate:
    def test_make_produces_tree_and_simplex_weights(self):
        template = make_weighted_template(_rng(), n_vertices=12)
        assert template.graph.n_edges == template.graph.n_vertices - 1
        assert template.edge_weights.shape == (template.graph.n_edges,)
        assert np.isclose(template.edge_weights.sum(), 1.0)
        assert template.edge_weights.min() >= 0.0

    def test_weight_length_mismatch_rejected(self):
        tree = gen.random_tree(6, seed=0)
        with pytest.raises(DatasetError):
            WeightedTemplate(tree, np.ones(3) / 3)

    def test_non_simplex_weights_rejected(self):
        tree = gen.random_tree(5, seed=0)
        with pytest.raises(DatasetError):
            WeightedTemplate(tree, np.full(tree.n_edges, 0.9))

    def test_deterministic_given_rng(self):
        a = make_weighted_template(_rng(3), n_vertices=10)
        b = make_weighted_template(_rng(3), n_vertices=10)
        assert a.graph == b.graph
        assert np.array_equal(a.edge_weights, b.edge_weights)


class TestGrowWeighted:
    def test_exact_target_size(self):
        template = make_weighted_template(_rng(1), n_vertices=8)
        grown = grow_weighted(template, 50, _rng(2))
        assert grown.n_vertices == 50

    def test_subdivision_preserves_tree_edge_count(self):
        template = make_weighted_template(_rng(1), n_vertices=8)
        grown = grow_weighted(template, 40, _rng(2))
        assert grown.n_edges == grown.n_vertices - 1  # still a tree

    def test_target_below_template_returns_template_size(self):
        template = make_weighted_template(_rng(1), n_vertices=10)
        grown = grow_weighted(template, 4, _rng(2))
        assert grown.n_vertices == template.graph.n_vertices

    def test_degree_multiset_of_branch_vertices_preserved(self):
        # Subdivision only inserts degree-2 vertices: the multiset of
        # degrees != 2 must be exactly the template's.
        template = make_weighted_template(_rng(5), n_vertices=9)
        grown = grow_weighted(template, 60, _rng(6))

        def branching(graph):
            degrees = graph.unweighted_degrees()
            return sorted(d for d in degrees if d != 2)

        assert branching(grown) == branching(template.graph)

    def test_proportions_follow_class_profile(self):
        # A spiky profile: one edge absorbs 90% of growth. The two grown
        # segments' length ratio must reflect that.
        tree = gen.path_graph(3)  # edges (0,1) and (1,2)
        template = WeightedTemplate(tree, np.array([0.9, 0.1]))
        sizes = []
        for seed in range(5):
            grown = grow_weighted(template, 103, _rng(seed))
            # vertex 1 is the only cut vertex; its removal leaves the two
            # grown segments as components.
            degrees = grown.unweighted_degrees()
            assert grown.n_vertices == 103
            sizes.append(degrees.sum())  # smoke: connected tree
        template_heavy = grow_weighted(template, 103, _rng(0))
        distances = template_heavy.shortest_path_lengths()
        # segment lengths = distance from vertex 0 to 1 and 1 to 2
        heavy, light = distances[0, 1], distances[1, 2]
        assert heavy > 4 * light

    @settings(max_examples=20, deadline=None)
    @given(
        target=st.integers(min_value=10, max_value=120),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_size_and_treeness_properties(self, target, seed):
        template = make_weighted_template(_rng(7), n_vertices=7)
        grown = grow_weighted(template, target, _rng(seed))
        assert grown.n_vertices == max(target, 7)
        assert grown.n_edges == grown.n_vertices - 1
        assert grown.is_connected()


class TestTriangulateChords:
    def test_adds_requested_chord_count(self):
        path = gen.path_graph(30)
        dense = triangulate_chords(path, _rng(), 20)
        assert dense.n_edges == path.n_edges + 20

    def test_zero_budget_is_identity(self):
        path = gen.path_graph(10)
        assert triangulate_chords(path, _rng(), 0) == path

    def test_deterministic_regardless_of_rng(self):
        tree = gen.random_tree(25, seed=3)
        a = triangulate_chords(tree, _rng(0), 15)
        b = triangulate_chords(tree, _rng(999), 15)
        assert a == b

    def test_chords_connect_nearby_vertices_first(self):
        # On a path, every distance-2 chord creates a triangle; with a
        # budget under the distance-2 supply, all chords are triangles.
        path = gen.path_graph(20)
        distances = path.shortest_path_lengths()
        dense = triangulate_chords(path, _rng(), 10)
        base_edges = {(u, v) for u, v, _ in path.edges()}
        for u, v, _ in dense.edges():
            if (u, v) not in base_edges:
                assert distances[u, v] == 2

    def test_falls_back_to_distance_three(self):
        # Budget beyond the distance-2 supply (n-2 on a path) must spill
        # into distance-3 chords instead of silently under-delivering.
        path = gen.path_graph(12)
        supply_d2 = 10
        dense = triangulate_chords(path, _rng(), supply_d2 + 5)
        assert dense.n_edges == path.n_edges + supply_d2 + 5

    def test_similar_skeletons_get_similar_chords(self):
        """The design requirement: near-identical skeletons densify to
        near-identical graphs (no fresh randomness per instance)."""
        tree = gen.random_tree(30, seed=5)
        a = triangulate_chords(tree, _rng(1), 25)
        b = triangulate_chords(tree, _rng(2), 25)
        assert a == b


class TestLimbForest:
    def test_exact_vertex_count(self):
        graph = limb_forest(
            _rng(), n_vertices=80, limb_weights=np.array([0.5, 0.3, 0.2])
        )
        assert graph.n_vertices == 80

    def test_edge_vertex_ratio_near_target(self):
        graph = limb_forest(
            _rng(),
            n_vertices=200,
            limb_weights=np.array([0.4, 0.4, 0.2]),
            edge_vertex_ratio=0.567,
        )
        assert graph.n_edges / graph.n_vertices == pytest.approx(0.567, abs=0.03)

    def test_is_forest(self):
        graph = limb_forest(
            _rng(3), n_vertices=60, limb_weights=np.array([0.7, 0.3])
        )
        components = graph.connected_components()
        # forest: edges = vertices - components
        assert graph.n_edges == graph.n_vertices - len(components)

    def test_limb_profile_shapes_component_sizes(self):
        spiky = limb_forest(
            _rng(4), n_vertices=150, limb_weights=np.array([0.9, 0.05, 0.05])
        )
        sizes = sorted(
            (len(c) for c in spiky.connected_components()), reverse=True
        )
        # dominant limb absorbs most of the limb mass
        assert sizes[0] > 3 * sizes[1]

    def test_invalid_profiles_rejected(self):
        with pytest.raises(DatasetError):
            limb_forest(_rng(), n_vertices=20, limb_weights=np.array([]))
        with pytest.raises(DatasetError):
            limb_forest(
                _rng(), n_vertices=20, limb_weights=np.array([0.5, 0.2])
            )
        with pytest.raises(DatasetError):
            limb_forest(
                _rng(),
                n_vertices=20,
                limb_weights=np.array([1.0]),
                edge_vertex_ratio=1.5,
            )

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=10, max_value=150),
        n_limbs=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_never_exceeds_size_and_stays_forest(self, n, n_limbs, seed):
        rng = _rng(seed)
        weights = rng.dirichlet(np.ones(n_limbs))
        graph = limb_forest(rng, n_vertices=n, limb_weights=weights)
        assert graph.n_vertices == max(n, 2 * n_limbs + 1)
        components = graph.connected_components()
        assert graph.n_edges == graph.n_vertices - len(components)
