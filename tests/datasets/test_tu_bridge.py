"""Tests for the TU-files -> GraphDataset bridge."""

import numpy as np
import pytest

from repro.datasets import GraphDataset, load_dataset, load_tu_directory
from repro.errors import DatasetError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.io import write_tu_dataset


@pytest.fixture()
def tu_on_disk(tmp_path):
    """A small labelled dataset written in TU format."""
    rng = np.random.default_rng(0)
    graphs = []
    for i in range(6):
        graph = gen.random_tree(5 + i % 3, seed=i)
        graphs.append(graph.with_labels(rng.integers(0, 3, graph.n_vertices)))
    targets = [1, 1, 1, -1, -1, -1]  # TU-style {-1, 1} classes
    write_tu_dataset(str(tmp_path), "TOY", graphs, targets)
    return tmp_path, graphs, targets


class TestLoadTUDirectory:
    def test_roundtrip_graphs_and_targets(self, tu_on_disk):
        tmp_path, graphs, _ = tu_on_disk
        dataset = load_tu_directory(str(tmp_path), "TOY")
        assert isinstance(dataset, GraphDataset)
        assert len(dataset) == 6
        for original, loaded in zip(graphs, dataset.graphs):
            assert np.array_equal(original.adjacency, loaded.adjacency)
            assert np.array_equal(original.labels, loaded.labels)

    def test_targets_reindexed_to_zero_based(self, tu_on_disk):
        tmp_path, _, _ = tu_on_disk
        dataset = load_tu_directory(str(tmp_path), "TOY")
        assert sorted(set(dataset.targets)) == [0, 1]
        # -1 sorts before 1, so the negative class becomes 0
        assert list(dataset.targets) == [1, 1, 1, 0, 0, 0]

    def test_reindexing_can_be_disabled(self, tu_on_disk):
        tmp_path, _, targets = tu_on_disk
        dataset = load_tu_directory(str(tmp_path), "TOY", reindex_targets=False)
        assert list(dataset.targets) == targets

    def test_domain_and_description_attached(self, tu_on_disk):
        tmp_path, _, _ = tu_on_disk
        dataset = load_tu_directory(
            str(tmp_path), "TOY", domain="Bio", description="toy"
        )
        assert dataset.domain == "Bio"
        assert "toy" in dataset.description

    def test_edgeless_graphs_dropped_and_reported(self, tmp_path):
        graphs = [gen.path_graph(3), Graph(np.zeros((2, 2))), gen.path_graph(4)]
        write_tu_dataset(str(tmp_path), "HOLEY", graphs, [0, 0, 1])
        dataset = load_tu_directory(str(tmp_path), "HOLEY")
        assert len(dataset) == 2
        assert "dropped 1" in dataset.description

    def test_all_edgeless_rejected(self, tmp_path):
        graphs = [Graph(np.zeros((2, 2))), Graph(np.zeros((3, 3)))]
        write_tu_dataset(str(tmp_path), "EMPTYISH", graphs, [0, 1])
        with pytest.raises(DatasetError):
            load_tu_directory(str(tmp_path), "EMPTYISH")

    def test_missing_dataset_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_tu_directory(str(tmp_path), "NOT_THERE")

    def test_registry_dataset_survives_tu_roundtrip(self, tmp_path):
        """The promised workflow: export a surrogate, reload it, and get a
        dataset the kernels can consume identically."""
        original = load_dataset("MUTAG", scale=0.08, seed=0)
        write_tu_dataset(
            str(tmp_path), "MUTAG", original.graphs, list(original.targets)
        )
        reloaded = load_tu_directory(str(tmp_path), "MUTAG", domain="Bio")
        assert len(reloaded) == len(original)
        assert list(reloaded.targets) == list(original.targets)
        from repro.kernels import HAQJSKKernelD

        kernel = HAQJSKKernelD(n_prototypes=8, n_levels=2, max_layers=3, seed=0)
        gram_a = kernel.gram(original.graphs)
        gram_b = kernel.gram(reloaded.graphs)
        assert np.allclose(gram_a, gram_b, atol=1e-10)
