"""Tests for GraphDataset and its statistics."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.datasets.base import GraphDataset
from repro.graphs import generators as gen


@pytest.fixture
def dataset():
    graphs = [gen.cycle_graph(4), gen.path_graph(5), gen.star_graph(6),
              gen.cycle_graph(5)]
    return GraphDataset("toy", graphs, [0, 1, 1, 0], domain="Test")


class TestConstruction:
    def test_basic(self, dataset):
        assert len(dataset) == 4
        assert dataset.n_classes == 2

    def test_rejects_length_mismatch(self):
        with pytest.raises(DatasetError):
            GraphDataset("bad", [gen.cycle_graph(3)], [0, 1])

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            GraphDataset("bad", [], [])

    def test_rejects_non_graph(self):
        with pytest.raises(DatasetError):
            GraphDataset("bad", ["not a graph"], [0])

    def test_repr(self, dataset):
        assert "toy" in repr(dataset)


class TestStatistics:
    def test_vertex_stats(self, dataset):
        stats = dataset.statistics()
        assert stats.max_vertices == 6
        assert stats.mean_vertices == pytest.approx(5.0)

    def test_edge_mean(self, dataset):
        stats = dataset.statistics()
        assert stats.mean_edges == pytest.approx((4 + 4 + 5 + 5) / 4)

    def test_unlabelled_reports_none(self, dataset):
        assert dataset.statistics().n_vertex_labels is None

    def test_labelled_counts_distinct(self):
        graphs = [
            gen.attach_random_labels(gen.cycle_graph(6), 3, seed=0),
            gen.attach_random_labels(gen.path_graph(6), 3, seed=1),
        ]
        ds = GraphDataset("lab", graphs, [0, 1])
        assert 1 <= ds.statistics().n_vertex_labels <= 3

    def test_as_row_keys(self, dataset):
        row = dataset.statistics().as_row()
        assert "Mean # vertices" in row and "# classes" in row


class TestSubset:
    def test_subset_preserves_order(self, dataset):
        sub = dataset.subset([2, 0])
        assert sub.targets.tolist() == [1, 0]
        assert sub.graphs[0].n_vertices == 6

    def test_subset_empty_rejected(self, dataset):
        with pytest.raises(DatasetError):
            dataset.subset([])

    def test_stratified_subsample_counts(self):
        graphs = [gen.cycle_graph(4)] * 10 + [gen.path_graph(4)] * 10
        ds = GraphDataset("big", graphs, [0] * 10 + [1] * 10)
        sub = ds.stratified_subsample(3, seed=0)
        assert len(sub) == 6
        assert np.sum(sub.targets == 0) == 3

    def test_stratified_subsample_caps_at_class_size(self):
        graphs = [gen.cycle_graph(4)] * 3 + [gen.path_graph(4)] * 10
        ds = GraphDataset("skew", graphs, [0] * 3 + [1] * 10)
        sub = ds.stratified_subsample(5, seed=0)
        assert np.sum(sub.targets == 0) == 3
        assert np.sum(sub.targets == 1) == 5

    def test_stratified_subsample_deterministic(self):
        graphs = [gen.cycle_graph(4)] * 20
        ds = GraphDataset("d", graphs, [i % 2 for i in range(20)])
        a = ds.stratified_subsample(4, seed=5)
        b = ds.stratified_subsample(4, seed=5)
        assert a.targets.tolist() == b.targets.tolist()


class TestSubsample:
    """GraphDataset.subsample(n, seed): total-count stratified draws."""

    def _skewed(self):
        graphs = (
            [gen.cycle_graph(4)] * 12
            + [gen.path_graph(4)] * 6
            + [gen.star_graph(4)] * 2
        )
        return GraphDataset("skew", graphs, [0] * 12 + [1] * 6 + [2] * 2)

    def test_exact_size_and_proportions(self):
        sub = self._skewed().subsample(10, seed=0)
        assert len(sub) == 10
        # 12:6:2 over 20 -> exact quotas 6:3:1.
        assert np.sum(sub.targets == 0) == 6
        assert np.sum(sub.targets == 1) == 3
        assert np.sum(sub.targets == 2) == 1

    def test_largest_remainder_rounding(self):
        sub = self._skewed().subsample(7, seed=0)
        # Exact shares 4.2 / 2.1 / 0.7: the star class has the largest
        # remainder, so it gets the leftover seat.
        assert len(sub) == 7
        assert np.sum(sub.targets == 0) == 4
        assert np.sum(sub.targets == 1) == 2
        assert np.sum(sub.targets == 2) == 1

    def test_deterministic_for_fixed_seed(self):
        ds = self._skewed()
        a = ds.subsample(9, seed=42)
        b = ds.subsample(9, seed=42)
        assert a.targets.tolist() == b.targets.tolist()
        assert [g.name for g in a.graphs] == [g.name for g in b.graphs]

    def test_n_clamped_to_length(self):
        ds = self._skewed()
        assert len(ds.subsample(10**6, seed=0)) == len(ds)

    def test_invalid_n_rejected(self):
        with pytest.raises(DatasetError):
            self._skewed().subsample(0, seed=0)

    def test_saturated_class_tops_up_elsewhere(self):
        graphs = [gen.cycle_graph(4)] * 2 + [gen.path_graph(4)] * 18
        ds = GraphDataset("sat", graphs, [0] * 2 + [1] * 18)
        sub = ds.subsample(19, seed=1)
        assert len(sub) == 19
        assert np.sum(sub.targets == 0) == 2  # the whole small class
        assert np.sum(sub.targets == 1) == 17
