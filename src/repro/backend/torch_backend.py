"""Optional torch backend — registered eagerly, imported lazily.

The registry always lists ``"torch"``; environments without the library
get a named :class:`~repro.errors.BackendError` from
:func:`~repro.backend.resolve_backend` instead of an ``ImportError``.
When torch is present the backend runs on CUDA if available, else CPU —
the protocol is device-agnostic because only reductions cross back to
the host (as float64 ndarrays), exactly like the NumPy reference.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend, register_backend

_IMPORT_ERROR: "str | None" = None


def _torch():
    """Import torch on first use; remember the failure message."""
    global _IMPORT_ERROR
    try:
        import torch
    except ImportError as exc:  # pragma: no cover - environment-specific
        _IMPORT_ERROR = f"{type(exc).__name__}: {exc}"
        return None
    return torch


@register_backend
class TorchBackend(ArrayBackend):
    """torch.Tensor implementation of the backend protocol."""

    name = "torch"

    @classmethod
    def is_available(cls) -> bool:
        return _torch() is not None

    @classmethod
    def unavailable_reason(cls) -> str:
        if _torch() is not None:
            return ""
        return _IMPORT_ERROR or "torch is not installed"

    def __init__(self) -> None:
        torch = _torch()
        self._torch = torch
        self._device = torch.device(
            "cuda" if torch.cuda.is_available() else "cpu"
        )
        self._dtypes = {
            "float64": torch.float64,
            "float32": torch.float32,
        }

    def asarray(self, array: np.ndarray, dtype: str):
        return self._torch.as_tensor(
            np.ascontiguousarray(array),
            dtype=self._dtypes[dtype],
            device=self._device,
        )

    def to_numpy(self, array) -> np.ndarray:
        return array.detach().cpu().numpy()

    def symmetrize(self, stack):
        return (stack + stack.transpose(-1, -2)) / 2.0

    def eigvalsh(self, stack):
        return self._torch.linalg.eigvalsh(stack)

    def take(self, stack, indices: np.ndarray):
        index = self._torch.as_tensor(
            np.ascontiguousarray(indices), device=self._device
        )
        return stack[index]

    def mix(self, a, b):
        return (a + b) / 2.0

    def matmul(self, a, b):
        return a @ b

    def add_scaled_identity(self, stack, coefficients: np.ndarray):
        out = stack.clone()
        shift = self._torch.as_tensor(
            np.asarray(coefficients), dtype=stack.dtype, device=self._device
        )
        diag = out.diagonal(dim1=-2, dim2=-1)
        diag += shift[..., None]
        return out

    def scale(self, stack, factors: np.ndarray):
        scale = self._torch.as_tensor(
            np.asarray(factors), dtype=stack.dtype, device=self._device
        )
        return stack * scale[..., None, None]

    def subtract(self, a, b):
        return a - b

    def entropy_reduce(self, values) -> np.ndarray:
        torch = self._torch
        clipped = values.clamp(min=0.0).double()
        product = torch.where(
            clipped > 0.0,
            clipped * torch.log(clipped.clamp(min=1e-300)),
            torch.zeros((), dtype=torch.float64, device=clipped.device),
        )
        return self.to_numpy(-product.sum(dim=-1)).astype(np.float64)

    def trace(self, stack) -> np.ndarray:
        trace = stack.diagonal(dim1=-2, dim2=-1).sum(dim=-1)
        return self.to_numpy(trace).astype(np.float64)

    def pair_trace(self, a, b) -> np.ndarray:
        product = (a * b).sum(dim=(-2, -1))
        return self.to_numpy(product).astype(np.float64)

    def gershgorin(self, stack) -> "tuple[np.ndarray, np.ndarray]":
        diagonal = stack.diagonal(dim1=-2, dim2=-1).double()
        radius = stack.abs().sum(dim=-1).double() - diagonal.abs()
        lo = (diagonal - radius).min(dim=-1).values
        hi = (diagonal + radius).max(dim=-1).values
        return (
            self.to_numpy(lo).astype(np.float64),
            self.to_numpy(hi).astype(np.float64),
        )

    def zero_row_counts(self, stack) -> np.ndarray:
        diagonal = stack.diagonal(dim1=-2, dim2=-1)
        radius = stack.abs().sum(dim=-1) - diagonal.abs()
        zero = (diagonal == 0) & (radius == 0)
        return self.to_numpy(zero.sum(dim=-1))

    def prefers_eig_free(self, m: int, precision: str) -> bool:
        # Batched symmetric eigensolvers are the weak spot of GPU linear
        # algebra; the matmul-only Chebyshev path is the GPU-friendly one
        # regardless of precision.
        return self._device.type == "cuda" or precision == "float32"
