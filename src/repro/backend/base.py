"""The :class:`ArrayBackend` protocol and its registry.

A backend owns the batched hot-path primitives every QJSD-family kernel
bottoms out in — stacked Hermitian eigenvalues, the ``safe_xlogx``
entropy reduction, mixed-state assembly, matmul — over *device arrays*
of its own kind (plain ndarrays for NumPy, tensors for torch, cupy
arrays on a GPU). The compute seam is deliberately narrow: host code
hands a backend float64 NumPy input once per tile, all intermediate
math happens in device arrays at the policy's precision, and only small
reductions (entropies, traces) come back to the host — always as
float64, so tile accumulation never inherits device round-off beyond
the documented tolerance tier.

Backends register by name; optional ones (torch, cupy) are *registered
eagerly but imported lazily* — the registry always lists them, and
:func:`resolve_backend` raises one named
:class:`~repro.errors.BackendError` both for unknown names and for
registered-but-unavailable libraries, so callers never see a raw
``ImportError`` from backend selection.
"""

from __future__ import annotations

import abc
import os

import numpy as np

from repro.errors import BackendError

#: Environment variable selecting the process-wide default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Backend used when nothing else is specified.
FALLBACK_BACKEND = "numpy"

#: Precision names the mixed-precision policy accepts.
PRECISIONS = ("float64", "float32")


class ArrayBackend(abc.ABC):
    """Batched array primitives behind the kernel hot paths.

    One instance per backend (they are stateless); all ``stack``
    arguments are whatever :meth:`asarray` returned — backend-native
    device arrays — except where a method documents a host ndarray.
    Reductions (:meth:`entropy_reduce`, :meth:`trace`,
    :meth:`pair_trace`, :meth:`gershgorin`) return **host float64**
    ndarrays: the accumulation side of the mixed-precision policy.
    """

    #: Registry key; subclasses set it and appear in :data:`BACKENDS`.
    name: str = "backend"

    @classmethod
    def is_available(cls) -> bool:
        """Whether the backing library imports in this environment."""
        return True

    @classmethod
    def unavailable_reason(cls) -> str:
        """Why :meth:`is_available` is False (empty when available)."""
        return ""

    # ------------------------------------------------------------------ #
    # Transfer
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def asarray(self, array: np.ndarray, dtype: str):
        """Host ndarray → device array at ``dtype`` ("float64"/"float32")."""

    @abc.abstractmethod
    def to_numpy(self, array) -> np.ndarray:
        """Device array → host ndarray (dtype preserved)."""

    # ------------------------------------------------------------------ #
    # Batched primitives (device in, device out)
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def symmetrize(self, stack):
        """``(A + A^T) / 2`` over the last two axes."""

    @abc.abstractmethod
    def eigvalsh(self, stack):
        """Stacked Hermitian eigenvalues of a ``(..., m, m)`` stack."""

    @abc.abstractmethod
    def take(self, stack, indices: np.ndarray):
        """Gather ``stack[indices]`` along the first axis."""

    @abc.abstractmethod
    def mix(self, a, b):
        """Mixed states ``(a + b) / 2`` (the QJSD assembly primitive)."""

    @abc.abstractmethod
    def matmul(self, a, b):
        """Batched matrix product over the last two axes."""

    @abc.abstractmethod
    def add_scaled_identity(self, stack, coefficients: np.ndarray):
        """``stack + diag(coefficients[..., None])`` — per-matrix shifts.

        ``coefficients`` is a host float64 array broadcastable to the
        stack's batch shape; used by the Chebyshev path to build the
        scaled operator and apply the ``T_0 = I`` recurrence term.
        """

    @abc.abstractmethod
    def scale(self, stack, factors: np.ndarray):
        """``stack * factors[..., None, None]`` — per-matrix scaling."""

    @abc.abstractmethod
    def subtract(self, a, b):
        """Elementwise ``a - b`` (Chebyshev three-term recurrence)."""

    # ------------------------------------------------------------------ #
    # Reductions (device in, host float64 out)
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def entropy_reduce(self, values) -> np.ndarray:
        """``-sum safe_xlogx(values)`` over the last axis, host float64.

        Must clip tiny negatives to zero and use the ``0 log 0 = 0``
        convention exactly like :func:`repro.utils.linalg.safe_xlogx`.
        """

    @abc.abstractmethod
    def trace(self, stack) -> np.ndarray:
        """Batched trace over the last two axes, host float64."""

    @abc.abstractmethod
    def pair_trace(self, a, b) -> np.ndarray:
        """``tr(A_i B_i)`` for symmetric pairs — ``sum(A * B)`` over the
        last two axes — host float64."""

    @abc.abstractmethod
    def gershgorin(self, stack) -> "tuple[np.ndarray, np.ndarray]":
        """Per-matrix Gershgorin spectral bounds ``(lo, hi)``.

        ``lo = min_i(d_i - r_i)``, ``hi = max_i(d_i + r_i)`` with ``d``
        the diagonal and ``r`` the off-diagonal absolute row sums; both
        host float64 arrays over the batch shape.
        """

    @abc.abstractmethod
    def zero_row_counts(self, stack) -> np.ndarray:
        """Per-matrix count of exactly-zero rows (host int array).

        Zero-padded stacks carry exact-zero rows whose eigenvalues are
        exact zeros; the Chebyshev path corrects for the polynomial's
        value at zero on them.
        """

    def prefers_eig_free(self, m: int, precision: str) -> bool:
        """Whether the Chebyshev entropy path beats stacked ``eigvalsh``
        here for ``(m, m)`` matrices at ``precision`` — the ``auto``
        entropy mode consults this per tile."""
        return False

    def approx_chunk_elements(self, precision: str) -> int:
        """Element budget per Chebyshev sub-batch (0 = whole batch).

        The Chebyshev recurrence keeps ``K + 1`` polynomial stacks alive
        at once, so CPU backends cap the sub-batch to keep that working
        set cache-resident; device backends return 0 — they want the
        largest launch the memory holds.
        """
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

#: name -> ArrayBackend subclass (instances are cached by resolve).
BACKENDS: "dict[str, type]" = {}

_INSTANCES: "dict[str, ArrayBackend]" = {}


def register_backend(cls):
    """Class decorator adding a backend to the registry under ``cls.name``."""
    BACKENDS[cls.name] = cls
    return cls


def available_backends() -> "tuple[str, ...]":
    """Registered backend names, sorted (availability not checked)."""
    return tuple(sorted(BACKENDS))


def usable_backends() -> "tuple[str, ...]":
    """Registered backends whose library imports here, sorted."""
    return tuple(name for name in available_backends() if BACKENDS[name].is_available())


def default_backend_name() -> str:
    """The process-wide default backend (env override, else numpy)."""
    name = os.environ.get(BACKEND_ENV_VAR, "").strip()
    return name or FALLBACK_BACKEND


def check_precision(precision: str) -> str:
    """Validate a precision name; returns it normalised."""
    name = str(precision).strip().lower()
    if name not in PRECISIONS:
        raise BackendError(
            f"unknown precision {precision!r}; expected one of "
            f"{', '.join(PRECISIONS)}"
        )
    return name


def resolve_backend(backend: "ArrayBackend | str | None" = None) -> ArrayBackend:
    """Resolve a backend spec (instance, name, or ``None``) to an instance.

    ``None`` selects :func:`default_backend_name`. Unknown names raise a
    :class:`~repro.errors.BackendError` listing the registered backends;
    a registered backend whose library does not import here raises the
    *same* error class with the import failure folded into the message —
    selection never leaks an ``ImportError``.
    """
    if isinstance(backend, ArrayBackend):
        return backend
    if backend is None:
        backend = default_backend_name()
    if not isinstance(backend, str):
        raise BackendError(
            f"backend must be an ArrayBackend, a backend name, or None; "
            f"got {type(backend).__name__}"
        )
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise BackendError(
            f"unknown array backend {backend!r}; registered: "
            f"{', '.join(available_backends())}"
        ) from None
    if not cls.is_available():
        reason = cls.unavailable_reason()
        raise BackendError(
            f"array backend {backend!r} is registered but not usable in "
            f"this environment ({reason or 'library not importable'}); "
            f"usable backends: {', '.join(usable_backends())}"
        )
    if backend not in _INSTANCES:
        _INSTANCES[backend] = cls()
    return _INSTANCES[backend]
