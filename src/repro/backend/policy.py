"""ComputePolicy — which backend, precision, and entropy path a tile uses.

A :class:`ComputePolicy` is a small frozen value (picklable — it crosses
process boundaries with the process engine's tile tasks) bundling the
three compute knobs:

* ``backend`` — an :data:`~repro.backend.base.BACKENDS` name;
* ``precision`` — the *device compute* dtype (``float64``/``float32``).
  Accumulation is always float64: reductions return host float64 and the
  engine sink upcasts every tile block before placement, so low-precision
  round-off stays per-entry and never compounds across tiles;
* ``entropy`` — ``eig`` (stacked ``eigvalsh``, the reference),
  ``chebyshev`` (the eigenvalue-free path of
  :mod:`repro.backend.chebyshev`), or ``auto`` (ask the backend per tile
  via :meth:`~repro.backend.base.ArrayBackend.prefers_eig_free`, gated by
  ``approx_min_dim`` — small matrices stay exact).

The **default policy is the reference**: ``numpy``/``float64``/``eig``
executes operation-for-operation the historical hot path, so results are
bitwise identical to a build without the backend subsystem.

Kernels read the ambient policy through :func:`active_policy`; engines
install their context's policy around the tile stream with
:func:`policy_scope` (thread-local, so concurrent sessions don't leak
policies into each other). :func:`collect_phase_timings` exposes the
assembly / eig / reduce wall-clock split the throughput bench records.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace

import numpy as np

from repro.backend.base import (
    BACKEND_ENV_VAR,
    BACKENDS,
    ArrayBackend,
    available_backends,
    check_precision,
    resolve_backend,
)
from repro.backend.chebyshev import chebyshev_entropies
from repro.errors import BackendError

#: Environment variable selecting the process-wide device precision.
PRECISION_ENV_VAR = "REPRO_PRECISION"

#: Environment variable selecting the process-wide entropy path.
ENTROPY_ENV_VAR = "REPRO_ENTROPY"

#: Entropy-path names a policy accepts.
ENTROPY_PATHS = ("eig", "chebyshev", "auto")

#: Default Chebyshev interpolation degree — ~2e-3 max entropy error,
#: roughly 1.5-2x faster than the float64 eigensolver in float32 on CPU.
DEFAULT_CHEBYSHEV_DEGREE = 16

#: Default element budget for gathered mixed-state chunks (matches the
#: kernels' MIXED_CHUNK_ELEMENTS so chunk boundaries — and therefore
#: float64-path bit patterns — are unchanged).
DEFAULT_CHUNK_ELEMENTS = 1 << 23

_STATE = threading.local()


@dataclass(frozen=True)
class ComputePolicy:
    """Frozen backend + precision + entropy-path selection.

    ``approx_min_dim`` is the smallest matrix edge the ``auto`` entropy
    mode may approximate; forced ``chebyshev`` applies from ``m > 2``
    (1x1/2x2 spectra are closed-form or trivially cheap exactly).
    """

    backend: str = "numpy"
    precision: str = "float64"
    entropy: str = "eig"
    chebyshev_degree: int = DEFAULT_CHEBYSHEV_DEGREE
    approx_min_dim: int = 16

    def __post_init__(self) -> None:
        if isinstance(self.backend, ArrayBackend):
            object.__setattr__(self, "backend", self.backend.name)
        if not isinstance(self.backend, str) or self.backend not in BACKENDS:
            raise BackendError(
                f"unknown array backend {self.backend!r}; registered: "
                f"{', '.join(available_backends())}"
            )
        object.__setattr__(self, "precision", check_precision(self.precision))
        if self.entropy not in ENTROPY_PATHS:
            raise BackendError(
                f"unknown entropy path {self.entropy!r}; expected one of "
                f"{', '.join(ENTROPY_PATHS)}"
            )
        if int(self.chebyshev_degree) < 2:
            raise BackendError(
                f"chebyshev_degree must be >= 2, got {self.chebyshev_degree}"
            )
        object.__setattr__(self, "chebyshev_degree", int(self.chebyshev_degree))
        if int(self.approx_min_dim) < 1:
            raise BackendError(
                f"approx_min_dim must be >= 1, got {self.approx_min_dim}"
            )
        object.__setattr__(self, "approx_min_dim", int(self.approx_min_dim))

    # ------------------------------------------------------------------ #
    # Construction / description
    # ------------------------------------------------------------------ #

    @classmethod
    def from_env(cls, **overrides) -> "ComputePolicy":
        """The policy the ``REPRO_*`` environment describes.

        Reads ``REPRO_BACKEND``, ``REPRO_PRECISION`` and
        ``REPRO_ENTROPY``; keyword ``overrides`` replace fields after.
        """
        values: dict = {}
        for env_var, field in (
            (BACKEND_ENV_VAR, "backend"),
            (PRECISION_ENV_VAR, "precision"),
            (ENTROPY_ENV_VAR, "entropy"),
        ):
            raw = os.environ.get(env_var, "").strip()
            if raw:
                values[field] = raw
        values.update(overrides)
        return cls(**values)

    def replace(self, **changes) -> "ComputePolicy":
        """A copy with ``changes`` applied (policies are immutable)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """``backend/precision/entropy`` — the report-footer form."""
        return f"{self.backend}/{self.precision}/{self.entropy}"

    @property
    def is_reference(self) -> bool:
        """True for the bit-stable numpy/float64/eig reference policy."""
        return (
            self.backend == "numpy"
            and self.precision == "float64"
            and self.entropy == "eig"
        )

    @property
    def array_backend(self) -> ArrayBackend:
        """The resolved backend instance (may raise ``BackendError``)."""
        return resolve_backend(self.backend)

    # ------------------------------------------------------------------ #
    # The hot-path primitives kernels call
    # ------------------------------------------------------------------ #

    def uses_approx(self, m: int) -> bool:
        """Whether ``(.., m, m)`` entropies take the Chebyshev path."""
        if self.entropy == "eig" or m <= 2:
            return False
        if self.entropy == "chebyshev":
            return True
        return m >= self.approx_min_dim and self.array_backend.prefers_eig_free(
            m, self.precision
        )

    def entropies(self, stack, *, symmetrize: bool = True) -> np.ndarray:
        """Batched von Neumann entropies of a host ``(..., m, m)`` stack.

        ``symmetrize`` mirrors the two historical call sites: the QJSK
        path symmetrises like :func:`von_neumann_entropies`, the HAQJSK
        fast path feeds symmetric-by-construction stacks directly.
        Returns host float64.
        """
        backend = self.array_backend
        with _phase("assembly"):
            device = backend.asarray(stack, self.precision)
            if symmetrize:
                device = backend.symmetrize(device)
        return self._device_entropies(backend, device)

    def mixed_entropies(
        self,
        stack_a: np.ndarray,
        stack_b: np.ndarray,
        idx_a: np.ndarray,
        idx_b: np.ndarray,
        *,
        symmetrize: bool = True,
        chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
    ) -> np.ndarray:
        """Entropies of the mixed states ``(a[idx_a] + b[idx_b]) / 2``.

        The tile workhorse: each host stack crosses to the device once,
        then every chunk gathers, mixes and reduces entirely in device
        arrays — fancy indexing at float32 moves half the bytes the
        float64 path does. Chunking (same element budget as the kernels'
        historical loops, so float64 bit patterns are unchanged) bounds
        the gathered intermediate regardless of pair count.
        """
        backend = self.array_backend
        size = int(stack_a.shape[-1])
        with _phase("assembly"):
            device_a = backend.asarray(stack_a, self.precision)
            device_b = (
                device_a
                if stack_b is stack_a
                else backend.asarray(stack_b, self.precision)
            )
        idx_a = np.asarray(idx_a)
        idx_b = np.asarray(idx_b)
        n_pairs = idx_a.size
        out = np.empty(n_pairs)
        chunk = max(1, chunk_elements // max(1, size * size))
        for start in range(0, n_pairs, chunk):
            stop = min(start + chunk, n_pairs)
            with _phase("assembly"):
                mixed = backend.mix(
                    backend.take(device_a, idx_a[start:stop]),
                    backend.take(device_b, idx_b[start:stop]),
                )
                if symmetrize:
                    mixed = backend.symmetrize(mixed)
            out[start:stop] = self._device_entropies(backend, mixed)
        return out

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Host-in, host-float64-out matrix product at device precision."""
        backend = self.array_backend
        with _phase("assembly"):
            device_a = backend.asarray(a, self.precision)
            device_b = backend.asarray(b, self.precision)
        with _phase("matmul"):
            product = backend.matmul(device_a, device_b)
        with _phase("reduce"):
            return np.asarray(backend.to_numpy(product), dtype=np.float64)

    def _device_entropies(self, backend, device) -> np.ndarray:
        """Entropy reduction of an already-assembled device stack."""
        m = int(device.shape[-1])
        if self.uses_approx(m):
            with _phase("eig"):
                return self._approx_entropies(backend, device, m)
        with _phase("eig"):
            values = backend.eigvalsh(device)
        with _phase("reduce"):
            return backend.entropy_reduce(values)

    def _approx_entropies(self, backend, device, m: int) -> np.ndarray:
        """Chebyshev entropies, sub-batched to the backend's cache budget.

        Per-matrix arithmetic is independent of the batch split, so the
        result is bitwise the same as whole-batch evaluation — the split
        only keeps the recurrence's working set cache-resident on CPUs
        (device backends return a 0 budget and take one launch).
        """
        budget = backend.approx_chunk_elements(self.precision)
        batch = int(device.shape[0]) if device.ndim == 3 else 0
        chunk = budget // (m * m) if budget else 0
        if device.ndim != 3 or chunk < 1 or batch <= chunk:
            return chebyshev_entropies(backend, device, self.chebyshev_degree)
        out = np.empty(batch)
        for start in range(0, batch, chunk):
            stop = min(start + chunk, batch)
            out[start:stop] = chebyshev_entropies(
                backend, device[start:stop], self.chebyshev_degree
            )
        return out


#: The bit-stable reference policy (numpy / float64 / eig).
REFERENCE_POLICY = ComputePolicy()


# --------------------------------------------------------------------- #
# Ambient policy (thread-local, environment fallback)
# --------------------------------------------------------------------- #


def active_policy() -> ComputePolicy:
    """The innermost :func:`policy_scope` policy, else the environment's.

    Kernels call this once per tile; outside any scope the policy comes
    from ``REPRO_BACKEND`` / ``REPRO_PRECISION`` / ``REPRO_ENTROPY`` so
    standalone ``block_values`` calls honour the environment too.
    """
    policy = getattr(_STATE, "policy", None)
    return policy if policy is not None else ComputePolicy.from_env()


def scoped_policy() -> "ComputePolicy | None":
    """The innermost scope's policy, or ``None`` outside any scope."""
    return getattr(_STATE, "policy", None)


@contextmanager
def policy_scope(policy: "ComputePolicy | None"):
    """Install ``policy`` as the ambient policy for this thread.

    ``None`` is a no-op scope (the ambient policy shows through) so
    callers can wrap unconditionally. Scopes nest; each restores the
    previous policy on exit.
    """
    if policy is None:
        yield None
        return
    if not isinstance(policy, ComputePolicy):
        raise BackendError(
            f"policy_scope needs a ComputePolicy, got {type(policy).__name__}"
        )
    previous = getattr(_STATE, "policy", None)
    _STATE.policy = policy
    try:
        yield policy
    finally:
        _STATE.policy = previous


# --------------------------------------------------------------------- #
# Phase timing (the bench's assembly / eig / reduce split)
# --------------------------------------------------------------------- #


@contextmanager
def collect_phase_timings():
    """Collect per-phase wall-clock seconds for this thread.

    Yields a dict accumulating ``{"assembly": s, "eig": s, "reduce": s}``
    (plus ``"matmul"`` for the JTQK pair stage) across every policy call
    inside the block. GPU backends execute asynchronously, so device
    phases measure submission time there; on the NumPy backend the split
    is exact.
    """
    previous = getattr(_STATE, "timings", None)
    timings: dict = {}
    _STATE.timings = timings
    try:
        yield timings
    finally:
        _STATE.timings = previous


@contextmanager
def _phase(name: str):
    sink = getattr(_STATE, "timings", None)
    if sink is None:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        sink[name] = sink.get(name, 0.0) + (time.perf_counter() - started)
