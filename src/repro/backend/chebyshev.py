"""Eigenvalue-free von Neumann entropies via Chebyshev trace estimation.

``-tr(rho log rho)`` is a spectral sum of ``g(x) = -x log x``, so it can
be computed without eigenvalues from the traces of Chebyshev polynomials
of the (shifted-and-scaled) operator: interpolate ``g`` on the spectral
interval at the Gauss–Lobatto (Chebyshev extreme) points, then

    H(rho) = sum_k c_k * tr(T_k(B)),    B = (2 rho - (hi+lo) I) / (hi - lo)

with per-matrix spectral bounds ``[lo, hi]`` from Gershgorin discs
(clipped at zero — the states are PSD). The trace sequence needs only
``ceil(d/2)`` batched matmuls, not ``d``: products of stored polynomials
reach the higher orders through

    tr(T_i T_j) = (t_{i+j} + t_{|i-j|}) / 2,

so ``t_n`` for ``n > K`` costs one batched Frobenius dot. On CPUs this
trades one LAPACK ``syevd`` (which float32 does *not* accelerate) for
``K`` GEMMs (which float32 runs ~3.5x faster); on GPUs it avoids the
batched eigensolver entirely. Interpolation error at the default degree
is ~2e-3 per entropy (see the documented tolerance tiers in the README);
it halves roughly quadratically with the degree.

Zero-padded stacks are handled exactly: an all-zero row contributes an
exact zero eigenvalue whose true ``g`` value is 0, but the interpolant
generally has ``p(0) != 0`` — the correction subtracts ``z * p(0)`` for
the ``z`` detected zero rows per matrix, so padded and unpadded stacks
agree to interpolation error (the invariant the QJSK padding relies on).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import BackendError

#: Spectral intervals narrower than this are widened — an all-zero (or
#: otherwise spectrum-degenerate) matrix has lo == hi and the affine map
#: to [-1, 1] would divide by zero. g is ~0 on such an interval anyway.
_MIN_WIDTH = 1e-12


@lru_cache(maxsize=None)
def _cos_matrix(degree: int) -> np.ndarray:
    """``C[k, j] = cos(pi * k * j / degree)`` — nodes row 1, DCT weights."""
    j = np.arange(degree + 1)
    return np.cos(np.pi * np.outer(j, j) / degree)


def _lobatto_coefficients(
    mid: np.ndarray, half: np.ndarray, degree: int
) -> np.ndarray:
    """Per-matrix Chebyshev coefficients of ``-x log x`` on ``[lo, hi]``.

    Interpolation at the degree+1 Gauss–Lobatto points via the type-I
    DCT (Clenshaw–Curtis weights); all host float64 — the coefficient
    math is O(batch * degree^2) and never touches device arrays.
    """
    cosines = _cos_matrix(degree)
    xs = mid[..., None] + half[..., None] * cosines[1]
    np.clip(xs, 0.0, None, out=xs)
    with np.errstate(divide="ignore", invalid="ignore"):
        f = np.where(xs > 0.0, -xs * np.log(xs), 0.0)
    weights = np.ones(degree + 1)
    weights[0] = weights[-1] = 0.5
    coefficients = (2.0 / degree) * ((f * weights) @ cosines)
    coefficients[..., 0] *= 0.5
    coefficients[..., -1] *= 0.5
    return coefficients


def chebyshev_entropies(backend, stack, degree: int) -> np.ndarray:
    """Batched ``-tr(rho log rho)`` of a symmetric device ``stack``.

    ``stack`` is a backend device array of shape ``(..., m, m)``,
    symmetric (callers symmetrise first — same contract as ``eigvalsh``)
    and PSD up to round-off. Returns host float64 entropies of the batch
    shape. ``degree`` is the interpolation degree (>= 2).
    """
    if degree < 2:
        raise BackendError(
            f"chebyshev entropy degree must be >= 2, got {degree}"
        )
    m = int(stack.shape[-1])
    lo, hi = backend.gershgorin(stack)
    lo = np.clip(lo, 0.0, None)
    hi = np.maximum(hi, lo + _MIN_WIDTH)
    mid = (hi + lo) / 2.0
    half = (hi - lo) / 2.0
    coefficients = _lobatto_coefficients(mid, half, degree)

    # B = (rho - mid I) / half, spectrum in [-1, 1].
    base = backend.scale(backend.add_scaled_identity(stack, -mid), 1.0 / half)

    # Traces t_k = tr T_k(B) for k <= K from the three-term recurrence,
    # keeping the polynomial matrices; the tail k in (K, degree] comes
    # from pair traces of stored polynomials (module docstring).
    order = (degree + 1) // 2
    traces = np.empty((*np.shape(mid), degree + 1))
    traces[..., 0] = m
    traces[..., 1] = backend.trace(base)
    polynomials = [None, base]
    two = np.asarray(2.0)
    for k in range(2, order + 1):
        doubled = backend.scale(backend.matmul(base, polynomials[-1]), two)
        if k == 2:
            nxt = backend.add_scaled_identity(doubled, np.asarray(-1.0))
        else:
            nxt = backend.subtract(doubled, polynomials[-2])
        polynomials.append(nxt)
        traces[..., k] = backend.trace(nxt)
    for n in range(order + 1, degree + 1):
        i = n // 2
        j = n - i
        pair = backend.pair_trace(polynomials[i], polynomials[j])
        traces[..., n] = 2.0 * pair - traces[..., j - i]

    entropies = np.einsum("...k,...k->...", coefficients, traces)

    # Exact-zero padding rows: remove the interpolant's value at 0 once
    # per zero eigenvalue (g(0) = 0 but p(0) generally is not).
    zero_rows = backend.zero_row_counts(stack)
    if np.any(zero_rows):
        x0 = np.clip(-mid / half, -1.0, 1.0)
        angles = np.arccos(x0)
        orders = np.arange(degree + 1)
        p0 = (coefficients * np.cos(orders * angles[..., None])).sum(axis=-1)
        entropies = entropies - zero_rows * p0
    return np.asarray(entropies, dtype=np.float64)
