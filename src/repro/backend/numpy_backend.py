"""The NumPy reference backend — always available, bit-stable at float64.

At ``precision="float64"`` with the ``eig`` entropy path, every method
reproduces the historical hot-path arithmetic operation for operation
(same symmetrisation, same ``eigvalsh``, same ``safe_xlogx`` reduction),
which is what keeps the engine-equivalence suite at 1e-10 across
serial/batched/process under the default policy.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend, register_backend
from repro.utils.linalg import safe_xlogx, symmetrize

_DTYPES = {"float64": np.float64, "float32": np.float32}


@register_backend
class NumpyBackend(ArrayBackend):
    """Plain ndarray implementation of the backend protocol."""

    name = "numpy"

    def asarray(self, array: np.ndarray, dtype: str) -> np.ndarray:
        return np.asarray(array, dtype=_DTYPES[dtype])

    def to_numpy(self, array) -> np.ndarray:
        return np.asarray(array)

    def symmetrize(self, stack: np.ndarray) -> np.ndarray:
        return symmetrize(stack)

    def eigvalsh(self, stack: np.ndarray) -> np.ndarray:
        return np.linalg.eigvalsh(stack)

    def take(self, stack: np.ndarray, indices: np.ndarray) -> np.ndarray:
        return stack[indices]

    def mix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        mixed = a + b
        mixed *= np.asarray(0.5, dtype=mixed.dtype)
        return mixed

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.matmul(a, b)

    def add_scaled_identity(
        self, stack: np.ndarray, coefficients: np.ndarray
    ) -> np.ndarray:
        m = stack.shape[-1]
        out = stack.copy()
        flat = out.reshape(*out.shape[:-2], m * m)
        flat[..., :: m + 1] += np.asarray(coefficients, dtype=out.dtype)[..., None]
        return out

    def scale(self, stack: np.ndarray, factors: np.ndarray) -> np.ndarray:
        return stack * np.asarray(factors, dtype=stack.dtype)[..., None, None]

    def subtract(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a - b

    def entropy_reduce(self, values: np.ndarray) -> np.ndarray:
        # float64 accumulation: reduce host-side after one upcast, so a
        # float32 eig path rounds only its eigenvalues, not the sum.
        return -safe_xlogx(values).sum(axis=-1)

    def trace(self, stack: np.ndarray) -> np.ndarray:
        m = stack.shape[-1]
        flat = stack.reshape(*stack.shape[:-2], m * m)
        return flat[..., :: m + 1].sum(axis=-1, dtype=np.float64)

    def pair_trace(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        lead = a.shape[:-2]
        size = a.shape[-1] * a.shape[-2]
        # Batched dot through BLAS: one fused multiply-reduce per matrix.
        product = np.matmul(
            a.reshape(*lead, 1, size), b.reshape(*lead, size, 1)
        )
        return product.reshape(lead).astype(np.float64)

    def gershgorin(self, stack: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        m = stack.shape[-1]
        flat = stack.reshape(*stack.shape[:-2], m * m)
        diagonal = flat[..., :: m + 1].astype(np.float64)
        radius = np.abs(stack).sum(axis=-1, dtype=np.float64) - np.abs(diagonal)
        lo = (diagonal - radius).min(axis=-1)
        hi = (diagonal + radius).max(axis=-1)
        return lo, hi

    def zero_row_counts(self, stack: np.ndarray) -> np.ndarray:
        m = stack.shape[-1]
        flat = stack.reshape(*stack.shape[:-2], m * m)
        diagonal = flat[..., :: m + 1]
        radius = np.abs(stack).sum(axis=-1) - np.abs(diagonal)
        return ((diagonal == 0) & (radius == 0)).sum(axis=-1)

    def prefers_eig_free(self, m: int, precision: str) -> bool:
        # Measured on the reference box: float32 matmuls run ~3.5x faster
        # than float64 while LAPACK's float32 eigvalsh does not beat the
        # float64 solver at all, so the K matmuls of the Chebyshev path
        # only pay off in float32 and only once eig's m^3 dominates.
        return precision == "float32"

    def approx_chunk_elements(self, precision: str) -> int:
        # The recurrence is cache-bound, not flop-bound: at a 256k-element
        # sub-batch the K + 1 live float32 polynomial stacks (~1 MB each)
        # stay cache-resident, which is worth ~1.7x over whole-batch
        # evaluation at m ~ 26-64 (whole-batch barely ties eigvalsh).
        return 1 << 18
