"""Pluggable array backends with a mixed-precision compute policy.

The kernel hot paths (stacked Hermitian eigenvalues, entropy reductions,
mixed-state assembly, matmul) dispatch through an
:class:`~repro.backend.base.ArrayBackend` selected by a
:class:`~repro.backend.policy.ComputePolicy`:

    from repro.backend import ComputePolicy, policy_scope

    fast = ComputePolicy(backend="numpy", precision="float32",
                         entropy="auto")
    with policy_scope(fast):
        gram = kernel.gram(graphs)          # float32 tiles, float64 sums

or, end to end, through the execution context:

    ctx = ExecutionContext(backend="numpy", precision="float32")

Backends: ``numpy`` (reference, always available), ``torch`` and
``cupy`` (optional, discovered lazily — selecting one that is not
installed raises a named :class:`~repro.errors.BackendError`, never an
``ImportError``). The default policy (numpy / float64 / eig) reproduces
the historical arithmetic bit-for-bit; the float32 and Chebyshev fast
paths trade documented tolerance tiers (README "Backends & precision")
for throughput.
"""

from __future__ import annotations

from repro.backend.base import (
    BACKEND_ENV_VAR,
    BACKENDS,
    ArrayBackend,
    available_backends,
    default_backend_name,
    register_backend,
    resolve_backend,
    usable_backends,
)
from repro.backend.chebyshev import chebyshev_entropies

# Importing the implementation modules registers them; torch/cupy only
# *import their library* on first resolve, so this is cheap everywhere.
from repro.backend import cupy_backend, numpy_backend, torch_backend  # noqa: F401
from repro.backend.policy import (
    DEFAULT_CHEBYSHEV_DEGREE,
    ENTROPY_ENV_VAR,
    ENTROPY_PATHS,
    PRECISION_ENV_VAR,
    REFERENCE_POLICY,
    ComputePolicy,
    active_policy,
    collect_phase_timings,
    policy_scope,
    scoped_policy,
)

__all__ = [
    "ArrayBackend",
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "ComputePolicy",
    "DEFAULT_CHEBYSHEV_DEGREE",
    "ENTROPY_ENV_VAR",
    "ENTROPY_PATHS",
    "PRECISION_ENV_VAR",
    "REFERENCE_POLICY",
    "active_policy",
    "available_backends",
    "chebyshev_entropies",
    "collect_phase_timings",
    "default_backend_name",
    "policy_scope",
    "register_backend",
    "resolve_backend",
    "scoped_policy",
    "usable_backends",
]
