"""Optional cupy backend — registered eagerly, imported lazily.

Mirrors the NumPy reference on a CUDA device; only reductions cross the
device boundary, returned as host float64. Environments without cupy
(or without a GPU) get a named :class:`~repro.errors.BackendError` from
:func:`~repro.backend.resolve_backend`, never an ``ImportError``.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend, register_backend

_IMPORT_ERROR: "str | None" = None


def _cupy():
    """Import cupy on first use; remember the failure message."""
    global _IMPORT_ERROR
    try:
        import cupy
    except ImportError as exc:  # pragma: no cover - environment-specific
        _IMPORT_ERROR = f"{type(exc).__name__}: {exc}"
        return None
    try:
        cupy.cuda.runtime.getDeviceCount()
    except Exception as exc:  # pragma: no cover - no CUDA device
        _IMPORT_ERROR = f"cupy imports but no CUDA device is usable ({exc})"
        return None
    return cupy


@register_backend
class CupyBackend(ArrayBackend):
    """cupy.ndarray implementation of the backend protocol."""

    name = "cupy"

    @classmethod
    def is_available(cls) -> bool:
        return _cupy() is not None

    @classmethod
    def unavailable_reason(cls) -> str:
        if _cupy() is not None:
            return ""
        return _IMPORT_ERROR or "cupy is not installed"

    def __init__(self) -> None:
        self._cupy = _cupy()
        self._dtypes = {"float64": np.float64, "float32": np.float32}

    def asarray(self, array: np.ndarray, dtype: str):
        return self._cupy.asarray(array, dtype=self._dtypes[dtype])

    def to_numpy(self, array) -> np.ndarray:
        return self._cupy.asnumpy(array)

    def symmetrize(self, stack):
        cp = self._cupy
        return (stack + cp.swapaxes(stack, -1, -2)) / 2.0

    def eigvalsh(self, stack):
        return self._cupy.linalg.eigvalsh(stack)

    def take(self, stack, indices: np.ndarray):
        return stack[self._cupy.asarray(indices)]

    def mix(self, a, b):
        return (a + b) / 2.0

    def matmul(self, a, b):
        return self._cupy.matmul(a, b)

    def add_scaled_identity(self, stack, coefficients: np.ndarray):
        cp = self._cupy
        m = stack.shape[-1]
        out = stack.copy()
        flat = out.reshape(*out.shape[:-2], m * m)
        flat[..., :: m + 1] += cp.asarray(coefficients, dtype=out.dtype)[..., None]
        return out

    def scale(self, stack, factors: np.ndarray):
        scale = self._cupy.asarray(factors, dtype=stack.dtype)
        return stack * scale[..., None, None]

    def subtract(self, a, b):
        return a - b

    def entropy_reduce(self, values) -> np.ndarray:
        cp = self._cupy
        clipped = cp.clip(values.astype(np.float64), 0.0, None)
        product = cp.where(clipped > 0.0, clipped * cp.log(clipped), 0.0)
        return self.to_numpy(-product.sum(axis=-1)).astype(np.float64)

    def trace(self, stack) -> np.ndarray:
        cp = self._cupy
        trace = cp.trace(stack, axis1=-2, axis2=-1, dtype=np.float64)
        return self.to_numpy(trace).astype(np.float64)

    def pair_trace(self, a, b) -> np.ndarray:
        product = (a * b).sum(axis=(-2, -1), dtype=np.float64)
        return self.to_numpy(product).astype(np.float64)

    def gershgorin(self, stack) -> "tuple[np.ndarray, np.ndarray]":
        cp = self._cupy
        m = stack.shape[-1]
        flat = stack.reshape(*stack.shape[:-2], m * m)
        diagonal = flat[..., :: m + 1].astype(np.float64)
        radius = cp.abs(stack).sum(axis=-1, dtype=np.float64) - cp.abs(diagonal)
        lo = (diagonal - radius).min(axis=-1)
        hi = (diagonal + radius).max(axis=-1)
        return (
            self.to_numpy(lo).astype(np.float64),
            self.to_numpy(hi).astype(np.float64),
        )

    def zero_row_counts(self, stack) -> np.ndarray:
        cp = self._cupy
        m = stack.shape[-1]
        flat = stack.reshape(*stack.shape[:-2], m * m)
        diagonal = flat[..., :: m + 1]
        radius = cp.abs(stack).sum(axis=-1) - cp.abs(diagonal)
        zero = (diagonal == 0) & (radius == 0)
        return self.to_numpy(zero.sum(axis=-1))

    def prefers_eig_free(self, m: int, precision: str) -> bool:
        # cusolver's batched syevj lags cublas matmul throughput by an
        # order of magnitude; the eig-free path wins on GPU generally.
        return True
