"""Model bundles — the persisted train→serve contract.

A :class:`ModelBundle` is everything a fresh process needs to classify
newcomer graphs exactly as an in-process fit would have: the serving-ready
kernel (collection-independent — feature maps, the QJSD family, or a
frozen-prototype HAQJSK whose :class:`~repro.kernels.haqjsk.HierarchicalAligner`
state rides along inside the pickled kernel), the training graphs the
cross block is evaluated against, the fitted
:class:`~repro.ml.kernel_utils.GramConditioner` (training-fold centering
and scale statistics — the inductive conditioning contract), the
:class:`~repro.ml.multiclass.KernelSVC` duals, and the label mapping.

Integrity is content-addressed, matching the artifact store's philosophy:
the bundle records the kernel configuration fingerprint and the training
collection's digest at train time, and :meth:`ModelBundle.verify`
recomputes both on load — a bundle whose kernel or graphs were tampered
with (or whose pickle predates a config change) refuses to serve rather
than silently predicting from inconsistent state.

Persistence goes through the existing :class:`~repro.store.ArtifactStore`
(atomic temp-file + rename writes), under a key derived from the caller's
bundle name, so ``train`` in one process and ``predict`` in another meet
at the store directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import KernelError, ServingError, ValidationError
from repro.graphs.hashing import collection_digest, graph_digest
from repro.kernels.base import GraphKernel, normalize_gram
from repro.ml.cross_validation import DEFAULT_C_GRID, select_c
from repro.ml.kernel_utils import GramConditioner
from repro.ml.multiclass import KernelSVC
from repro.store import store_backed_gram

#: Artifact-store kind under which bundles are persisted.
BUNDLE_KIND = "bundle"


def bundle_key(name: str) -> str:
    """The artifact-store key of the named bundle."""
    from repro.store import artifact_key

    if not name or not str(name).strip():
        raise ValidationError("bundle name must be a non-empty string")
    return artifact_key("model-bundle", str(name))


@dataclass
class ModelBundle:
    """A self-contained, picklable prediction model.

    Attributes
    ----------
    kernel:
        The serving kernel; must be collection-independent (for HAQJSK:
        frozen — the frozen aligner state is part of the pickle).
    training_graphs / training_labels:
        The collection the SVM was trained on; serving evaluates the
        ``(ΔN, N)`` cross block against these graphs.
    conditioner:
        Fitted :class:`GramConditioner` holding the *training* centering
        and scale statistics applied to every serving cross block.
    model:
        Fitted one-vs-one :class:`KernelSVC` (duals + label mapping in
        ``classes_``).
    kernel_fingerprint / training_digest / graph_digests:
        Content identities captured at train time; :meth:`verify`
        recomputes them on load.
    normalize:
        Whether the training Gram was cosine-normalised; serving then
        normalises cross rows with the stored ``train_diagonal`` plus
        ΔN newcomer self-similarities.
    train_diagonal:
        Raw training self-similarities ``K(i, i)`` (pre-normalisation).
    c / train_accuracy / metadata:
        The chosen box constraint, training-set accuracy, and free-form
        run context (CLI arguments, dataset name, ...).
    """

    kernel: GraphKernel
    training_graphs: list
    training_labels: np.ndarray
    conditioner: GramConditioner
    model: KernelSVC
    kernel_fingerprint: str
    training_digest: str
    graph_digests: tuple
    normalize: bool
    train_diagonal: np.ndarray
    c: float
    train_accuracy: float
    metadata: dict = field(default_factory=dict)
    #: Serialized, resolved :class:`~repro.kernels.KernelSpec` record
    #: (``{"name": ..., "params": {...}}``) when the bundle was trained
    #: declaratively (Session / CLI); ``None`` for hand-built kernels.
    kernel_spec: "dict | None" = None
    #: :meth:`ExecutionContext.to_record` of the training context —
    #: round-trippable via :meth:`ExecutionContext.from_record`.
    context_record: "dict | None" = None

    @property
    def classes(self) -> np.ndarray:
        """The label mapping the OvO machines vote over."""
        return self.model.classes_

    @property
    def n_training_graphs(self) -> int:
        return len(self.training_graphs)

    def verify(self) -> "ModelBundle":
        """Recompute content identities; raise :class:`ServingError` on
        any mismatch between the bundle's state and its recorded digests."""
        fingerprint = self.kernel.fingerprint()
        if fingerprint != self.kernel_fingerprint:
            raise ServingError(
                "bundle kernel fingerprint mismatch: the unpickled kernel "
                f"fingerprints as {fingerprint[:12]}…, the bundle recorded "
                f"{self.kernel_fingerprint[:12]}… — the kernel config or "
                "fingerprint scheme changed since training"
            )
        digest = collection_digest(self.training_graphs)
        if digest != self.training_digest:
            # Per-graph digests localise the damage for the error report.
            current = [graph_digest(g) for g in self.training_graphs]
            changed = [
                i
                for i, (new, old) in enumerate(zip(current, self.graph_digests))
                if new != old
            ]
            detail = (
                f"graphs at indices {changed[:10]} changed"
                if changed and len(current) == len(self.graph_digests)
                else f"graph count changed ({len(current)} vs "
                f"{len(self.graph_digests)} at train time)"
            )
            raise ServingError(
                "bundle training-collection digest mismatch — the stored "
                f"graphs do not match the collection the SVM was trained on "
                f"({detail})"
            )
        if not self.kernel.collection_independent:
            raise ServingError(
                f"{self.kernel.name}: bundle kernel is no longer "
                "collection-independent (did the aligner get unfrozen?)"
            )
        return self

    def info(self) -> dict:
        """Human-readable summary (the CLI ``info`` subcommand)."""
        return {
            "kernel": self.kernel.name,
            "kernel_fingerprint": self.kernel_fingerprint,
            "training_digest": self.training_digest,
            "n_training_graphs": self.n_training_graphs,
            "classes": [c.item() if hasattr(c, "item") else c for c in self.classes],
            "normalize": self.normalize,
            "conditioner_center": self.conditioner.center,
            "conditioner_scale": self.conditioner.scale,
            "conditioner_scale_value": self.conditioner.scale_,
            "c": self.c,
            "train_accuracy": self.train_accuracy,
            "kernel_spec": getattr(self, "kernel_spec", None),
            "context": getattr(self, "context_record", None),
            "metadata": dict(self.metadata),
        }

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, store, name: str) -> str:
        """Persist under ``name`` via the store's atomic object writer;
        returns the on-disk path."""
        return store.put_object(BUNDLE_KIND, bundle_key(name), self)

    @classmethod
    def load(cls, store, name: str, *, verify: bool = True) -> "ModelBundle":
        """Load (and by default :meth:`verify`) the named bundle.

        Raises :class:`ServingError` when the name is unknown in this
        store — a missing artifact is an operator error at serving time,
        not a cache miss to silently recompute. ``verify=False`` skips
        the digest recomputation for callers that verify themselves
        immediately afterwards (``PredictionService.from_store`` — the
        digest walk over N training graphs should run once, not twice).
        """
        bundle = store.get_object(BUNDLE_KIND, bundle_key(name))
        if bundle is None:
            raise ServingError(
                f"no bundle named {name!r} in store {store.address!r} — "
                "train one first (python -m repro.serve train)"
            )
        if not isinstance(bundle, cls):
            raise ServingError(
                f"artifact under bundle name {name!r} is a "
                f"{type(bundle).__name__}, not a ModelBundle"
            )
        return bundle.verify() if verify else bundle


def train_bundle(
    kernel: GraphKernel,
    graphs,
    labels,
    *,
    c: "float | None" = None,
    c_grid=DEFAULT_C_GRID,
    normalize: bool = False,
    condition: bool = True,
    engine=None,
    store=None,
    ctx=None,
    seed: "int | None" = 0,
    metadata: "dict | None" = None,
    spec=None,
) -> ModelBundle:
    """Fit the full serving pipeline on a training collection.

    Pipeline: raw Gram (store-backed when a ``store`` is given, so
    retraining over the same collection is a disk read) → optional cosine
    normalisation → :class:`GramConditioner` ``fit_transform`` (training
    statistics frozen into the bundle) → ``C`` selection by inner CV when
    ``c`` is ``None`` → one-vs-one :class:`KernelSVC` fit.

    The kernel must be collection-independent — the serving cross block is
    only meaningful when newcomer pair values cannot perturb the training
    rows. HAQJSK callers freeze first (``kernel.freeze(graphs)``); other
    collection-level kernels are refused with the same named error as
    :meth:`~repro.kernels.base.GraphKernel.gram_extend`.

    ``condition=False`` keeps the conditioner as a fitted no-op, so the
    serving path stays uniform.

    ``ctx`` (an :class:`~repro.api.ExecutionContext`) selects the engine
    and store — the loose ``engine=`` / ``store=`` keywords are
    deprecated shims — and is recorded on the bundle
    (``context_record``) together with the resolved ``spec``
    (a :class:`~repro.kernels.KernelSpec`, when the kernel was built
    declaratively), so a later process can reconstruct what was trained
    (the record names the engine backend; it does not capture
    instance-level tuning such as worker counts — see
    :meth:`~repro.api.ExecutionContext.to_record`).
    """
    from repro.api.context import resolve_context

    explicit_ctx = ctx is not None
    ctx = resolve_context(ctx, owner="train_bundle", engine=engine, store=store)
    graphs = list(graphs)
    y = np.asarray(labels)
    if y.ndim != 1 or y.size != len(graphs):
        raise ValidationError(
            f"labels {y.shape} incompatible with {len(graphs)} graphs"
        )
    if not kernel.collection_independent:
        hint = getattr(kernel, "_extension_hint", "")
        raise KernelError(
            f"{kernel.name}: cannot build a serving bundle — this kernel's "
            f"values depend on the whole collection, so newcomer rows would "
            f"disagree with the training Gram." + (f" {hint}" if hint else "")
        )
    if not hasattr(kernel, "cross_gram"):
        raise KernelError(
            f"{kernel.name}: serving needs a cross_gram path "
            f"(pairwise or feature-map kernel)"
        )
    spec_record = None
    if spec is not None:
        from repro.kernels.registry import as_spec

        spec_record = as_spec(spec).resolved().to_dict()
    raw = store_backed_gram(
        kernel,
        graphs,
        ctx.store if ctx is not None else None,
        # Only an explicit context opts training Grams into per-tile
        # checkpointing; the legacy store= shim keeps the historical
        # whole-Gram-only behaviour (equivalence promise of the shim).
        tile_checkpoint=ctx.tile_checkpoint if explicit_ctx else False,
        ctx=ctx.replace(store=None) if ctx is not None else None,
    )
    train_diagonal = np.array(np.diag(raw), dtype=float)
    gram = normalize_gram(raw) if normalize else np.asarray(raw, dtype=float)
    conditioner = GramConditioner(center=condition, scale=condition)
    conditioned = conditioner.fit_transform(gram)
    if c is None:
        c = select_c(conditioned, y, np.arange(y.size), c_grid=c_grid, seed=seed)
    model = KernelSVC(c=float(c)).fit(conditioned, y)
    train_accuracy = model.score(conditioned, y)
    return ModelBundle(
        kernel=kernel,
        training_graphs=graphs,
        training_labels=y,
        conditioner=conditioner,
        model=model,
        kernel_fingerprint=kernel.fingerprint(),
        training_digest=collection_digest(graphs),
        graph_digests=tuple(graph_digest(g) for g in graphs),
        normalize=bool(normalize),
        train_diagonal=train_diagonal,
        c=float(c),
        train_accuracy=float(train_accuracy),
        metadata=dict(metadata or {}),
        kernel_spec=spec_record,
        context_record=ctx.to_record() if ctx is not None else None,
    )
