"""A stdlib-only threaded HTTP server over the prediction service.

The network face of :mod:`repro.serve` — ``http.server`` (threaded, one
thread per connection, no new dependencies) routing four JSON endpoints:

* ``POST /predict`` — classify wire-format graphs. Concurrent requests
  coalesce through one :class:`~repro.serve.batcher.MicroBatcher` per
  bundle into a single ``(ΔN, N)`` cross-block evaluation; the response's
  ``batch`` field reports the coalescing each request rode in.
* ``POST /train``   — submit a training job through the persistent
  :class:`~repro.jobs.JobQueue` (idempotent by bundle name: resubmitting
  an in-flight name returns the same job). A background worker thread
  claims and runs the job; the trained bundle becomes immediately
  servable and any cached service for the name is invalidated.
* ``GET /jobs/<id>`` — poll a training job's status/result/error.
* ``GET /info``     — the shared machine-readable bundle document
  (:func:`~repro.serve.protocol.bundle_info` — byte-compatible with
  ``python -m repro.serve info --json``) plus live batcher statistics.
* ``GET /healthz``  — liveness, protocol version, loaded bundles.

Error mapping is uniform: :class:`~repro.errors.ProtocolError` → 400,
unknown bundles/jobs/routes → 404, :class:`~repro.errors.ServerBusyError`
→ 503 with ``Retry-After``, :class:`~repro.errors.ServeTimeoutError` →
504, anything else → 500 — always a JSON ``error`` body, never a raw
traceback page.

One shared :class:`~repro.serve.service.PredictionService` per bundle
holds the cached prepared train states, so the per-graph serving cost is
the cross-block rectangle and nothing else (the service is thread-safe;
see ``tests/serve`` for the two-thread corruption test).
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import (
    ProtocolError,
    ReproError,
    ServeTimeoutError,
    ServerBusyError,
    ServingError,
    ValidationError,
)
from repro.serve import protocol
from repro.serve.batcher import MicroBatcher
from repro.utils.logging import get_logger

_LOGGER = get_logger("serve.server")

#: Job kind the server submits to / claims from the shared queue.
TRAIN_JOB_KIND = "serve-train"

#: Lease for training jobs: generous, training runs minutes not seconds.
TRAIN_LEASE_TTL = 3600.0

#: Maximum accepted request body (64 MiB of JSON graphs is already huge).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServeApp:
    """Routing-free application state: bundles, batchers, the job queue.

    The HTTP handler delegates every request here, so tests can drive
    the full serving logic through :meth:`handle` without a socket, and
    the real server stays a thin transport.
    """

    def __init__(
        self,
        store,
        *,
        ctx=None,
        default_bundle: "str | None" = None,
        batch_window_ms: float = 5.0,
        max_batch_graphs: int = 64,
        max_queue_graphs: int = 512,
        request_timeout: float = 30.0,
        jobs_db: "str | None" = None,
        clock=time.time,
    ) -> None:
        from repro.api import ExecutionContext
        from repro.jobs import JobQueue
        from repro.store import ArtifactStore

        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store = store
        if ctx is None:
            ctx = ExecutionContext.from_env(store=store)
        elif ctx.store is None:
            ctx = ctx.replace(store=store)
        self.ctx = ctx.validate()
        self.default_bundle = default_bundle
        self.batch_window_ms = float(batch_window_ms)
        self.max_batch_graphs = int(max_batch_graphs)
        self.max_queue_graphs = int(max_queue_graphs)
        self.request_timeout = float(request_timeout)
        if jobs_db is None:
            # Directory-backed stores get a durable queue next to the
            # artifacts (server restarts resume pending training jobs);
            # memory stores fall back to an ephemeral in-process queue.
            root = store.backend.local_path("serve-jobs.db") if hasattr(
                store.backend, "local_path"
            ) else None
            jobs_db = root if isinstance(root, str) else ":memory:"
        # One injected clock drives uptime *and* the queue's lease
        # accounting, so virtual-time tests see a consistent world.
        self.clock = clock
        self.queue = JobQueue(jobs_db, clock=clock)
        self.started_at = clock()
        self._lock = threading.Lock()
        self._services: dict = {}
        self._batchers: dict = {}
        self._closed = False
        self._train_worker = threading.Thread(
            target=self._train_loop, name="serve-train-worker", daemon=True
        )
        self._train_worker.start()

    # ------------------------------------------------------------------ #
    # Bundle / batcher registry
    # ------------------------------------------------------------------ #

    def service(self, name: str):
        """The shared (cached) PredictionService for ``name``."""
        from repro.serve.service import PredictionService

        with self._lock:
            cached = self._services.get(name)
        if cached is not None:
            return cached
        # Load outside the lock: cold starts hash N training graphs, and
        # one bundle loading must not block serving every other bundle.
        service = PredictionService.from_store(self.store, name, ctx=self.ctx)
        with self._lock:
            return self._services.setdefault(name, service)

    def batcher(self, name: str) -> MicroBatcher:
        service = self.service(name)
        with self._lock:
            cached = self._batchers.get(name)
            if cached is not None:
                return cached
            batcher = MicroBatcher(
                service.predict,
                window_ms=self.batch_window_ms,
                max_batch_graphs=self.max_batch_graphs,
                max_queue_graphs=self.max_queue_graphs,
                timeout=self.request_timeout,
            )
            self._batchers[name] = batcher
            return batcher

    def invalidate(self, name: str) -> None:
        """Drop cached service/batcher for ``name`` (after a retrain)."""
        with self._lock:
            self._services.pop(name, None)
            stale = self._batchers.pop(name, None)
        if stale is not None:
            stale.close()

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #

    def handle(self, method: str, path: str, query: dict, body) -> "tuple[int, dict, dict]":
        """``(status, payload, headers)`` for one request."""
        try:
            if method == "GET" and path == "/healthz":
                return self._healthz()
            if method == "GET" and path == "/info":
                return self._info(query)
            if method == "GET" and path.startswith("/jobs/"):
                return self._job(path[len("/jobs/"):])
            if method == "POST" and path == "/predict":
                return self._predict(body)
            if method == "POST" and path == "/train":
                return self._train(body)
            return 404, protocol.error_payload(
                f"no route {method} {path}", kind="not_found"
            ), {}
        except ProtocolError as exc:
            return 400, protocol.error_payload(exc, kind="protocol"), {}
        except ServerBusyError as exc:
            return 503, protocol.error_payload(exc, kind="busy"), {
                "Retry-After": f"{max(exc.retry_after, 0.001):.3f}"
            }
        except ServeTimeoutError as exc:
            return 504, protocol.error_payload(exc, kind="timeout"), {}
        except ServingError as exc:
            # Missing/corrupt bundles and jobs: the caller named something
            # the store does not hold.
            return 404, protocol.error_payload(exc, kind="serving"), {}
        except (ValidationError, ReproError) as exc:
            return 400, protocol.error_payload(exc, kind=type(exc).__name__), {}
        except Exception as exc:  # noqa: BLE001 - boundary
            _LOGGER.exception("unhandled error on %s %s", method, path)
            return 500, protocol.error_payload(
                f"{type(exc).__name__}: {exc}", kind="internal"
            ), {}

    def _healthz(self):
        with self._lock:
            loaded = sorted(self._services)
        return 200, {
            "status": "ok",
            "protocol_version": protocol.PROTOCOL_VERSION,
            "uptime_seconds": round(self.clock() - self.started_at, 3),
            "default_bundle": self.default_bundle,
            "loaded_bundles": loaded,
            "jobs": self.queue.counts(),
        }, {}

    def _bundle_name(self, requested: "str | None") -> str:
        name = requested or self.default_bundle
        if not name:
            raise ProtocolError(
                "no bundle requested and the server has no default bundle "
                "(pass 'bundle' in the request body, or start the server "
                "with --bundle)"
            )
        return name

    def _info(self, query: dict):
        name = self._bundle_name((query.get("bundle") or [None])[0])
        service = self.service(name)
        payload = protocol.bundle_info(service.bundle)
        payload["bundle"] = name
        with self._lock:
            batcher = self._batchers.get(name)
        payload["server"] = {
            "batch_window_ms": self.batch_window_ms,
            "max_batch_graphs": self.max_batch_graphs,
            "max_queue_graphs": self.max_queue_graphs,
            "batcher": batcher.stats() if batcher is not None else None,
        }
        return 200, payload, {}

    def _predict(self, body):
        requested, graphs = protocol.parse_predict_request(body)
        name = self._bundle_name(requested)
        include_votes = bool(body.get("votes", False))
        outcome = self.batcher(name).submit(graphs)
        payload = protocol.prediction_payload(
            outcome.result,
            coalesced_graphs=outcome.coalesced_graphs,
            coalesced_requests=outcome.coalesced_requests,
            include_votes=include_votes,
        )
        payload["bundle"] = name
        return 200, payload, {}

    def _train(self, body):
        spec = protocol.parse_train_request(body)
        # Idempotent by bundle key: resubmitting a name whose job is
        # pending/running/done returns that job; a failed job under the
        # key is revived with a fresh attempt (JobQueue.submit contract).
        job = self.queue.submit(
            TRAIN_JOB_KIND,
            spec,
            key=f"{TRAIN_JOB_KIND}:{spec['name']}",
            lease_ttl=TRAIN_LEASE_TTL,
        )
        status = 200 if job.status == "done" else 202
        payload = protocol.job_payload(job)
        payload["poll"] = f"/jobs/{job.id}"
        return status, payload, {}

    def _job(self, job_id: str):
        try:
            number = int(job_id)
        except ValueError:
            raise ProtocolError(f"job id must be an integer, got {job_id!r}")
        from repro.errors import CampaignError

        try:
            job = self.queue.get(number)
        except CampaignError as exc:
            return 404, protocol.error_payload(exc, kind="not_found"), {}
        return 200, protocol.job_payload(job), {}

    # ------------------------------------------------------------------ #
    # Training worker
    # ------------------------------------------------------------------ #

    def _train_loop(self) -> None:
        worker_id = f"serve-train-{os.getpid()}"
        while not self._closed:
            try:
                self.queue.requeue_expired()
                job = self.queue.claim(worker_id, kinds=(TRAIN_JOB_KIND,))
            except Exception:  # pragma: no cover - sqlite teardown races
                if self._closed:
                    return
                raise
            if job is None:
                time.sleep(0.05)
                continue
            try:
                result = self._run_train_job(job.payload)
                self.queue.complete(job.id, result)
                self.invalidate(job.payload["name"])
                _LOGGER.info("trained bundle %r (job %d)", job.payload["name"], job.id)
            except Exception as exc:  # noqa: BLE001 - recorded on the job
                if self._closed:
                    return
                _LOGGER.warning("train job %d failed: %s", job.id, exc)
                try:
                    self.queue.fail(job.id, f"{type(exc).__name__}: {exc}")
                except Exception:  # pragma: no cover - queue closed
                    return

    def _run_train_job(self, spec: dict) -> dict:
        """Execute one training job; returns the job's JSON result."""
        from repro.api import Session
        from repro.kernels.registry import lenient_spec

        if spec.get("tu_dir"):
            from repro.datasets import load_tu_directory

            dataset = load_tu_directory(spec["tu_dir"], spec["dataset"])
        else:
            from repro.datasets import load_dataset

            dataset = load_dataset(
                spec["dataset"], scale=spec["scale"], seed=spec["seed"]
            )
        graphs, targets = dataset.graphs, dataset.targets
        if spec.get("limit") is not None:
            graphs, targets = graphs[: spec["limit"]], targets[: spec["limit"]]
        kernel_spec = lenient_spec(
            spec["kernel"],
            n_prototypes=spec["prototypes"],
            seed=spec["kernel_seed"],
        )
        session = Session(self.ctx)
        bundle = session.train(
            kernel_spec,
            graphs,
            targets,
            name=spec["name"],
            c=spec["c"],
            normalize=spec["normalize"],
            seed=spec["kernel_seed"],
            metadata={"trained_by": "repro.serve.server", **{
                k: spec[k] for k in ("dataset", "scale", "seed", "limit", "tu_dir")
            }},
        )
        return {
            "bundle": spec["name"],
            "kernel_fingerprint": bundle.kernel_fingerprint,
            "training_digest": bundle.training_digest,
            "n_training_graphs": bundle.n_training_graphs,
            "train_accuracy": bundle.train_accuracy,
            "c": bundle.c,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._lock:
            batchers = list(self._batchers.values())
            self._batchers.clear()
        for batcher in batchers:
            batcher.close()
        self._train_worker.join(timeout=5.0)
        self.queue.close()


class _Handler(BaseHTTPRequestHandler):
    """Thin transport: parse → :meth:`ServeApp.handle` → JSON response."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        _LOGGER.debug("%s - %s", self.address_string(), format % args)

    def _respond(self, status: int, payload: dict, headers: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in headers.items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        from urllib.parse import parse_qs, urlsplit

        split = urlsplit(self.path)
        query = parse_qs(split.query)
        body = None
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                self._respond(
                    413,
                    protocol.error_payload(
                        f"request body of {length} bytes exceeds the "
                        f"{MAX_BODY_BYTES}-byte limit",
                        kind="too_large",
                    ),
                    {},
                )
                return
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw.decode("utf-8") or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._respond(
                    400,
                    protocol.error_payload(
                        f"request body is not valid JSON: {exc}",
                        kind="protocol",
                    ),
                    {},
                )
                return
        status, payload, headers = self.app.handle(
            method, split.path, query, body
        )
        self._respond(status, payload, headers)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")


class ServeServer:
    """The running server: a ThreadingHTTPServer bound to a ServeApp.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports the
    bound one. :meth:`start` serves on a background thread (tests, the
    benchmarks); :meth:`serve_forever` blocks (the CLI).
    """

    def __init__(self, app: ServeApp, *, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = app  # type: ignore[attr-defined]
        self._thread: "threading.Thread | None" = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServeServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever(poll_interval=0.5)

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.app.close()

    def __enter__(self) -> "ServeServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_server(
    store,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    default_bundle: "str | None" = None,
    ctx=None,
    batch_window_ms: float = 5.0,
    max_batch_graphs: int = 64,
    max_queue_graphs: int = 512,
    request_timeout: float = 30.0,
    jobs_db: "str | None" = None,
) -> ServeServer:
    """Build a :class:`ServeServer` over ``store`` (address or instance)."""
    app = ServeApp(
        store,
        ctx=ctx,
        default_bundle=default_bundle,
        batch_window_ms=batch_window_ms,
        max_batch_graphs=max_batch_graphs,
        max_queue_graphs=max_queue_graphs,
        request_timeout=request_timeout,
        jobs_db=jobs_db,
    )
    return ServeServer(app, host=host, port=port)
