"""``python -m repro.serve`` — train, predict, and inspect model bundles.

Three subcommands close the train→persist→predict loop from the shell:

* ``train``   — build a dataset (synthetic registry surrogate or an
  on-disk TU-format directory), construct a Table IV kernel, freeze it on
  the training collection when needed (HAQJSK), fit the serving pipeline
  (:func:`repro.serve.train_bundle`) and persist the bundle in an
  artifact store.
* ``predict`` — load the named bundle in a *fresh process*, classify a
  batch of newcomer graphs, and print one label per line (or a JSON
  document with OvO margins).
* ``info``    — print the bundle's content identities and configuration.

Every subcommand takes ``--store`` (defaulting to ``$REPRO_STORE``), so a
training box and a serving box meet at a shared directory.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.utils.logging import get_logger

_LOGGER = get_logger("serve.cli")


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        help=(
            "artifact-store address: a directory path, dir:/path, or "
            "mem:name (default: $REPRO_STORE)"
        ),
    )
    parser.add_argument("--name", required=True, help="bundle name in the store")


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="MUTAG",
        help="registry dataset name, or the TU dataset name with --tu-dir",
    )
    parser.add_argument(
        "--tu-dir", default=None,
        help="directory holding a TU-format dataset (overrides the registry)",
    )
    parser.add_argument("--scale", type=float, default=0.25,
                        help="registry dataset scale (ignored with --tu-dir)")
    parser.add_argument("--seed", type=int, default=0,
                        help="dataset seed (ignored with --tu-dir)")
    parser.add_argument("--limit", type=int, default=None,
                        help="use only the first LIMIT graphs")


def _resolve_store(root: "str | None"):
    from repro.experiments.config import artifact_store

    store = artifact_store(root)
    if store is None:
        raise SystemExit(
            "no artifact store configured: pass --store ADDRESS or set "
            "REPRO_STORE"
        )
    return store


def _session(args):
    """The CLI's :class:`repro.Session`: REPRO_* env + the flags."""
    from repro.api import ExecutionContext, Session

    ctx = ExecutionContext.from_env(store=_resolve_store(args.store))
    if getattr(args, "engine", None):
        ctx = ctx.replace(engine=args.engine)
    return Session(ctx)


def _load_graphs(args) -> tuple:
    """``(graphs, targets)`` from the registry or a TU directory."""
    if args.tu_dir:
        from repro.datasets import load_tu_directory

        dataset = load_tu_directory(args.tu_dir, args.dataset)
    else:
        from repro.datasets import load_dataset

        dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    graphs, targets = dataset.graphs, dataset.targets
    if args.limit is not None:
        graphs, targets = graphs[: args.limit], targets[: args.limit]
    return graphs, targets


def _kernel_spec(args):
    """The declarative spec the CLI flags describe.

    Flags that the named kernel does not accept (``--prototypes`` on a
    feature-map kernel) are dropped, matching the old zoo's leniency.
    """
    from repro.kernels.registry import lenient_spec

    return lenient_spec(
        args.kernel, n_prototypes=args.prototypes, seed=args.kernel_seed
    )


def _command_train(args) -> int:
    session = _session(args)
    graphs, targets = _load_graphs(args)
    spec = _kernel_spec(args)
    _LOGGER.info("training %s on %d graphs", spec, len(graphs))
    bundle = session.train(
        spec,
        graphs,
        targets,
        c=args.c,
        normalize=args.normalize,
        seed=args.kernel_seed,
        metadata={
            "dataset": args.dataset,
            "tu_dir": args.tu_dir,
            "scale": args.scale,
            "dataset_seed": args.seed,
            "kernel": args.kernel,
        },
    )
    # bundle.save owns the store layout; the CLI just reports its path.
    path = bundle.save(session.ctx.store, args.name)
    print(f"bundle: {args.name}")
    print(f"path: {path}")
    print(f"kernel: {bundle.kernel.name} ({bundle.kernel_fingerprint[:12]}…)")
    print(f"spec: {bundle.kernel_spec}")
    print(f"training graphs: {bundle.n_training_graphs}")
    print(f"classes: {bundle.info()['classes']}")
    print(f"c: {bundle.c}")
    print(f"train accuracy: {bundle.train_accuracy:.4f}")
    return 0


def _scalar(value):
    """Numpy scalar → native Python (labels may be any comparable type)."""
    return value.item() if hasattr(value, "item") else value


def _command_predict(args) -> int:
    session = _session(args)
    graphs, _ = _load_graphs(args)
    result = session.predict(args.name, graphs, batch_size=args.batch_size)
    if args.json:
        payload = {
            "bundle": args.name,
            "classes": [_scalar(c) for c in result.classes],
            "labels": [_scalar(label) for label in result.labels],
            "margins": [[float(m) for m in row] for row in result.margins],
        }
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        for label in result.labels:
            print(_scalar(label))
    return 0


def _command_info(args) -> int:
    from repro.serve.bundle import ModelBundle

    store = _resolve_store(args.store)
    bundle = ModelBundle.load(store, args.name)
    if args.json:
        # One formatter with the server's GET /info: tooling that parses
        # this output parses the HTTP body unchanged (and vice versa).
        from repro.serve.protocol import bundle_info

        json.dump(bundle_info(bundle), sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        for key, value in bundle.info().items():
            print(f"{key}: {value}")
    return 0


def _command_serve(args) -> int:
    from repro.api import ExecutionContext
    from repro.serve.server import make_server

    ctx = ExecutionContext.from_env(store=_resolve_store(args.store))
    if args.engine:
        ctx = ctx.replace(engine=args.engine)
    server = make_server(
        ctx.store,
        host=args.host,
        port=args.port,
        default_bundle=args.bundle,
        ctx=ctx,
        batch_window_ms=args.batch_window_ms,
        max_batch_graphs=args.max_batch_graphs,
        max_queue_graphs=args.max_queue_graphs,
        request_timeout=args.request_timeout,
        jobs_db=args.jobs_db,
    )
    _LOGGER.info("serving on %s (window %.1f ms, max batch %d graphs)",
                 server.url, args.batch_window_ms, args.max_batch_graphs)
    print(f"serving on {server.url}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Train, inspect and serve graph-classification bundles",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser("train", help="fit and persist a bundle")
    _add_store_arguments(train)
    _add_graph_arguments(train)
    train.add_argument("--kernel", default="HAQJSK(D)",
                       help="Table IV kernel name (default: HAQJSK(D))")
    train.add_argument("--prototypes", type=int, default=16,
                       help="HAQJSK level-1 prototype count")
    train.add_argument("--kernel-seed", type=int, default=0)
    train.add_argument("--c", type=float, default=None,
                       help="box constraint (default: inner-CV selection)")
    train.add_argument("--normalize", action="store_true",
                       help="cosine-normalise the Gram (costs ΔN extra "
                            "self-pair values per serving batch)")
    train.add_argument("--engine", default=None,
                       help="gram engine: serial | batched | process")
    train.set_defaults(func=_command_train)

    predict = commands.add_parser(
        "predict", help="classify newcomer graphs from a fresh process"
    )
    _add_store_arguments(predict)
    _add_graph_arguments(predict)
    predict.add_argument("--engine", default=None)
    predict.add_argument("--batch-size", type=int, default=None,
                         help="bound per-engine-call batch size")
    predict.add_argument("--json", action="store_true",
                         help="emit JSON with per-class OvO margins")
    predict.set_defaults(func=_command_predict)

    info = commands.add_parser("info", help="print bundle metadata")
    _add_store_arguments(info)
    info.add_argument("--json", action="store_true",
                      help="machine-readable JSON (same document as the "
                           "HTTP server's GET /info)")
    info.set_defaults(func=_command_info)

    serve = commands.add_parser(
        "serve",
        help="run the HTTP prediction server with micro-batching",
    )
    serve.add_argument(
        "--store", default=None,
        help="artifact-store address holding the bundles (default: "
             "$REPRO_STORE)",
    )
    serve.add_argument("--bundle", default=None,
                       help="default bundle served when a predict request "
                            "names none")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8008)
    serve.add_argument("--engine", default=None,
                       help="gram engine: serial | batched | process")
    serve.add_argument("--batch-window-ms", type=float, default=5.0,
                       help="micro-batching coalescing window in ms "
                            "(0 disables batching)")
    serve.add_argument("--max-batch-graphs", type=int, default=64,
                       help="dispatch a batch early at this many queued "
                            "graphs")
    serve.add_argument("--max-queue-graphs", type=int, default=512,
                       help="backpressure high-water mark: more queued "
                            "graphs than this -> 503 + Retry-After")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       help="seconds a request may wait for its batch")
    serve.add_argument("--jobs-db", default=None,
                       help="sqlite path for the training job queue "
                            "(default: serve-jobs.db inside a directory "
                            "store, else in-memory)")
    serve.set_defaults(func=_command_serve)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
