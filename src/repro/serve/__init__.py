"""End-to-end prediction serving: train → persist → predict — and HTTP.

The missing last mile between the paper's protocol and the ROADMAP's
serving north-star. :func:`train_bundle` fits the full pipeline (Gram →
inductive :class:`~repro.ml.kernel_utils.GramConditioner` → one-vs-one
C-SVM) on a training collection; the resulting :class:`ModelBundle` is a
picklable value object persisted through the content-addressed
:class:`~repro.store.ArtifactStore`; a :class:`PredictionService` —
possibly in a different process, days later — loads it, verifies its
content digests, and classifies newcomer batches by evaluating only the
``(ΔN, N)`` cross block against the training graphs on any engine
backend.

The conditioning contract is the load-bearing piece: serving applies the
*training-fold* centering/scale statistics to newcomer rows (inductive),
never fresh statistics of the cross block (transductive) — the latter
silently disagrees with the Gram the SVM was trained on. See the module
docstring of :mod:`repro.ml.kernel_utils`.

Networked serving lives in :mod:`repro.serve.server`: a stdlib threaded
HTTP server whose :class:`~repro.serve.batcher.MicroBatcher` coalesces
concurrent predict requests into one cross-block evaluation — the engine
is far cheaper per graph on big ``(ΔN, N)`` rectangles — with training
jobs flowing through the persistent :class:`~repro.jobs.JobQueue`.

CLI: ``python -m repro.serve {train,predict,info,serve}``.
"""

from repro.serve.batcher import BatchedPrediction, MicroBatcher
from repro.serve.bundle import BUNDLE_KIND, ModelBundle, bundle_key, train_bundle
from repro.serve.server import ServeApp, ServeServer, make_server
from repro.serve.service import PredictionResult, PredictionService

__all__ = [
    "BUNDLE_KIND",
    "BatchedPrediction",
    "MicroBatcher",
    "ModelBundle",
    "PredictionResult",
    "PredictionService",
    "ServeApp",
    "ServeServer",
    "bundle_key",
    "make_server",
    "train_bundle",
]
