"""Micro-batching request coalescing — the serving-throughput core.

The engine's cross-block math is far cheaper per graph when the
``(ΔN, N)`` rectangle is big (``benchmarks/bench_serve.py``: graphs/sec
rises steeply with batch size — one batched eigendecomposition sweep and
one conditioning/voting pass amortise over every row). A request-per-call
server throws that away: each caller pays the one-graph price.

:class:`MicroBatcher` recovers the batch shape from *concurrent* traffic:

* a request's graphs enqueue into a coalescing window; the caller blocks
  on a per-request future;
* the dispatcher thread wakes on the first enqueue, waits out the window
  (``window_ms``) while more requests pile in — or cuts it short the
  moment ``max_batch_graphs`` is reached;
* it drains the queue into **one** ``predict`` over the concatenated
  graph list — one cross-block rectangle — and fans the result slices
  back to each waiter.

The identity guarantee (tested in ``tests/serve`` and asserted by
``benchmarks/bench_http_serve.py``): each waiter's slice equals what a
solo ``predict`` over just its graphs would have returned, because cross
rows are computed row-independently — coalescing changes *when* rows are
computed, never their values' meaning. Batching is therefore a pure
throughput knob: ``window_ms=0`` degrades to per-request calls.

Backpressure is explicit: past ``max_queue_graphs`` queued graphs,
:meth:`submit` raises :class:`~repro.errors.ServerBusyError` (→ HTTP 503
with ``Retry-After``) instead of queueing unboundedly — under sustained
overload the queue would otherwise grow without limit while every
caller's latency diverges.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.errors import (
    ServeTimeoutError,
    ServerBusyError,
    ServingError,
    ValidationError,
)

#: Default seconds a caller waits on its future before giving up.
DEFAULT_REQUEST_TIMEOUT = 30.0


@dataclass(frozen=True)
class BatchedPrediction:
    """One request's slice of a coalesced prediction.

    ``coalesced_graphs`` / ``coalesced_requests`` report the batch this
    request rode in — a request served alone reports its own size and 1.
    """

    result: object
    coalesced_graphs: int
    coalesced_requests: int


class _Pending:
    """One enqueued request: graphs in, a filled slice (or error) out."""

    __slots__ = ("graphs", "event", "outcome", "error", "enqueued_at")

    def __init__(self, graphs: list) -> None:
        self.graphs = graphs
        self.event = threading.Event()
        self.outcome: "BatchedPrediction | None" = None
        self.error: "BaseException | None" = None
        self.enqueued_at = time.monotonic()


class MicroBatcher:
    """Coalesces concurrent predict calls into one cross-block evaluation.

    Parameters
    ----------
    predict:
        ``graphs -> PredictionResult`` — typically a bound
        :meth:`~repro.serve.service.PredictionService.predict`. Must be
        row-independent: the slice of a batched result belonging to a
        request equals the result of predicting that request alone.
    window_ms:
        Coalescing window in milliseconds, measured from the first
        request that opens a batch. ``0`` disables batching entirely —
        :meth:`submit` calls ``predict`` synchronously (the no-batching
        baseline the benchmarks compare against).
    max_batch_graphs:
        Dispatch early once this many graphs are queued; also the drain
        bound, so one evaluation never exceeds it (a single oversized
        request still runs, alone — refusing it would turn a throughput
        knob into a request-size limit).
    max_queue_graphs:
        Backpressure high-water mark: :meth:`submit` raises
        :class:`ServerBusyError` when accepting the request would leave
        more than this many graphs queued.
    timeout:
        Default seconds a caller blocks awaiting its slice before
        :class:`ServeTimeoutError`; per-call override via ``submit``.
    """

    def __init__(
        self,
        predict,
        *,
        window_ms: float = 5.0,
        max_batch_graphs: int = 64,
        max_queue_graphs: int = 512,
        timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        if window_ms < 0:
            raise ValidationError(f"window_ms must be >= 0, got {window_ms}")
        if max_batch_graphs < 1:
            raise ValidationError(
                f"max_batch_graphs must be >= 1, got {max_batch_graphs}"
            )
        if max_queue_graphs < max_batch_graphs:
            raise ValidationError(
                f"max_queue_graphs ({max_queue_graphs}) must be >= "
                f"max_batch_graphs ({max_batch_graphs})"
            )
        self.predict = predict
        self.window_seconds = float(window_ms) / 1000.0
        self.max_batch_graphs = int(max_batch_graphs)
        self.max_queue_graphs = int(max_queue_graphs)
        self.timeout = float(timeout)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._queue: "deque[_Pending]" = deque()
        self._queued_graphs = 0
        self._closed = False
        self._stats = {
            "requests": 0,
            "graphs": 0,
            "batches": 0,
            "coalesced_requests_max": 0,
            "coalesced_graphs_max": 0,
            "rejected": 0,
        }
        self._dispatcher: "threading.Thread | None" = None
        if self.window_seconds > 0:
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="serve-microbatcher", daemon=True
            )
            self._dispatcher.start()

    # ------------------------------------------------------------------ #
    # Caller side
    # ------------------------------------------------------------------ #

    def submit(
        self, graphs: list, *, timeout: "float | None" = None
    ) -> BatchedPrediction:
        """Block until this request's slice is ready; return it.

        Raises :class:`ServerBusyError` at the high-water mark,
        :class:`ServeTimeoutError` past the deadline, and re-raises any
        exception the coalesced ``predict`` call died with (every waiter
        in the batch sees it).
        """
        graphs = list(graphs)
        deadline = self.timeout if timeout is None else float(timeout)
        if self.window_seconds <= 0 or not graphs:
            # No-batching baseline (and the trivial empty request): call
            # through synchronously, still counted in the stats so /info
            # reflects all traffic.
            with self._lock:
                if self._closed:
                    raise ServingError("MicroBatcher is closed")
                self._record_batch(len(graphs), 1)
            return BatchedPrediction(
                result=self.predict(graphs),
                coalesced_graphs=len(graphs),
                coalesced_requests=1,
            )
        pending = _Pending(graphs)
        with self._wake:
            if self._closed:
                raise ServingError("MicroBatcher is closed")
            if self._queued_graphs + len(graphs) > self.max_queue_graphs:
                self._stats["rejected"] += 1
                raise ServerBusyError(
                    f"serving queue full ({self._queued_graphs} graphs "
                    f"queued, high-water mark {self.max_queue_graphs}); "
                    "retry shortly",
                    retry_after=max(self.window_seconds * 2, 0.05),
                )
            self._queue.append(pending)
            self._queued_graphs += len(graphs)
            self._wake.notify_all()
        if not pending.event.wait(deadline):
            raise ServeTimeoutError(
                f"prediction not ready within {deadline:.1f}s "
                f"({len(graphs)} graphs submitted)"
            )
        if pending.error is not None:
            raise pending.error
        assert pending.outcome is not None
        return pending.outcome

    def stats(self) -> dict:
        """Coalescing accounting for ``/info`` and the benchmarks."""
        with self._lock:
            stats = dict(self._stats)
        stats["window_ms"] = self.window_seconds * 1000.0
        stats["max_batch_graphs"] = self.max_batch_graphs
        stats["max_queue_graphs"] = self.max_queue_graphs
        requests = stats["requests"] or 1
        batches = stats["batches"] or 1
        stats["mean_coalesced_requests"] = round(requests / batches, 3)
        return stats

    def close(self) -> None:
        """Stop the dispatcher; wake every waiter with a ServingError."""
        with self._wake:
            if self._closed:
                return
            self._closed = True
            drained = list(self._queue)
            self._queue.clear()
            self._queued_graphs = 0
            self._wake.notify_all()
        for pending in drained:
            pending.error = ServingError("MicroBatcher closed while queued")
            pending.event.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Dispatcher side
    # ------------------------------------------------------------------ #

    def _record_batch(self, n_graphs: int, n_requests: int) -> None:
        # Caller holds self._lock.
        self._stats["requests"] += n_requests
        self._stats["graphs"] += n_graphs
        self._stats["batches"] += 1
        self._stats["coalesced_requests_max"] = max(
            self._stats["coalesced_requests_max"], n_requests
        )
        self._stats["coalesced_graphs_max"] = max(
            self._stats["coalesced_graphs_max"], n_graphs
        )

    def _dispatch_loop(self) -> None:
        skip_window = False
        while True:
            batch = self._collect_batch(skip_window)
            if batch is None:
                return
            self._run_batch(batch)
            with self._lock:
                # A drain that left requests behind (the batch filled up
                # without them) owes those requests immediate dispatch:
                # they already waited a window. Under saturation this
                # degenerates to back-to-back full batches with no idle
                # window waits — the throughput-optimal regime.
                skip_window = bool(self._queue)

    def _collect_batch(self, skip_window: bool = False) -> "list[_Pending] | None":
        """Wait for the window of the next batch; drain and return it.

        Returns ``None`` when the batcher closed with nothing queued.
        """
        with self._wake:
            while not self._queue and not self._closed:
                self._wake.wait()
            if not self._queue:
                return None  # closed
            # The window opens when the OLDEST queued request enqueued —
            # not when this collect started — and is skipped entirely for
            # requests a previous full batch passed over.
            deadline = self._queue[0].enqueued_at + self.window_seconds
            while (
                not skip_window
                and not self._closed
                and self._queued_graphs < self.max_batch_graphs
                and time.monotonic() < deadline
            ):
                self._wake.wait(timeout=deadline - time.monotonic())
            batch: "list[_Pending]" = []
            total = 0
            while self._queue:
                nxt = self._queue[0]
                if batch and total + len(nxt.graphs) > self.max_batch_graphs:
                    break
                batch.append(self._queue.popleft())
                total += len(nxt.graphs)
            self._queued_graphs -= total
            self._record_batch(total, len(batch))
            return batch

    def _run_batch(self, batch: "list[_Pending]") -> None:
        """One coalesced predict; fan slices (or the error) back out."""
        graphs: list = []
        for pending in batch:
            graphs.extend(pending.graphs)
        try:
            result = self.predict(graphs)
            start = 0
            for pending in batch:
                stop = start + len(pending.graphs)
                pending.outcome = BatchedPrediction(
                    result=_slice_result(result, start, stop),
                    coalesced_graphs=len(graphs),
                    coalesced_requests=len(batch),
                )
                start = stop
        except BaseException as exc:  # noqa: BLE001 - fanned to waiters
            for pending in batch:
                pending.error = exc
        for pending in batch:
            pending.event.set()


def _slice_result(result, start: int, stop: int):
    """Rows ``start:stop`` of a PredictionResult (classes shared)."""
    from repro.serve.service import PredictionResult

    return PredictionResult(
        labels=result.labels[start:stop],
        votes=result.votes[start:stop],
        margins=result.margins[start:stop],
        classes=result.classes,
    )
