"""The serving wire protocol — JSON codecs shared by server, CLI and clients.

One module owns every translation between library objects and the JSON
documents that cross the HTTP boundary, so the server handlers stay pure
routing and the CLI's ``info --json`` output is byte-compatible with the
server's ``GET /info`` body (one formatter, two transports).

Graphs travel as edge lists, the most compact faithful encoding of the
library's undirected weighted :class:`~repro.graphs.graph.Graph`::

    {"n": 5, "edges": [[0, 1], [1, 2, 0.5]], "labels": [0, 1, 0, 1, 2]}

``labels`` and per-edge weights are optional; a request is a list of such
documents. Every malformed field raises a named
:class:`~repro.errors.ProtocolError` (→ HTTP 400) pointing at the graph
index and field, never a raw ``KeyError``/``TypeError`` from the depths
of graph construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError, ProtocolError

#: Protocol revision, reported by /healthz and /info so clients can
#: detect incompatible servers before sending a payload.
PROTOCOL_VERSION = 1


# ---------------------------------------------------------------------- #
# JSON safety
# ---------------------------------------------------------------------- #


def json_safe(value):
    """Recursively convert numpy scalars/arrays so ``json.dumps`` works.

    Labels may be numpy integers, conditioner statistics numpy floats,
    metadata arbitrary nested dicts — one normaliser covers them all.
    """
    if isinstance(value, np.ndarray):
        return [json_safe(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return value


# ---------------------------------------------------------------------- #
# Graph codec
# ---------------------------------------------------------------------- #


def graph_to_wire(graph) -> dict:
    """Encode a :class:`Graph` as the wire document."""
    edges = []
    for u, v, w in graph.edges():
        if w == 1.0:
            edges.append([int(u), int(v)])
        else:
            edges.append([int(u), int(v), float(w)])
    doc: dict = {"n": int(graph.n_vertices), "edges": edges}
    if graph.labels is not None:
        doc["labels"] = [int(x) for x in graph.labels]
    if graph.name:
        doc["name"] = str(graph.name)
    return doc


def graph_from_wire(doc, *, index: int = 0):
    """Decode one wire document into a :class:`Graph`.

    ``index`` locates the graph inside the request for error messages.
    """
    from repro.graphs.graph import Graph

    where = f"graphs[{index}]"
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"{where}: expected an object with 'n' and 'edges', got "
            f"{type(doc).__name__}"
        )
    try:
        n = int(doc["n"])
    except KeyError:
        raise ProtocolError(f"{where}: missing vertex count 'n'") from None
    except (TypeError, ValueError):
        raise ProtocolError(
            f"{where}: 'n' must be an integer, got {doc.get('n')!r}"
        ) from None
    if n < 0:
        raise ProtocolError(f"{where}: 'n' must be >= 0, got {n}")
    edges = doc.get("edges", [])
    if not isinstance(edges, (list, tuple)):
        raise ProtocolError(
            f"{where}: 'edges' must be a list of [u, v] or [u, v, weight]"
        )
    adjacency = np.zeros((n, n), dtype=float)
    for e, edge in enumerate(edges):
        if not isinstance(edge, (list, tuple)) or len(edge) not in (2, 3):
            raise ProtocolError(
                f"{where}: edges[{e}] must be [u, v] or [u, v, weight], "
                f"got {edge!r}"
            )
        try:
            u, v = int(edge[0]), int(edge[1])
            w = float(edge[2]) if len(edge) == 3 else 1.0
        except (TypeError, ValueError):
            raise ProtocolError(
                f"{where}: edges[{e}] has non-numeric entries: {edge!r}"
            ) from None
        if not (0 <= u < n and 0 <= v < n):
            raise ProtocolError(
                f"{where}: edges[{e}] references vertex outside 0..{n - 1}: "
                f"{edge!r}"
            )
        adjacency[u, v] = w
        adjacency[v, u] = w
    labels = doc.get("labels")
    if labels is not None:
        if not isinstance(labels, (list, tuple)) or len(labels) != n:
            raise ProtocolError(
                f"{where}: 'labels' must be a list of {n} integers"
            )
        try:
            labels = [int(x) for x in labels]
        except (TypeError, ValueError):
            raise ProtocolError(
                f"{where}: 'labels' has non-integer entries"
            ) from None
    try:
        return Graph(adjacency, labels=labels, name=str(doc.get("name", "")))
    except GraphError as exc:
        raise ProtocolError(f"{where}: {exc}") from exc


def graphs_from_wire(docs) -> list:
    """Decode a request's graph list (named errors carry the index)."""
    if not isinstance(docs, (list, tuple)):
        raise ProtocolError(
            f"'graphs' must be a list of graph objects, got "
            f"{type(docs).__name__}"
        )
    return [graph_from_wire(doc, index=i) for i, doc in enumerate(docs)]


# ---------------------------------------------------------------------- #
# Requests
# ---------------------------------------------------------------------- #


def parse_predict_request(payload) -> "tuple[str | None, list]":
    """``(bundle_name_or_None, graphs)`` from a ``POST /predict`` body."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    bundle = payload.get("bundle")
    if bundle is not None and not isinstance(bundle, str):
        raise ProtocolError(
            f"'bundle' must be a string bundle name, got {bundle!r}"
        )
    if "graphs" not in payload:
        raise ProtocolError("request body is missing 'graphs'")
    return bundle, graphs_from_wire(payload["graphs"])


def parse_train_request(payload) -> dict:
    """Validated keyword set for a ``POST /train`` body.

    The accepted fields mirror the CLI ``train`` flags; unknown fields
    are refused by name so typos fail loudly instead of training a
    default the caller did not ask for.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    known = {
        "name", "dataset", "scale", "seed", "limit", "tu_dir",
        "kernel", "prototypes", "kernel_seed", "c", "normalize",
    }
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ProtocolError(
            f"unknown train fields {unknown}; accepted: {sorted(known)}"
        )
    name = payload.get("name")
    if not name or not isinstance(name, str):
        raise ProtocolError("'name' (the bundle name to train) is required")
    spec = {
        "name": name,
        "dataset": str(payload.get("dataset", "MUTAG")),
        "scale": float(payload.get("scale", 0.25)),
        "seed": int(payload.get("seed", 0)),
        "limit": payload.get("limit"),
        "tu_dir": payload.get("tu_dir"),
        "kernel": str(payload.get("kernel", "HAQJSK(D)")),
        "prototypes": int(payload.get("prototypes", 16)),
        "kernel_seed": int(payload.get("kernel_seed", 0)),
        "c": payload.get("c"),
        "normalize": bool(payload.get("normalize", False)),
    }
    if spec["limit"] is not None:
        spec["limit"] = int(spec["limit"])
    if spec["c"] is not None:
        spec["c"] = float(spec["c"])
    return spec


# ---------------------------------------------------------------------- #
# Responses
# ---------------------------------------------------------------------- #


def prediction_payload(
    result,
    *,
    coalesced_graphs: int,
    coalesced_requests: int,
    include_votes: bool = False,
) -> dict:
    """JSON document for one request's slice of a prediction.

    ``batch`` reports the coalescing accounting: how many graphs and how
    many concurrent requests shared the cross-block evaluation this
    request rode in (1/own-size when the window was empty or disabled).
    """
    payload = {
        "labels": [json_safe(label) for label in result.labels],
        "classes": [json_safe(c) for c in result.classes],
        "margins": [[float(m) for m in row] for row in result.margins],
        "batch": {
            "coalesced_graphs": int(coalesced_graphs),
            "coalesced_requests": int(coalesced_requests),
        },
    }
    if include_votes:
        payload["votes"] = [[float(v) for v in row] for row in result.votes]
    return payload


def bundle_info(bundle) -> dict:
    """The machine-readable bundle summary.

    THE shared formatter: ``python -m repro.serve info --json`` and the
    server's ``GET /info`` both emit exactly this document, so tooling
    that reads one reads the other. Always carries the two content
    identities (``kernel_fingerprint``, ``training_digest``).
    """
    return json_safe(bundle.info())


def job_payload(job) -> dict:
    """JSON document for one :class:`~repro.jobs.QueuedJob` snapshot."""
    return {
        "id": int(job.id),
        "kind": job.kind,
        "key": job.key,
        "status": job.status,
        "attempts": int(job.attempts),
        "result": json_safe(job.result),
        "error": job.error,
        "created_at": float(job.created_at),
        "updated_at": float(job.updated_at),
    }


def error_payload(message: str, *, kind: str = "error") -> dict:
    return {"error": {"kind": kind, "message": str(message)}}
