"""The prediction service — batch classification of newcomer graphs.

Serving cost model: against a bundle of ``N`` training graphs, a batch of
``ΔN`` newcomers costs exactly the ``(ΔN, N)`` cross-block pair
evaluations (the same engine-backed rectangle
:meth:`~repro.kernels.base.GraphKernel.gram_extend` computes for its
cross block — but *without* the ``(ΔN, ΔN)`` diagonal block, which an SVM
decision function never reads). ``tests/serve`` pins the exact pair
budget with a counting kernel, the way
``benchmarks/bench_incremental_gram.py`` does for ``gram_extend``.

The cross rows are then conditioned **inductively** — the bundle's
:class:`~repro.ml.kernel_utils.GramConditioner` applies the training-fold
centering and scale statistics, never fresh ones — and handed to the
one-vs-one SVM, which returns labels plus per-class accumulated OvO
margins as the confidence signal.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.kernels.base import (
    FeatureMapKernel,
    PairwiseKernel,
    cosine_scale,
    normalize_gram_block,
)
from repro.serve.bundle import ModelBundle


@dataclass(frozen=True)
class PredictionResult:
    """One batch's predictions.

    ``margins[t, k]`` is the accumulated signed OvO decision value for
    class ``classes[k]`` on newcomer ``t`` — larger means more confident;
    ``votes`` are the raw OvO win counts the label argmax runs on.
    """

    labels: np.ndarray
    votes: np.ndarray
    margins: np.ndarray
    classes: np.ndarray

    def __len__(self) -> int:
        return int(self.labels.shape[0])


class PredictionService:
    """Serves label predictions for newcomer graphs from a model bundle.

    Parameters
    ----------
    bundle:
        A (verified) :class:`ModelBundle`; :meth:`from_store` loads and
        verifies one by name.
    ctx:
        :class:`~repro.api.ExecutionContext` selecting the Gram backend
        (and tile size) for the cross-block evaluation — the serving
        knob for throughput.
    engine:
        *Deprecated* (pass ``ctx=``): the loose backend spelling
        (``"serial"``, ``"batched"``, ``"process"``, an instance, or
        ``None`` for the kernel's sticky default).
    batch_size:
        When set, :meth:`predict` internally splits larger batches so
        conditioning and voting never see more than ``batch_size`` rows
        at a time (bounded memory for heavy-traffic loops).
    max_block_graphs:
        When set, :meth:`predict` streams the whole pipeline — cross
        block, conditioning, voting — in row chunks of at most this many
        newcomer graphs, so even a single huge arrival batch materialises
        at most ``max_block_graphs × N`` kernel values at any moment
        (only the O(ΔN × classes) votes/margins accumulate). Results are
        identical to the one-shot rectangle, row for row. ``batch_size``
        composes: the effective chunk is the smaller of the two.
    """

    def __init__(
        self,
        bundle: ModelBundle,
        *,
        engine=None,
        batch_size: "int | None" = None,
        max_block_graphs: "int | None" = None,
        ctx=None,
    ) -> None:
        from repro.api.context import resolve_context

        if not isinstance(bundle, ModelBundle):
            raise ValidationError(
                f"bundle must be a ModelBundle, got {type(bundle).__name__}"
            )
        ctx = resolve_context(ctx, owner="PredictionService", engine=engine)
        if ctx is not None:
            engine = ctx.engine_argument(bundle.kernel)
        if batch_size is not None and batch_size < 1:
            raise ValidationError(f"batch_size must be >= 1, got {batch_size}")
        if max_block_graphs is not None and max_block_graphs < 1:
            raise ValidationError(
                f"max_block_graphs must be >= 1, got {max_block_graphs}"
            )
        self.bundle = bundle.verify()
        self.engine = engine
        self.batch_size = batch_size
        self.max_block_graphs = max_block_graphs
        # Prepared states of the training collection, computed once per
        # service (legal: the bundle kernel is collection-independent, so
        # states do not depend on which newcomers they are paired with).
        # The lock makes concurrent first predicts prepare exactly once:
        # one service is shared across the HTTP server's request threads,
        # and after preparation the states are only ever read.
        self._train_states: "list | None" = None
        self._prepare_lock = threading.Lock()

    @classmethod
    def from_store(
        cls,
        store,
        name: str,
        *,
        engine=None,
        batch_size: "int | None" = None,
        max_block_graphs: "int | None" = None,
        ctx=None,
    ) -> "PredictionService":
        """Load + verify the named bundle and wrap it for serving.

        Verification runs once, in the constructor — ``verify=False``
        here avoids hashing the N training graphs twice per cold start.
        """
        return cls(
            ModelBundle.load(store, name, verify=False),
            engine=engine,
            batch_size=batch_size,
            max_block_graphs=max_block_graphs,
            ctx=ctx,
        )

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #

    def predict(self, graphs: "list[Graph]") -> PredictionResult:
        """Classify a batch of newcomer graphs.

        Evaluates only the ``(ΔN, N)`` cross pairs against the bundle's
        training graphs (plus ``ΔN`` self-similarities when the bundle
        was trained on a cosine-normalised Gram), conditions them with
        the frozen training statistics, and votes the OvO machines.
        """
        graphs = list(graphs)
        model = self.bundle.model
        if not graphs:
            # Explicit empty result: no engine call, no conditioning, no
            # vote pass — shapes and dtypes exactly match a non-empty
            # prediction sliced to zero rows (pinned in tests/serve).
            classes = model.classes_
            return PredictionResult(
                labels=classes[:0],
                votes=np.zeros((0, classes.size)),
                margins=np.zeros((0, classes.size)),
                classes=classes,
            )
        # End-to-end streaming bound: each loop iteration materialises at
        # most chunk × N kernel values (rows are dropped after voting),
        # so max_block_graphs caps peak memory even for one huge batch.
        chunk = min(
            self.batch_size or len(graphs),
            self.max_block_graphs or len(graphs),
        )
        labels, votes, margins = [], [], []
        for start in range(0, len(graphs), chunk):
            rows = self.conditioned_rows(graphs[start : start + chunk])
            # One pass over the OvO machines yields votes + margins; the
            # labels are derived from them without re-evaluating.
            chunk_votes, chunk_margins = model.vote_margins(rows)
            labels.append(model.labels_from_votes(chunk_votes, chunk_margins))
            votes.append(chunk_votes)
            margins.append(chunk_margins)
        return PredictionResult(
            labels=np.concatenate(labels),
            votes=np.vstack(votes),
            margins=np.vstack(margins),
            classes=model.classes_,
        )

    def predict_labels(self, graphs: "list[Graph]") -> np.ndarray:
        """Just the labels (the CLI's default output)."""
        return self.predict(graphs).labels

    def conditioned_rows(self, graphs: "list[Graph]") -> np.ndarray:
        """The fully conditioned ``(ΔN, N)`` rows the SVM consumes.

        Exposed so the serving-equivalence tests can compare against the
        transductive full-Gram protocol row by row. Note this returns the
        *whole* block — ``max_block_graphs`` bounds each internal engine
        call here, but the end-to-end memory bound lives in
        :meth:`predict`, which streams chunks through this method and
        drops each block after voting.
        """
        bundle = self.bundle
        kernel = bundle.kernel
        if not graphs:
            # Zero chunks would leave nothing to stack; the empty batch
            # short-circuits to a conditioned (0, N) block directly.
            empty = np.zeros((0, len(bundle.training_graphs)))
            return bundle.conditioner.transform_cross(empty)
        step = self.max_block_graphs or len(graphs)
        if isinstance(kernel, PairwiseKernel):
            # Amortised pairwise path: the training states are prepared
            # once per service, so a batch pays O(ΔN) preparation plus
            # exactly the ΔN·N cross pair values through the engine. With
            # max_block_graphs, the rectangle streams in bounded row
            # chunks — each engine call sees at most step × N pairs.
            if self._train_states is None:
                with self._prepare_lock:
                    if self._train_states is None:
                        self._train_states = kernel.prepare(
                            list(bundle.training_graphs)
                        )
            new_states = kernel.prepare(graphs)
            engine = kernel._resolve_engine(self.engine)
            chunks = [
                engine.cross_gram(
                    kernel, new_states[start : start + step], self._train_states
                )
                for start in range(0, len(new_states), step)
            ]
        else:
            # Feature-map kernels re-extract features over train + batch
            # each call: vocabularies are per-call, so rows from separate
            # feature_matrix calls cannot be dotted. Extraction is linear
            # in N (no quadratic pair stage), so the cross rectangle still
            # dominates; a vocabulary-stable feature cache would shave the
            # O(N) term if feature-map serving ever becomes the hot path.
            from repro.api.context import context_for

            cross_ctx = context_for(engine=self.engine)
            chunks = [
                kernel.cross_gram(
                    graphs[start : start + step],
                    bundle.training_graphs,
                    ctx=cross_ctx,
                )
                for start in range(0, len(graphs), step)
            ]
        rows = np.vstack([np.asarray(chunk, dtype=float) for chunk in chunks])
        if bundle.normalize:
            rows = self._cosine_normalized(rows, graphs)
        return bundle.conditioner.transform_cross(rows)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _cosine_normalized(
        self, rows: np.ndarray, graphs: "list[Graph]"
    ) -> np.ndarray:
        """``K(t, i) / sqrt(K_tt K_ii)`` with the **stored training**
        diagonal for the columns — the same
        :func:`~repro.kernels.base.cosine_scale` policy ``normalize_gram``
        applied to the training Gram, so serving rows land in exactly the
        cosine geometry the SVM was trained in. Newcomer self-similarities
        cost ΔN extra pair values."""
        row_scale = cosine_scale(self._self_similarities(graphs))
        col_scale = cosine_scale(self.bundle.train_diagonal)
        return normalize_gram_block(rows, row_scale, col_scale)

    def _self_similarities(self, graphs: "list[Graph]") -> np.ndarray:
        """``K(g, g)`` per newcomer — ΔN pair evaluations, no rectangle.

        Legitimate because the bundle kernel is collection-independent
        (verified): preparing the newcomers alone yields the same states
        as preparing them alongside the training graphs.
        """
        kernel = self.bundle.kernel
        if isinstance(kernel, PairwiseKernel):
            states = kernel.prepare(graphs)
            return np.array(
                [float(kernel.pair_value(s, s)) for s in states], dtype=float
            )
        if isinstance(kernel, FeatureMapKernel):
            features = np.asarray(kernel.feature_matrix(graphs), dtype=float)
            return np.einsum("ij,ij->i", features, features)
        return np.array([float(kernel(g, g)) for g in graphs], dtype=float)

    def info(self) -> dict:
        """Bundle summary plus the serving configuration."""
        info = self.bundle.info()
        info["engine"] = str(self.engine) if self.engine is not None else "default"
        info["batch_size"] = self.batch_size
        info["max_block_graphs"] = self.max_block_graphs
        return info
