"""Experiments: regenerate every table and figure of the paper.

* Table I / III — :mod:`repro.experiments.properties` (+ runner ``table3``)
* Table II      — :mod:`repro.experiments.table2`
* Table IV      — :mod:`repro.experiments.table4`
* Table V       — :mod:`repro.experiments.table5`
* Figure 2      — :mod:`repro.experiments.figure2`
* Section III-D — :mod:`repro.experiments.complexity`
"""

from repro.experiments.config import (
    TABLE4_DATASETS,
    TABLE4_KERNELS,
    TABLE5_DATASETS,
    TABLE5_MODELS,
    dataset_scale,
    full_scale,
)
from repro.experiments.kernel_zoo import INDEFINITE_KERNELS, make_kernel

__all__ = [
    "INDEFINITE_KERNELS",
    "TABLE4_DATASETS",
    "TABLE4_KERNELS",
    "TABLE5_DATASETS",
    "TABLE5_MODELS",
    "dataset_scale",
    "full_scale",
    "make_kernel",
]
