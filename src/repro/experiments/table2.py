"""Table II — dataset statistics, measured vs paper.

Regenerates every dataset (at the requested scale) and prints its measured
Table II row next to the paper's row. At ``scale=1.0`` the graph counts
match the paper exactly and the vertex/edge means land within the
generators' calibration tolerance (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.datasets import DATASET_NAMES, PAPER_STATISTICS, load_dataset
from repro.experiments.reporting import format_table


def run_table2(
    *, scale: float = 1.0, size_scale: float = 1.0, seed: int = 0, names=None
) -> "list[dict]":
    """Measured-vs-paper statistics rows for each dataset."""
    rows = []
    for name in names or DATASET_NAMES:
        dataset = load_dataset(name, scale=scale, size_scale=size_scale, seed=seed)
        measured = dataset.statistics()
        paper = PAPER_STATISTICS[name]
        rows.append(
            {
                "Dataset": name,
                "Max V (paper)": paper.max_vertices,
                "Max V (ours)": measured.max_vertices,
                "Mean V (paper)": paper.mean_vertices,
                "Mean V (ours)": round(measured.mean_vertices, 2),
                "Mean E (paper)": paper.mean_edges,
                "Mean E (ours)": round(measured.mean_edges, 2),
                "Graphs (paper)": paper.n_graphs,
                "Graphs (ours)": measured.n_graphs,
                "Classes": measured.n_classes,
                "Labels": measured.n_vertex_labels or "-",
                "Domain": paper.domain,
            }
        )
    return rows


def main(argv=None) -> str:  # pragma: no cover - CLI glue
    import argparse

    parser = argparse.ArgumentParser(description="Regenerate Table II")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--size-scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    table = format_table(
        run_table2(scale=args.scale, size_scale=args.size_scale, seed=args.seed)
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
