"""Experiment scales and kernel/model rosters.

The paper-scale Table IV/V runs take hours (see DESIGN.md §5); the default
harness therefore runs *scaled* dataset sizes that preserve every dataset's
class structure. Set ``REPRO_FULL_SCALE=1`` to run at the paper's sizes.

All scales live here so the benchmarks, the CLI runner and EXPERIMENTS.md
agree on exactly what was run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

# One definition each of the shared switches: the execution context owns
# the store env var, the kernel registry owns the scale switch (its
# scale-aware defaults resolve through it); the harness re-exports both.
from repro.api.context import STORE_ENV_VAR  # noqa: F401
from repro.kernels.registry import FULL_SCALE_ENV_VAR, full_scale  # noqa: F401


def gram_engine() -> str:
    """The Gram-computation backend the harness runs with.

    Set ``REPRO_GRAM_ENGINE`` to ``serial``, ``batched`` or ``process``
    (see :mod:`repro.engine`); the default is the vectorized ``batched``
    backend. Every saved report records the active backend.
    """
    from repro.engine import default_engine_name

    return default_engine_name()


def gram_tile() -> str:
    """The tile size the harness schedules Gram plans with, for the
    report footer: the ``REPRO_GRAM_TILE`` override when set, else each
    backend's own default (batched 64, process 32, serial 128)."""
    from repro.engine import TILE_ENV_VAR

    return os.environ.get(TILE_ENV_VAR, "").strip() or "backend default"


def compute_backend() -> str:
    """The resolved compute policy, ``backend/precision/entropy`` form.

    Resolved from ``REPRO_BACKEND`` / ``REPRO_PRECISION`` /
    ``REPRO_ENTROPY`` (reference defaults when unset); every saved report
    records it so a float32 or Chebyshev run is distinguishable from the
    bit-stable reference in the footer.
    """
    from repro.backend import ComputePolicy

    return ComputePolicy.from_env().describe()


def store_root() -> "str | None":
    """The configured artifact-store address, or ``None`` when unset."""
    root = os.environ.get(STORE_ENV_VAR, "").strip()
    return root or None


def artifact_store(root: "str | None" = None):
    """The harness-wide :class:`repro.store.ArtifactStore`, if configured.

    ``root`` overrides the environment (a ``--store`` CLI flag); with
    neither set, returns ``None`` and the harness recomputes everything —
    the historical behaviour. ``REPRO_STORE`` takes a store *address*:
    a directory path (``dir:/path`` or bare — created if missing), or
    ``mem:name`` for an in-process store. Pointing it at a directory
    gives every experiment checkpoint/resume for free: each completed
    Gram matrix is persisted under its content key, and a killed run
    restarts from the last completed one.
    """
    root = root if root is not None else store_root()
    if not root:
        return None
    from repro.store import ArtifactStore

    return ArtifactStore(root)


def execution_context(store_root: "str | None" = None):
    """The harness-wide :class:`~repro.api.ExecutionContext`.

    Resolved from the ``REPRO_*`` environment; ``store_root`` (a
    ``--store`` CLI flag) overrides the ``REPRO_STORE`` store. This is
    the one place the experiment runners turn environment into context,
    so every table/figure records the same execution policy.
    """
    from repro.api import ExecutionContext

    ctx = ExecutionContext.from_env()
    if store_root:
        from repro.store import ArtifactStore

        ctx = ctx.replace(store=ArtifactStore(store_root))
    return ctx


@dataclass(frozen=True)
class DatasetScale:
    """How much of a dataset the scaled harness uses."""

    scale: float  # fraction of the paper's graph count
    size_scale: float = 1.0  # multiplier on vertex counts
    haqjsk_prototypes: int = 32  # |P^{1,k}| at this scale


#: Scaled-mode dataset settings (chosen so the full Table IV regenerates in
#: minutes on a laptop while every dataset keeps >= 2 graphs per class).
SCALED: dict = {
    "MUTAG": DatasetScale(0.50, 1.0, 32),
    "PPIs": DatasetScale(0.25, 0.6, 48),
    "CATH2": DatasetScale(0.15, 0.30, 48),
    "PTC": DatasetScale(0.30, 1.0, 32),
    "GatorBait": DatasetScale(1.0, 0.25, 48),
    "BAR31": DatasetScale(0.30, 0.55, 32),
    "BSPHERE31": DatasetScale(0.30, 0.55, 32),
    "GEOD31": DatasetScale(0.30, 0.80, 32),
    "IMDB-B": DatasetScale(0.06, 1.0, 32),
    "IMDB-M": DatasetScale(0.04, 1.0, 24),
    "RED-B": DatasetScale(0.03, 0.15, 40),
    "COLLAB": DatasetScale(0.012, 0.75, 40),
}

#: Paper-scale settings (Table IV protocol: H=5 levels, |P^1|=256).
FULL: dict = {
    name: DatasetScale(1.0, 1.0, 256) for name in SCALED
}


def dataset_scale(name: str) -> DatasetScale:
    """The active scale for ``name`` under the current mode."""
    table = FULL if full_scale() else SCALED
    return table[name]


def haqjsk_levels() -> int:
    """Hierarchy depth H (paper setting: 5, kept at both scales — the
    higher levels are tiny, so the extra cost is negligible)."""
    return 5


def cv_repeats() -> int:
    """Repetitions of the 10-fold CV (paper: 10; scaled mode: 3)."""
    return 10 if full_scale() else 3


#: Table IV kernel roster (rows of the paper's table, in order).
TABLE4_KERNELS = (
    "HAQJSK(A)",
    "HAQJSK(D)",
    "QJSK",
    "ASK",
    "JTQK",
    "GCGK",
    "WLSK",
    "CORE WL",
    "SPGK",
    "CORE SP",
    "PMGK",
    "SPEGK",
)

#: Table IV dataset columns, in paper order.
TABLE4_DATASETS = (
    "MUTAG",
    "PPIs",
    "CATH2",
    "PTC",
    "GatorBait",
    "BAR31",
    "BSPHERE31",
    "GEOD31",
    "IMDB-B",
    "IMDB-M",
    "RED-B",
    "COLLAB",
)

#: Table V roster: the two HAQJSK kernels vs the deep baselines.
TABLE5_MODELS = ("HAQJSK(A)", "HAQJSK(D)", "DGCNN", "PSGCNN", "DCNN", "DGK", "AWE")
TABLE5_DATASETS = ("MUTAG", "PTC", "IMDB-B", "IMDB-M", "RED-B", "COLLAB")
