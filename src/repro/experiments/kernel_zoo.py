"""Factory producing every Table IV kernel with scale-appropriate settings.

One place decides hyperparameters per kernel per mode, so the benchmarks,
the CLI and the ablations construct identical kernels.
"""

from __future__ import annotations

from repro.errors import KernelError
from repro.experiments.config import full_scale, gram_engine, haqjsk_levels
from repro.kernels import (
    AlignedSubtreeKernel,
    GraphKernel,
    GraphletKernel,
    HAQJSKAttributedA,
    HAQJSKAttributedD,
    HAQJSKKernelA,
    HAQJSKKernelD,
    JensenTsallisQKernel,
    PyramidMatchKernel,
    QJSKUnaligned,
    RenyiEntropyKernel,
    ShortestPathKernel,
    WeisfeilerLehmanKernel,
    core_sp_kernel,
    core_wl_kernel,
)


def make_kernel(
    name: str,
    *,
    n_prototypes: int = 32,
    seed: int = 0,
    engine: "str | None" = None,
) -> GraphKernel:
    """Build the named Table IV kernel.

    ``n_prototypes`` parameterises only the HAQJSK kernels (level-1
    prototype count; the paper uses 256 at full scale). ``engine``
    selects the Gram-computation backend (see :mod:`repro.engine`) and is
    stamped onto the kernel as its sticky default; ``None`` takes the
    harness-wide :func:`repro.experiments.config.gram_engine` setting so
    benchmarks, CLI and ablations all run the same backend.
    """
    kernel = _build_kernel(name, n_prototypes=n_prototypes, seed=seed)
    kernel.engine = engine if engine is not None else gram_engine()
    return kernel


def _build_kernel(name: str, *, n_prototypes: int, seed: int) -> GraphKernel:
    full = full_scale()
    wl_iterations = 10 if full else 4
    db_layers = 10 if full else 6
    if name == "HAQJSK(A)":
        return HAQJSKKernelA(
            n_prototypes=n_prototypes,
            n_levels=haqjsk_levels(),
            max_layers=db_layers,
            seed=seed,
        )
    if name == "HAQJSK(D)":
        return HAQJSKKernelD(
            n_prototypes=n_prototypes,
            n_levels=haqjsk_levels(),
            max_layers=db_layers,
            seed=seed,
        )
    if name == "HAQJSK-L(A)":
        return HAQJSKAttributedA(
            n_prototypes=n_prototypes,
            n_levels=haqjsk_levels(),
            max_layers=db_layers,
            seed=seed,
        )
    if name == "HAQJSK-L(D)":
        return HAQJSKAttributedD(
            n_prototypes=n_prototypes,
            n_levels=haqjsk_levels(),
            max_layers=db_layers,
            seed=seed,
        )
    if name == "QJSK":
        return QJSKUnaligned()
    if name == "ASK":
        return AlignedSubtreeKernel(
            n_iterations=wl_iterations, max_layers=db_layers
        )
    if name == "JTQK":
        return JensenTsallisQKernel(q=2.0, n_iterations=wl_iterations)
    if name == "GCGK":
        return GraphletKernel(4, n_samples=300 if not full else 1000, seed=seed)
    if name == "WLSK":
        return WeisfeilerLehmanKernel(wl_iterations)
    if name == "CORE WL":
        return core_wl_kernel(wl_iterations)
    if name == "SPGK":
        return ShortestPathKernel()
    if name == "CORE SP":
        return core_sp_kernel()
    if name == "PMGK":
        return PyramidMatchKernel()
    if name == "SPEGK":
        return RenyiEntropyKernel(n_layers=db_layers)
    raise KernelError(f"unknown Table IV kernel {name!r}")


#: Kernels whose Gram matrices are not PSD by construction and get the
#: eigenvalue-clipping repair before the SVM (paper Section II-D discusses
#: why QJSK/ASK/SPEGK are indefinite).
INDEFINITE_KERNELS = frozenset({"QJSK", "ASK", "SPEGK"})
