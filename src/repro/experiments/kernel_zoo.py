"""Legacy alias of the kernel registry (kept for the experiment layer).

The string-addressable kernel factory was promoted out of the
experiments layer into :mod:`repro.kernels.registry` — kernels register
themselves with ``@register_kernel`` in their own modules, and
:func:`repro.kernels.make` (or a :class:`~repro.kernels.KernelSpec`)
builds them. This module remains as a thin delegate so historical
imports (``from repro.experiments.kernel_zoo import make_kernel``) keep
working; new code should use the registry directly.
"""

from __future__ import annotations

from repro.kernels import GraphKernel
from repro.kernels.registry import lenient_spec


def make_kernel(
    name: str,
    *,
    n_prototypes: int = 32,
    seed: int = 0,
    engine: "str | None" = None,
) -> GraphKernel:
    """Build the named Table IV kernel (legacy registry front).

    Delegates to the kernel registry; parameters the named kernel does
    not accept are silently dropped (the historical contract — every
    caller passed ``n_prototypes``/``seed`` regardless of the kernel).
    ``engine`` is stamped onto the kernel as its sticky default;
    ``None`` takes the harness-wide
    :func:`repro.experiments.config.gram_engine` setting. New code
    should pass an :class:`~repro.api.ExecutionContext` instead of
    relying on sticky engines.
    """
    from repro.experiments.config import gram_engine

    kernel = lenient_spec(name, n_prototypes=n_prototypes, seed=seed).make()
    kernel.engine = engine if engine is not None else gram_engine()
    return kernel


#: Kernels whose Gram matrices are not PSD by construction and get the
#: eigenvalue-clipping repair before the SVM (paper Section II-D discusses
#: why QJSK/ASK/SPEGK are indefinite).
INDEFINITE_KERNELS = frozenset({"QJSK", "ASK", "SPEGK"})
