"""Table IV — classification accuracy of the kernels under 10-fold CV.

For every (kernel, dataset) cell: build the dataset at the configured
scale, compute the normalised Gram matrix, repair indefinite baselines to
PSD, run the repeated stratified 10-fold C-SVM protocol, and report
``mean ± standard error`` exactly as the paper does.

The sweep itself is declared as a campaign (:mod:`repro.campaign`):
:func:`build_table4_campaign` emits, per cell, a Gram node and a CV node
keyed by kernel fingerprint + dataset digest + the value-relevant
context record, so ``python -m repro.campaign run table4`` can be killed
and resumed with only the unfinished cells recomputing. This module
keeps only the per-node executors and the thin row formatting.

Paper accuracies are included for side-by-side comparison; the *shape*
(who wins where) is the reproduction target, not the absolute numbers —
our datasets are synthetic surrogates (DESIGN.md §2).
"""

from __future__ import annotations

import time

from repro.campaign import (
    Campaign,
    CampaignNode,
    CampaignPlan,
    node_key,
    register_campaign,
    register_executor,
)
from repro.datasets import load_dataset
from repro.experiments.config import (
    TABLE4_DATASETS,
    TABLE4_KERNELS,
    cv_repeats,
    dataset_scale,
)
from repro.experiments.kernel_zoo import INDEFINITE_KERNELS
from repro.experiments.reporting import ReportOutput, format_table
from repro.ml import GramConditioner, cross_validate_kernel
from repro.utils.logging import get_logger

_LOGGER = get_logger("experiments.table4")

#: Paper Table IV (mean accuracy only), for the comparison column.
PAPER_TABLE4 = {
    "HAQJSK(A)": {"MUTAG": 85.83, "PPIs": 89.71, "CATH2": 83.47, "PTC": 62.35,
                  "GatorBait": 20.00, "BAR31": 68.00, "BSPHERE31": 58.40,
                  "GEOD31": 45.26, "IMDB-B": 73.50, "IMDB-M": 50.08,
                  "RED-B": 90.93, "COLLAB": 79.20},
    "HAQJSK(D)": {"MUTAG": 86.33, "PPIs": 86.28, "CATH2": 87.89, "PTC": 59.05,
                  "GatorBait": 22.80, "BAR31": 71.70, "BSPHERE31": 61.60,
                  "GEOD31": 47.53, "IMDB-B": 72.57, "IMDB-M": 49.30,
                  "RED-B": 89.50, "COLLAB": 78.82},
    "QJSK": {"MUTAG": 82.72, "PPIs": 65.61, "CATH2": 71.11, "PTC": 56.70,
             "GatorBait": 9.00, "BAR31": 30.80, "BSPHERE31": 24.80,
             "GEOD31": 23.73, "IMDB-B": 62.10, "IMDB-M": 43.24},
    "ASK": {"MUTAG": 87.50, "PPIs": 80.14, "CATH2": 78.52, "PTC": 56.22,
            "GatorBait": 7.50, "BAR31": 73.10, "BSPHERE31": 60.30,
            "GEOD31": 46.21, "IMDB-B": 63.57, "IMDB-M": 42.81},
    "JTQK": {"MUTAG": 85.50, "PPIs": 88.47, "CATH2": 68.70, "PTC": 58.50,
             "GatorBait": 11.40, "BAR31": 60.56, "BSPHERE31": 46.93,
             "GEOD31": 40.10, "IMDB-B": 72.45, "IMDB-M": 50.33,
             "RED-B": 77.60, "COLLAB": 76.85},
    "GCGK": {"MUTAG": 81.66, "PPIs": 46.61, "CATH2": 73.68, "PTC": 52.26,
             "GatorBait": 8.40, "BAR31": 22.96, "BSPHERE31": 17.10,
             "GEOD31": 15.30, "IMDB-B": 65.87, "IMDB-M": 45.42, "RED-B": 77.34},
    "WLSK": {"MUTAG": 82.88, "PPIs": 88.09, "CATH2": 67.36, "PTC": 58.26,
             "GatorBait": 10.10, "BAR31": 58.53, "BSPHERE31": 42.10,
             "GEOD31": 38.20, "IMDB-B": 71.88, "IMDB-M": 49.50,
             "RED-B": 76.56, "COLLAB": 77.39},
    "CORE WL": {"MUTAG": 87.47, "PTC": 59.43, "IMDB-B": 74.02, "IMDB-M": 51.35,
                "RED-B": 78.02},
    "SPGK": {"MUTAG": 83.38, "PPIs": 59.04, "CATH2": 81.89, "PTC": 55.52,
             "GatorBait": 9.00, "BAR31": 55.73, "BSPHERE31": 48.20,
             "GEOD31": 38.40, "IMDB-B": 71.26, "IMDB-M": 51.33,
             "RED-B": 84.20, "COLLAB": 58.80},
    "CORE SP": {"MUTAG": 88.29, "PTC": 59.06, "IMDB-B": 72.62, "IMDB-M": 49.43,
                "RED-B": 90.84},
    "PMGK": {"MUTAG": 86.67, "PTC": 60.22, "IMDB-B": 68.53, "IMDB-M": 45.75,
             "RED-B": 82.70},
    "SPEGK": {"MUTAG": 86.35, "PPIs": 84.13, "CATH2": 83.58, "PTC": 56.79,
              "GatorBait": 14.40, "BAR31": 70.08, "BSPHERE31": 57.36,
              "GEOD31": 43.57},
}


def cell_kernel_spec(kernel_name: str, *, seed: int = 0, n_prototypes: int = 32):
    """The declarative :class:`~repro.kernels.KernelSpec` of one cell.

    Parameters the named kernel does not accept are dropped (the old
    zoo's leniency), and the spec is *resolved* — scale-aware defaults
    pinned — so the record persisted in the report rebuilds the
    identical kernel in any later environment.
    """
    from repro.kernels.registry import lenient_spec

    return lenient_spec(
        kernel_name, n_prototypes=n_prototypes, seed=seed
    ).resolved()


def _cell_dataset(dataset_name: str, seed: int):
    """The dataset one cell evaluates on, at the configured scale."""
    scale_cfg = dataset_scale(dataset_name)
    dataset = load_dataset(
        dataset_name,
        scale=scale_cfg.scale,
        size_scale=scale_cfg.size_scale,
        seed=seed,
    )
    return scale_cfg, dataset


def evaluate_cell(
    kernel_name: str,
    dataset_name: str,
    *,
    seed: int = 0,
    n_repeats: "int | None" = None,
    store=None,
    ctx=None,
    dataset_digest: "str | None" = None,
) -> dict:
    """One Table IV cell: accuracy of ``kernel_name`` on ``dataset_name``.

    ``ctx`` (an :class:`~repro.api.ExecutionContext`; ``store=`` is the
    legacy spelling carrying just the store field) selects the engine
    and persistence. With a store, the Gram matrix — the cell's dominant
    cost — is fetched by content key and only computed (then persisted)
    on a miss. The miss computation itself runs as a tile-checkpointed
    execution plan: every finished tile commits to the store before the
    next is computed, so a sweep killed *mid-Gram* resumes at the first
    unfinished tile, not from the cell boundary. ``dataset_digest`` is
    the precomputed collection digest — campaign builders hash each
    dataset once and thread it through every cell of the sweep.
    """
    from repro.api import ExecutionContext

    if ctx is None:
        ctx = ExecutionContext(store=store)
    elif store is not None:
        ctx = ctx.replace(store=store)
    scale_cfg, dataset = _cell_dataset(dataset_name, seed)
    spec = cell_kernel_spec(
        kernel_name, seed=seed, n_prototypes=scale_cfg.haqjsk_prototypes
    )
    kernel = spec.make()
    ensure_psd = kernel_name in INDEFINITE_KERNELS
    from repro.store import store_backed_gram

    # One protocol for hit / tile-checkpointed miss / dead-tile cleanup:
    # store_backed_gram owns it, the cell just reads the accounting.
    stats: dict = {}
    started = time.perf_counter()
    gram = store_backed_gram(
        kernel,
        dataset.graphs,
        ctx.store,
        normalize=True,
        ensure_psd=ensure_psd,
        tile_checkpoint=ctx.tile_checkpoint,
        stats=stats,
        ctx=ctx.replace(store=None),
        digest=dataset_digest,
    )
    gram_seconds = time.perf_counter() - started
    gram_cached = stats["cached"]
    tiles_restored = stats["tiles_restored"]
    tiles_computed = stats["tiles_computed"]
    # Fit/transform on the full collection Gram: transductive by design
    # (the paper's protocol), but through the same GramConditioner the
    # serving path applies inductively, so a bundle trained on this cell's
    # training fold would see the identical conditioned matrix.
    result = cross_validate_kernel(
        GramConditioner().fit_transform(gram),
        dataset.targets,
        n_folds=10,
        n_repeats=n_repeats or cv_repeats(),
        seed=seed + 1,
    )
    _LOGGER.info(
        "%s / %s: %s (gram %.1fs%s)",
        kernel_name,
        dataset_name,
        result,
        gram_seconds,
        ", from store" if gram_cached else "",
    )
    from repro.engine import default_engine_name

    record = ctx.to_record()
    return {
        "kernel": kernel_name,
        "dataset": dataset_name,
        "accuracy": result.mean_accuracy * 100.0,
        "stderr": result.standard_error * 100.0,
        "paper": PAPER_TABLE4.get(kernel_name, {}).get(dataset_name),
        "gram_seconds": gram_seconds,
        "gram_engine": record["engine"] or default_engine_name(),
        "gram_cached": gram_cached,
        "gram_tiles_restored": tiles_restored,
        "gram_tiles_computed": tiles_computed,
        "n_graphs": len(dataset),
        # Round-trippable provenance: KernelSpec.from_dict /
        # ExecutionContext.from_record reconstruct the cell's inputs.
        "kernel_spec": spec.to_dict(),
        "context": record,
    }


# ---------------------------------------------------------------------- #
# Campaign declaration
# ---------------------------------------------------------------------- #


@register_campaign("table4")
def build_table4_campaign(
    *,
    kernels=None,
    datasets=None,
    seed: int = 0,
    n_repeats: "int | None" = None,
    ctx=None,
) -> CampaignPlan:
    """Declare the Table IV sweep as a campaign DAG.

    Per cell: a ``table4.gram`` node (the dominant cost, persisted to the
    context's store — emitted only when a store is configured) feeding a
    ``table4.cell`` node (conditioning + CV + row values). Each dataset
    is loaded and digested exactly once here; the digest threads through
    every node key and payload of its column, so the cells never re-hash
    the collection.
    """
    from repro.graphs.hashing import collection_digest

    repeats = n_repeats or cv_repeats()
    has_store = ctx is not None and getattr(ctx, "store", None) is not None
    nodes = []
    for dataset_name in datasets or TABLE4_DATASETS:
        scale_cfg, dataset = _cell_dataset(dataset_name, seed)
        digest = collection_digest(dataset.graphs)
        for kernel_name in kernels or TABLE4_KERNELS:
            spec = cell_kernel_spec(
                kernel_name, seed=seed, n_prototypes=scale_cfg.haqjsk_prototypes
            )
            fingerprint = spec.fingerprint()
            ensure_psd = kernel_name in INDEFINITE_KERNELS
            payload = {
                "kernel": kernel_name,
                "dataset": dataset_name,
                "seed": seed,
                "repeats": repeats,
                "digest": digest,
            }
            deps = ()
            if has_store:
                gram_name = f"gram:{kernel_name}:{dataset_name}"
                nodes.append(
                    CampaignNode(
                        name=gram_name,
                        kind="table4.gram",
                        key=node_key(
                            "table4.gram",
                            fingerprint=fingerprint,
                            digest=digest,
                            ctx=ctx,
                            params={"normalize": True, "ensure_psd": ensure_psd},
                        ),
                        payload=payload,
                        priority=1,
                    )
                )
                deps = (gram_name,)
            nodes.append(
                CampaignNode(
                    name=f"cell:{kernel_name}:{dataset_name}",
                    kind="table4.cell",
                    key=node_key(
                        "table4.cell",
                        fingerprint=fingerprint,
                        digest=digest,
                        ctx=ctx,
                        params={"seed": seed, "repeats": repeats},
                    ),
                    payload=payload,
                    deps=deps,
                )
            )
    return CampaignPlan(Campaign("table4", nodes), render_table4)


@register_executor("table4.gram")
def _execute_gram_node(payload: dict, ctx) -> dict:
    """Compute and persist one cell's Gram matrix (the heavy stage)."""
    from repro.api import ExecutionContext
    from repro.store import store_backed_gram

    if ctx is None:
        ctx = ExecutionContext()
    scale_cfg, dataset = _cell_dataset(payload["dataset"], payload["seed"])
    spec = cell_kernel_spec(
        payload["kernel"], seed=payload["seed"],
        n_prototypes=scale_cfg.haqjsk_prototypes,
    )
    stats: dict = {}
    started = time.perf_counter()
    store_backed_gram(
        spec.make(),
        dataset.graphs,
        ctx.store,
        normalize=True,
        ensure_psd=payload["kernel"] in INDEFINITE_KERNELS,
        tile_checkpoint=ctx.tile_checkpoint,
        stats=stats,
        ctx=ctx.replace(store=None),
        digest=payload.get("digest"),
    )
    stats["seconds"] = time.perf_counter() - started
    return stats


@register_executor("table4.cell")
def _execute_cell_node(payload: dict, ctx) -> dict:
    """Conditioning + CV for one cell (its Gram node already persisted)."""
    return evaluate_cell(
        payload["kernel"],
        payload["dataset"],
        seed=payload["seed"],
        n_repeats=payload.get("repeats"),
        ctx=ctx,
        dataset_digest=payload.get("digest"),
    )


def run_table4(
    *,
    kernels=None,
    datasets=None,
    seed: int = 0,
    n_repeats: "int | None" = None,
    store=None,
    ctx=None,
) -> "list[dict]":
    """All requested Table IV cells (defaults: the full paper grid).

    Declares the sweep as a campaign and drives it through the runner —
    with a store-backed context the campaign database rides the store
    directory, so a killed call resumes where it stopped; without one
    the scheduling state is ephemeral. A failed cell raises with the
    stored executor traceback.
    """
    from repro.api import ExecutionContext
    from repro.campaign import run_campaign_plan
    from repro.errors import CampaignError

    if ctx is None:
        ctx = ExecutionContext(store=store)
    elif store is not None:
        ctx = ctx.replace(store=store)
    plan = build_table4_campaign(
        kernels=kernels, datasets=datasets, seed=seed, n_repeats=n_repeats,
        ctx=ctx,
    )
    run = run_campaign_plan(plan, ctx=ctx)
    if run.failed:
        first = run.failed[0]
        raise CampaignError(
            f"table4 campaign: {len(run.failed)} nodes failed; first "
            f"{first.name}:\n{first.error}"
        )
    return [
        result for name, result in run.results.items()
        if name.startswith("cell:")
    ]


def cells_to_rows(cells: "list[dict]") -> "list[dict]":
    """Pivot cells into paper-shaped rows (kernel x dataset)."""
    datasets = []
    for cell in cells:
        if cell["dataset"] not in datasets:
            datasets.append(cell["dataset"])
    rows: dict = {}
    for cell in cells:
        row = rows.setdefault(cell["kernel"], {"Kernel": cell["kernel"]})
        row[cell["dataset"]] = f"{cell['accuracy']:.2f} ± {cell['stderr']:.2f}"
        if cell["paper"] is not None:
            row[cell["dataset"]] += f" (paper {cell['paper']:.2f})"
    ordered = [rows[k] for k in rows]
    return ordered


def render_table4(results: "dict[str, dict]") -> str:
    """Render the paper-shaped table from campaign results.

    Pure function of the recorded cell *values* (accuracy ± stderr), so
    an interrupted-and-resumed campaign renders byte-identical output to
    an uninterrupted one — scheduling accounting never enters the table.
    """
    cells = [
        result for name, result in results.items()
        if name.startswith("cell:")
    ]
    return format_table(cells_to_rows(cells))


def main(argv=None) -> str:  # pragma: no cover - CLI glue
    import argparse

    parser = argparse.ArgumentParser(description="Regenerate Table IV")
    parser.add_argument("--datasets", nargs="*", default=None)
    parser.add_argument("--kernels", nargs="*", default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--store",
        default=None,
        help="artifact-store directory for checkpoint/resume "
        "(default: $REPRO_STORE; unset = recompute everything)",
    )
    args = parser.parse_args(argv)
    from repro.campaign import run_campaign_plan
    from repro.experiments.config import execution_context

    ctx = execution_context(args.store)
    plan = build_table4_campaign(
        kernels=args.kernels, datasets=args.datasets, seed=args.seed,
        n_repeats=args.repeats, ctx=ctx,
    )
    run = run_campaign_plan(plan, ctx=ctx)
    table = run.report()
    if ctx.store is not None:
        # Single "\n": the line must start with "_" so report diffs that
        # strip italic metadata (grep -v '^_') see identical tables with
        # and without a store.
        table += f"\n_{run.summary()}_"
    output = ReportOutput(
        table, failed=[(state.name, state.error) for state in run.failed]
    )
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
