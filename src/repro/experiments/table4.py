"""Table IV — classification accuracy of the kernels under 10-fold CV.

For every (kernel, dataset) cell: build the dataset at the configured
scale, compute the normalised Gram matrix, repair indefinite baselines to
PSD, run the repeated stratified 10-fold C-SVM protocol, and report
``mean ± standard error`` exactly as the paper does.

Paper accuracies are included for side-by-side comparison; the *shape*
(who wins where) is the reproduction target, not the absolute numbers —
our datasets are synthetic surrogates (DESIGN.md §2).
"""

from __future__ import annotations

import time

from repro.datasets import load_dataset
from repro.experiments.config import (
    TABLE4_DATASETS,
    TABLE4_KERNELS,
    cv_repeats,
    dataset_scale,
)
from repro.experiments.kernel_zoo import INDEFINITE_KERNELS
from repro.experiments.reporting import format_table
from repro.ml import GramConditioner, cross_validate_kernel
from repro.utils.logging import get_logger

_LOGGER = get_logger("experiments.table4")

#: Paper Table IV (mean accuracy only), for the comparison column.
PAPER_TABLE4 = {
    "HAQJSK(A)": {"MUTAG": 85.83, "PPIs": 89.71, "CATH2": 83.47, "PTC": 62.35,
                  "GatorBait": 20.00, "BAR31": 68.00, "BSPHERE31": 58.40,
                  "GEOD31": 45.26, "IMDB-B": 73.50, "IMDB-M": 50.08,
                  "RED-B": 90.93, "COLLAB": 79.20},
    "HAQJSK(D)": {"MUTAG": 86.33, "PPIs": 86.28, "CATH2": 87.89, "PTC": 59.05,
                  "GatorBait": 22.80, "BAR31": 71.70, "BSPHERE31": 61.60,
                  "GEOD31": 47.53, "IMDB-B": 72.57, "IMDB-M": 49.30,
                  "RED-B": 89.50, "COLLAB": 78.82},
    "QJSK": {"MUTAG": 82.72, "PPIs": 65.61, "CATH2": 71.11, "PTC": 56.70,
             "GatorBait": 9.00, "BAR31": 30.80, "BSPHERE31": 24.80,
             "GEOD31": 23.73, "IMDB-B": 62.10, "IMDB-M": 43.24},
    "ASK": {"MUTAG": 87.50, "PPIs": 80.14, "CATH2": 78.52, "PTC": 56.22,
            "GatorBait": 7.50, "BAR31": 73.10, "BSPHERE31": 60.30,
            "GEOD31": 46.21, "IMDB-B": 63.57, "IMDB-M": 42.81},
    "JTQK": {"MUTAG": 85.50, "PPIs": 88.47, "CATH2": 68.70, "PTC": 58.50,
             "GatorBait": 11.40, "BAR31": 60.56, "BSPHERE31": 46.93,
             "GEOD31": 40.10, "IMDB-B": 72.45, "IMDB-M": 50.33,
             "RED-B": 77.60, "COLLAB": 76.85},
    "GCGK": {"MUTAG": 81.66, "PPIs": 46.61, "CATH2": 73.68, "PTC": 52.26,
             "GatorBait": 8.40, "BAR31": 22.96, "BSPHERE31": 17.10,
             "GEOD31": 15.30, "IMDB-B": 65.87, "IMDB-M": 45.42, "RED-B": 77.34},
    "WLSK": {"MUTAG": 82.88, "PPIs": 88.09, "CATH2": 67.36, "PTC": 58.26,
             "GatorBait": 10.10, "BAR31": 58.53, "BSPHERE31": 42.10,
             "GEOD31": 38.20, "IMDB-B": 71.88, "IMDB-M": 49.50,
             "RED-B": 76.56, "COLLAB": 77.39},
    "CORE WL": {"MUTAG": 87.47, "PTC": 59.43, "IMDB-B": 74.02, "IMDB-M": 51.35,
                "RED-B": 78.02},
    "SPGK": {"MUTAG": 83.38, "PPIs": 59.04, "CATH2": 81.89, "PTC": 55.52,
             "GatorBait": 9.00, "BAR31": 55.73, "BSPHERE31": 48.20,
             "GEOD31": 38.40, "IMDB-B": 71.26, "IMDB-M": 51.33,
             "RED-B": 84.20, "COLLAB": 58.80},
    "CORE SP": {"MUTAG": 88.29, "PTC": 59.06, "IMDB-B": 72.62, "IMDB-M": 49.43,
                "RED-B": 90.84},
    "PMGK": {"MUTAG": 86.67, "PTC": 60.22, "IMDB-B": 68.53, "IMDB-M": 45.75,
             "RED-B": 82.70},
    "SPEGK": {"MUTAG": 86.35, "PPIs": 84.13, "CATH2": 83.58, "PTC": 56.79,
              "GatorBait": 14.40, "BAR31": 70.08, "BSPHERE31": 57.36,
              "GEOD31": 43.57},
}


def cell_kernel_spec(kernel_name: str, *, seed: int = 0, n_prototypes: int = 32):
    """The declarative :class:`~repro.kernels.KernelSpec` of one cell.

    Parameters the named kernel does not accept are dropped (the old
    zoo's leniency), and the spec is *resolved* — scale-aware defaults
    pinned — so the record persisted in the report rebuilds the
    identical kernel in any later environment.
    """
    from repro.kernels.registry import lenient_spec

    return lenient_spec(
        kernel_name, n_prototypes=n_prototypes, seed=seed
    ).resolved()


def evaluate_cell(
    kernel_name: str,
    dataset_name: str,
    *,
    seed: int = 0,
    n_repeats: "int | None" = None,
    store=None,
    ctx=None,
) -> dict:
    """One Table IV cell: accuracy of ``kernel_name`` on ``dataset_name``.

    ``ctx`` (an :class:`~repro.api.ExecutionContext`; ``store=`` is the
    legacy spelling carrying just the store field) selects the engine
    and persistence. With a store, the Gram matrix — the cell's dominant
    cost — is fetched by content key and only computed (then persisted)
    on a miss. The miss computation itself runs as a tile-checkpointed
    execution plan: every finished tile commits to the store before the
    next is computed, so a sweep killed *mid-Gram* resumes at the first
    unfinished tile, not from the cell boundary (PR 2's whole-Gram
    granularity). Completed cells still reload in milliseconds and
    produce the identical report (the CV protocol is deterministic given
    the seed); the per-cell tile counters land in the report footer,
    and each cell records its resolved kernel spec + context.
    """
    from repro.api import ExecutionContext

    if ctx is None:
        ctx = ExecutionContext(store=store)
    elif store is not None:
        ctx = ctx.replace(store=store)
    scale_cfg = dataset_scale(dataset_name)
    dataset = load_dataset(
        dataset_name,
        scale=scale_cfg.scale,
        size_scale=scale_cfg.size_scale,
        seed=seed,
    )
    spec = cell_kernel_spec(
        kernel_name, seed=seed, n_prototypes=scale_cfg.haqjsk_prototypes
    )
    kernel = spec.make()
    ensure_psd = kernel_name in INDEFINITE_KERNELS
    from repro.store import store_backed_gram

    # One protocol for hit / tile-checkpointed miss / dead-tile cleanup:
    # store_backed_gram owns it, the cell just reads the accounting.
    stats: dict = {}
    started = time.perf_counter()
    gram = store_backed_gram(
        kernel,
        dataset.graphs,
        ctx.store,
        normalize=True,
        ensure_psd=ensure_psd,
        tile_checkpoint=ctx.tile_checkpoint,
        stats=stats,
        ctx=ctx.replace(store=None),
    )
    gram_seconds = time.perf_counter() - started
    gram_cached = stats["cached"]
    tiles_restored = stats["tiles_restored"]
    tiles_computed = stats["tiles_computed"]
    # Fit/transform on the full collection Gram: transductive by design
    # (the paper's protocol), but through the same GramConditioner the
    # serving path applies inductively, so a bundle trained on this cell's
    # training fold would see the identical conditioned matrix.
    result = cross_validate_kernel(
        GramConditioner().fit_transform(gram),
        dataset.targets,
        n_folds=10,
        n_repeats=n_repeats or cv_repeats(),
        seed=seed + 1,
    )
    _LOGGER.info(
        "%s / %s: %s (gram %.1fs%s)",
        kernel_name,
        dataset_name,
        result,
        gram_seconds,
        ", from store" if gram_cached else "",
    )
    from repro.engine import default_engine_name

    record = ctx.to_record()
    return {
        "kernel": kernel_name,
        "dataset": dataset_name,
        "accuracy": result.mean_accuracy * 100.0,
        "stderr": result.standard_error * 100.0,
        "paper": PAPER_TABLE4.get(kernel_name, {}).get(dataset_name),
        "gram_seconds": gram_seconds,
        "gram_engine": record["engine"] or default_engine_name(),
        "gram_cached": gram_cached,
        "gram_tiles_restored": tiles_restored,
        "gram_tiles_computed": tiles_computed,
        "n_graphs": len(dataset),
        # Round-trippable provenance: KernelSpec.from_dict /
        # ExecutionContext.from_record reconstruct the cell's inputs.
        "kernel_spec": spec.to_dict(),
        "context": record,
    }


def run_table4(
    *,
    kernels=None,
    datasets=None,
    seed: int = 0,
    n_repeats: "int | None" = None,
    store=None,
    ctx=None,
) -> "list[dict]":
    """All requested Table IV cells (defaults: the full paper grid)."""
    cells = []
    for dataset_name in datasets or TABLE4_DATASETS:
        for kernel_name in kernels or TABLE4_KERNELS:
            cells.append(
                evaluate_cell(
                    kernel_name,
                    dataset_name,
                    seed=seed,
                    n_repeats=n_repeats,
                    store=store,
                    ctx=ctx,
                )
            )
    return cells


def cells_to_rows(cells: "list[dict]") -> "list[dict]":
    """Pivot cells into paper-shaped rows (kernel x dataset)."""
    datasets = []
    for cell in cells:
        if cell["dataset"] not in datasets:
            datasets.append(cell["dataset"])
    rows: dict = {}
    for cell in cells:
        row = rows.setdefault(cell["kernel"], {"Kernel": cell["kernel"]})
        row[cell["dataset"]] = f"{cell['accuracy']:.2f} ± {cell['stderr']:.2f}"
        if cell["paper"] is not None:
            row[cell["dataset"]] += f" (paper {cell['paper']:.2f})"
    ordered = [rows[k] for k in rows]
    return ordered


def main(argv=None) -> str:  # pragma: no cover - CLI glue
    import argparse

    parser = argparse.ArgumentParser(description="Regenerate Table IV")
    parser.add_argument("--datasets", nargs="*", default=None)
    parser.add_argument("--kernels", nargs="*", default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--store",
        default=None,
        help="artifact-store directory for checkpoint/resume "
        "(default: $REPRO_STORE; unset = recompute everything)",
    )
    args = parser.parse_args(argv)
    from repro.experiments.config import execution_context

    ctx = execution_context(args.store)
    cells = run_table4(
        kernels=args.kernels, datasets=args.datasets, seed=args.seed,
        n_repeats=args.repeats, ctx=ctx,
    )
    table = format_table(cells_to_rows(cells))
    if ctx.store is not None:
        # Tile-resume accounting for the report footer (italic line, so
        # report diffs that strip metadata ignore it): how much of the
        # sweep's pair work came back from checkpointed tiles.
        cached = sum(1 for cell in cells if cell["gram_cached"])
        restored = sum(cell["gram_tiles_restored"] for cell in cells)
        computed = sum(cell["gram_tiles_computed"] for cell in cells)
        # Single "\n": the line must start with "_" so report diffs that
        # strip italic metadata (grep -v '^_') see identical tables with
        # and without a store.
        table += (
            f"\n_tile resume: {cached}/{len(cells)} Grams cached whole, "
            f"{restored} tiles restored, {computed} tiles computed_"
        )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
