"""Table V — HAQJSK kernels vs graph deep-learning baselines.

The deep models (DGCNN, PSGCNN, DCNN) are trained per CV fold with Adam on
the numpy autograd; the embedding methods (DGK, AWE) produce Gram matrices
and reuse the kernel CV protocol, exactly as their original papers do.

Like Table IV, the sweep is declared as a campaign
(:func:`build_table5_campaign`): one ``table5.cell`` node per (model,
dataset), keyed by the model's configuration, the dataset digest and the
value-relevant context record, so a killed ``python -m repro.campaign
run table5`` resumes with only the unfinished cells recomputing.
"""

from __future__ import annotations

import numpy as np

from repro.campaign import (
    Campaign,
    CampaignNode,
    CampaignPlan,
    node_key,
    register_campaign,
    register_executor,
)
from repro.datasets import load_dataset
from repro.experiments.config import (
    TABLE5_DATASETS,
    TABLE5_MODELS,
    cv_repeats,
    dataset_scale,
)
from repro.experiments.kernel_zoo import make_kernel
from repro.experiments.reporting import ReportOutput, format_table
from repro.gnn import (
    DCNN,
    DGCNN,
    PSGCNN,
    AnonymousWalkKernel,
    DeepGraphKernel,
    evaluate_model,
    train_graph_classifier,
)
from repro.ml import (
    GramConditioner,
    cross_validate_kernel,
    stratified_k_fold,
    summarize_repeats,
)
from repro.utils.logging import get_logger
from repro.utils.rng import as_rng, spawn_seed

_LOGGER = get_logger("experiments.table5")

#: Paper Table V (mean accuracy only).
PAPER_TABLE5 = {
    "HAQJSK(A)": {"MUTAG": 85.83, "PTC": 62.35, "IMDB-B": 73.50, "IMDB-M": 50.08,
                  "RED-B": 90.93, "COLLAB": 79.20},
    "HAQJSK(D)": {"MUTAG": 86.33, "PTC": 59.05, "IMDB-B": 72.51, "IMDB-M": 49.30,
                  "RED-B": 89.50, "COLLAB": 78.82},
    "DGCNN": {"MUTAG": 85.83, "PTC": 58.59, "IMDB-B": 70.03, "IMDB-M": 47.83,
              "RED-B": 76.02, "COLLAB": 73.76},
    "PSGCNN": {"MUTAG": 88.95, "PTC": 62.29, "IMDB-B": 71.00, "IMDB-M": 45.23,
               "RED-B": 86.30, "COLLAB": 72.60},
    "DCNN": {"MUTAG": 66.98, "PTC": 58.09, "IMDB-B": 49.06, "IMDB-M": 33.49,
             "COLLAB": 52.11},
    "DGK": {"MUTAG": 82.66, "PTC": 57.32, "IMDB-B": 66.96, "IMDB-M": 44.55,
            "RED-B": 78.30, "COLLAB": 73.09},
    "AWE": {"MUTAG": 87.87, "IMDB-B": 73.13, "IMDB-M": 51.58, "RED-B": 82.97,
            "COLLAB": 70.99},
}

_TRAINED_MODELS = {"DGCNN": DGCNN, "PSGCNN": PSGCNN, "DCNN": DCNN}
_EMBEDDING_KERNELS = {"DGK": DeepGraphKernel, "AWE": AnonymousWalkKernel}


def _cv_trained_model(model_name, dataset, *, n_repeats, n_epochs, seed) -> tuple:
    """Repeated 10-fold CV training a fresh model per fold."""
    model_cls = _TRAINED_MODELS[model_name]
    rng = as_rng(seed)
    max_degree = int(
        min(max(g.unweighted_degrees().max() for g in dataset.graphs), 30)
    )
    per_repeat = []
    for _ in range(n_repeats):
        folds = stratified_k_fold(dataset.targets, 10, seed=spawn_seed(rng))
        accuracies = []
        for train_idx, test_idx in folds:
            if np.unique(dataset.targets[train_idx]).size < 2:
                continue
            model = model_cls(
                dataset.n_classes, max_degree=max_degree, seed=spawn_seed(rng)
            )
            train_graph_classifier(
                model,
                [dataset.graphs[i] for i in train_idx],
                dataset.targets[train_idx],
                n_epochs=n_epochs,
                seed=spawn_seed(rng),
            )
            accuracies.append(
                evaluate_model(
                    model,
                    [dataset.graphs[i] for i in test_idx],
                    dataset.targets[test_idx],
                )
            )
        if accuracies:
            per_repeat.append(float(np.mean(accuracies)))
    summary = summarize_repeats(per_repeat, best_c=float("nan"))
    return summary.mean_accuracy, summary.standard_error


def evaluate_cell(
    model_name: str,
    dataset_name: str,
    *,
    seed: int = 0,
    n_repeats: "int | None" = None,
    n_epochs: int = 40,
    ctx=None,
) -> dict:
    """One Table V cell.

    ``ctx`` (an :class:`~repro.api.ExecutionContext`) drives the kernel
    rows' Gram computation; the trained deep models ignore it (no Gram
    stage).
    """
    scale_cfg = dataset_scale(dataset_name)
    dataset = load_dataset(
        dataset_name, scale=scale_cfg.scale, size_scale=scale_cfg.size_scale,
        seed=seed,
    )
    repeats = n_repeats or max(cv_repeats() // 3, 1)
    if model_name in _TRAINED_MODELS:
        mean, stderr = _cv_trained_model(
            model_name, dataset, n_repeats=repeats, n_epochs=n_epochs, seed=seed + 1
        )
    else:
        if model_name in _EMBEDDING_KERNELS:
            kernel = _EMBEDDING_KERNELS[model_name]()
        else:
            kernel = make_kernel(
                model_name, n_prototypes=scale_cfg.haqjsk_prototypes, seed=seed
            )
        gram = kernel.gram(dataset.graphs, normalize=True, ctx=ctx)
        result = cross_validate_kernel(
            GramConditioner().fit_transform(gram), dataset.targets, n_folds=10,
            n_repeats=n_repeats or cv_repeats(), seed=seed + 1,
        )
        mean, stderr = result.mean_accuracy, result.standard_error
    _LOGGER.info("%s / %s: %.2f ± %.2f", model_name, dataset_name, mean * 100, stderr * 100)
    return {
        "model": model_name,
        "dataset": dataset_name,
        "accuracy": mean * 100.0,
        "stderr": stderr * 100.0,
        "paper": PAPER_TABLE5.get(model_name, {}).get(dataset_name),
        "n_graphs": len(dataset),
    }


# ---------------------------------------------------------------------- #
# Campaign declaration
# ---------------------------------------------------------------------- #


@register_campaign("table5")
def build_table5_campaign(
    *,
    models=None,
    datasets=None,
    seed: int = 0,
    n_repeats: "int | None" = None,
    ctx=None,
) -> CampaignPlan:
    """Declare the Table V sweep: one ``table5.cell`` node per cell.

    Kernel rows key on the kernel's configuration fingerprint; trained /
    embedding models carry their identity in the node parameters. Each
    dataset is loaded and digested once, here.
    """
    from repro.graphs.hashing import collection_digest

    nodes = []
    for dataset_name in datasets or TABLE5_DATASETS:
        scale_cfg = dataset_scale(dataset_name)
        dataset = load_dataset(
            dataset_name, scale=scale_cfg.scale,
            size_scale=scale_cfg.size_scale, seed=seed,
        )
        digest = collection_digest(dataset.graphs)
        for model_name in models or TABLE5_MODELS:
            fingerprint = None
            if (
                model_name not in _TRAINED_MODELS
                and model_name not in _EMBEDDING_KERNELS
            ):
                fingerprint = make_kernel(
                    model_name, n_prototypes=scale_cfg.haqjsk_prototypes,
                    seed=seed,
                ).fingerprint()
            nodes.append(
                CampaignNode(
                    name=f"cell:{model_name}:{dataset_name}",
                    kind="table5.cell",
                    key=node_key(
                        "table5.cell",
                        fingerprint=fingerprint,
                        digest=digest,
                        ctx=ctx,
                        params={
                            "model": model_name,
                            "seed": seed,
                            "repeats": n_repeats,
                            "cv": cv_repeats(),
                            "epochs": 40,
                            "prototypes": scale_cfg.haqjsk_prototypes,
                        },
                    ),
                    payload={
                        "model": model_name,
                        "dataset": dataset_name,
                        "seed": seed,
                        "repeats": n_repeats,
                    },
                )
            )
    return CampaignPlan(Campaign("table5", nodes), render_table5)


@register_executor("table5.cell")
def _execute_cell_node(payload: dict, ctx) -> dict:
    return evaluate_cell(
        payload["model"],
        payload["dataset"],
        seed=payload["seed"],
        n_repeats=payload.get("repeats"),
        ctx=ctx,
    )


def run_table5(
    *, models=None, datasets=None, seed: int = 0,
    n_repeats: "int | None" = None, ctx=None,
) -> "list[dict]":
    """All requested Table V cells (defaults: the paper grid).

    Runs through the campaign runner; a failed cell raises with the
    stored executor traceback.
    """
    from repro.campaign import run_campaign_plan
    from repro.errors import CampaignError

    plan = build_table5_campaign(
        models=models, datasets=datasets, seed=seed, n_repeats=n_repeats,
        ctx=ctx,
    )
    run = run_campaign_plan(plan, ctx=ctx)
    if run.failed:
        first = run.failed[0]
        raise CampaignError(
            f"table5 campaign: {len(run.failed)} nodes failed; first "
            f"{first.name}:\n{first.error}"
        )
    return list(run.results.values())


def cells_to_rows(cells: "list[dict]") -> "list[dict]":
    """Pivot into paper-shaped rows (model x dataset)."""
    rows: dict = {}
    for cell in cells:
        row = rows.setdefault(cell["model"], {"Method": cell["model"]})
        row[cell["dataset"]] = f"{cell['accuracy']:.2f} ± {cell['stderr']:.2f}"
        if cell["paper"] is not None:
            row[cell["dataset"]] += f" (paper {cell['paper']:.2f})"
    return list(rows.values())


def render_table5(results: "dict[str, dict]") -> str:
    """Render the table from campaign results (pure value formatting)."""
    return format_table(cells_to_rows(list(results.values())))


def main(argv=None) -> str:  # pragma: no cover - CLI glue
    import argparse

    parser = argparse.ArgumentParser(description="Regenerate Table V")
    parser.add_argument("--datasets", nargs="*", default=None)
    parser.add_argument("--models", nargs="*", default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)
    from repro.campaign import run_campaign_plan
    from repro.experiments.config import execution_context

    ctx = execution_context()
    plan = build_table5_campaign(
        models=args.models, datasets=args.datasets, seed=args.seed,
        n_repeats=args.repeats, ctx=ctx,
    )
    run = run_campaign_plan(plan, ctx=ctx)
    output = ReportOutput(
        run.report(),
        failed=[(state.name, state.error) for state in run.failed],
    )
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
