"""Figure 2 — the hierarchical prototype construction, regenerated.

The paper's Fig. 2 shows 2-D vertex representations being clustered into
1-, 2- and 3-level prototypes by hierarchically applied κ-means. This
experiment reproduces the construction on real DB representations (first
two coordinates) from a small graph collection and reports, per level, the
prototype count, the cluster populations, and the within-cluster inertia —
plus an ASCII scatter of the level-1 prototypes so the hierarchy can be
eyeballed in a terminal.
"""

from __future__ import annotations

import numpy as np

from repro.alignment.depth_based import DBRepresentationExtractor
from repro.alignment.prototypes import fit_prototype_hierarchy
from repro.campaign import (
    Campaign,
    CampaignNode,
    CampaignPlan,
    node_key,
    register_campaign,
    register_executor,
)
from repro.datasets import load_dataset
from repro.experiments.reporting import ReportOutput, format_table


def run_figure2(
    *,
    n_prototypes: int = 16,
    n_levels: int = 3,
    seed: int = 0,
) -> dict:
    """Regenerate the Fig. 2 construction; returns levels + ascii plot."""
    dataset = load_dataset("MUTAG", scale=0.1, seed=seed)
    extractor = DBRepresentationExtractor(max_layers=2)
    representations = extractor.fit_transform(dataset.graphs)
    pooled = np.vstack([rep[:, :2] for rep in representations])
    hierarchy = fit_prototype_hierarchy(
        pooled, n_prototypes=n_prototypes, n_levels=n_levels, seed=seed
    )
    level_rows = []
    for level in range(1, hierarchy.n_levels + 1):
        assignments = hierarchy.assign(pooled, level)
        counts = np.bincount(assignments, minlength=hierarchy.size(level))
        centers = hierarchy.centers[level - 1]
        distances = pooled - centers[assignments]
        inertia = float(np.sum(distances**2))
        level_rows.append(
            {
                "Level h": level,
                "Prototypes |P^h|": hierarchy.size(level),
                "Occupied": int((counts > 0).sum()),
                "Largest cluster": int(counts.max()),
                "Inertia": round(inertia, 3),
            }
        )
    return {
        "n_points": pooled.shape[0],
        "levels": level_rows,
        "ascii": ascii_scatter(pooled, hierarchy.centers[0]),
        "hierarchy": hierarchy,
    }


def ascii_scatter(
    points: np.ndarray, centers: np.ndarray, *, width: int = 60, height: int = 18
) -> str:
    """Terminal scatter: ``.`` = vertex representation, ``#`` = prototype."""
    both = np.vstack([points, centers])
    low = both.min(axis=0)
    span = np.maximum(both.max(axis=0) - low, 1e-9)
    canvas = [[" "] * width for _ in range(height)]

    def place(point, mark):
        x = int((point[0] - low[0]) / span[0] * (width - 1))
        y = int((point[1] - low[1]) / span[1] * (height - 1))
        canvas[height - 1 - y][x] = mark

    for p in points:
        place(p, ".")
    for c in centers:
        place(c, "#")
    return "\n".join("".join(row) for row in canvas)


# ---------------------------------------------------------------------- #
# Campaign declaration
# ---------------------------------------------------------------------- #


@register_campaign("figure2")
def build_figure2_campaign(
    *,
    n_prototypes: int = 16,
    n_levels: int = 3,
    seed: int = 0,
    ctx=None,
) -> CampaignPlan:
    """One ``figure2.hierarchy`` node: the whole construction is one cell."""
    params = {
        "n_prototypes": int(n_prototypes),
        "n_levels": int(n_levels),
        "seed": int(seed),
    }
    node = CampaignNode(
        name="hierarchy",
        kind="figure2.hierarchy",
        key=node_key("figure2.hierarchy", ctx=ctx, params=params),
        payload=params,
    )
    return CampaignPlan(Campaign("figure2", [node]), render_figure2)


@register_executor("figure2.hierarchy")
def _execute_hierarchy_node(payload: dict, ctx) -> dict:
    result = run_figure2(
        n_prototypes=payload["n_prototypes"],
        n_levels=payload["n_levels"],
        seed=payload["seed"],
    )
    # The fitted hierarchy object is not JSON-able (and not needed for
    # the report) — the recorded result keeps only the renderable facts.
    return {key: result[key] for key in ("n_points", "levels", "ascii")}


def render_figure2(results: "dict[str, dict]") -> str:
    result = results.get("hierarchy")
    if result is None:
        return "(no results)"
    table = format_table(result["levels"])
    return (
        f"{result['n_points']} vertex representations\n\n{table}\n\n"
        f"level-1 prototypes (#) over vertex representations (.):\n"
        f"{result['ascii']}"
    )


def main(argv=None) -> str:  # pragma: no cover - CLI glue
    from repro.campaign import run_campaign_plan
    from repro.experiments.config import execution_context

    ctx = execution_context()
    plan = build_figure2_campaign(ctx=ctx)
    run = run_campaign_plan(plan, ctx=ctx)
    output = ReportOutput(
        run.report(),
        failed=[(state.name, state.error) for state in run.failed],
    )
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
