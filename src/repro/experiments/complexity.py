"""Section III-D — empirical computational-complexity check.

The paper claims overall time ``O(N^2 n^3)`` (N graphs of n vertices),
dominated by the per-pair spectral work of the QJSD. The cost decomposes
into two stages with different exponents:

* **preparation** — DB representations, prototype fitting, per-graph
  density matrices: ``O(N · n^3)`` (linear in N, cubic spectral work in n);
* **pairwise QJSD** — one mixed-state eigendecomposition per graph pair
  over the fixed-size aligned structures: ``O(N^2 · M^3)`` (quadratic in
  N; independent of n because alignment fixed the size at M prototypes).

Timing only the total hides the N² term at small N (preparation dominates
until N is in the hundreds), so this experiment times the two stages
*separately* and fits a log-log slope per stage: the pairwise slope should
sit near 2 and the preparation slope near 1, which together are exactly
the paper's O(N²n³) once M is folded back into the constant.

Each sweep point is one ``complexity.probe`` campaign node
(:func:`build_complexity_campaign`), so long sweeps interrupt and resume
like every other campaign; the slopes are fitted at render time from
whatever probes are recorded.
"""

from __future__ import annotations

import time

import numpy as np

from repro.campaign import (
    Campaign,
    CampaignNode,
    CampaignPlan,
    node_key,
    register_campaign,
    register_executor,
)
from repro.engine import SerialEngine
from repro.engine.base import resolve_engine
from repro.experiments.reporting import ReportOutput, format_table
from repro.graphs.generators import erdos_renyi
from repro.kernels import HAQJSKKernelA
from repro.utils.rng import as_rng, spawn_seed

#: Default sweep sizes (kept here so the campaign builder, the report
#: renderer and the benchmarks agree on the probe grid).
VERTEX_SWEEP = (16, 24, 36, 54)
GRAPH_SWEEP = (8, 16, 32, 64, 128)

#: The fixed probe-kernel configuration every timing runs with; part of
#: each probe's node key so a changed probe invalidates recorded timings.
_PROBE_KERNEL = {"prototypes": 16, "levels": 2, "layers": 4}


def _probe_graphs(n_graphs: int, n_vertices: int, seed: int) -> list:
    rng = as_rng(seed)
    return [
        erdos_renyi(n_vertices, min(4.0 / max(n_vertices - 1, 1), 0.5),
                    seed=spawn_seed(rng))
        for _ in range(n_graphs)
    ]


def time_gram_stages(
    n_graphs: int, n_vertices: int, *, seed: int = 0, ctx=None
) -> dict:
    """Wall-clock seconds of the two Gram stages for HAQJSK(A).

    Uses the kernel's prepare / engine split directly, which is how
    ``gram`` itself is computed, so the sum of the stages is the honest
    total. By default the pairwise stage runs as a tile plan on the
    serial backend — the same scheduler every production Gram goes
    through, evaluating exactly the ``N(N+1)/2`` upper-triangle
    ``pair_value`` calls the paper's ``O(N²)`` term counts; a ``ctx``
    with an explicit engine re-times the sweep on that backend instead.
    """
    graphs = _probe_graphs(n_graphs, n_vertices, seed)
    kernel = HAQJSKKernelA(
        n_prototypes=_PROBE_KERNEL["prototypes"],
        n_levels=_PROBE_KERNEL["levels"],
        max_layers=_PROBE_KERNEL["layers"],
        seed=seed,
    )
    if ctx is not None and ctx.engine is not None:
        engine = resolve_engine(ctx.engine_argument(kernel))
    else:
        engine = SerialEngine()

    started = time.perf_counter()
    states = kernel.prepare(graphs)
    prepare_seconds = time.perf_counter() - started

    started = time.perf_counter()
    engine.gram(kernel, states)
    pairwise_seconds = time.perf_counter() - started
    return {
        "prepare": prepare_seconds,
        "pairwise": pairwise_seconds,
        "total": prepare_seconds + pairwise_seconds,
    }


def fit_loglog_slope(xs, ys) -> float:
    """Least-squares slope of log(y) against log(x)."""
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.maximum(np.asarray(ys, dtype=float), 1e-9))
    slope, _ = np.polyfit(log_x, log_y, 1)
    return float(slope)


# ---------------------------------------------------------------------- #
# Campaign declaration
# ---------------------------------------------------------------------- #


@register_campaign("complexity")
def build_complexity_campaign(
    *,
    vertex_sweep=VERTEX_SWEEP,
    graph_sweep=GRAPH_SWEEP,
    seed: int = 0,
    ctx=None,
) -> CampaignPlan:
    """One ``complexity.probe`` node per sweep point, both sweeps."""
    nodes = []
    for n_vertices in vertex_sweep:
        nodes.append(_probe_node("vertices", 10, int(n_vertices), seed, ctx))
    for n_graphs in graph_sweep:
        nodes.append(_probe_node("graphs", int(n_graphs), 20, seed, ctx))
    return CampaignPlan(Campaign("complexity", nodes), render_complexity)


def _probe_node(sweep: str, n_graphs: int, n_vertices: int, seed: int, ctx):
    point = n_vertices if sweep == "vertices" else n_graphs
    params = {
        "n_graphs": n_graphs,
        "n_vertices": n_vertices,
        "seed": seed,
        "kernel": _PROBE_KERNEL,
    }
    return CampaignNode(
        name=f"{sweep}:{point}",
        kind="complexity.probe",
        key=node_key("complexity.probe", ctx=ctx, params=params),
        payload={"n_graphs": n_graphs, "n_vertices": n_vertices, "seed": seed},
    )


@register_executor("complexity.probe")
def _execute_probe_node(payload: dict, ctx) -> dict:
    return time_gram_stages(
        payload["n_graphs"], payload["n_vertices"], seed=payload["seed"],
        ctx=ctx,
    )


def run_complexity(
    *,
    vertex_sweep=VERTEX_SWEEP,
    graph_sweep=GRAPH_SWEEP,
    seed: int = 0,
    ctx=None,
) -> dict:
    """Measure both sweeps and fit per-stage scaling exponents."""
    from repro.campaign import run_campaign_plan
    from repro.errors import CampaignError

    plan = build_complexity_campaign(
        vertex_sweep=vertex_sweep, graph_sweep=graph_sweep, seed=seed, ctx=ctx
    )
    run = run_campaign_plan(plan, ctx=ctx)
    if run.failed:
        first = run.failed[0]
        raise CampaignError(
            f"complexity campaign: {len(run.failed)} probes failed; first "
            f"{first.name}:\n{first.error}"
        )
    vertex_rows = [
        _vertex_row(int(name.split(":", 1)[1]), stages)
        for name, stages in run.results.items()
        if name.startswith("vertices:")
    ]
    graph_rows = [
        _graph_row(int(name.split(":", 1)[1]), stages)
        for name, stages in run.results.items()
        if name.startswith("graphs:")
    ]
    return {
        "vertex_rows": vertex_rows,
        "graph_rows": graph_rows,
        "vertex_slope": fit_loglog_slope(
            [row["n (vertices)"] for row in vertex_rows],
            [row["total s"] for row in vertex_rows],
        ),
        "graph_prepare_slope": fit_loglog_slope(
            [row["N (graphs)"] for row in graph_rows],
            [row["prepare s"] for row in graph_rows],
        ),
        "graph_pairwise_slope": fit_loglog_slope(
            [row["N (graphs)"] for row in graph_rows],
            [row["pairwise s"] for row in graph_rows],
        ),
    }


def _vertex_row(n_vertices: int, stages: dict) -> dict:
    return {
        "n (vertices)": n_vertices,
        "prepare s": round(stages["prepare"], 4),
        "pairwise s": round(stages["pairwise"], 4),
        "total s": round(stages["total"], 4),
    }


def _graph_row(n_graphs: int, stages: dict) -> dict:
    return {
        "N (graphs)": n_graphs,
        "prepare s": round(stages["prepare"], 4),
        "pairwise s": round(stages["pairwise"], 4),
        "total s": round(stages["total"], 4),
    }


def render_complexity(results: "dict[str, dict]") -> str:
    """Render both sweep tables plus fitted slopes from probe results."""
    vertex_rows = [
        _vertex_row(int(name.split(":", 1)[1]), stages)
        for name, stages in results.items()
        if name.startswith("vertices:")
    ]
    graph_rows = [
        _graph_row(int(name.split(":", 1)[1]), stages)
        for name, stages in results.items()
        if name.startswith("graphs:")
    ]
    if not vertex_rows or not graph_rows:
        return "(no results)"
    vertex_slope = fit_loglog_slope(
        [row["n (vertices)"] for row in vertex_rows],
        [row["total s"] for row in vertex_rows],
    )
    prepare_slope = fit_loglog_slope(
        [row["N (graphs)"] for row in graph_rows],
        [row["prepare s"] for row in graph_rows],
    )
    pairwise_slope = fit_loglog_slope(
        [row["N (graphs)"] for row in graph_rows],
        [row["pairwise s"] for row in graph_rows],
    )
    return (
        format_table(vertex_rows)
        + f"\nlog-log total slope vs n: {vertex_slope:.2f} "
        + "(n enters the O(N n^3) preparation term only)\n\n"
        + format_table(graph_rows)
        + f"\nlog-log slope vs N — prepare: {prepare_slope:.2f}"
        + " (expected ~1), pairwise: "
        + f"{pairwise_slope:.2f} (expected ~2; the paper's"
        + " O(N^2) term)"
    )


def main(argv=None) -> str:  # pragma: no cover - CLI glue
    from repro.campaign import run_campaign_plan
    from repro.experiments.config import execution_context

    ctx = execution_context()
    plan = build_complexity_campaign(ctx=ctx)
    run = run_campaign_plan(plan, ctx=ctx)
    output = ReportOutput(
        run.report(),
        failed=[(state.name, state.error) for state in run.failed],
    )
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
