"""Section III-D — empirical computational-complexity check.

The paper claims overall time ``O(N^2 n^3)`` (N graphs of n vertices),
dominated by the per-pair spectral work of the QJSD. The cost decomposes
into two stages with different exponents:

* **preparation** — DB representations, prototype fitting, per-graph
  density matrices: ``O(N · n^3)`` (linear in N, cubic spectral work in n);
* **pairwise QJSD** — one mixed-state eigendecomposition per graph pair
  over the fixed-size aligned structures: ``O(N^2 · M^3)`` (quadratic in
  N; independent of n because alignment fixed the size at M prototypes).

Timing only the total hides the N² term at small N (preparation dominates
until N is in the hundreds), so this experiment times the two stages
*separately* and fits a log-log slope per stage: the pairwise slope should
sit near 2 and the preparation slope near 1, which together are exactly
the paper's O(N²n³) once M is folded back into the constant.
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine import SerialEngine
from repro.engine.base import resolve_engine
from repro.experiments.reporting import format_table
from repro.graphs.generators import erdos_renyi
from repro.kernels import HAQJSKKernelA
from repro.utils.rng import as_rng, spawn_seed


def _probe_graphs(n_graphs: int, n_vertices: int, seed: int) -> list:
    rng = as_rng(seed)
    return [
        erdos_renyi(n_vertices, min(4.0 / max(n_vertices - 1, 1), 0.5),
                    seed=spawn_seed(rng))
        for _ in range(n_graphs)
    ]


def time_gram_stages(
    n_graphs: int, n_vertices: int, *, seed: int = 0, ctx=None
) -> dict:
    """Wall-clock seconds of the two Gram stages for HAQJSK(A).

    Uses the kernel's prepare / engine split directly, which is how
    ``gram`` itself is computed, so the sum of the stages is the honest
    total. By default the pairwise stage runs as a tile plan on the
    serial backend — the same scheduler every production Gram goes
    through, evaluating exactly the ``N(N+1)/2`` upper-triangle
    ``pair_value`` calls the paper's ``O(N²)`` term counts; a ``ctx``
    with an explicit engine re-times the sweep on that backend instead.
    """
    graphs = _probe_graphs(n_graphs, n_vertices, seed)
    kernel = HAQJSKKernelA(n_prototypes=16, n_levels=2, max_layers=4, seed=seed)
    if ctx is not None and ctx.engine is not None:
        engine = resolve_engine(ctx.engine_argument(kernel))
    else:
        engine = SerialEngine()

    started = time.perf_counter()
    states = kernel.prepare(graphs)
    prepare_seconds = time.perf_counter() - started

    started = time.perf_counter()
    engine.gram(kernel, states)
    pairwise_seconds = time.perf_counter() - started
    return {
        "prepare": prepare_seconds,
        "pairwise": pairwise_seconds,
        "total": prepare_seconds + pairwise_seconds,
    }


def fit_loglog_slope(xs, ys) -> float:
    """Least-squares slope of log(y) against log(x)."""
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.maximum(np.asarray(ys, dtype=float), 1e-9))
    slope, _ = np.polyfit(log_x, log_y, 1)
    return float(slope)


def run_complexity(
    *,
    vertex_sweep=(16, 24, 36, 54),
    graph_sweep=(8, 16, 32, 64, 128),
    seed: int = 0,
    ctx=None,
) -> dict:
    """Measure both sweeps and fit per-stage scaling exponents."""
    vertex_rows = []
    for n in vertex_sweep:
        stages = time_gram_stages(10, n, seed=seed, ctx=ctx)
        vertex_rows.append(
            {
                "n (vertices)": n,
                "prepare s": round(stages["prepare"], 4),
                "pairwise s": round(stages["pairwise"], 4),
                "total s": round(stages["total"], 4),
            }
        )
    graph_rows = []
    for count in graph_sweep:
        stages = time_gram_stages(count, 20, seed=seed, ctx=ctx)
        graph_rows.append(
            {
                "N (graphs)": count,
                "prepare s": round(stages["prepare"], 4),
                "pairwise s": round(stages["pairwise"], 4),
                "total s": round(stages["total"], 4),
            }
        )
    return {
        "vertex_rows": vertex_rows,
        "graph_rows": graph_rows,
        "vertex_slope": fit_loglog_slope(
            vertex_sweep, [row["total s"] for row in vertex_rows]
        ),
        "graph_prepare_slope": fit_loglog_slope(
            graph_sweep, [row["prepare s"] for row in graph_rows]
        ),
        "graph_pairwise_slope": fit_loglog_slope(
            graph_sweep, [row["pairwise s"] for row in graph_rows]
        ),
    }


def main(argv=None) -> str:  # pragma: no cover - CLI glue
    from repro.experiments.config import execution_context

    result = run_complexity(ctx=execution_context())
    output = (
        format_table(result["vertex_rows"])
        + f"\nlog-log total slope vs n: {result['vertex_slope']:.2f} "
        + "(n enters the O(N n^3) preparation term only)\n\n"
        + format_table(result["graph_rows"])
        + f"\nlog-log slope vs N — prepare: {result['graph_prepare_slope']:.2f}"
        + " (expected ~1), pairwise: "
        + f"{result['graph_pairwise_slope']:.2f} (expected ~2; the paper's"
        + " O(N^2) term)"
    )
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
