"""CLI dispatcher: ``python -m repro.experiments.runner <experiment> ...``.

Experiments: ``table1`` (properties), ``table2`` (dataset statistics),
``table3`` (kernel taxonomy), ``table4`` (kernel accuracies), ``table5``
(deep-learning comparison), ``figure2`` (prototype hierarchy),
``complexity`` (Section III-D scaling). Reports are echoed and written
under ``results/``.
"""

from __future__ import annotations

import sys

from repro.experiments import complexity, figure2, properties, table2, table4, table5
from repro.experiments.kernel_zoo import make_kernel
from repro.experiments.config import TABLE4_KERNELS, gram_engine
from repro.experiments.reporting import format_table, save_report


def run_table3() -> str:
    """Table III — the kernel taxonomy, from each kernel's traits."""
    rows = []
    for name in TABLE4_KERNELS:
        traits = make_kernel(name, n_prototypes=8).traits
        rows.append(
            {
                "Kernel Methods": name,
                "Kernel Frameworks": traits.framework,
                "Aligned": "Yes" if traits.aligned else "No",
                "Transitive": "Yes" if traits.transitive else "No",
                "Structure Patterns": ", ".join(traits.structure_patterns),
                "Computing Models": traits.computing_model,
            }
        )
    return format_table(rows)


_EXPERIMENTS = {
    "table1": lambda argv: format_table(properties.run_properties()),
    "table2": lambda argv: table2.main(argv),
    "table3": lambda argv: run_table3(),
    "table4": lambda argv: table4.main(argv),
    "table5": lambda argv: table5.main(argv),
    "figure2": lambda argv: figure2.main(argv),
    "complexity": lambda argv: complexity.main(argv),
}


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help") or argv[0] not in _EXPERIMENTS:
        names = ", ".join(sorted(_EXPERIMENTS))
        print(f"usage: repro-experiments <experiment> [options]\n"
              f"experiments: {names}")
        return 0 if argv and argv[0] in ("-h", "--help") else 2
    name = argv[0]
    output = _EXPERIMENTS[name](argv[1:])
    if output:
        path = save_report(name, output, metadata={"gram_engine": gram_engine()})
        print(f"\n[saved to {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
