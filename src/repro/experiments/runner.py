"""CLI dispatcher: ``python -m repro.experiments.runner <experiment> ...``.

Experiments: ``table1`` (properties), ``table2`` (dataset statistics),
``table3`` (kernel taxonomy), ``table4`` (kernel accuracies), ``table5``
(deep-learning comparison), ``figure2`` (prototype hierarchy),
``complexity`` (Section III-D scaling). Reports are echoed and written
under ``results/``.

Checkpoint/resume: point ``REPRO_STORE`` at a store address — a
directory, ``dir:/path``, or ``mem:name`` — (or pass ``--store`` to
experiments that accept it) and every completed Gram
matrix is persisted in a content-addressed artifact store
(:mod:`repro.store`) — with the in-flight Gram additionally
tile-checkpointed, so a killed run resumes at the first unfinished tile,
not the cell boundary. Reruns produce the identical report; the footer
records the engine, tile size and tile-resume counters.
"""

from __future__ import annotations

import os
import sys

from repro.experiments import complexity, figure2, properties, table2, table4, table5
from repro.experiments.kernel_zoo import make_kernel
from repro.experiments.config import (
    STORE_ENV_VAR,
    TABLE4_KERNELS,
    compute_backend,
    gram_engine,
    gram_tile,
    store_root,
)
from repro.experiments.reporting import format_table, save_report


def run_table3() -> str:
    """Table III — the kernel taxonomy, from each kernel's traits."""
    rows = []
    for name in TABLE4_KERNELS:
        traits = make_kernel(name, n_prototypes=8).traits
        rows.append(
            {
                "Kernel Methods": name,
                "Kernel Frameworks": traits.framework,
                "Aligned": "Yes" if traits.aligned else "No",
                "Transitive": "Yes" if traits.transitive else "No",
                "Structure Patterns": ", ".join(traits.structure_patterns),
                "Computing Models": traits.computing_model,
            }
        )
    return format_table(rows)


_EXPERIMENTS = {
    "table1": lambda argv: format_table(properties.run_properties()),
    "table2": lambda argv: table2.main(argv),
    "table3": lambda argv: run_table3(),
    "table4": lambda argv: table4.main(argv),
    "table5": lambda argv: table5.main(argv),
    "figure2": lambda argv: figure2.main(argv),
    "complexity": lambda argv: complexity.main(argv),
}


def _extract_store_flag(argv: list) -> list:
    """Route a runner-global ``--store ADDRESS`` through the environment.

    Every experiment (and the report footer) reads the store via
    ``REPRO_STORE``, so resolving the flag here keeps them all in
    agreement — including experiments whose own parsers predate the flag.
    """
    if "--store" not in argv:
        return argv
    index = argv.index("--store")
    if index + 1 >= len(argv):
        raise SystemExit("--store needs a store-address argument")
    os.environ[STORE_ENV_VAR] = argv[index + 1]
    return argv[:index] + argv[index + 2 :]


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help") or argv[0] not in _EXPERIMENTS:
        names = ", ".join(sorted(_EXPERIMENTS))
        print(f"usage: repro-experiments <experiment> [--store ADDRESS] [options]\n"
              f"experiments: {names}")
        return 0 if argv and argv[0] in ("-h", "--help") else 2
    name = argv[0]
    output = _EXPERIMENTS[name](_extract_store_flag(argv[1:]))
    if output:
        import json

        from repro.experiments.config import execution_context

        metadata = {
            "gram_engine": gram_engine(),
            "gram_tile": gram_tile(),
            "compute_backend": compute_backend(),
        }
        if store_root():
            metadata["artifact_store"] = store_root()
        # The full execution context, as the round-trippable JSON record
        # ExecutionContext.from_record accepts — reports carry enough
        # provenance to rebuild the run's execution policy exactly.
        metadata["context"] = json.dumps(
            execution_context().to_record(), sort_keys=True
        )
        path = save_report(name, output, metadata=metadata)
        print(f"\n[saved to {path}]")
    failures = getattr(output, "failed", ())
    if failures:
        # A failed cell must fail the invocation (CI depends on the exit
        # code), after the partial report is saved for triage; the full
        # stored tracebacks are in `python -m repro.campaign status`.
        print(f"\n{len(failures)} cells failed:", file=sys.stderr)
        for cell_name, error in failures:
            lines = (error or "").strip().splitlines()
            print(
                f"  {cell_name}: {lines[-1] if lines else 'no error recorded'}",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
