"""Markdown-table reporting shared by all experiment modules.

Every experiment returns a list of row dicts; :func:`format_table` renders
them in the column order of the paper's table so the output can be compared
cell-by-cell, and :func:`save_report` writes the result under ``results/``.
"""

from __future__ import annotations

import os
from typing import Sequence


class ReportOutput(str):
    """A rendered report that also carries the run's failures.

    Behaves exactly like the report string (every existing caller keeps
    printing/saving it), but the CLI dispatcher reads ``failed`` —
    ``(node name, stored traceback)`` pairs from the campaign run — to
    list what broke and exit non-zero instead of silently saving a
    partial table.
    """

    failed: "tuple[tuple[str, str], ...]" = ()

    def __new__(cls, text: str, *, failed=()):
        output = super().__new__(cls, text)
        output.failed = tuple(
            (str(name), str(error or "")) for name, error in failed
        )
        return output


def format_table(rows: Sequence[dict], *, columns: "list[str] | None" = None) -> str:
    """Render row dicts as a GitHub-markdown table.

    Column order follows ``columns`` when given, else the first row's key
    order. Missing cells render as ``-``.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(_cell(r.get(c))) for r in rows)) for c in columns
    }
    header = "| " + " | ".join(str(c).ljust(widths[c]) for c in columns) + " |"
    rule = "|" + "|".join("-" * (widths[c] + 2) for c in columns) + "|"
    lines = [header, rule]
    for row in rows:
        lines.append(
            "| " + " | ".join(_cell(row.get(c)).ljust(widths[c]) for c in columns) + " |"
        )
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def save_report(
    name: str,
    content: str,
    *,
    directory: str = "results",
    metadata: "dict | None" = None,
) -> str:
    """Write a report file and return its path.

    ``metadata`` key/value pairs (e.g. the active Gram engine backend)
    are appended as an italicised footer so reruns under different
    harness settings stay distinguishable.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.md")
    with open(path, "w") as f:
        f.write(content if content.endswith("\n") else content + "\n")
        if metadata:
            footer = ", ".join(f"{key}: {value}" for key, value in metadata.items())
            f.write(f"\n_{footer}_\n")
    return path


def bold_best(rows: "list[dict]", columns: "list[str]", *, larger_is_better=True):
    """Wrap the best value of each column in ``**bold**`` (paper style)."""
    for column in columns:
        values = []
        for row in rows:
            value = row.get(column)
            if isinstance(value, (int, float)):
                values.append(value)
        if not values:
            continue
        best = max(values) if larger_is_better else min(values)
        for row in rows:
            value = row.get(column)
            if isinstance(value, (int, float)) and value == best:
                row[column] = f"**{value:.2f}**"
    return rows
