"""Tables I & III — kernel properties, verified empirically.

The paper's Table I asserts qualitative properties (positive definite,
permutation invariant, transitive alignment, ...). This experiment does not
just restate them: it *measures* each claim on a probe dataset —

* **PD**: smallest eigenvalue of the normalised Gram matrix;
* **permutation invariance**: rebuild the Gram with one graph's vertices
  randomly permuted and compare;
* **transitive alignment**: check the alignment relation's transitivity
  directly (HAQJSK via its correspondence matrices; pairwise aligners via
  composing their matchings across graph triples).

Table III's taxonomy columns come from each kernel's ``traits``.
"""

from __future__ import annotations

import numpy as np

from repro.alignment import correspondence_is_transitive, correspondence_matrices
from repro.alignment.depth_based import DBRepresentationExtractor
from repro.alignment.prototypes import fit_prototype_hierarchy
from repro.alignment.umeyama import umeyama_correspondence
from repro.datasets import load_dataset
from repro.experiments.kernel_zoo import make_kernel
from repro.experiments.reporting import format_table
from repro.quantum.density import graph_density_matrix, pad_density_matrix
from repro.utils.linalg import eigh_sorted
from repro.utils.rng import as_rng

PROPERTY_KERNELS = (
    "HAQJSK(A)", "HAQJSK(D)", "HAQJSK-L(A)", "HAQJSK-L(D)",
    "QJSK", "ASK", "JTQK", "GCGK", "WLSK", "SPGK", "PMGK", "SPEGK",
)


def probe_dataset(*, seed: int = 0, n_per_class: int = 8):
    """Small two-domain dataset used for the property measurements."""
    dataset = load_dataset("MUTAG", scale=0.15, seed=seed)
    return dataset.stratified_subsample(n_per_class, seed=seed)


def min_gram_eigenvalue(kernel_name: str, graphs, *, seed: int = 0) -> float:
    """Smallest eigenvalue of the normalised Gram (>= -1e-8 means PSD)."""
    kernel = make_kernel(kernel_name, n_prototypes=16, seed=seed)
    gram = kernel.gram(graphs, normalize=True)
    values, _ = eigh_sorted(gram)
    return float(values[0])


def permutation_deviation(kernel_name: str, graphs, *, seed: int = 0) -> float:
    """Max |K - K_permuted| after randomly permuting one graph's vertices.

    A permutation-invariant kernel gives (numerically) zero. The unaligned
    QJSK baseline does not, which is exactly the paper's criticism.
    """
    rng = as_rng(seed)
    target = int(rng.integers(0, len(graphs)))
    permutation = rng.permutation(graphs[target].n_vertices)
    permuted = list(graphs)
    permuted[target] = graphs[target].permuted(permutation)
    kernel_a = make_kernel(kernel_name, n_prototypes=16, seed=seed)
    kernel_b = make_kernel(kernel_name, n_prototypes=16, seed=seed)
    gram_a = kernel_a.gram(graphs, normalize=True)
    gram_b = kernel_b.gram(permuted, normalize=True)
    return float(np.max(np.abs(gram_a - gram_b)))


def haqjsk_alignment_transitive(graphs, *, seed: int = 0) -> bool:
    """Direct check of the HAQJSK correspondence transitivity claim."""
    extractor = DBRepresentationExtractor(max_layers=5)
    representations = extractor.fit_transform(graphs)
    pooled = np.vstack(representations)
    hierarchy = fit_prototype_hierarchy(
        pooled, n_prototypes=8, n_levels=3, seed=seed
    )
    for level in range(1, hierarchy.n_levels + 1):
        matrices = [
            correspondence_matrices(rep, hierarchy)[level - 1]
            for rep in representations
        ]
        if not correspondence_is_transitive(matrices):
            return False
    return True


def umeyama_alignment_transitive(graphs, *, seed: int = 0) -> bool:
    """Check whether pairwise Umeyama matchings compose transitively.

    For graphs p, q, r: does ``Q_pq @ Q_qr == Q_pr``? Generally not — this
    is the paper's argument for why QJSK(A)/ASK are not PD. Returns True
    only if every sampled triple composes exactly.
    """
    rng = as_rng(seed)
    size = max(g.n_vertices for g in graphs)
    densities = [
        pad_density_matrix(graph_density_matrix(g), size) for g in graphs
    ]
    indices = rng.choice(len(graphs), size=min(4, len(graphs)), replace=False)
    for p in indices:
        for q in indices:
            for r in indices:
                if len({int(p), int(q), int(r)}) < 3:
                    continue
                q_pq = umeyama_correspondence(densities[p], densities[q])
                q_qr = umeyama_correspondence(densities[q], densities[r])
                q_pr = umeyama_correspondence(densities[p], densities[r])
                if not np.array_equal((q_pq @ q_qr) > 0.5, q_pr > 0.5):
                    return False
    return True


def run_properties(*, seed: int = 0, kernels=PROPERTY_KERNELS) -> "list[dict]":
    """Measured Table I rows for each kernel."""
    dataset = probe_dataset(seed=seed)
    graphs = dataset.graphs
    haqjsk_transitive = haqjsk_alignment_transitive(graphs, seed=seed)
    umeyama_transitive = umeyama_alignment_transitive(graphs, seed=seed)
    rows = []
    for name in kernels:
        kernel = make_kernel(name, n_prototypes=16, seed=seed)
        traits = kernel.traits
        min_eig = min_gram_eigenvalue(name, graphs, seed=seed)
        deviation = permutation_deviation(name, graphs, seed=seed)
        if name.startswith("HAQJSK"):
            transitive = "Yes" if haqjsk_transitive else "VIOLATED"
        elif traits.aligned:
            transitive = "Yes" if umeyama_transitive else "No"
        else:
            transitive = "-"
        rows.append(
            {
                "Kernel": name,
                "Framework": traits.framework,
                "Computing": traits.computing_model,
                "PD (claimed)": "Yes" if traits.positive_definite else "No",
                "min Gram eig": f"{min_eig:.2e}",
                "Perm. dev": f"{deviation:.2e}",
                "Aligned": "Yes" if traits.aligned else "No",
                "Transitive": transitive,
                "Hierarchical": "Yes" if traits.hierarchical else "No",
                "Local": "Yes" if traits.captures_local else "No",
                "Global": "Yes" if traits.captures_global else "No",
            }
        )
    return rows


def main(argv=None) -> str:  # pragma: no cover - CLI glue
    table = format_table(run_properties())
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
