"""Content-addressed artifact store with an in-memory layer.

An :class:`ArtifactStore` persists the expensive intermediates of the
kernel pipeline — Gram matrices and blocks (arrays) and prepared states /
frozen alignment systems (pickled objects) — under keys derived from
*content*: the kernel's configuration fingerprint plus the collection
digest of the graphs involved (:func:`gram_key`). Identical inputs always
map to the same key, so a killed experiment run restarts from its last
completed artifact and a serving process warm-restarts from storage
instead of recomputing a quadratic Gram.

The store itself is a *policy* layer: key layout
(``<kind>/<key[:2]>/<key>.npy`` — the two-character fan-out keeps
directories small at millions of artifacts), digest-stable
serialisation, defensive copies / read-only views, and a bounded
:class:`~repro.utils.caching.KeyedCache` fronting hot artifacts. The
*bytes* live in a pluggable :class:`~repro.store.backends.StoreBackend`
selected by address — ``dir:/path`` (or a bare path, the crash-durable
reference backend) or ``mem:name`` (in-process, for tests). All writes
are atomic, and :meth:`ArtifactStore.put_if_absent` exposes the
backend's compare-and-swap, which the distributed tile workers' lease
protocol builds on (:mod:`repro.store.claims`).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle

import numpy as np

from repro.errors import ValidationError
from repro.graphs.hashing import collection_digest
from repro.store.backends import StoreBackend, backend_for
from repro.utils.caching import KeyedCache

#: Default bound on the in-memory layer (entries, FIFO eviction).
DEFAULT_MEMORY_ENTRIES = 256

_KINDS_HINT = "kind must be a non-empty path-safe token (e.g. 'gram', 'states')"


def artifact_key(*parts: str) -> str:
    """Hex SHA-256 key combining any number of string parts."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(str(part).encode())
        digest.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
    return digest.hexdigest()


def gram_key(
    kernel,
    graphs,
    *,
    normalize: bool = False,
    ensure_psd: bool = False,
    extra: "dict | None" = None,
    digest: "str | None" = None,
) -> str:
    """The store key of ``kernel.gram(graphs, normalize=, ensure_psd=)``.

    Combines the kernel's configuration fingerprint, the ordered
    collection digest and the Gram options; ``extra`` mixes in run-level
    context (e.g. whether downstream conditioning was applied).
    ``digest`` is the precomputed collection digest of ``graphs`` — a
    caller that already hashed the collection (a campaign builder keying
    a whole sweep over one dataset) passes it through rather than paying
    the full-collection hash again per cell.
    """
    payload = json.dumps(
        {
            "kernel": kernel.fingerprint(),
            "graphs": digest if digest is not None else collection_digest(graphs),
            "normalize": bool(normalize),
            "ensure_psd": bool(ensure_psd),
            "extra": extra or {},
        },
        sort_keys=True,
    )
    return artifact_key("gram", payload)


class ArtifactStore:
    """Content-addressed persistence for Gram matrices and prepared states.

    Parameters
    ----------
    root:
        Backend address — a directory path (created if missing; equal to
        ``dir:<path>``), ``mem:[name]`` for the in-process test backend,
        or an already-constructed
        :class:`~repro.store.backends.StoreBackend`.
    max_memory_entries:
        Bound on the in-memory read cache (FIFO-evicted); ``None`` keeps
        everything read or written this process — only safe for batch
        runs, not long-lived serving processes.
    """

    def __init__(
        self,
        root: "str | StoreBackend",
        *,
        max_memory_entries: "int | None" = DEFAULT_MEMORY_ENTRIES,
    ) -> None:
        if not isinstance(root, StoreBackend) and (
            root is None or not str(root).strip()
        ):
            raise ValidationError("ArtifactStore needs a non-empty root directory")
        self.backend = backend_for(root)
        self._memory = KeyedCache(max_entries=max_memory_entries)

    @property
    def address(self) -> str:
        """Round-trippable backend address (``ArtifactStore(address)``)."""
        return self.backend.address

    @property
    def root(self) -> str:
        """The backend's directory for directory stores, else its address.

        Kept for the historical directory-store API (``store.root`` was
        the constructor argument); new code should prefer
        :attr:`address`, which round-trips for every backend.
        """
        return getattr(self.backend, "root", self.backend.address)

    # ------------------------------------------------------------------ #
    # Arrays (Gram matrices, blocks, embeddings)
    # ------------------------------------------------------------------ #

    def put_array(
        self, kind: str, key: str, array: np.ndarray, *, copy: bool = True
    ) -> str:
        """Persist an array; returns its path. Idempotent per (kind, key).

        The cached copy is decoupled from the caller's buffer and marked
        read-only — content-addressed artifacts are immutable, and a
        caller mutating a returned array in place must fail loudly
        instead of silently poisoning every later read of the key.
        ``copy=False`` hands ownership over without the defensive copy
        (the array is frozen in place); only for callers that will never
        touch their reference again.
        """
        if copy:
            arr = np.array(array, copy=True)
        else:
            arr = np.asarray(array)
        arr.setflags(write=False)
        self.backend.put_atomic(
            self.name_for(kind, key, suffix=".npy"), _array_bytes(arr)
        )
        self._memory.put((kind, key), arr)
        return self.path_for(kind, key, suffix=".npy")

    def put_array_if_absent(self, kind: str, key: str, array: np.ndarray) -> bool:
        """Persist an array only when the key is free; True when stored.

        The compare-and-swap form of :meth:`put_array`, for concurrent
        writers racing on one content key (distributed tile commits):
        exactly one writer stores its bytes, everyone else keeps the
        winner's. With content-addressed keys both outcomes hold the
        same values, so either answer leaves the store correct — the
        return value only says whose bytes landed.
        """
        arr = np.array(array, copy=True)
        arr.setflags(write=False)
        stored = self.backend.put_if_absent(
            self.name_for(kind, key, suffix=".npy"), _array_bytes(arr)
        )
        if stored:
            self._memory.put((kind, key), arr)
        return stored

    def get_array(self, kind: str, key: str) -> "np.ndarray | None":
        """The stored array (read-only), or ``None`` when absent."""
        cached = self._memory.get((kind, key))
        if cached is not None:
            return cached
        data = self.backend.get(self.name_for(kind, key, suffix=".npy"))
        if data is None:
            return None
        arr = np.load(io.BytesIO(data), allow_pickle=False)
        arr.setflags(write=False)
        self._memory.put((kind, key), arr)
        return arr

    def get_memmap(self, kind: str, key: str, *, mode: str = "r"):
        """The stored array as a memory map, or ``None`` when absent.

        The out-of-core read path: unlike :meth:`get_array`, nothing is
        densified and nothing enters the in-memory cache — reading a
        100 GB Gram artifact costs pages, not RAM. Arrays written by
        :meth:`put_array` and memmaps grown in place by
        :meth:`memmap_sink` are both plain ``.npy`` files, so either kind
        of artifact can be opened this way.

        Backends without local files (``mem:``) degrade to the dense
        :meth:`get_array` read — same values, just not page-backed.
        """
        name = self.name_for(kind, key, suffix=".npy")
        path = self.backend.local_path(name)
        if path is None:
            return self.get_array(kind, key)
        if not os.path.exists(path):
            return None
        return np.load(path, mmap_mode=mode, allow_pickle=False)

    def memmap_sink(self, kind: str, key: str, *, dtype="float64"):
        """A :class:`~repro.engine.tiles.MemmapSink` backed by this store.

        The sink assembles at ``<canonical>.npy.partial`` and publishes
        with an atomic rename on ``commit()`` (which
        ``kernel.gram(..., sink=...)`` calls after post-processing), so
        the canonical path other readers trust — :meth:`get_memmap`,
        :meth:`get_array` — either holds a complete artifact or nothing,
        matching :meth:`put_array`'s crash-safety. A run killed
        mid-assembly leaves only the ``.partial`` file; wrap the sink in
        a :class:`~repro.store.tiles.CheckpointSink` to make that rerun
        resume at tile granularity instead of restarting.
        """
        from repro.engine.tiles import MemmapSink

        path = self.backend.local_path(self.name_for(kind, key, suffix=".npy"))
        if path is None:
            raise ValidationError(
                f"memmap_sink needs a backend with local files; "
                f"{self.backend.address!r} has none — use a dir: store for "
                "out-of-core assembly"
            )
        return MemmapSink(path, dtype=dtype, stage=True)

    # ------------------------------------------------------------------ #
    # Objects (prepared states, frozen alignment systems)
    # ------------------------------------------------------------------ #

    def put_object(self, kind: str, key: str, obj) -> str:
        """Persist an arbitrary picklable object; returns its path."""
        self.backend.put_atomic(
            self.name_for(kind, key, suffix=".pkl"),
            pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL),
        )
        self._memory.put((kind, key), obj)
        return self.path_for(kind, key, suffix=".pkl")

    def get_object(self, kind: str, key: str, default=None):
        """The stored object, or ``default`` when absent."""
        cached = self._memory.get((kind, key))
        if cached is not None:
            return cached
        data = self.backend.get(self.name_for(kind, key, suffix=".pkl"))
        if data is None:
            return default
        obj = pickle.loads(data)
        self._memory.put((kind, key), obj)
        return obj

    # ------------------------------------------------------------------ #
    # Raw bytes (coordination records: leases, job specs)
    # ------------------------------------------------------------------ #

    def put_bytes(self, kind: str, key: str, data: bytes, *, suffix: str = ".bin") -> None:
        """Store raw bytes (atomic, last writer wins; bypasses the cache).

        Coordination records are *mutable* (a lease's heartbeat
        timestamp advances), so unlike arrays/objects they must never be
        served from this process's memory layer — every read goes to the
        backend.
        """
        self.backend.put_atomic(self.name_for(kind, key, suffix=suffix), data)

    def get_bytes(self, kind: str, key: str, *, suffix: str = ".bin") -> "bytes | None":
        """The stored raw bytes (always a fresh backend read), or ``None``."""
        return self.backend.get(self.name_for(kind, key, suffix=suffix))

    def put_if_absent(
        self, kind: str, key: str, data: bytes, *, suffix: str = ".bin"
    ) -> bool:
        """Backend compare-and-swap on raw bytes; True when this call won."""
        return self.backend.put_if_absent(
            self.name_for(kind, key, suffix=suffix), data
        )

    def delete_bytes(self, kind: str, key: str, *, suffix: str = ".bin") -> bool:
        """Remove a raw-bytes record; True when one was removed."""
        return self.backend.delete(self.name_for(kind, key, suffix=suffix))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def has(self, kind: str, key: str) -> bool:
        """True when the artifact exists (memory or backend)."""
        if (kind, key) in self._memory:
            return True
        return self.backend.exists(
            self.name_for(kind, key, suffix=".npy")
        ) or self.backend.exists(self.name_for(kind, key, suffix=".pkl"))

    def discard(self, kind: str, key: str) -> None:
        """Drop an artifact from memory and the backend (no-op when absent).

        Content-addressed artifacts are immutable but not eternal:
        callers that supersede an artifact (the incremental serving path
        outgrowing an intermediate Gram) use this to keep the store from
        accumulating dead weight.
        """
        self._memory.pop((kind, key))
        for suffix in (".npy", ".pkl"):
            self.backend.delete(self.name_for(kind, key, suffix=suffix))

    def list_keys(self, kind: str) -> "list[str]":
        """Artifact keys stored under ``kind`` (any suffix), sorted."""
        kind = self._check_token(kind, _KINDS_HINT)
        keys = set()
        for name in self.backend.list_keys(f"{kind}/"):
            filename = name.rsplit("/", 1)[-1]
            keys.add(filename.rsplit(".", 1)[0])
        return sorted(keys)

    def name_for(self, kind: str, key: str, *, suffix: str = ".npy") -> str:
        """The backend-relative name of one artifact (validates tokens)."""
        kind = self._check_token(kind, _KINDS_HINT)
        key = self._check_token(key, "key must be a path-safe token")
        fan_out = key[:2] if len(key) > 2 else "__"
        return f"{kind}/{fan_out}/{key}{suffix}"

    def path_for(self, kind: str, key: str, *, suffix: str = ".npy") -> str:
        """Deterministic storage location of one artifact.

        A real filesystem path for directory backends; a cosmetic
        ``<address>/<name>`` join otherwise (the logical location — useful
        in messages, not openable).
        """
        name = self.name_for(kind, key, suffix=suffix)
        local = self.backend.local_path(name)
        return local if local is not None else f"{self.backend.address}/{name}"

    @staticmethod
    def _check_token(token: str, hint: str) -> str:
        token = str(token)
        if not token or any(sep in token for sep in ("/", "\\", "..")):
            raise ValidationError(f"{hint}; got {token!r}")
        return token

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore(root={self.address!r})"


def _array_bytes(arr: np.ndarray) -> bytes:
    """``.npy``-format serialisation (what every backend stores)."""
    buffer = io.BytesIO()
    np.save(buffer, arr, allow_pickle=False)
    return buffer.getvalue()


def store_backed_gram(
    kernel,
    graphs,
    store: "ArtifactStore | None",
    *,
    normalize: bool = False,
    ensure_psd: bool = False,
    engine=None,
    extra: "dict | None" = None,
    tile_checkpoint: bool = False,
    stats: "dict | None" = None,
    ctx=None,
    digest: "str | None" = None,
) -> np.ndarray:
    """Fetch ``kernel.gram(graphs, ...)`` from the store, computing on miss.

    With ``store=None`` this is exactly ``kernel.gram(...)``, so callers
    can thread an optional store through without branching. With a store,
    the returned array is read-only on hit *and* miss — store-backed
    Grams are immutable artifacts, and a caller seeing a writable matrix
    on the first run but a read-only one after a warm restart would be a
    trap.

    ``tile_checkpoint=True`` makes the *miss* path itself resumable: the
    Gram is computed through a :class:`~repro.store.tiles.CheckpointSink`,
    every finished tile committing to the store before the next is
    computed. A run killed mid-Gram no longer loses the whole matrix —
    the rerun restores the finished tiles and computes only the rest
    (PR 2's whole-Gram checkpointing kicks in once the matrix completes
    and is persisted under its own key). Tiles hold *raw* kernel values,
    so they are shared across ``normalize`` / ``ensure_psd`` variants of
    the same (kernel, graphs) computation. Kernels on the dense-replay
    fallback (core variants) skip the sink — they recompute the full
    matrix before any tile streams, so checkpointing their tiles is pure
    I/O with zero resume value. For collection-*dependent* kernels, whose
    tile keys embed the collection digest and can never serve another
    computation, the tiles are reclaimed once the whole Gram is committed
    (with a cache-hit sweep catching tiles orphaned by a kill inside that
    commit-then-discard window); collection-independent tiles stay —
    grown collections and other option variants reuse them.

    ``stats`` (optional dict) is filled with the run's accounting:
    ``cached`` (whole-Gram hit), ``tiles_restored``, ``tiles_computed``.
    This is *the* tile-checkpoint protocol — the experiment harness and
    other callers consume it rather than re-implementing the sequence.
    """
    from repro.api.context import context_for

    graphs = list(graphs)
    if ctx is not None:
        # A caller-supplied context carries the engine/tile selection and
        # (for the store=None fallthrough) any sink factory; the store
        # and checkpoint decisions stay with the explicit arguments so
        # this function keeps exactly one persistence protocol.
        engine = ctx.engine_argument(kernel)
        gram_ctx = ctx.replace(store=None)
    else:
        gram_ctx = context_for(engine=engine)
    if stats is not None:
        stats.update(cached=False, tiles_restored=0, tiles_computed=0)
    if store is None:
        return kernel.gram(
            graphs, normalize=normalize, ensure_psd=ensure_psd, ctx=gram_ctx
        )
    streams = tile_checkpoint and getattr(kernel, "streams_tiles", False)
    dependent = not getattr(kernel, "collection_independent", False)
    key = gram_key(
        kernel, graphs, normalize=normalize, ensure_psd=ensure_psd,
        extra=extra, digest=digest,
    )
    cached = store.get_array("gram", key)
    if cached is not None:
        if stats is not None:
            stats["cached"] = True
        if streams and dependent:
            _sweep_orphaned_tiles(store, kernel, graphs, engine)
        return cached
    sink = None
    if streams:
        from repro.store.tiles import CheckpointSink, tile_keyer_for

        sink = CheckpointSink(store, tile_keyer_for(kernel, graphs))
    miss_ctx = gram_ctx
    if sink is not None:
        checkpoint_sink = sink
        factory = lambda: checkpoint_sink  # noqa: E731 - one-shot wrapper
        miss_ctx = (
            gram_ctx.replace(sink_factory=factory)
            if gram_ctx is not None
            else context_for(sink_factory=factory)
        )
    gram = kernel.gram(
        graphs,
        normalize=normalize,
        ensure_psd=ensure_psd,
        ctx=miss_ctx,
    )
    store.put_array("gram", key, gram)
    if sink is not None:
        if stats is not None:
            stats["tiles_restored"] = sink.tiles_restored
            stats["tiles_computed"] = sink.tiles_computed
        if dependent:
            sink.discard_tiles()
    return store.get_array("gram", key)


def _sweep_orphaned_tiles(store, kernel, graphs, engine) -> None:
    """Best-effort reclamation of dead collection-dependent tiles.

    Covers the kill window between the whole-Gram ``put_array`` and the
    post-commit ``discard_tiles``: on the next (cache-hit) run the tiles
    are unreadable by any other computation, so if the plan's first tile
    still exists under the *current* tile size, the whole plan is swept.
    Best-effort on purpose — a rerun under a different tile size derives
    different keys and leaves the orphans alone.
    """
    from repro.engine.tiles import TilePlan
    from repro.store.tiles import discard_plan_tiles, tile_keyer_for

    if not graphs:
        return
    tile = kernel._resolve_engine(engine).resolved_tile_size()
    plan = TilePlan.gram(len(graphs), tile)
    keyer = tile_keyer_for(kernel, graphs)
    first = next(iter(plan.tiles()))
    if store.has(
        "gram-tile", keyer.key(first[0], first[1], diagonal=plan.is_diagonal(*first))
    ):
        discard_plan_tiles(store, keyer, plan)


class IncrementalGram:
    """A growing raw Gram matrix — the warm-restart serving path.

    Holds a collection and its *raw* (unnormalised, unprojected) Gram
    matrix; :meth:`extend` folds newly arrived graphs in through
    :meth:`~repro.kernels.base.GraphKernel.gram_extend`, paying
    ``O(N·ΔN)`` per arrival instead of the full ``O((N+ΔN)²)``. With a
    ``store``, every grown Gram is persisted under its collection's
    content key, so a restarted process constructed over the same graphs
    resumes from disk instead of recomputing.

    For collection-level kernels (the HAQJSK family) the kernel must be
    in frozen-prototype mode first (``kernel.freeze(reference_graphs)``);
    otherwise :meth:`extend` raises the same named
    :class:`~repro.errors.KernelError` as ``gram_extend``.

    Persistence writes the *full* grown matrix per :meth:`extend` (which
    keeps warm restart a single key lookup) but prunes each superseded
    intermediate, so the store holds at most two Grams per serving
    object: the one this object started from (another process may still
    warm-restart from it) and the latest. If write bandwidth ever
    dominates — it is O((N+ΔN)²) per arrival batch against O(N·ΔN)
    compute — batch the arrivals.
    """

    def __init__(
        self,
        kernel,
        graphs=(),
        *,
        engine=None,
        store: "ArtifactStore | None" = None,
        ctx=None,
    ) -> None:
        from repro.api.context import context_for, resolve_context

        ctx = resolve_context(
            ctx, owner="IncrementalGram", engine=engine, store=store
        )
        if ctx is not None:
            engine = ctx.engine_argument(kernel)
            store = ctx.store
        self.kernel = kernel
        self.engine = engine
        self.store = store
        self.graphs: list = list(graphs)
        self._initial_key: "str | None" = None
        self._latest_key: "str | None" = None
        if not self.graphs:
            self.gram = np.zeros((0, 0))
        else:
            self.gram = store_backed_gram(
                kernel, self.graphs, store, ctx=context_for(engine=engine)
            )
            if store is not None:
                self._initial_key = gram_key(kernel, self.graphs)
                self._latest_key = self._initial_key

    def __len__(self) -> int:
        return len(self.graphs)

    def extend(self, new_graphs) -> np.ndarray:
        """Fold ``new_graphs`` into the Gram; returns the grown matrix."""
        new_graphs = list(new_graphs)
        if not new_graphs:
            return self.gram
        if not self.graphs:
            self.graphs = new_graphs
            from repro.api.context import context_for

            self.gram = store_backed_gram(
                self.kernel, self.graphs, self.store,
                ctx=context_for(engine=self.engine),
            )
            if self.store is not None:
                self._initial_key = gram_key(self.kernel, self.graphs)
                self._latest_key = self._initial_key
            return self.gram
        from repro.api.context import context_for

        grown = self.kernel.gram_extend(
            self.gram, self.graphs, new_graphs,
            ctx=context_for(engine=self.engine),
        )
        # Freshly assembled and owned by this object: freeze it so the
        # serving Gram is uniformly immutable whether it was computed,
        # extended, or warm-restarted from the store.
        grown.setflags(write=False)
        self.graphs = self.graphs + new_graphs
        self.gram = grown
        if self.store is not None:
            new_key = gram_key(self.kernel, self.graphs)
            # copy=False: `grown` is frozen and owned by this object.
            self.store.put_array("gram", new_key, grown, copy=False)
            # Prune the superseded intermediate, but never the Gram this
            # object started from — a restarted process reconstructs over
            # the initial collection and must still find it.
            if self._latest_key not in (None, self._initial_key, new_key):
                self.store.discard("gram", self._latest_key)
            self._latest_key = new_key
        return self.gram
