"""Tile-granular persistence: content-addressed tile keys + CheckpointSink.

PR 2's store checkpoints whole Gram matrices — a killed run resumes from
its last *completed* Gram, losing every pair value of the one in flight.
This module moves the checkpoint unit down to the engine layer's tiles:

* :class:`TileKeyer` derives a content key per tile from the kernel's
  configuration fingerprint plus the **graph digests of exactly the row
  and column slices the tile covers** (never the whole collection, for
  collection-independent kernels). Because keys depend only on slice
  content, the tiles computed for ``gram(old_graphs)`` remain valid when
  the collection grows: ``gram(old + new)`` against the same store
  recomputes only the tiles that touch new graphs (plus the old
  collection's final partial tile, whose boundary moved) — ``gram_extend``
  at tile granularity, without ever shipping a prior matrix around.
* :class:`CheckpointSink` wraps any inner :class:`~repro.engine.tiles.GramSink`
  (dense or memmap): every finished tile is committed to the
  :class:`~repro.store.ArtifactStore` (atomic temp-file + rename, so a
  kill mid-tile never leaves a torn artifact) before it is placed, and on
  the next run the engine's ``has_tile`` probe restores finished tiles
  from the store instead of recomputing them.

For kernels whose pair values depend on the whole collection
(``collection_independent`` is False — unfrozen HAQJSK, shared-decay
random walks), slice keys would be wrong: the same two graphs yield
different values in different collections. :func:`tile_keyer_for`
therefore mixes the full collection digest into every key for such
kernels — resume still works (same collection, same keys), only
cross-collection tile reuse is disabled, exactly matching the
``gram_extend`` eligibility gate.
"""

from __future__ import annotations

import numpy as np

from repro.engine.tiles import DenseSink, GramSink, TilePlan
from repro.errors import ValidationError
from repro.graphs.hashing import graph_digest
from repro.store.artifacts import ArtifactStore, artifact_key

#: Store ``kind`` under which Gram tiles are persisted.
TILE_KIND = "gram-tile"

#: Key-schema version: bump when the tile byte layout or schedule
#: semantics change, invalidating previously persisted tiles.
_TILE_KEY_VERSION = "tile-v1"


class TileKeyer:
    """Derives the store key of one ``(rows, cols)`` tile.

    Parameters
    ----------
    kernel_fingerprint:
        :meth:`repro.kernels.base.GraphKernel.fingerprint` of the kernel
        that computes the tiles (configuration, not scheduling).
    row_digests / col_digests:
        Per-graph content digests of the row and column collections;
        ``col_digests=None`` means a symmetric plan over the rows.
    context:
        Extra content mixed into every key. Empty for
        collection-independent kernels (slice keys are globally valid);
        the full collection digest for collection-dependent ones; the
        storage dtype when tiles are persisted at reduced precision.
    """

    def __init__(
        self,
        kernel_fingerprint: str,
        row_digests: "list[str]",
        col_digests: "list[str] | None" = None,
        *,
        context: str = "",
    ) -> None:
        self.kernel_fingerprint = str(kernel_fingerprint)
        self.row_digests = list(row_digests)
        self.col_digests = (
            self.row_digests if col_digests is None else list(col_digests)
        )
        self.context = str(context)

    def key(self, rows, cols, *, diagonal: bool = False) -> str:
        """The content key of the tile covering ``rows × cols``.

        ``diagonal`` marks a symmetric plan's diagonal tiles, which are
        computed from the upper triangle and mirrored — numerically they
        agree with a full-rectangle evaluation of the same slices only to
        backend round-off, so they get distinct keys.
        """
        r0, r1 = rows
        c0, c1 = cols
        if not (0 <= r0 <= r1 <= len(self.row_digests)):
            raise ValidationError(
                f"tile rows {rows} outside collection of "
                f"{len(self.row_digests)} graphs"
            )
        if not (0 <= c0 <= c1 <= len(self.col_digests)):
            raise ValidationError(
                f"tile cols {cols} outside collection of "
                f"{len(self.col_digests)} graphs"
            )
        return artifact_key(
            _TILE_KEY_VERSION,
            self.kernel_fingerprint,
            self.context,
            "diag" if diagonal else "rect",
            "|".join(self.row_digests[r0:r1]),
            "|".join(self.col_digests[c0:c1]),
        )


def tile_keyer_for(
    kernel,
    row_graphs,
    col_graphs=None,
    *,
    collection=None,
    dtype=None,
) -> TileKeyer:
    """Build the :class:`TileKeyer` for a Gram (or cross-Gram) plan.

    ``collection`` is the graph list the kernel's ``prepare`` actually ran
    over, when that differs from the rows (a Nyström ``K(X, L)`` rectangle
    prepares ``X`` once and slices landmarks out of it). It only matters
    for collection-*dependent* kernels, where it is mixed into every key;
    collection-independent kernels get pure slice keys — the property that
    makes grown-collection tile reuse sound. ``dtype`` (the storage
    precision of :class:`CheckpointSink`) is part of the content: float32
    tiles must never satisfy a float64 read.
    """
    row_digests = [graph_digest(g) for g in row_graphs]
    col_digests = (
        None if col_graphs is None else [graph_digest(g) for g in col_graphs]
    )
    context_parts = []
    if not getattr(kernel, "collection_independent", False):
        from repro.graphs.hashing import collection_digest

        if collection is None:
            collection = list(row_graphs) + list(col_graphs or [])
        context_parts.append(f"collection={collection_digest(collection)}")
    if dtype is not None:
        context_parts.append(f"dtype={np.dtype(dtype).name}")
    return TileKeyer(
        kernel.fingerprint(),
        row_digests,
        col_digests,
        context="&".join(context_parts),
    )


class CheckpointSink(GramSink):
    """Persist every finished tile through an artifact store; restore
    already-finished tiles on the next run.

    Wraps an inner sink (default :class:`~repro.engine.tiles.DenseSink`;
    pass a :class:`~repro.engine.tiles.MemmapSink` for out-of-core *and*
    resumable). The engine's ``has_tile`` probe checks the store: on a
    hit the stored tile is placed into the inner sink and the engine
    skips the computation entirely, so a killed run's next attempt pays
    only for the tiles that never committed. Tile commits ride the
    store's atomic write path — a kill mid-commit loses at most the tile
    in flight, never corrupts one.

    ``dtype`` opts into reduced-precision tile *storage* (float32 halves
    the disk footprint). Computation stays float64; the cast happens at
    commit time, and the inner sink is fed the **stored** (cast) values
    on both the first run and every resume, so resumed results are
    byte-identical to uninterrupted ones at any storage dtype.

    Attributes
    ----------
    tiles_restored / tiles_computed:
        Per-stream counters (reset by ``open``) — how many tiles came
        from the store vs were computed this run. The experiment footer
        and the resume tests read these.
    """

    def __init__(
        self,
        store: ArtifactStore,
        keyer: TileKeyer,
        *,
        inner: "GramSink | None" = None,
        dtype=None,
        kind: str = TILE_KIND,
    ) -> None:
        super().__init__()
        if not isinstance(store, ArtifactStore):
            raise ValidationError(
                f"store must be an ArtifactStore, got {type(store).__name__}"
            )
        self.store = store
        self.inner = DenseSink() if inner is None else inner
        self.dtype = None if dtype is None else np.dtype(dtype)
        # The storage dtype is part of a tile's content: bind it into the
        # keys here even when the caller's keyer omitted it, so float32
        # tiles can never satisfy a float64 read (or vice versa).
        if self.dtype is not None:
            token = f"dtype={self.dtype.name}"
            if token not in keyer.context:
                keyer = TileKeyer(
                    keyer.kernel_fingerprint,
                    keyer.row_digests,
                    keyer.col_digests,
                    context="&".join(part for part in (keyer.context, token) if part),
                )
        self.keyer = keyer
        self.kind = str(kind)
        self.tiles_restored = 0
        self.tiles_computed = 0

    @property
    def in_memory(self) -> bool:  # type: ignore[override]
        return self.inner.in_memory

    def _allocate(self, plan: TilePlan) -> None:
        self.inner.open(plan)
        self.tiles_restored = 0
        self.tiles_computed = 0

    def has_tile(self, rows, cols) -> bool:
        key = self.keyer.key(
            rows, cols, diagonal=self.plan.is_diagonal(rows, cols)
        )
        tile = self.store.get_array(self.kind, key)
        if tile is None:
            return False
        expected = (rows[1] - rows[0], cols[1] - cols[0])
        if tile.shape != expected:  # torn schema change: recompute, don't trust
            return False
        self.inner.write(rows, cols, np.asarray(tile, dtype=float))
        self.tiles_restored += 1
        return True

    def write(self, rows, cols, block: np.ndarray) -> None:
        stored = np.asarray(block)
        if self.dtype is not None:
            stored = stored.astype(self.dtype)
        key = self.keyer.key(
            rows, cols, diagonal=self.plan.is_diagonal(rows, cols)
        )
        self.store.put_array(self.kind, key, stored)
        # The inner sink sees the stored values (cast and back), so a
        # resume that reads them from disk assembles the identical matrix.
        self.inner.write(rows, cols, np.asarray(stored, dtype=float))
        self.tiles_computed += 1

    def finalize(self):
        return self.inner.finalize()

    def commit(self) -> None:
        self.inner.commit()

    def discard_tiles(self) -> None:
        """Drop this plan's tiles from the store (after the finished Gram
        has been persisted under its own whole-matrix key)."""
        if self.plan is not None:
            discard_plan_tiles(self.store, self.keyer, self.plan, kind=self.kind)


def discard_plan_tiles(
    store: ArtifactStore, keyer: TileKeyer, plan: TilePlan, *, kind: str = TILE_KIND
) -> None:
    """Drop every tile of ``plan`` from the store (no-op for absent keys).

    Shared by :meth:`CheckpointSink.discard_tiles` and the cache-hit
    sweeps that reclaim tiles orphaned by a kill between the whole-Gram
    commit and the post-commit discard.
    """
    for rows, cols in plan.tiles():
        store.discard(
            kind, keyer.key(rows, cols, diagonal=plan.is_diagonal(rows, cols))
        )


class TileLedger:
    """One plan's committed tiles in one store — the shared view every
    cooperating engine reads instead of assuming it owns the plan.

    Before distribution, exactly one process walked ``plan.tiles()`` and
    computed whatever its own sink lacked. A ledger decouples "the
    plan's tiles" from "my tiles": any number of workers enumerate
    :meth:`pending` (uncomputed) tiles against the *store's* state,
    claim them through :class:`~repro.store.claims.TileClaims`, and
    commit results under the same content keys a single-process
    :class:`CheckpointSink` run would use — so a distributed job, a
    resumed kill, and a plain checkpointed run all converge on
    interchangeable artifacts.
    """

    def __init__(
        self,
        store: ArtifactStore,
        keyer: TileKeyer,
        plan: TilePlan,
        *,
        kind: str = TILE_KIND,
    ) -> None:
        if not isinstance(store, ArtifactStore):
            raise ValidationError(
                f"TileLedger needs an ArtifactStore, got {type(store).__name__}"
            )
        self.store = store
        self.keyer = keyer
        self.plan = plan
        self.kind = str(kind)

    def key(self, rows, cols) -> str:
        """The content key of one plan tile."""
        return self.keyer.key(
            rows, cols, diagonal=self.plan.is_diagonal(rows, cols)
        )

    def entries(self):
        """Yield ``(rows, cols, key)`` for every tile, in schedule order."""
        for rows, cols in self.plan.tiles():
            yield rows, cols, self.key(rows, cols)

    def is_done(self, key: str) -> bool:
        """True when the tile is committed (immutable once true)."""
        return self.store.has(self.kind, key)

    def pending(self) -> "list[tuple[tuple, tuple, str]]":
        """The uncomputed tiles, re-probed against the store each call."""
        return [entry for entry in self.entries() if not self.is_done(entry[2])]

    def total(self) -> int:
        return self.plan.n_tiles()

    def done_count(self) -> int:
        return self.total() - len(self.pending())

    def complete(self) -> bool:
        return not self.pending()

    def commit(self, rows, cols, block: np.ndarray) -> None:
        """Commit one finished tile under its content key.

        Stored in float64 — the same cast the engine scheduler applies
        before any sink write — so a restored tile is byte-identical to
        a locally computed one. Compare-and-swap on purpose: when two
        workers race (an expired lease recomputed by a stealer while the
        original worker limps home), the first commit wins and the
        duplicate is dropped, so a tile's bytes are written exactly once.
        """
        self.store.put_array_if_absent(
            self.kind, self.key(rows, cols), np.asarray(block, dtype=float)
        )

    def restore_into(self, sink: "GramSink | None" = None):
        """Assemble the plan's matrix from committed tiles.

        Every tile must be present (``complete()``); missing tiles raise
        a named error listing the count, because silently zero-filled
        rows would poison any downstream SVM fit. The default sink is a
        fresh :class:`~repro.engine.tiles.DenseSink`; symmetric
        off-diagonal mirroring happens in the sink exactly as in a live
        computation, so the assembled matrix is byte-identical to the
        single-process result.
        """
        sink = DenseSink() if sink is None else sink
        sink.open(self.plan)
        missing = 0
        for rows, cols, key in self.entries():
            tile = self.store.get_array(self.kind, key)
            if tile is None:
                missing += 1
                continue
            sink.write(rows, cols, np.asarray(tile, dtype=float))
        if missing:
            raise ValidationError(
                f"cannot assemble: {missing} of {self.total()} tiles are "
                f"not committed yet (store {self.store.address!r})"
            )
        matrix = sink.finalize()
        sink.commit()
        return matrix
