"""Pluggable storage backends behind the content-addressed store.

:class:`~repro.store.ArtifactStore` used to *be* a directory; now it is a
policy layer (digest keys, defensive copies, the bounded memory cache)
over a :class:`StoreBackend` — a small byte-oriented key/value protocol
that a local directory, an in-memory dict, or a future object store can
implement. Backends are selected by URI-style address:

``dir:/path/to/store`` (or a bare path)
    :class:`DirectoryBackend` — the reference implementation. Writes are
    crash-durable: the payload is fsynced before the atomic rename and
    the parent directory is fsynced after it, so a machine losing power
    mid-commit can never surface a torn artifact on restart.
``mem:`` / ``mem:name``
    :class:`MemoryBackend` — a process-global named dict, for tests and
    ephemeral pipelines. Two ``ArtifactStore("mem:x")`` objects in one
    process share the same backend (and the same CAS namespace); the
    contents die with the process.

Every backend provides **compare-and-swap** via :meth:`StoreBackend.put_if_absent`
— create the key only if nobody else has — which is the primitive the
distributed tile workers build their lease protocol on
(:mod:`repro.store.claims`). On a directory backend it is implemented
with ``os.link``, which is atomic on POSIX filesystems (including NFS),
so independent worker *processes* pointed at one directory get a correct
mutual-exclusion primitive without any server.
"""

from __future__ import annotations

import abc
import os
import tempfile
import threading

from repro.errors import ValidationError

#: scheme name -> backend factory taking the address remainder.
STORE_SCHEMES: "dict[str, type]" = {}


def register_store_scheme(cls):
    """Class decorator adding a backend to :data:`STORE_SCHEMES`."""
    STORE_SCHEMES[cls.scheme] = cls
    return cls


class StoreBackend(abc.ABC):
    """Byte-oriented key/value storage with atomic and CAS writes.

    Keys (*names*) are relative ``/``-separated tokens produced by the
    store's key-layout policy (``<kind>/<fan-out>/<key><suffix>``); the
    backend treats them as opaque except for prefix listing. Values are
    byte strings. The contract every implementation must honour:

    * :meth:`put_atomic` — readers never observe a partial value: they
      see the old value (or absence) until the write completes, then the
      new one. Last writer wins.
    * :meth:`put_if_absent` — create-if-missing as one atomic step; the
      return value says whether *this* call created the key. This is the
      compare-and-swap the lease protocol relies on, so "check then
      write" implementations are wrong even when they usually work.
    * :meth:`delete` — absent keys are a no-op, never an error; the
      return value says whether this call removed a value.
    """

    #: Address scheme this backend registers under (``dir``, ``mem``).
    scheme: str = "backend"

    @property
    @abc.abstractmethod
    def address(self) -> str:
        """Round-trippable address: ``backend_for(address)`` rebuilds an
        equivalent backend (same storage, for shareable backends)."""

    @abc.abstractmethod
    def put_atomic(self, name: str, data: bytes) -> None:
        """Store ``data`` under ``name`` atomically (last writer wins)."""

    @abc.abstractmethod
    def put_if_absent(self, name: str, data: bytes) -> bool:
        """Store ``data`` only if ``name`` is absent; True when stored."""

    @abc.abstractmethod
    def get(self, name: str) -> "bytes | None":
        """The stored bytes, or ``None`` when absent."""

    @abc.abstractmethod
    def exists(self, name: str) -> bool:
        """True when ``name`` holds a value."""

    @abc.abstractmethod
    def delete(self, name: str) -> bool:
        """Remove ``name``; True when a value was removed (absent: False)."""

    @abc.abstractmethod
    def list_keys(self, prefix: str = "") -> "list[str]":
        """All stored names starting with ``prefix``, sorted."""

    def local_path(self, name: str) -> "str | None":
        """Filesystem path of ``name`` for backends with one, else ``None``.

        The out-of-core hook: memory-mapped reads and staged memmap
        sinks need a real file. Backends without local paths return
        ``None`` and the store degrades (dense reads) or refuses
        (memmap sinks) with a named error.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.address!r})"


def _fsync_directory(path: str) -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@register_store_scheme
class DirectoryBackend(StoreBackend):
    """The reference backend: one local directory, crash-durable writes.

    Durability: :meth:`put_atomic` writes a sibling temporary file,
    fsyncs it, renames it over the destination with ``os.replace`` and
    then fsyncs the parent directory. A crash at any point leaves either
    the complete old state or the complete new state — the classic
    write-ahead discipline, applied per artifact.
    """

    scheme = "dir"

    def __init__(self, root: str) -> None:
        if not root or not str(root).strip():
            raise ValidationError(
                "a directory store backend needs a non-empty root directory"
            )
        self.root = str(root)
        try:
            os.makedirs(self.root, exist_ok=True)
        except OSError as exc:
            raise ValidationError(
                f"cannot create store directory {self.root!r}: {exc}"
            ) from exc

    @property
    def address(self) -> str:
        # A bare path round-trips as a directory address, so records
        # written before backends were pluggable keep resolving.
        return self.root

    def _path(self, name: str) -> str:
        return os.path.join(self.root, *name.split("/"))

    def local_path(self, name: str) -> str:
        return self._path(name)

    def _write_temp(self, directory: str, data: bytes) -> str:
        """A durable (fsynced) temporary file holding ``data``."""
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(data)
                f.flush()
                os.fsync(f.fileno())
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        return tmp_path

    def put_atomic(self, name: str, data: bytes) -> None:
        path = self._path(name)
        directory = os.path.dirname(path)
        tmp_path = self._write_temp(directory, data)
        try:
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        _fsync_directory(directory)

    def put_if_absent(self, name: str, data: bytes) -> bool:
        path = self._path(name)
        if os.path.exists(path):
            return False
        directory = os.path.dirname(path)
        tmp_path = self._write_temp(directory, data)
        try:
            # os.link is atomic create-or-fail on POSIX — the CAS step.
            # (os.replace would silently clobber a concurrent winner.)
            os.link(tmp_path, path)
        except FileExistsError:
            return False
        finally:
            os.unlink(tmp_path)
        _fsync_directory(directory)
        return True

    def get(self, name: str) -> "bytes | None":
        try:
            with open(self._path(name), "rb") as f:
                return f.read()
        except FileNotFoundError:
            return None

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def delete(self, name: str) -> bool:
        try:
            os.unlink(self._path(name))
        except FileNotFoundError:
            return False
        return True

    def list_keys(self, prefix: str = "") -> "list[str]":
        names = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            rel = os.path.relpath(dirpath, self.root)
            parts = [] if rel == "." else rel.split(os.sep)
            for filename in filenames:
                if filename.endswith(".tmp"):
                    continue  # in-flight writes are not artifacts
                name = "/".join(parts + [filename])
                if name.startswith(prefix):
                    names.append(name)
        return sorted(names)


#: Process-global registry backing ``mem:<name>`` addresses, so every
#: ArtifactStore opened on the same address shares one namespace (the
#: in-process analogue of two processes opening one directory).
_MEMORY_BACKENDS: "dict[str, MemoryBackend]" = {}
_MEMORY_LOCK = threading.Lock()


@register_store_scheme
class MemoryBackend(StoreBackend):
    """In-memory backend for tests and ephemeral pipelines.

    Thread-safe: all operations hold one lock, and
    :meth:`put_if_absent` is a genuine CAS (``dict.setdefault`` under
    the lock), so multi-threaded contention tests exercise the same
    protocol the directory backend gives multi-process workers.
    """

    scheme = "mem"

    def __init__(self, name: str = "") -> None:
        self.name = str(name)
        self._data: "dict[str, bytes]" = {}
        self._lock = threading.Lock()

    @classmethod
    def shared(cls, name: str = "") -> "MemoryBackend":
        """The process-global backend registered under ``name``."""
        with _MEMORY_LOCK:
            backend = _MEMORY_BACKENDS.get(name)
            if backend is None:
                backend = _MEMORY_BACKENDS[name] = cls(name)
            return backend

    @property
    def address(self) -> str:
        return f"mem:{self.name}"

    def put_atomic(self, name: str, data: bytes) -> None:
        with self._lock:
            self._data[name] = bytes(data)

    def put_if_absent(self, name: str, data: bytes) -> bool:
        payload = bytes(data)
        with self._lock:
            return self._data.setdefault(name, payload) is payload

    def get(self, name: str) -> "bytes | None":
        with self._lock:
            return self._data.get(name)

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._data

    def delete(self, name: str) -> bool:
        with self._lock:
            return self._data.pop(name, None) is not None

    def list_keys(self, prefix: str = "") -> "list[str]":
        with self._lock:
            return sorted(name for name in self._data if name.startswith(prefix))


def backend_for(address) -> StoreBackend:
    """Resolve a store address (or pass a backend through).

    ``dir:/path`` and bare paths select :class:`DirectoryBackend`;
    ``mem:`` / ``mem:name`` select the process-global
    :class:`MemoryBackend` of that name. Unknown ``scheme:`` prefixes
    whose scheme looks like a registered token raise a named
    :class:`~repro.errors.ValidationError` listing the available
    schemes; anything else is treated as a filesystem path (so relative
    paths and odd directory names keep working).
    """
    if isinstance(address, StoreBackend):
        return address
    if address is None or not str(address).strip():
        raise ValidationError(
            "a store address must be a non-empty path, 'dir:<path>', or "
            "'mem:[name]'"
        )
    text = str(address)
    scheme, sep, rest = text.partition(":")
    if sep and _looks_like_scheme(scheme):
        if scheme == "dir":
            return DirectoryBackend(rest)
        if scheme == "mem":
            return MemoryBackend.shared(rest)
        if scheme in STORE_SCHEMES:  # future schemes registered by users
            return STORE_SCHEMES[scheme](rest)
        raise ValidationError(
            f"unknown store scheme {scheme!r} in address {text!r}; "
            f"available: {', '.join(sorted(STORE_SCHEMES))}"
        )
    return DirectoryBackend(text)


def _looks_like_scheme(token: str) -> bool:
    """URI-scheme shape (``s3``, ``gs+cache``), at least two characters.

    A single letter is far more likely a Windows drive (``C:\\store``)
    than a scheme typo, so it parses as a path; multi-letter unknown
    schemes fail loudly in :func:`backend_for` instead of silently
    creating a directory literally named ``s3:``.
    """
    return (
        len(token) > 1
        and token[0].isalpha()
        and all(c.isalnum() or c in "+.-" for c in token)
    )
