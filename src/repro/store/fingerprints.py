"""Stable configuration fingerprints for kernels and other config objects.

A fingerprint answers "would this object produce the same numbers?": two
kernels with the same class and the same public configuration hash to the
same hex digest across processes, so the artifact store can address Gram
matrices by *what computed them* rather than by object identity.

The walk covers an object's public instance attributes and recurses into
nested config objects (a kernel's :class:`HierarchicalAligner`, an
aligner's extractor, ...). Excluded by convention:

* names starting with ``_`` — internal/derived state;
* names ending with ``_`` — fitted state (sklearn convention), which is a
  *product* of configuration plus data, not configuration itself. Objects
  whose fitted state changes their output (the frozen HAQJSK prototype
  system) must surface it explicitly — see
  :meth:`repro.kernels.base.GraphKernel._fingerprint_extra`;
* ``engine`` — Gram *scheduling* never changes Gram *values* (the backend
  equivalence the engine tests pin to 1e-10).
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

#: Attribute names never included in a configuration fingerprint.
_EXCLUDED_ATTRS = frozenset({"engine"})

#: Bump to invalidate every previously stored fingerprint.
_FINGERPRINT_VERSION = "config-fingerprint-v1"


def stable_config(obj) -> dict:
    """A JSON-able dict of ``obj``'s public configuration (recursive)."""
    config = {}
    for key, value in sorted(vars(obj).items()):
        if key.startswith("_") or key.endswith("_") or key in _EXCLUDED_ATTRS:
            continue
        config[key] = _stable_value(value)
    return config


def _stable_value(value):
    """Canonicalise one attribute value for JSON hashing."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        return value.item()
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [_stable_value(v) for v in items]
    if isinstance(value, dict):
        return {str(k): _stable_value(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if callable(value) and hasattr(value, "__qualname__"):
        return {"__callable__": f"{value.__module__}.{value.__qualname__}"}
    if hasattr(value, "__dict__"):
        # Module-qualified, like the top-level class: two same-named config
        # classes in different modules must never fingerprint-collide.
        return {
            "__object__": f"{type(value).__module__}.{type(value).__qualname__}",
            "config": stable_config(value),
        }
    # Last resort: repr is stable for the simple value objects used in
    # kernel configs; anything exotic should implement __dict__.
    return {"__repr__": repr(value)}


def config_fingerprint(obj, *, extra: "dict | None" = None) -> str:
    """Hex SHA-256 of an object's class plus its stable configuration.

    ``extra`` lets callers mix in state the attribute walk excludes by
    design (e.g. the digest of the reference collection a frozen HAQJSK
    aligner was fitted on).
    """
    payload = {
        "version": _FINGERPRINT_VERSION,
        "class": f"{type(obj).__module__}.{type(obj).__qualname__}",
        "config": stable_config(obj),
    }
    if extra:
        payload["extra"] = _stable_value(dict(extra))
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode()).hexdigest()
