"""Persistent, content-addressed artifact store for the kernel pipeline.

The HAQJSK family costs ``O(N² n³)`` per Gram matrix (paper Section
III-D); :mod:`repro.engine` attacks the constant factor, this subsystem
attacks *recomputation*. The pieces:

* **Content addressing** — stable graph digests
  (:func:`repro.graphs.hashing.graph_digest`) and kernel configuration
  fingerprints (:meth:`repro.kernels.base.GraphKernel.fingerprint`)
  combine into :func:`gram_key`, so artifacts are found by what computed
  them, across processes and machines.
* **The store** — :class:`ArtifactStore` persists Gram matrices and
  prepared states under those keys (atomic writes, bounded in-memory
  layer), giving the experiment harness checkpoint/resume
  (``REPRO_STORE=dir python -m repro.experiments.runner table4 ...``) and
  the ML layer store-backed Grams.
* **The incremental path** —
  :meth:`repro.kernels.base.GraphKernel.gram_extend` grows a cached Gram
  by only the new ``(N, ΔN)`` cross and ``(ΔN, ΔN)`` diagonal blocks;
  :class:`IncrementalGram` wraps it into a warm-restartable serving
  object. Exact for collection-independent kernels; the HAQJSK family
  first freezes its prototype system on a reference collection
  (``kernel.freeze(...)``) — the frozen-prototype serving mode.
* **Pluggable backends** — :mod:`repro.store.backends` puts a
  byte-oriented :class:`StoreBackend` protocol (atomic writes +
  compare-and-swap) under the store, selected by address:
  ``dir:/path`` / bare paths (crash-durable reference implementation),
  ``mem:name`` (in-process, for tests), and
  :func:`register_store_scheme` for future object stores.
* **Coordination** — :mod:`repro.store.claims` builds a lease/heartbeat
  claim table on the backend CAS and :class:`repro.store.tiles.TileLedger`
  exposes a plan's pending tiles, which is everything
  :mod:`repro.distributed`'s work-stealing workers need to converge on
  one Gram from many processes.
* **Tile granularity** — :mod:`repro.store.tiles` moves the checkpoint
  unit below the whole Gram: engines stream finished tiles through a
  :class:`CheckpointSink`, each committed atomically under a
  slice-content key (:class:`TileKeyer`), so killed runs resume at the
  first unfinished *tile* and grown collections reuse interior tiles
  (DESIGN.md, "Tile keying"). :meth:`ArtifactStore.get_memmap` /
  :meth:`ArtifactStore.memmap_sink` add the out-of-core read/write path
  for Grams larger than RAM.
"""

from repro.store.artifacts import (
    DEFAULT_MEMORY_ENTRIES,
    ArtifactStore,
    IncrementalGram,
    artifact_key,
    gram_key,
    store_backed_gram,
)
from repro.store.backends import (
    STORE_SCHEMES,
    DirectoryBackend,
    MemoryBackend,
    StoreBackend,
    backend_for,
    register_store_scheme,
)
from repro.store.claims import (
    DEFAULT_LEASE_TTL,
    LEASE_KIND,
    Lease,
    TileClaims,
)
from repro.store.fingerprints import config_fingerprint, stable_config
from repro.store.tiles import (
    TILE_KIND,
    CheckpointSink,
    TileKeyer,
    TileLedger,
    tile_keyer_for,
)

__all__ = [
    "ArtifactStore",
    "CheckpointSink",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MEMORY_ENTRIES",
    "DirectoryBackend",
    "IncrementalGram",
    "LEASE_KIND",
    "Lease",
    "MemoryBackend",
    "STORE_SCHEMES",
    "StoreBackend",
    "TILE_KIND",
    "TileClaims",
    "TileKeyer",
    "TileLedger",
    "artifact_key",
    "backend_for",
    "config_fingerprint",
    "gram_key",
    "register_store_scheme",
    "stable_config",
    "store_backed_gram",
    "tile_keyer_for",
]
