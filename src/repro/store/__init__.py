"""Persistent, content-addressed artifact store for the kernel pipeline.

The HAQJSK family costs ``O(N² n³)`` per Gram matrix (paper Section
III-D); :mod:`repro.engine` attacks the constant factor, this subsystem
attacks *recomputation*. Three pieces:

* **Content addressing** — stable graph digests
  (:func:`repro.graphs.hashing.graph_digest`) and kernel configuration
  fingerprints (:meth:`repro.kernels.base.GraphKernel.fingerprint`)
  combine into :func:`gram_key`, so artifacts are found by what computed
  them, across processes and machines.
* **The store** — :class:`ArtifactStore` persists Gram matrices and
  prepared states under those keys (atomic writes, bounded in-memory
  layer), giving the experiment harness checkpoint/resume
  (``REPRO_STORE=dir python -m repro.experiments.runner table4 ...``) and
  the ML layer store-backed Grams.
* **The incremental path** —
  :meth:`repro.kernels.base.GraphKernel.gram_extend` grows a cached Gram
  by only the new ``(N, ΔN)`` cross and ``(ΔN, ΔN)`` diagonal blocks;
  :class:`IncrementalGram` wraps it into a warm-restartable serving
  object. Exact for collection-independent kernels; the HAQJSK family
  first freezes its prototype system on a reference collection
  (``kernel.freeze(...)``) — the frozen-prototype serving mode.
"""

from repro.store.artifacts import (
    DEFAULT_MEMORY_ENTRIES,
    ArtifactStore,
    IncrementalGram,
    artifact_key,
    gram_key,
    store_backed_gram,
)
from repro.store.fingerprints import config_fingerprint, stable_config

__all__ = [
    "ArtifactStore",
    "DEFAULT_MEMORY_ENTRIES",
    "IncrementalGram",
    "artifact_key",
    "config_fingerprint",
    "gram_key",
    "stable_config",
    "store_backed_gram",
]
