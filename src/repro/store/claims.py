"""Tile claims: lease/heartbeat coordination for work-stealing workers.

K independent worker processes pointed at one store address converge on
one Gram by racing over the plan's tiles. The protocol has exactly three
kinds of store record:

* **tiles** (``gram-tile/<key>.npy``) — the committed results, immutable
  and content-addressed (:mod:`repro.store.tiles`); a tile that exists is
  *done*, forever.
* **leases** (``tile-lease/<key>.json``) — one small JSON record per
  in-flight tile: ``{worker, timestamp, ttl}``. Created with the
  backend's compare-and-swap (:meth:`~repro.store.ArtifactStore.put_if_absent`),
  so exactly one worker wins a free tile; refreshed by heartbeat
  (``put_atomic`` with a fresh timestamp) while the tile computes;
  deleted after the tile commits.
* **expiry** — a lease whose timestamp is older than its TTL marks a
  dead worker; any live worker may *steal* it (delete + re-claim through
  CAS) and recompute the tile.

Correctness never depends on the leases. Tiles are pure functions of
their content keys — any worker computing the same tile under the same
job spec produces byte-identical values, commits are atomic, and a
duplicate commit overwrites a tile with its own bytes. So the worst a
lost or stolen lease can cause is *duplicate work*, never a wrong or
torn matrix; leases exist purely to keep K workers off each other's
tiles. (That is why the small delete→re-claim race on an expired lease —
two stealers both deleting, one winning the CAS — is acceptable: the
loser just moves on.) DESIGN.md, "Distributed tiles: leases and
heartbeats" documents the invariants.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.store.artifacts import ArtifactStore

#: Store kind holding lease records.
LEASE_KIND = "tile-lease"

#: Suffix of lease records (JSON payloads).
LEASE_SUFFIX = ".json"

#: Default lease time-to-live in seconds. Generous relative to one tile's
#: compute time because expiry only matters after a worker *dies* — a
#: healthy worker's heartbeat refreshes long before this.
DEFAULT_LEASE_TTL = 30.0


@dataclass(frozen=True)
class Lease:
    """One claim on one tile: who holds it and how fresh they are."""

    key: str
    worker: str
    timestamp: float
    ttl: float

    def expired(self, now: float) -> bool:
        """True when the holder has missed its heartbeat window.

        A lease dated in the *future* (clock skew between workers on a
        shared filesystem) is treated as fresh — stealing on skew would
        just cause duplicate work, but being conservative here is free.
        """
        return (now - self.timestamp) > self.ttl

    def to_bytes(self) -> bytes:
        return json.dumps(
            {"worker": self.worker, "timestamp": self.timestamp, "ttl": self.ttl},
            sort_keys=True,
        ).encode()

    @classmethod
    def from_bytes(cls, key: str, data: bytes) -> "Lease | None":
        """Parse a lease record; unreadable records decode to ``None``.

        A corrupt lease (schema drift, truncated by a non-atomic future
        backend) must never wedge the job — callers treat ``None`` like
        an expired lease and re-claim through CAS.
        """
        try:
            record = json.loads(data.decode())
            return cls(
                key=key,
                worker=str(record["worker"]),
                timestamp=float(record["timestamp"]),
                ttl=float(record["ttl"]),
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return None


class TileClaims:
    """The lease table of one store: claim, heartbeat, release, steal.

    Parameters
    ----------
    store:
        The shared :class:`~repro.store.ArtifactStore` (leases ride its
        backend's CAS; reads always hit the backend, never the store's
        memory layer — lease records are mutable).
    ttl:
        Seconds a lease stays valid without a heartbeat. Must exceed the
        heartbeat interval with margin; workers default to ``ttl / 4``.
    clock:
        Time source (``time.time``); injectable so expiry tests run in
        virtual time instead of sleeping.
    """

    def __init__(
        self,
        store: ArtifactStore,
        *,
        ttl: float = DEFAULT_LEASE_TTL,
        kind: str = LEASE_KIND,
        clock=time.time,
    ) -> None:
        if not isinstance(store, ArtifactStore):
            raise ValidationError(
                f"TileClaims needs an ArtifactStore, got {type(store).__name__}"
            )
        if not ttl or float(ttl) <= 0:
            raise ValidationError(f"lease ttl must be > 0 seconds, got {ttl!r}")
        self.store = store
        self.ttl = float(ttl)
        self.kind = str(kind)
        self.clock = clock

    # ------------------------------------------------------------------ #
    # Protocol operations
    # ------------------------------------------------------------------ #

    def holder(self, key: str) -> "Lease | None":
        """The current lease on ``key`` (fresh backend read), or ``None``."""
        data = self.store.get_bytes(self.kind, key, suffix=LEASE_SUFFIX)
        if data is None:
            return None
        return Lease.from_bytes(key, data)

    def claim(self, key: str, worker: str) -> "Lease | None":
        """Try to acquire ``key`` for ``worker``; ``None`` when it is held
        by another live worker.

        Resolution order: CAS-create a fresh lease; if that loses, read
        the holder — re-entrant claims by the same worker refresh in
        place, expired (or unreadable) leases are stolen (delete, then
        CAS again so concurrent stealers serialise), and a live foreign
        lease means *go find another tile*.
        """
        lease = self._fresh(key, worker)
        if self._cas(lease):
            return lease
        held = self.holder(key)
        if held is not None and held.worker == worker:
            # Re-entrant: already ours (a retry after a crash between
            # claim and compute). Refresh the timestamp and carry on.
            self._overwrite(lease)
            return lease
        if held is None or held.expired(self.clock()):
            # Dead holder (or a record we cannot read): steal. The delete
            # clears the CAS slot; the second CAS decides between
            # concurrent stealers.
            self.store.delete_bytes(self.kind, key, suffix=LEASE_SUFFIX)
            lease = self._fresh(key, worker)
            if self._cas(lease):
                return lease
        return None

    def heartbeat(self, lease: Lease) -> "Lease | None":
        """Refresh a held lease's timestamp; ``None`` when it was lost.

        A lease can be lost legitimately: the worker stalled past the
        TTL, a peer stole the tile, and this worker's compute is now a
        duplicate. The worker keeps computing anyway (the result is
        byte-identical and the commit idempotent) but stops renewing.
        """
        held = self.holder(lease.key)
        if held is not None and held.worker != lease.worker:
            return None
        fresh = self._fresh(lease.key, lease.worker)
        self._overwrite(fresh)
        return fresh

    def release(self, lease: Lease) -> None:
        """Drop a lease after its tile committed (only if still ours)."""
        held = self.holder(lease.key)
        if held is None or held.worker == lease.worker:
            self.store.delete_bytes(self.kind, lease.key, suffix=LEASE_SUFFIX)

    # ------------------------------------------------------------------ #
    # Introspection (coordinator progress / bench accounting)
    # ------------------------------------------------------------------ #

    def active(self, keys) -> "dict[str, Lease]":
        """Current unexpired leases among ``keys`` (one read per key)."""
        now = self.clock()
        held = {}
        for key in keys:
            lease = self.holder(key)
            if lease is not None and not lease.expired(now):
                held[key] = lease
        return held

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _fresh(self, key: str, worker: str) -> Lease:
        return Lease(key=key, worker=str(worker), timestamp=self.clock(), ttl=self.ttl)

    def _cas(self, lease: Lease) -> bool:
        return self.store.put_if_absent(
            self.kind, lease.key, lease.to_bytes(), suffix=LEASE_SUFFIX
        )

    def _overwrite(self, lease: Lease) -> None:
        self.store.put_bytes(
            self.kind, lease.key, lease.to_bytes(), suffix=LEASE_SUFFIX
        )
