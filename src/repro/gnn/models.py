"""The gradient-trained Table V baselines: DGCNN, DCNN, PSGCNN.

Each model classifies a single graph at a time (datasets have ragged graph
sizes) and exposes:

* ``loss(graph, target) -> Tensor`` — scalar training loss;
* ``predict(graph) -> int`` — argmax class;
* ``parameters()`` — trainable tensors for the optimiser.

The implementations are deliberately compact but structurally faithful:
DGCNN keeps the GCN-stack → sort-pooling → 1-D convolution → dense pipeline
of Zhang et al. (AAAI 2018); DCNN keeps the diffusion-power features of
Atwood & Towsley (NIPS 2016); PSGCNN keeps PATCHY-SAN's canonical node
ordering + fixed-size receptive fields (Niepert et al., ICML 2016).
DESIGN.md records the simplifications (channel widths, no dropout).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.gnn.autograd import Tensor
from repro.gnn.layers import (
    Conv1D,
    Dense,
    GCNLayer,
    Module,
    degree_features,
    renormalized_adjacency,
    sort_pooling_indices,
)
from repro.graphs.graph import Graph
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int


class DGCNN(Module):
    """Deep Graph CNN: GCN stack -> sort pooling -> Conv1D -> dense head."""

    name = "DGCNN"

    def __init__(
        self,
        n_classes: int,
        *,
        max_degree: int = 20,
        hidden: tuple = (32, 32, 1),
        sortpool_k: int = 16,
        conv_filters: int = 16,
        conv_kernel: int = 5,
        seed=0,
    ) -> None:
        rng = as_rng(seed)
        self.n_classes = check_positive_int(n_classes, "n_classes", minimum=2)
        self.max_degree = max_degree
        self.sortpool_k = sortpool_k
        in_dim = max_degree + 1
        self.gcn_layers = []
        for width in hidden:
            self.gcn_layers.append(GCNLayer(in_dim, width, rng))
            in_dim = width
        total_channels = sum(hidden)
        self.conv = Conv1D(total_channels, conv_filters, conv_kernel, rng)
        conv_out = (sortpool_k - conv_kernel + 1) * conv_filters
        self.head = Dense(conv_out, self.n_classes, rng)

    def logits(self, graph: Graph) -> Tensor:
        a_hat = Tensor(renormalized_adjacency(graph))
        x = Tensor(degree_features(graph, self.max_degree))
        channel_outputs = []
        for layer in self.gcn_layers:
            x = layer(a_hat, x).tanh()
            channel_outputs.append(x)
        stacked = Tensor.concatenate(channel_outputs, axis=1)
        order = sort_pooling_indices(stacked.data, self.sortpool_k)
        pooled = stacked.gather_rows(order)
        convolved = self.conv(pooled).relu()
        flat = convolved.reshape(1, -1)
        return self.head(flat)

    def loss(self, graph: Graph, target: int) -> Tensor:
        return self.logits(graph).softmax_cross_entropy(target)

    def predict(self, graph: Graph) -> int:
        return int(np.argmax(self.logits(graph).data))


class DCNN(Module):
    """Diffusion-convolutional NN: features ``[P^j X]`` for hop ``j``.

    ``P`` is the random-walk transition matrix; per-vertex diffusion maps
    are weighted, nonlinearised, mean-pooled and classified.
    """

    name = "DCNN"

    def __init__(
        self,
        n_classes: int,
        *,
        max_degree: int = 20,
        n_hops: int = 3,
        seed=0,
    ) -> None:
        rng = as_rng(seed)
        self.n_classes = check_positive_int(n_classes, "n_classes", minimum=2)
        self.max_degree = max_degree
        self.n_hops = check_positive_int(n_hops, "n_hops", minimum=1)
        in_dim = (max_degree + 1) * n_hops
        self.head = Dense(in_dim, self.n_classes, rng)

    def logits(self, graph: Graph) -> Tensor:
        features = degree_features(graph, self.max_degree)
        adjacency = (graph.adjacency > 0).astype(float)
        degrees = adjacency.sum(axis=1)
        transition = adjacency / np.maximum(degrees, 1.0)[:, None]
        diffused = [features]
        current = features
        for _ in range(self.n_hops - 1):
            current = transition @ current
            diffused.append(current)
        stacked = np.concatenate(diffused, axis=1)  # (n, hops * d) — constant
        pooled = Tensor(stacked.mean(axis=0, keepdims=True))
        return self.head(pooled.tanh())

    def loss(self, graph: Graph, target: int) -> Tensor:
        return self.logits(graph).softmax_cross_entropy(target)

    def predict(self, graph: Graph) -> int:
        return int(np.argmax(self.logits(graph).data))


class PSGCNN(Module):
    """PATCHY-SAN style CNN: canonical ordering + fixed receptive fields.

    ``w`` root vertices are chosen by degree-centrality rank; each root's
    receptive field is its BFS neighbourhood truncated/padded to ``k``
    vertices, ordered by (distance, degree). Field features are flattened
    and convolved, then classified.
    """

    name = "PSGCNN"

    def __init__(
        self,
        n_classes: int,
        *,
        max_degree: int = 20,
        n_roots: int = 12,
        field_size: int = 8,
        conv_filters: int = 16,
        seed=0,
    ) -> None:
        rng = as_rng(seed)
        self.n_classes = check_positive_int(n_classes, "n_classes", minimum=2)
        self.max_degree = max_degree
        self.n_roots = n_roots
        self.field_size = field_size
        in_channels = (max_degree + 1) * field_size
        self.conv = Dense(in_channels, conv_filters, rng)
        self.head = Dense(conv_filters * n_roots, self.n_classes, rng)

    def _receptive_fields(self, graph: Graph) -> np.ndarray:
        """Indices ``(n_roots, field_size)``; roots by degree rank."""
        degrees = graph.unweighted_degrees()
        order = np.argsort(-degrees, kind="stable")
        roots = order[: self.n_roots]
        if roots.size < self.n_roots:
            roots = np.concatenate(
                [roots, np.full(self.n_roots - roots.size, int(order[0]))]
            )
        distances = graph.shortest_path_lengths()
        fields = np.zeros((self.n_roots, self.field_size), dtype=int)
        for row, root in enumerate(roots):
            dist = distances[int(root)].astype(float)
            dist[dist < 0] = np.inf
            # Order: close first, then high degree.
            ranking = np.lexsort((-degrees, dist))
            reachable = ranking[np.isfinite(dist[ranking])]
            field = reachable[: self.field_size]
            if field.size < self.field_size:
                field = np.concatenate(
                    [field, np.full(self.field_size - field.size, int(root))]
                )
            fields[row] = field
        return fields

    def logits(self, graph: Graph) -> Tensor:
        features = Tensor(degree_features(graph, self.max_degree))
        fields = self._receptive_fields(graph)
        gathered = features.gather_rows(fields.reshape(-1))
        per_root = gathered.reshape(self.n_roots, -1)
        convolved = self.conv(per_root).relu()
        flat = convolved.reshape(1, -1)
        return self.head(flat)

    def loss(self, graph: Graph, target: int) -> Tensor:
        return self.logits(graph).softmax_cross_entropy(target)

    def predict(self, graph: Graph) -> int:
        return int(np.argmax(self.logits(graph).data))


def evaluate_model(model, graphs, targets) -> float:
    """Mean accuracy of ``model.predict`` over a graph list."""
    targets = np.asarray(targets, dtype=int)
    if len(graphs) == 0:
        raise ValidationError("cannot evaluate on an empty graph list")
    predictions = np.asarray([model.predict(g) for g in graphs], dtype=int)
    return float(np.mean(predictions == targets))
