"""Deep-learning baselines for Table V, on a from-scratch numpy autograd."""

from repro.gnn.autograd import Parameter, Tensor, glorot
from repro.gnn.awe import AnonymousWalkKernel, anonymous_pattern
from repro.gnn.dgk import DeepGraphKernel
from repro.gnn.layers import (
    Conv1D,
    Dense,
    GCNLayer,
    Module,
    degree_features,
    renormalized_adjacency,
    sort_pooling_indices,
)
from repro.gnn.models import DCNN, DGCNN, PSGCNN, evaluate_model
from repro.gnn.training import Adam, train_graph_classifier

__all__ = [
    "Adam",
    "AnonymousWalkKernel",
    "Conv1D",
    "DCNN",
    "DGCNN",
    "Dense",
    "DeepGraphKernel",
    "GCNLayer",
    "Module",
    "PSGCNN",
    "Parameter",
    "Tensor",
    "anonymous_pattern",
    "degree_features",
    "evaluate_model",
    "glorot",
    "renormalized_adjacency",
    "sort_pooling_indices",
    "train_graph_classifier",
]
