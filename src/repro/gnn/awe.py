"""Anonymous Walk Embeddings (AWE, Ivanov & Burnaev, ICML 2018).

The feature-driven AWE variant: every random walk of length ``l`` from a
vertex maps to its *anonymous* pattern (the sequence of first-occurrence
indices, e.g. walk ``b->a->b->c`` becomes ``0,1,0,2``); the graph embedding
is the empirical distribution over anonymous patterns, estimated from
sampled walks. Graphs are compared with the RBF kernel over embeddings and
classified with the shared C-SVM protocol, as in the original paper.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.kernels.base import KernelTraits, PairwiseKernel
from repro.utils.rng import as_rng, spawn_seed
from repro.utils.validation import check_in_range, check_positive_int


def anonymous_pattern(walk: "list[int]") -> tuple:
    """Map a vertex walk to its anonymous pattern (first-occurrence ranks)."""
    seen: dict = {}
    pattern = []
    for vertex in walk:
        if vertex not in seen:
            seen[vertex] = len(seen)
        pattern.append(seen[vertex])
    return tuple(pattern)


def sample_awe_distribution(
    graph: Graph, *, walk_length: int, n_walks: int, rng
) -> dict:
    """Empirical anonymous-walk distribution as ``{pattern: probability}``."""
    neighbor_lists = graph.neighbor_lists()
    n = graph.n_vertices
    counts: dict = {}
    drawn = 0
    for _ in range(n_walks):
        vertex = int(rng.integers(0, n))
        walk = [vertex]
        for _ in range(walk_length):
            neighbors = neighbor_lists[walk[-1]]
            if not neighbors:
                break
            walk.append(int(neighbors[int(rng.integers(0, len(neighbors)))]))
        if len(walk) < 2:
            continue
        pattern = anonymous_pattern(walk)
        counts[pattern] = counts.get(pattern, 0) + 1
        drawn += 1
    if drawn == 0:
        return {}
    return {pattern: count / drawn for pattern, count in counts.items()}


class AnonymousWalkKernel(PairwiseKernel):
    """AWE embeddings compared with an RBF kernel (feature-driven variant)."""

    name = "AWE"
    traits = KernelTraits(
        framework="R-convolution",
        positive_definite=True,
        aligned=False,
        transitive=False,
        structure_patterns=("Local (Walks)",),
        computing_model="Classical",
        captures_local=True,
        captures_global=False,
        notes="anonymous walk distribution embedding + RBF",
    )

    def __init__(
        self,
        *,
        walk_length: int = 6,
        n_walks: int = 600,
        gamma: float = 16.0,
        seed=0,
    ) -> None:
        self.walk_length = check_positive_int(walk_length, "walk_length", minimum=2)
        self.n_walks = check_positive_int(n_walks, "n_walks", minimum=1)
        self.gamma = check_in_range(gamma, "gamma", low=0.0, high=np.inf, low_inclusive=False)
        self.seed = seed

    def prepare(self, graphs: "list[Graph]") -> list:
        rng = as_rng(self.seed)
        distributions = [
            sample_awe_distribution(
                g,
                walk_length=self.walk_length,
                n_walks=self.n_walks,
                rng=as_rng(spawn_seed(rng)),
            )
            for g in graphs
        ]
        # Build a shared pattern vocabulary so embeddings live in one space.
        vocabulary: dict = {}
        for distribution in distributions:
            for pattern in distribution:
                if pattern not in vocabulary:
                    vocabulary[pattern] = len(vocabulary)
        vectors = []
        dim = max(len(vocabulary), 1)
        for distribution in distributions:
            vector = np.zeros(dim)
            for pattern, probability in distribution.items():
                vector[vocabulary[pattern]] = probability
            vectors.append(vector)
        return vectors

    def pair_value(self, state_a, state_b) -> float:
        return float(np.exp(-self.gamma * np.sum((state_a - state_b) ** 2)))
