"""Neural layers for the Table V graph models, built on the numpy autograd."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.gnn.autograd import Parameter, Tensor, glorot
from repro.graphs.graph import Graph


class Module:
    """Base class: anything with trainable :class:`Parameter` attributes."""

    def parameters(self) -> "list[Parameter]":
        params: list = []
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Parameter):
                        params.append(item)
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None


class Dense(Module):
    """Affine layer ``X W + b``."""

    def __init__(self, fan_in: int, fan_out: int, rng: np.random.Generator):
        self.weight = Parameter(glorot(rng, fan_in, fan_out))
        self.bias = Parameter(np.zeros((1, fan_out)))

    def __call__(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class GCNLayer(Module):
    """Graph convolution ``\\hat{A} X W`` with renormalised adjacency.

    ``\\hat{A} = D^{-1/2} (A + I) D^{-1/2}`` is precomputed per graph by
    :func:`renormalized_adjacency` and passed in as a constant tensor, as in
    Kipf & Welling / DGCNN.
    """

    def __init__(self, fan_in: int, fan_out: int, rng: np.random.Generator):
        self.weight = Parameter(glorot(rng, fan_in, fan_out))

    def __call__(self, a_hat: Tensor, x: Tensor) -> Tensor:
        return a_hat @ (x @ self.weight)


class Conv1D(Module):
    """1-D convolution over rows via gather + matmul (im2col).

    Input ``(length, channels)``; output ``(length - kernel + 1, filters)``.
    """

    def __init__(self, channels: int, filters: int, kernel: int, rng):
        if kernel < 1:
            raise ValidationError(f"kernel must be >= 1, got {kernel}")
        self.kernel = kernel
        self.channels = channels
        self.weight = Parameter(glorot(rng, kernel * channels, filters))
        self.bias = Parameter(np.zeros((1, filters)))

    def __call__(self, x: Tensor) -> Tensor:
        length = x.data.shape[0]
        out_length = length - self.kernel + 1
        if out_length < 1:
            raise ValidationError(
                f"input length {length} shorter than kernel {self.kernel}"
            )
        windows = np.stack(
            [np.arange(i, i + self.kernel) for i in range(out_length)]
        ).reshape(-1)
        gathered = x.gather_rows(windows)  # (out_length * kernel, channels)
        stacked = gathered.reshape(out_length, self.kernel * self.channels)
        return stacked @ self.weight + self.bias


def renormalized_adjacency(graph: Graph) -> np.ndarray:
    """``D^{-1/2} (A + I) D^{-1/2}`` — the GCN propagation operator."""
    adjacency = (graph.adjacency > 0).astype(float) + np.eye(graph.n_vertices)
    degrees = adjacency.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, 1e-12))
    return adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]


def degree_features(graph: Graph, max_degree: int) -> np.ndarray:
    """One-hot (clipped) degree features — the standard choice for
    un-attributed graphs in the Table V baselines."""
    degrees = np.minimum(graph.unweighted_degrees().astype(int), max_degree)
    features = np.zeros((graph.n_vertices, max_degree + 1))
    features[np.arange(graph.n_vertices), degrees] = 1.0
    return features


def sort_pooling_indices(features: np.ndarray, k: int) -> np.ndarray:
    """DGCNN sort-pooling: order vertices by the last feature channel
    (descending, ties by earlier channels) and keep the top ``k`` — padding
    by repeating the last vertex if the graph is smaller than ``k``."""
    if features.shape[0] == 0:
        raise ValidationError("cannot sort-pool an empty feature matrix")
    keys = tuple(features[:, c] for c in range(features.shape[1]))
    order = np.lexsort(keys)[::-1]
    if order.size >= k:
        return order[:k]
    pad = np.full(k - order.size, order[-1], dtype=int)
    return np.concatenate([order, pad])
