"""Minimal reverse-mode automatic differentiation over numpy arrays.

The Table V deep baselines (DGCNN, DCNN, PSGCNN) need gradient training and
no deep-learning framework is available offline, so this module implements
a small tape-based autograd: a :class:`Tensor` wraps an ndarray, records the
operation that produced it, and :meth:`Tensor.backward` accumulates
gradients by reverse topological traversal.

Supported ops cover exactly what the models need: matmul, elementwise
arithmetic, relu/tanh/sigmoid, sum/mean, reshape/transpose/concatenate,
row gather (for sort-pooling and im2col convolutions) and a fused
softmax-cross-entropy loss.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


class Tensor:
    """A node in the autograd tape.

    Parameters
    ----------
    data:
        The value (any numpy-coercible array).
    requires_grad:
        Track gradients through this tensor (parameters set this).
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=float)
        self.grad: "np.ndarray | None" = None
        self.requires_grad = bool(requires_grad)
        self._parents: tuple = ()
        self._backward = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def _make(data, parents, backward) -> "Tensor":
        out = Tensor(data, requires_grad=any(p.requires_grad for p in parents))
        if out.requires_grad:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, gradient: np.ndarray) -> None:
        if not self.requires_grad:
            return
        gradient = _unbroadcast(gradient, self.data.shape)
        if self.grad is None:
            self.grad = gradient.copy()
        else:
            self.grad += gradient

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #

    def __add__(self, other):
        other = self._lift(other)

        def backward(grad):
            self._accumulate(grad)
            other._accumulate(grad)

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-self._lift(other))

    def __rsub__(self, other):
        return self._lift(other) + (-self)

    def __mul__(self, other):
        other = self._lift(other)

        def backward(grad):
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._lift(other)

        def backward(grad):
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data**2))

        return self._make(self.data / other.data, (self, other), backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product (2-D only, which is all the models use)."""
        other = self._lift(other)
        if self.data.ndim != 2 or other.data.ndim != 2:
            raise ValidationError("matmul expects 2-D tensors")

        def backward(grad):
            self._accumulate(grad @ other.data.T)
            other._accumulate(self.data.T @ grad)

        return self._make(self.data @ other.data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------ #
    # Nonlinearities
    # ------------------------------------------------------------------ #

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(float)

        def backward(grad):
            self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)

        def backward(grad):
            self._accumulate(grad * (1.0 - value**2))

        return self._make(value, (self,), backward)

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad):
            self._accumulate(grad * value * (1.0 - value))

        return self._make(value, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions and shape ops
    # ------------------------------------------------------------------ #

    def sum(self) -> "Tensor":
        def backward(grad):
            self._accumulate(np.full_like(self.data, float(grad)))

        return self._make(self.data.sum(), (self,), backward)

    def mean(self, axis: "int | None" = None) -> "Tensor":
        if axis is None:
            count = self.data.size

            def backward(grad):
                self._accumulate(np.full_like(self.data, float(grad) / count))

            return self._make(self.data.mean(), (self,), backward)

        count = self.data.shape[axis]

        def backward_axis(grad):
            self._accumulate(np.expand_dims(grad, axis) / count * np.ones_like(self.data))

        return self._make(self.data.mean(axis=axis), (self,), backward_axis)

    def reshape(self, *shape) -> "Tensor":
        original = self.data.shape

        def backward(grad):
            self._accumulate(grad.reshape(original))

        return self._make(self.data.reshape(*shape), (self,), backward)

    def transpose(self) -> "Tensor":
        def backward(grad):
            self._accumulate(grad.T)

        return self._make(self.data.T, (self,), backward)

    def gather_rows(self, indices) -> "Tensor":
        """Select rows (with repetition allowed); gradients scatter-add back."""
        idx = np.asarray(indices, dtype=int)

        def backward(grad):
            out = np.zeros_like(self.data)
            np.add.at(out, idx, grad)
            self._accumulate(out)

        return self._make(self.data[idx], (self,), backward)

    @staticmethod
    def concatenate(tensors: "list[Tensor]", axis: int = 1) -> "Tensor":
        tensors = [Tensor._lift(t) for t in tensors]
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(int(lo), int(hi))
                t._accumulate(grad[tuple(slicer)])

        data = np.concatenate([t.data for t in tensors], axis=axis)
        return Tensor._make(data, tensors, backward)

    # ------------------------------------------------------------------ #
    # Loss
    # ------------------------------------------------------------------ #

    def softmax_cross_entropy(self, target_index: int) -> "Tensor":
        """Fused softmax + NLL for a single ``(1, n_classes)`` logit row."""
        logits = self.data.reshape(-1)
        shifted = logits - logits.max()
        exp = np.exp(shifted)
        probs = exp / exp.sum()
        loss = -float(np.log(max(probs[int(target_index)], 1e-12)))

        def backward(grad):
            delta = probs.copy()
            delta[int(target_index)] -= 1.0
            self._accumulate(float(grad) * delta.reshape(self.data.shape))

        return self._make(loss, (self,), backward)

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #

    def backward(self) -> None:
        """Accumulate gradients of this scalar w.r.t. every ancestor."""
        if self.data.size != 1:
            raise ValidationError("backward() requires a scalar tensor")
        ordering: list = []
        seen: set = set()

        def topo(node: "Tensor") -> None:
            if id(node) in seen or not node.requires_grad:
                return
            seen.add(id(node))
            for parent in node._parents:
                topo(parent)
            ordering.append(node)

        topo(self)
        self.grad = np.ones_like(self.data)
        for node in reversed(ordering):
            if node._backward is not None:
                node._backward(node.grad)


def _unbroadcast(gradient: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce a broadcasted gradient back to the original shape."""
    grad = np.asarray(gradient, dtype=float)
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` by construction)."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


def glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier-uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))
