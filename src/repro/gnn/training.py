"""Adam optimiser and the shared training loop for the Table V models."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.gnn.autograd import Parameter
from repro.utils.rng import as_rng


class Adam:
    """Adam (Kingma & Ba) over a fixed parameter list."""

    def __init__(
        self,
        parameters: "list[Parameter]",
        learning_rate: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if not parameters:
            raise ValidationError("Adam needs at least one parameter")
        self.parameters = list(parameters)
        self.learning_rate = learning_rate
        self.beta1, self.beta2, self.epsilon = beta1, beta2, epsilon
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self._t += 1
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad**2
            m_hat = self._m[i] / (1 - self.beta1**self._t)
            v_hat = self._v[i] / (1 - self.beta2**self._t)
            p.data -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None


def train_graph_classifier(
    model,
    graphs,
    targets,
    *,
    n_epochs: int = 60,
    batch_size: int = 16,
    learning_rate: float = 1e-2,
    seed=0,
) -> list:
    """Mini-batch training of any model exposing ``loss(graph, target)``.

    Gradients are accumulated per batch (graphs have ragged sizes, so
    batching is a loop) and averaged before each Adam step. Returns the
    per-epoch mean loss curve.
    """
    rng = as_rng(seed)
    targets = np.asarray(targets, dtype=int)
    optimizer = Adam(model.parameters(), learning_rate=learning_rate)
    n = len(graphs)
    curve = []
    for _ in range(n_epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        for start in range(0, n, batch_size):
            batch = order[start : start + batch_size]
            optimizer.zero_grad()
            batch_loss = 0.0
            for index in batch:
                loss = model.loss(graphs[index], int(targets[index]))
                loss.backward()
                batch_loss += float(loss.data)
            for p in model.parameters():
                if p.grad is not None:
                    p.grad /= len(batch)
            optimizer.step()
            epoch_loss += batch_loss
        curve.append(epoch_loss / n)
    return curve
