"""Deep Graph Kernel (DGK, Yanardag & Vishwanathan, KDD 2015).

DGK lifts a substructure-count kernel ``K = Phi Phiᵀ`` to
``K = Phi M Phiᵀ`` where ``M`` encodes learned substructure similarity.
Following the paper's WL variant, ``M`` is built from substructure
co-occurrence: labels that appear in the same graphs get correlated rows,
via a PMI-flavoured, PSD-projected similarity of the co-occurrence counts.

The original learns ``M`` with a skip-gram model over substructure
"sentences"; the co-occurrence PMI construction below is the standard
count-based equivalent (Levy & Goldberg 2014) and keeps the pipeline
deterministic and dependency-free. Classification uses the same C-SVM
protocol as the kernels.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.kernels.base import GraphKernel, KernelTraits
from repro.kernels.wl import wl_feature_matrix
from repro.utils.linalg import project_to_psd
from repro.utils.validation import check_in_range, check_positive_int


class DeepGraphKernel(GraphKernel):
    """DGK over WL subtree features with a PMI co-occurrence matrix ``M``."""

    name = "DGK"
    traits = KernelTraits(
        framework="R-convolution",
        positive_definite=True,
        aligned=False,
        transitive=False,
        structure_patterns=("Local (Subtrees)", "Learned embeddings"),
        computing_model="Classical",
        captures_local=True,
        captures_global=False,
        notes="count-based PMI embedding of WL substructures",
    )

    def __init__(self, *, n_iterations: int = 3, smoothing: float = 1.0) -> None:
        self.n_iterations = check_positive_int(n_iterations, "n_iterations", minimum=0)
        self.smoothing = check_in_range(
            smoothing, "smoothing", low=0.0, high=np.inf, low_inclusive=False
        )

    def _compute_gram(self, graphs: "list[Graph]", *, engine=None) -> np.ndarray:
        features = wl_feature_matrix(graphs, self.n_iterations)
        similarity = self._substructure_similarity(features)
        return features @ similarity @ features.T

    def _substructure_similarity(self, features: np.ndarray) -> np.ndarray:
        """PSD similarity between substructures from graph co-occurrence."""
        presence = (features > 0).astype(float)  # (graphs, labels)
        cooccurrence = presence.T @ presence  # label-by-label counts
        label_freq = np.maximum(presence.sum(axis=0), 1.0)
        total = max(float(presence.shape[0]), 1.0)
        expected = np.outer(label_freq, label_freq) / total
        pmi = np.log((cooccurrence + self.smoothing) / (expected + self.smoothing))
        pmi = np.clip(pmi, 0.0, None)  # positive PMI
        np.fill_diagonal(pmi, pmi.diagonal() + 1.0)  # keep self-similarity dominant
        return project_to_psd((pmi + pmi.T) / 2.0)
