"""The tile worker: claim → compute → commit → heartbeat, until done.

``python -m repro.distributed.worker --store dir:/shared --job <id>``
turns any machine that can reach the store into one more participant in
a Gram computation. Workers share nothing but the store: the job record
tells them what to compute and exactly how (engine, tile size, compute
policy), the tile ledger tells them what remains, and the lease table
keeps them off each other's tiles (:mod:`repro.store.claims`).

The loop is deliberately crash-shaped. A worker SIGKILLed at *any* point
leaves either (a) an unclaimed pending tile, (b) a lease that expires
after its TTL and is stolen by a survivor, or (c) a committed tile plus
a stale lease that the next claimant releases — in every case the job
completes with byte-identical results, because tiles are pure functions
of their content keys and commits are idempotent CAS writes.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import threading
import time
import uuid

from repro.backend import policy_scope
from repro.errors import DistributedError
from repro.store.artifacts import ArtifactStore
from repro.store.claims import DEFAULT_LEASE_TTL, TileClaims
from repro.store.tiles import TileLedger, tile_keyer_for

from repro.distributed.jobspec import JOB_KIND, load_job, tile_computer

#: Default seconds a worker sleeps between sweeps that found no free tile.
DEFAULT_POLL = 0.2

#: Default seconds a watching worker sleeps between job-prefix polls.
DEFAULT_WATCH_POLL = 1.0


def default_worker_id() -> str:
    """``host-pid-nonce`` — unique even across forked twins."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


class _HeartbeatThread(threading.Thread):
    """Renews the lease of whichever tile the worker currently computes.

    A daemon thread so a crashing worker takes its heartbeat down with it
    — which is precisely what lets survivors observe the lease expiring.
    """

    def __init__(self, claims: TileClaims, interval: float) -> None:
        super().__init__(name="tile-lease-heartbeat", daemon=True)
        self.claims = claims
        self.interval = float(interval)
        self._lock = threading.Lock()
        self._lease = None
        self._done = threading.Event()

    def watch(self, lease) -> None:
        with self._lock:
            self._lease = lease

    def clear(self) -> None:
        with self._lock:
            self._lease = None

    def stop(self) -> None:
        self._done.set()

    def run(self) -> None:  # pragma: no cover - timing-dependent loop
        while not self._done.wait(self.interval):
            with self._lock:
                lease = self._lease
            if lease is None:
                continue
            renewed = self.claims.heartbeat(lease)
            if renewed is None:
                # Lost to a stealer after a stall; stop renewing and let
                # the main loop's (idempotent) commit finish the tile.
                self.clear()
                continue
            with self._lock:
                if self._lease is not None and self._lease.key == renewed.key:
                    self._lease = renewed


class TileWorker:
    """One claim→compute→commit participant in a seeded job.

    Parameters
    ----------
    store:
        The shared store — an :class:`~repro.store.ArtifactStore` or an
        address string (``dir:/path``, ``mem:name``).
    job_id:
        A job seeded by :func:`repro.distributed.jobspec.seed_job`.
    worker_id:
        Identity written into lease records; defaults to
        ``host-pid-nonce``.
    ttl:
        Lease time-to-live. The heartbeat renews every ``ttl / 4``
        seconds, so only a *dead* worker's leases expire.
    poll:
        Sleep between sweeps that found every pending tile claimed.
    tile_delay:
        Extra seconds slept inside each tile computation — a test/bench
        hook that widens the kill window; never set in production.
    """

    def __init__(
        self,
        store: "ArtifactStore | str",
        job_id: str,
        *,
        worker_id: "str | None" = None,
        ttl: float = DEFAULT_LEASE_TTL,
        poll: float = DEFAULT_POLL,
        tile_delay: float = 0.0,
    ) -> None:
        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self.job_id = str(job_id)
        self.worker_id = worker_id or default_worker_id()
        self.poll = float(poll)
        self.tile_delay = float(tile_delay)
        self.spec, self.graphs = load_job(self.store, self.job_id)
        self.kernel = self.spec.make_kernel()
        self.engine = self.spec.resolved_engine()
        self.engine.policy = self.spec.compute_policy()
        self.plan = self.spec.plan()
        self.ledger = TileLedger(
            self.store, tile_keyer_for(self.kernel, self.graphs), self.plan
        )
        self.claims = TileClaims(self.store, ttl=ttl)

    def run(self, *, max_tiles: "int | None" = None) -> dict:
        """Participate until the job completes (or ``max_tiles`` landed).

        Returns the worker's accounting: tiles computed here, sweeps
        over the plan, claim contentions lost, and wall-clock seconds.
        """
        stats = {
            "worker": self.worker_id,
            "job": self.job_id,
            "computed": 0,
            "contended": 0,
            "sweeps": 0,
            "elapsed": 0.0,
        }
        started = time.monotonic()
        # Preparation (states / feature extraction) runs outside the
        # policy scope, exactly like the single-process gram path.
        compute = tile_computer(self.kernel, self.graphs, self.engine)
        heartbeat = _HeartbeatThread(self.claims, self.claims.ttl / 4.0)
        heartbeat.start()
        try:
            while True:
                stats["sweeps"] += 1
                landed = self._sweep(compute, heartbeat, stats, max_tiles)
                if max_tiles is not None and stats["computed"] >= max_tiles:
                    break
                if self.ledger.complete():
                    break
                if not landed:
                    # Everything pending is claimed by live peers (or a
                    # lease has yet to expire) — wait, then re-sweep.
                    time.sleep(self.poll)
        finally:
            heartbeat.stop()
            stats["elapsed"] = time.monotonic() - started
        return stats

    def _sweep(self, compute, heartbeat, stats, max_tiles) -> bool:
        """One pass over the plan; True when at least one tile landed."""
        landed = False
        for rows, cols, key in self.ledger.entries():
            if max_tiles is not None and stats["computed"] >= max_tiles:
                return landed
            if self.ledger.is_done(key):
                continue
            lease = self.claims.claim(key, self.worker_id)
            if lease is None:
                stats["contended"] += 1
                continue
            if self.ledger.is_done(key):
                # Committed between our pending-probe and the claim (we
                # inherited a finished tile's stale lease) — just clean up.
                self.claims.release(lease)
                continue
            heartbeat.watch(lease)
            try:
                with policy_scope(self.engine.policy):
                    block = compute(rows, cols, self.plan.is_diagonal(rows, cols))
                if self.tile_delay:
                    time.sleep(self.tile_delay)
                self.ledger.commit(rows, cols, block)
            finally:
                heartbeat.clear()
            self.claims.release(lease)
            stats["computed"] += 1
            landed = True
        return landed


def watch_jobs(
    store: "ArtifactStore | str",
    *,
    worker_id: "str | None" = None,
    ttl: float = DEFAULT_LEASE_TTL,
    poll: float = DEFAULT_POLL,
    watch_poll: float = DEFAULT_WATCH_POLL,
    tile_delay: float = 0.0,
    idle_timeout: "float | None" = None,
    max_jobs: "int | None" = None,
) -> dict:
    """Daemon mode: poll the store's job prefix and work every job found.

    Instead of exiting after one ``--job`` id, the worker sweeps
    ``store.list_keys("job")``, participates in each job it has not
    finished yet (newest submissions included — a coordinator can keep
    seeding work at a pool of long-lived watchers), and sleeps
    ``watch_poll`` seconds between sweeps that found nothing new.
    Completed job ids are remembered in-process, so a finished job costs
    one ledger probe per sweep at most once.

    ``idle_timeout`` bounds how long the watcher idles (seconds with no
    job worked) before returning — ``None`` watches forever;
    ``max_jobs`` returns after that many jobs completed (testing hook).
    Returns the watcher's accounting: per-job stats plus totals.
    """
    store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
    worker_id = worker_id or default_worker_id()
    finished: set = set()
    totals = {
        "worker": worker_id,
        "jobs": 0,
        "computed": 0,
        "sweeps": 0,
        "per_job": [],
    }
    idle_since = time.monotonic()
    while True:
        totals["sweeps"] += 1
        worked = False
        for job_id in store.list_keys(JOB_KIND):
            if job_id in finished:
                continue
            worker = TileWorker(
                store,
                job_id,
                worker_id=worker_id,
                ttl=ttl,
                poll=poll,
                tile_delay=tile_delay,
            )
            stats = worker.run()
            finished.add(job_id)
            totals["jobs"] += 1
            totals["computed"] += stats["computed"]
            totals["per_job"].append(stats)
            worked = True
            if max_jobs is not None and totals["jobs"] >= max_jobs:
                return totals
        if worked:
            idle_since = time.monotonic()
        elif (
            idle_timeout is not None
            and time.monotonic() - idle_since >= idle_timeout
        ):
            return totals
        else:
            time.sleep(watch_poll)


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point: run one worker against a seeded job."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.distributed.worker",
        description=(
            "Join a distributed Gram computation: claim pending tiles "
            "from the shared store, compute them under the job's pinned "
            "engine/tile/compute policy, commit, repeat until complete."
        ),
    )
    parser.add_argument(
        "--store",
        required=True,
        help="store address shared with the coordinator (dir:/path, mem:name)",
    )
    parser.add_argument(
        "--job",
        default=None,
        help="job id printed by the coordinator (required unless --watch)",
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="daemon mode: poll the store's job prefix and work every job "
        "found instead of exiting after one --job",
    )
    parser.add_argument(
        "--watch-poll",
        type=float,
        default=DEFAULT_WATCH_POLL,
        help="seconds between job-prefix polls in --watch mode "
        f"(default {DEFAULT_WATCH_POLL})",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="exit --watch mode after this many seconds without work "
        "(default: watch forever)",
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit --watch mode after completing this many jobs",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="lease identity (default: host-pid-nonce)",
    )
    parser.add_argument(
        "--ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        help=f"lease time-to-live in seconds (default {DEFAULT_LEASE_TTL})",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=DEFAULT_POLL,
        help="seconds between sweeps when all pending tiles are claimed",
    )
    parser.add_argument(
        "--max-tiles",
        type=int,
        default=None,
        help="exit after landing this many tiles (testing hook)",
    )
    parser.add_argument(
        "--tile-delay",
        type=float,
        default=0.0,
        help="extra seconds slept per tile (kill-window testing hook)",
    )
    args = parser.parse_args(argv)
    if args.watch == (args.job is not None):
        parser.error("pass exactly one of --job ID or --watch")
    try:
        if args.watch:
            stats = watch_jobs(
                args.store,
                worker_id=args.worker_id,
                ttl=args.ttl,
                poll=args.poll,
                watch_poll=args.watch_poll,
                tile_delay=args.tile_delay,
                idle_timeout=args.idle_timeout,
                max_jobs=args.max_jobs,
            )
        else:
            worker = TileWorker(
                args.store,
                args.job,
                worker_id=args.worker_id,
                ttl=args.ttl,
                poll=args.poll,
                tile_delay=args.tile_delay,
            )
            stats = worker.run(max_tiles=args.max_tiles)
    except DistributedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(stats, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
