"""Job specs: the serialized contract between coordinator and workers.

A distributed Gram job is fully described by a small JSON record — the
resolved :class:`~repro.kernels.registry.KernelSpec`, the collection
digest, the engine name, the tile size, and the resolved compute policy
— plus the pickled graph collection. Both are seeded *into the store
itself* under the job id (the record's content hash), so the only thing
a worker needs to be told is ``(store address, job id)``: everything
else it reads from the store it is already pointed at.

Pinning engine, tile size, and compute policy in the record is what
makes K-worker convergence byte-identical: tile values depend on the
backend's batching arithmetic and on the tile boundaries, so every
worker must compute every tile exactly the way the single-process
reference would. The job id hashes the full record — two jobs differing
only in tile size are different jobs with disjoint tile keys.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

import numpy as np

from repro.backend import ComputePolicy
from repro.engine.base import resolve_engine
from repro.engine.tiles import TilePlan
from repro.errors import DistributedError
from repro.graphs.hashing import collection_digest
from repro.kernels.registry import KernelSpec, as_spec
from repro.store.artifacts import ArtifactStore, artifact_key
from repro.store.tiles import TileLedger, tile_keyer_for

#: Store kind holding job records (JSON).
JOB_KIND = "job"

#: Store kind holding the pickled input collection of a job.
JOB_INPUT_KIND = "job-input"

#: Record-schema version; bump on incompatible layout changes.
_JOB_VERSION = "job-v1"


@dataclass(frozen=True)
class JobSpec:
    """The immutable description of one distributed Gram computation."""

    kernel_spec: dict
    collection: str
    n_graphs: int
    engine: str
    tile_size: int
    backend: str
    precision: str
    entropy: str
    normalize: bool = False

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    def to_record(self) -> dict:
        record = asdict(self)
        record["version"] = _JOB_VERSION
        return record

    @classmethod
    def from_record(cls, record: dict) -> "JobSpec":
        if not isinstance(record, dict):
            raise DistributedError(
                f"a job record must be a dict, got {type(record).__name__}"
            )
        version = record.get("version")
        if version != _JOB_VERSION:
            raise DistributedError(
                f"job record version {version!r} is not {_JOB_VERSION!r} — "
                "coordinator and workers must run the same code generation"
            )
        fields = {key: value for key, value in record.items() if key != "version"}
        try:
            return cls(**fields)
        except TypeError as exc:
            raise DistributedError(f"malformed job record: {exc}") from None

    @property
    def job_id(self) -> str:
        """Content hash of the record — the job's store identity."""
        return artifact_key(
            _JOB_VERSION, json.dumps(self.to_record(), sort_keys=True)
        )

    # ------------------------------------------------------------------ #
    # Materialisation (what a worker rebuilds from the record)
    # ------------------------------------------------------------------ #

    def make_kernel(self):
        """The kernel this job computes (spec-validated construction)."""
        return KernelSpec.from_dict(self.kernel_spec).make()

    def compute_policy(self) -> ComputePolicy:
        return ComputePolicy(
            backend=self.backend, precision=self.precision, entropy=self.entropy
        )

    def resolved_engine(self):
        """A fresh engine instance pinned to the job's tile size."""
        engine = resolve_engine(self.engine)
        engine.tile_size = int(self.tile_size)
        return engine

    def plan(self) -> TilePlan:
        return TilePlan.gram(self.n_graphs, self.tile_size)

    def ledger(self, store: ArtifactStore, graphs) -> TileLedger:
        """The job's tile ledger — identical keys on every participant."""
        return TileLedger(
            store, tile_keyer_for(self.make_kernel(), graphs), self.plan()
        )


def job_spec_for(
    spec_or_name,
    graphs,
    *,
    ctx=None,
    normalize: "bool | None" = None,
) -> JobSpec:
    """Build the :class:`JobSpec` describing ``kernel.gram(graphs)`` under
    ``ctx`` (engine / tile size / compute policy resolved *now*, so every
    worker reproduces this exact schedule).
    """
    from repro.api.context import ExecutionContext

    ctx = ExecutionContext() if ctx is None else ctx
    graphs = list(graphs)
    spec = as_spec(spec_or_name).resolved()
    kernel = spec.make()
    if not getattr(kernel, "streams_tiles", False):
        raise DistributedError(
            f"kernel {kernel.name!r} computes dense-replay Grams (no "
            "genuine tile stream) — tiles cannot be distributed; use a "
            "streaming kernel (pairwise or feature-map families)"
        )
    engine = kernel._resolve_engine(ctx.engine_argument(kernel))
    policy = ctx.compute_policy()
    return JobSpec(
        kernel_spec=spec.to_dict(),
        collection=collection_digest(graphs),
        n_graphs=len(graphs),
        engine=engine.name,
        tile_size=engine.resolved_tile_size(),
        backend=policy.backend,
        precision=policy.precision,
        entropy=policy.entropy,
        normalize=bool(ctx.policy(normalize, "normalize", False)),
    )


def seed_job(store: ArtifactStore, spec: JobSpec, graphs) -> str:
    """Write the job record + input collection into the store.

    Idempotent: records are content-addressed by :attr:`JobSpec.job_id`,
    so re-seeding the same job (a coordinator restarted after a crash)
    CAS-loses harmlessly against its own earlier bytes.
    """
    graphs = list(graphs)
    if len(graphs) != spec.n_graphs:
        raise DistributedError(
            f"job spec covers {spec.n_graphs} graphs, got {len(graphs)}"
        )
    digest = collection_digest(graphs)
    if digest != spec.collection:
        raise DistributedError(
            "graph collection does not match the job spec's collection "
            f"digest ({digest[:12]}… != {spec.collection[:12]}…)"
        )
    job_id = spec.job_id
    record = json.dumps(spec.to_record(), sort_keys=True).encode()
    store.put_if_absent(JOB_KIND, job_id, record, suffix=".json")
    if not store.has(JOB_INPUT_KIND, job_id):
        store.put_object(JOB_INPUT_KIND, job_id, graphs)
    return job_id


def load_job(store: ArtifactStore, job_id: str) -> "tuple[JobSpec, list]":
    """Read a seeded job back: ``(spec, graphs)``, digest-verified.

    Raises a named :class:`~repro.errors.DistributedError` when the job
    is unknown at this store address or its input collection is missing
    or corrupt — the triage message a mispointed worker needs.
    """
    record = store.get_bytes(JOB_KIND, job_id, suffix=".json")
    if record is None:
        raise DistributedError(
            f"no job {job_id!r} at store {store.address!r} — was the job "
            "seeded, and is this the coordinator's store address?"
        )
    spec = JobSpec.from_record(json.loads(record.decode()))
    graphs = store.get_object(JOB_INPUT_KIND, job_id)
    if graphs is None:
        raise DistributedError(
            f"job {job_id!r} has no input collection at {store.address!r}"
        )
    graphs = list(graphs)
    digest = collection_digest(graphs)
    if digest != spec.collection:
        raise DistributedError(
            f"job {job_id!r}: stored collection digest mismatch "
            f"({digest[:12]}… != {spec.collection[:12]}…) — torn or "
            "foreign input artifact"
        )
    return spec, graphs


def tile_computer(kernel, graphs, engine):
    """``compute(rows, cols, diagonal) -> block`` for one job participant.

    Exactly the arithmetic the engine scheduler runs per tile: pairwise
    kernels prepare their states once and evaluate
    :meth:`~repro.engine.base.GramEngine.compute_tile` per slice pair;
    feature-map kernels extract features once and stream matmul tiles
    (the same block function their ``_compute_gram_into`` uses). Callers
    install the job's compute policy around the loop, mirroring
    :meth:`GramEngine.execute`.
    """
    from repro.kernels.base import FeatureMapKernel, PairwiseKernel

    graphs = list(graphs)
    if isinstance(kernel, PairwiseKernel):
        states = kernel._prepared_states(graphs)

        def compute(rows, cols, diagonal):
            slice_a = states[rows[0] : rows[1]]
            slice_b = [] if diagonal else states[cols[0] : cols[1]]
            return engine.compute_tile(kernel, slice_a, slice_b, diagonal)

        return compute
    if isinstance(kernel, FeatureMapKernel):
        features = np.asarray(kernel.feature_matrix(graphs), dtype=float)

        def compute(rows, cols, diagonal):
            tile = features[rows[0] : rows[1]] @ features[cols[0] : cols[1]].T
            return (tile + tile.T) / 2.0 if diagonal else tile

        return compute
    raise DistributedError(
        f"kernel {kernel.name!r} has no tile-at-a-time computation path"
    )
