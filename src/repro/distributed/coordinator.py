"""The coordinator: seed a job, watch it converge, assemble the Gram.

The coordinator is *not* a scheduler — workers self-schedule through the
store's lease table. It owns the three bookends of a distributed Gram:

* **submit** — resolve the kernel/engine/policy into a
  :class:`~repro.distributed.jobspec.JobSpec`, seed record + input
  collection into the store, print one job id for workers to join;
* **watch** — poll the tile ledger (``done/total``) and the lease table
  (active workers) until every tile of the plan is committed;
* **assemble** — restore the committed tiles through a dense sink (the
  same mirroring the live engines use) and apply the job's post-pass,
  reproducing ``kernel.gram(graphs, ctx=ctx)`` byte-for-byte.

:func:`run_distributed_gram` strings the three together around locally
spawned worker subprocesses — the one-call form the smoke tests, the CI
multi-worker job, and the bench harness use.
"""

from __future__ import annotations

import subprocess
import sys
import time

import numpy as np

from repro.errors import DistributedError, ValidationError
from repro.store.artifacts import ArtifactStore, gram_key
from repro.store.backends import DirectoryBackend
from repro.store.claims import DEFAULT_LEASE_TTL, TileClaims
from repro.store.tiles import TileLedger, tile_keyer_for

from repro.distributed.jobspec import (
    JobSpec,
    job_spec_for,
    load_job,
    seed_job,
)
from repro.distributed.worker import DEFAULT_POLL, TileWorker

#: Default seconds between coordinator progress polls while waiting.
DEFAULT_WATCH_POLL = 0.2


class DistributedJob:
    """One seeded Gram job, as the coordinator sees it."""

    def __init__(
        self,
        store: "ArtifactStore | str",
        spec: JobSpec,
        graphs,
        *,
        ttl: float = DEFAULT_LEASE_TTL,
    ) -> None:
        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self.spec = spec
        self.graphs = list(graphs)
        self.kernel = spec.make_kernel()
        self.plan = spec.plan()
        self.ledger = TileLedger(
            self.store, tile_keyer_for(self.kernel, self.graphs), self.plan
        )
        self.claims = TileClaims(self.store, ttl=ttl)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def submit(
        cls,
        store: "ArtifactStore | str",
        kernel,
        graphs,
        *,
        ctx=None,
        normalize: "bool | None" = None,
        ttl: float = DEFAULT_LEASE_TTL,
    ) -> "DistributedJob":
        """Seed ``kernel.gram(graphs)`` under ``ctx`` as a joinable job.

        ``kernel`` is a registry name, :class:`KernelSpec`, or kernel
        instance (anything :func:`repro.kernels.registry.as_spec`
        accepts) — workers rebuild it from the spec, so it must be
        registry-expressible.
        """
        store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        graphs = list(graphs)
        spec = job_spec_for(kernel, graphs, ctx=ctx, normalize=normalize)
        seed_job(store, spec, graphs)
        return cls(store, spec, graphs, ttl=ttl)

    @classmethod
    def attach(
        cls,
        store: "ArtifactStore | str",
        job_id: str,
        *,
        ttl: float = DEFAULT_LEASE_TTL,
    ) -> "DistributedJob":
        """Re-open a previously seeded job (coordinator restart)."""
        store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        spec, graphs = load_job(store, job_id)
        return cls(store, spec, graphs, ttl=ttl)

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    # ------------------------------------------------------------------ #
    # Watching
    # ------------------------------------------------------------------ #

    def progress(self) -> dict:
        """Ledger + lease snapshot: committed tiles and live workers."""
        done = self.ledger.done_count()
        pending = [key for _, _, key in self.ledger.pending()]
        leases = self.claims.active(pending)
        return {
            "job": self.job_id,
            "done": done,
            "total": self.ledger.total(),
            "active_leases": len(leases),
            "workers": sorted({lease.worker for lease in leases.values()}),
        }

    def wait(
        self,
        *,
        timeout: "float | None" = None,
        poll: float = DEFAULT_WATCH_POLL,
    ) -> dict:
        """Block until every tile is committed; returns final progress.

        Raises a :class:`~repro.errors.DistributedError` carrying the
        last progress snapshot when ``timeout`` elapses first — the
        caller decides whether to spawn more workers or give up.
        """
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        while True:
            if self.ledger.complete():
                return self.progress()
            if deadline is not None and time.monotonic() >= deadline:
                snapshot = self.progress()
                raise DistributedError(
                    f"job {self.job_id} incomplete after {timeout}s: "
                    f"{snapshot['done']}/{snapshot['total']} tiles done, "
                    f"{snapshot['active_leases']} leases active"
                )
            time.sleep(float(poll))

    # ------------------------------------------------------------------ #
    # Assembly
    # ------------------------------------------------------------------ #

    def assemble(self, *, persist: bool = True) -> np.ndarray:
        """The finished Gram, byte-identical to the single-process run.

        Restores every committed tile through a dense sink (off-diagonal
        mirroring identical to the live engines), then applies the dense
        gram path's post-pass: the ``(K + Kᵀ)/2`` symmetrisation (exact
        identity here — tiles are symmetric by construction) and, when
        the job was submitted with ``normalize``, cosine normalisation.

        ``persist=True`` additionally commits the result under its
        whole-Gram content key, so any later ``kernel.gram(graphs,
        ctx=ctx_with_this_store)`` is a cache hit; collection-dependent
        tile sets are then reclaimed, mirroring
        :func:`~repro.store.artifacts.store_backed_gram`.
        """
        from repro.kernels.base import normalize_gram

        if not self.ledger.complete():
            snapshot = self.progress()
            raise DistributedError(
                f"job {self.job_id} cannot assemble: "
                f"{snapshot['total'] - snapshot['done']} of "
                f"{snapshot['total']} tiles still pending"
            )
        try:
            matrix = np.asarray(self.ledger.restore_into(), dtype=float)
        except ValidationError as exc:
            # A tile vanished between the completeness probe and the
            # restore (foreign sweep) — surface it as the job's problem.
            raise DistributedError(
                f"job {self.job_id} lost tiles during assembly: {exc}"
            ) from exc
        matrix = (matrix + matrix.T) / 2.0
        if self.spec.normalize:
            matrix = normalize_gram(matrix)
        if persist:
            key = gram_key(
                self.kernel,
                self.graphs,
                normalize=self.spec.normalize,
                ensure_psd=False,
            )
            self.store.put_array("gram", key, matrix)
            self.cleanup(
                discard_tiles=not getattr(
                    self.kernel, "collection_independent", False
                )
            )
        return matrix

    def cleanup(self, *, discard_tiles: bool = False) -> None:
        """Drop the job's lease records (and optionally its tiles)."""
        for _, _, key in self.ledger.entries():
            self.claims.store.delete_bytes(self.claims.kind, key, suffix=".json")
        if discard_tiles:
            from repro.store.tiles import discard_plan_tiles

            discard_plan_tiles(self.store, self.ledger.keyer, self.plan)

    # ------------------------------------------------------------------ #
    # Local participation
    # ------------------------------------------------------------------ #

    def run_inline(self, **worker_kwargs) -> dict:
        """Run one worker inside this process (tests, single-node use)."""
        worker = TileWorker(
            self.store, self.job_id, ttl=self.claims.ttl, **worker_kwargs
        )
        return worker.run()


def spawn_worker(
    store_address: str,
    job_id: str,
    *,
    worker_id: "str | None" = None,
    ttl: float = DEFAULT_LEASE_TTL,
    poll: float = DEFAULT_POLL,
    tile_delay: float = 0.0,
    python: "str | None" = None,
) -> subprocess.Popen:
    """Launch ``python -m repro.distributed.worker`` as a subprocess.

    The child inherits this process's environment (``PYTHONPATH`` and
    the ``REPRO_*`` knobs included — though the job spec, not the
    environment, decides what the worker computes).
    """
    command = [
        python or sys.executable,
        "-m",
        "repro.distributed.worker",
        "--store",
        str(store_address),
        "--job",
        str(job_id),
        "--ttl",
        str(float(ttl)),
        "--poll",
        str(float(poll)),
    ]
    if worker_id:
        command += ["--worker-id", str(worker_id)]
    if tile_delay:
        command += ["--tile-delay", str(float(tile_delay))]
    return subprocess.Popen(command)


def run_distributed_gram(
    kernel,
    graphs,
    store: "ArtifactStore | str",
    *,
    workers: int = 2,
    ctx=None,
    normalize: "bool | None" = None,
    ttl: float = DEFAULT_LEASE_TTL,
    timeout: "float | None" = 300.0,
    tile_delay: float = 0.0,
) -> np.ndarray:
    """Submit, fan out ``workers`` local subprocesses, wait, assemble.

    The one-call distributed form of ``kernel.gram(graphs, ctx=ctx)``.
    Requires a ``dir:`` (shared-filesystem) store — subprocesses cannot
    see a ``mem:`` backend, which lives in this process's memory.
    """
    if int(workers) < 1:
        raise DistributedError(f"need at least 1 worker, got {workers}")
    job = DistributedJob.submit(store, kernel, graphs, ctx=ctx, normalize=normalize, ttl=ttl)
    if not isinstance(job.store.backend, DirectoryBackend):
        raise DistributedError(
            f"subprocess workers need a shared dir: store, got "
            f"{job.store.address!r} — use run_inline() for in-process "
            "backends"
        )
    procs = [
        spawn_worker(
            job.store.address,
            job.job_id,
            worker_id=f"local-{index}",
            ttl=ttl,
            tile_delay=tile_delay,
        )
        for index in range(int(workers))
    ]
    try:
        job.wait(timeout=timeout)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                proc.kill()
    return job.assemble()
