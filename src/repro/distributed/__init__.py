"""Distributed Gram computation: work-stealing tile workers over a store.

Built on three earlier layers — content-addressed tiles
(:mod:`repro.store.tiles`), pluggable store backends with CAS
(:mod:`repro.store.backends`), and the lease/heartbeat claim protocol
(:mod:`repro.store.claims`) — this package adds the processes:

* :class:`~repro.distributed.jobspec.JobSpec` — a job's full identity
  (kernel spec, collection digest, engine, tile size, compute policy),
  seeded into the store so workers need only ``(address, job id)``;
* :class:`~repro.distributed.worker.TileWorker` and its CLI
  (``python -m repro.distributed.worker``) — the claim → compute →
  commit → heartbeat loop;
* :class:`~repro.distributed.coordinator.DistributedJob` /
  :func:`~repro.distributed.coordinator.run_distributed_gram` — seed,
  watch, assemble.

K workers pointed at one ``dir:`` store converge on a Gram
byte-identical to the single-process ``kernel.gram(graphs, ctx=ctx)``
run — including after workers are SIGKILLed mid-tile, because expired
leases are stolen and tile commits are idempotent. DESIGN.md
("Distributed tiles: leases and heartbeats") has the invariants.
"""

from repro.distributed.jobspec import (
    JOB_INPUT_KIND,
    JOB_KIND,
    JobSpec,
    job_spec_for,
    load_job,
    seed_job,
)

#: Lazily exported names (PEP 562): importing the package must not pull
#: in the worker module, or ``python -m repro.distributed.worker`` would
#: find it in ``sys.modules`` before runpy executes it and warn.
_LAZY = {
    "DistributedJob": "repro.distributed.coordinator",
    "run_distributed_gram": "repro.distributed.coordinator",
    "spawn_worker": "repro.distributed.coordinator",
    "TileWorker": "repro.distributed.worker",
    "default_worker_id": "repro.distributed.worker",
    "watch_jobs": "repro.distributed.worker",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        # The module __getattr__ protocol demands AttributeError; a
        # ReproError here would break hasattr()/dir() on the package.
        # repro-lint: ignore[REPRO001]
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "DistributedJob",
    "JOB_INPUT_KIND",
    "JOB_KIND",
    "JobSpec",
    "TileWorker",
    "default_worker_id",
    "job_spec_for",
    "load_job",
    "run_distributed_gram",
    "seed_job",
    "spawn_worker",
    "watch_jobs",
]
