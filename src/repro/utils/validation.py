"""Argument-validation helpers.

These helpers raise :class:`~repro.errors.ValidationError` with messages that
name the offending parameter, so failures surface at the public API boundary
rather than deep inside numpy.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ValidationError


def check_positive_int(value: Any, name: str, *, minimum: int = 1) -> int:
    """Return ``value`` as an int, requiring ``value >= minimum``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_in_range(
    value: float,
    name: str,
    *,
    low: float = -np.inf,
    high: float = np.inf,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Return ``value`` as a float, requiring it to lie inside the interval."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    low_ok = value >= low if low_inclusive else value > low
    high_ok = value <= high if high_inclusive else value < high
    if not (low_ok and high_ok):
        lo = "[" if low_inclusive else "("
        hi = "]" if high_inclusive else ")"
        raise ValidationError(f"{name} must be in {lo}{low}, {high}{hi}, got {value}")
    return value


def check_square_matrix(matrix: Any, name: str) -> np.ndarray:
    """Return ``matrix`` as a 2-D square float ndarray."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValidationError(f"{name} must be a square matrix, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite entries")
    return arr


def check_symmetric_matrix(matrix: Any, name: str, *, tol: float = 1e-8) -> np.ndarray:
    """Return ``matrix`` as a square ndarray, requiring symmetry within ``tol``."""
    arr = check_square_matrix(matrix, name)
    if arr.size and not np.allclose(arr, arr.T, atol=tol):
        max_dev = float(np.max(np.abs(arr - arr.T)))
        raise ValidationError(f"{name} must be symmetric (max asymmetry {max_dev:.3e})")
    return arr


def check_probability_vector(vector: Any, name: str, *, tol: float = 1e-8) -> np.ndarray:
    """Return ``vector`` as a 1-D ndarray of non-negative entries summing to 1."""
    arr = np.asarray(vector, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if np.any(arr < -tol):
        raise ValidationError(f"{name} has negative entries")
    total = float(arr.sum())
    if abs(total - 1.0) > max(tol, 1e-8 * arr.size):
        raise ValidationError(f"{name} must sum to 1, got {total}")
    return np.clip(arr, 0.0, None)
