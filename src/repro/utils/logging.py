"""Library logging configuration.

The library logs under the ``repro`` namespace and never configures the root
logger; applications opt in via :func:`enable_console_logging`.
"""

from __future__ import annotations

import logging
import sys
import time
from contextlib import contextmanager

LOGGER_NAME = "repro"


def get_logger(suffix: str = "") -> logging.Logger:
    """Return the library logger, optionally a child (``repro.<suffix>``)."""
    name = f"{LOGGER_NAME}.{suffix}" if suffix else LOGGER_NAME
    return logging.getLogger(name)


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stderr handler to the library logger (idempotent)."""
    logger = get_logger()
    logger.setLevel(level)
    has_console = any(
        isinstance(h, logging.StreamHandler) and getattr(h, "stream", None) is sys.stderr
        for h in logger.handlers
    )
    if not has_console:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    return logger


@contextmanager
def log_duration(operation: str, *, logger: "logging.Logger | None" = None):
    """Log the wall-clock duration of a block at DEBUG level."""
    log = logger or get_logger()
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        log.debug("%s took %.3fs", operation, elapsed)
