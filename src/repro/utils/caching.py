"""Lightweight per-instance memoisation.

Per-graph quantities (shortest paths, density matrices, DB representations)
are expensive and reused by several kernels; ``cached_on_instance`` stores the
result in the instance ``__dict__`` so it lives exactly as long as the graph.
"""

from __future__ import annotations

import functools
from typing import Callable, TypeVar

T = TypeVar("T")


def cached_on_instance(method: Callable[..., T]) -> Callable[..., T]:
    """Memoise a zero-argument (besides ``self``) method on the instance.

    Unlike :func:`functools.lru_cache`, the cache does not keep the instance
    alive and never mixes results across instances.
    """
    attr = f"_cache_{method.__name__}"

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        if args or kwargs:
            raise TypeError(
                f"{method.__name__} is cached and takes no arguments beyond self"
            )
        cache = self.__dict__.get(attr, _MISSING)
        if cache is _MISSING:
            cache = method(self)
            self.__dict__[attr] = cache
        return cache

    return wrapper


class _Missing:
    """Sentinel distinguishing 'not cached yet' from a cached ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MISSING>"


_MISSING = _Missing()


class KeyedCache:
    """A small dict-backed cache keyed by hashable tuples.

    Used where a method has parameters (e.g. DB representations keyed by the
    number of layers) and we still want per-instance reuse.
    """

    def __init__(self) -> None:
        self._store: dict = {}

    def get_or_compute(self, key, compute: Callable[[], T]) -> T:
        """Return the cached value for ``key``, computing it on first use."""
        if key not in self._store:
            self._store[key] = compute()
        return self._store[key]

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop all cached entries."""
        self._store.clear()
