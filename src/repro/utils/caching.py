"""Lightweight per-instance memoisation.

Per-graph quantities (shortest paths, density matrices, DB representations)
are expensive and reused by several kernels; ``cached_on_instance`` stores the
result in the instance ``__dict__`` so it lives exactly as long as the graph.
"""

from __future__ import annotations

import functools
from typing import Callable, TypeVar

from repro.errors import ValidationError

T = TypeVar("T")


def cached_on_instance(method: Callable[..., T]) -> Callable[..., T]:
    """Memoise a zero-argument (besides ``self``) method on the instance.

    Unlike :func:`functools.lru_cache`, the cache does not keep the instance
    alive and never mixes results across instances.
    """
    attr = f"_cache_{method.__name__}"

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        if args or kwargs:
            raise ValidationError(
                f"{method.__name__} is cached and takes no arguments beyond self"
            )
        cache = self.__dict__.get(attr, _MISSING)
        if cache is _MISSING:
            cache = method(self)
            self.__dict__[attr] = cache
        return cache

    return wrapper


class _Missing:
    """Sentinel distinguishing 'not cached yet' from a cached ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MISSING>"


_MISSING = _Missing()


class KeyedCache:
    """A small dict-backed cache keyed by hashable tuples.

    Used where a method has parameters (e.g. DB representations keyed by the
    number of layers) and we still want per-instance reuse.

    ``max_entries`` bounds the cache for long-lived processes (the artifact
    store's in-memory layer in a serving loop): when full, the oldest entry
    by first insertion is evicted (FIFO). The default ``None`` keeps the
    historical unbounded behaviour, which is fine for batch runs whose
    cached population is bounded by the workload itself.
    """

    def __init__(self, *, max_entries: "int | None" = None) -> None:
        if max_entries is not None and int(max_entries) < 1:
            raise ValidationError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self.max_entries = None if max_entries is None else int(max_entries)
        self._store: dict = {}

    def get(self, key, default=None):
        """The cached value for ``key``, or ``default`` when absent."""
        return self._store.get(key, default)

    def put(self, key, value) -> None:
        """Insert ``key``, evicting the oldest entry when at capacity."""
        if key in self._store:
            self._store[key] = value
            return
        if self.max_entries is not None and len(self._store) >= self.max_entries:
            # dicts iterate in insertion order, so the first key is the
            # oldest — exactly the FIFO eviction victim.
            del self._store[next(iter(self._store))]
        self._store[key] = value

    def pop(self, key, default=None):
        """Remove and return the entry for ``key`` (``default`` when absent)."""
        return self._store.pop(key, default)

    def get_or_compute(self, key, compute: Callable[[], T]) -> T:
        """Return the cached value for ``key``, computing it on first use."""
        if key in self._store:
            return self._store[key]
        value = compute()
        self.put(key, value)
        return value

    def __contains__(self, key) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop all cached entries."""
        self._store.clear()
