"""Shared utilities: validation, RNG handling, numerically-stable linalg."""

from repro.utils.caching import KeyedCache, cached_on_instance
from repro.utils.linalg import (
    clip_to_psd,
    eigh_sorted,
    group_degenerate_eigenvalues,
    is_positive_semidefinite,
    is_symmetric,
    project_to_psd,
    safe_xlogx,
)
from repro.utils.rng import as_rng, child_rngs, spawn_seed
from repro.utils.validation import (
    check_in_range,
    check_positive_int,
    check_probability_vector,
    check_square_matrix,
    check_symmetric_matrix,
)

__all__ = [
    "KeyedCache",
    "as_rng",
    "cached_on_instance",
    "check_in_range",
    "clip_to_psd",
    "check_positive_int",
    "check_probability_vector",
    "check_square_matrix",
    "check_symmetric_matrix",
    "child_rngs",
    "eigh_sorted",
    "group_degenerate_eigenvalues",
    "is_positive_semidefinite",
    "is_symmetric",
    "project_to_psd",
    "safe_xlogx",
    "spawn_seed",
]
