"""Seeded random-number-generator plumbing.

All stochastic components in the library accept ``seed`` / ``rng`` arguments
and route them through :func:`as_rng`, so every experiment is reproducible
from a single integer.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ValidationError

RngLike = "int | np.random.Generator | None"


def as_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a fresh non-deterministic generator; an integer seeds a
    PCG64 generator; an existing generator is passed through unchanged.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
        raise ValidationError(f"seed must be an int, Generator, or None, got {seed!r}")
    return np.random.default_rng(int(seed))


def spawn_seed(rng: np.random.Generator) -> int:
    """Draw a fresh 63-bit seed from ``rng`` for a child component."""
    return int(rng.integers(0, 2**63 - 1))


def child_rngs(seed: "int | np.random.Generator | None", count: int) -> list:
    """Create ``count`` independent child generators from one seed.

    Children are derived with ``spawn_seed`` so that adding a consumer at the
    end does not perturb the streams of earlier consumers.
    """
    if count < 0:
        raise ValidationError(f"count must be >= 0, got {count}")
    root = as_rng(seed)
    return [np.random.default_rng(spawn_seed(root)) for _ in range(count)]


def shuffled(items: Iterable, seed: "int | np.random.Generator | None") -> list:
    """Return a list with the items of ``items`` in a seeded random order."""
    items = list(items)
    rng = as_rng(seed)
    order = rng.permutation(len(items))
    return [items[i] for i in order]
