"""Numerically-stable linear-algebra helpers used throughout the library.

The quantum substrate leans on symmetric eigendecompositions; these wrappers
centralise the tolerance policy (what counts as "zero", what counts as a
degenerate eigenvalue) so every module agrees on it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_square_matrix, check_symmetric_matrix

#: Default absolute tolerance for treating eigenvalues as equal/zero.
EIG_TOL = 1e-9


def symmetrize(stack: np.ndarray) -> np.ndarray:
    """``(A + A^T) / 2`` over the last two axes of a matrix (stack).

    The one symmetrisation everybody shares: :func:`eigh_sorted`, the
    batched entropies, and the backend device paths all wash out round-off
    asymmetry with exactly this arithmetic, so their eigenvalues agree
    bit-for-bit on the same input. Works on a single ``(n, n)`` matrix or
    any ``(..., n, n)`` stack; dtype is preserved.
    """
    return (stack + np.swapaxes(stack, -1, -2)) / 2.0


def eigh_sorted(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Eigendecompose a symmetric matrix, eigenvalues ascending.

    Returns ``(eigenvalues, eigenvectors)`` with eigenvectors as columns, the
    convention used by :func:`numpy.linalg.eigh`. The input is symmetrised
    first to wash out round-off asymmetry.
    """
    arr = check_square_matrix(matrix, "matrix")
    if arr.size == 0:
        return np.empty(0), np.empty((0, 0))
    values, vectors = np.linalg.eigh(symmetrize(arr))
    return values, vectors


def group_degenerate_eigenvalues(
    eigenvalues: np.ndarray, *, tol: float = EIG_TOL
) -> list[np.ndarray]:
    """Partition sorted eigenvalues into groups of (numerically) equal values.

    Returns a list of index arrays; consecutive eigenvalues within ``tol``
    (scaled by the spectral magnitude) fall into the same group. This is the
    eigenspace bookkeeping behind the closed-form time-averaged density
    matrix (paper Eq. 5), where sums run over distinct eigenvalues.
    """
    values = np.asarray(eigenvalues, dtype=float)
    if values.ndim != 1:
        raise ValidationError(f"eigenvalues must be 1-D, got shape {values.shape}")
    n = values.size
    if n == 0:
        return []
    scale = max(1.0, float(np.max(np.abs(values))))
    threshold = tol * scale
    groups: list[np.ndarray] = []
    start = 0
    for i in range(1, n):
        if values[i] - values[i - 1] > threshold:
            groups.append(np.arange(start, i))
            start = i
    groups.append(np.arange(start, n))
    return groups


def is_symmetric(matrix: np.ndarray, *, tol: float = 1e-8) -> bool:
    """True if ``matrix`` is square and symmetric within ``tol``."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        return False
    return bool(np.allclose(arr, arr.T, atol=tol))


def is_positive_semidefinite(matrix: np.ndarray, *, tol: float = 1e-7) -> bool:
    """True if the symmetric part of ``matrix`` has no eigenvalue below ``-tol``.

    The tolerance is scaled by the largest absolute eigenvalue so that large
    Gram matrices are judged relative to their own magnitude.
    """
    values, _ = eigh_sorted(matrix)
    if values.size == 0:
        return True
    scale = max(1.0, float(np.max(np.abs(values))))
    return bool(values[0] >= -tol * scale)


def project_to_psd(matrix: np.ndarray, *, tol: float = 0.0) -> np.ndarray:
    """Project a symmetric matrix onto the PSD cone by clipping eigenvalues.

    Used to repair Gram matrices of indefinite kernels (e.g. the unaligned
    QJSK baseline) before handing them to the SVM, mirroring common practice
    in the graph-kernel literature.
    """
    values, vectors = eigh_sorted(matrix)
    if values.size == 0:
        return np.asarray(matrix, dtype=float).copy()
    clipped = np.clip(values, tol, None)
    return (vectors * clipped) @ vectors.T


def clip_to_psd(
    matrix: np.ndarray, *, check_tol: float = 1e-7, clip_floor: float = 0.0
) -> np.ndarray:
    """PSD check and (only if needed) projection from a single eigendecomposition.

    Behaviourally identical to ``project_to_psd(m) if not
    is_positive_semidefinite(m) else m`` — same relative-tolerance check,
    same clipped reconstruction — but the spectrum is computed once and
    reused for both the check and the projection, instead of two full
    ``eigh`` calls on the same matrix. Already-PSD inputs are returned
    unchanged (not reconstructed), so their entries are preserved exactly.
    """
    values, vectors = eigh_sorted(matrix)
    arr = np.asarray(matrix, dtype=float)
    if values.size == 0:
        return arr.copy()
    scale = max(1.0, float(np.max(np.abs(values))))
    if values[0] >= -check_tol * scale:
        return arr
    clipped = np.clip(values, clip_floor, None)
    return (vectors * clipped) @ vectors.T


def safe_xlogx(values: np.ndarray) -> np.ndarray:
    """Elementwise ``x * log(x)`` with the convention ``0 log 0 = 0``.

    Small negative inputs (eigendecomposition round-off) are clipped to zero
    rather than producing NaNs.
    """
    arr = np.clip(np.asarray(values, dtype=float), 0.0, None)
    with np.errstate(divide="ignore", invalid="ignore"):
        product = arr * np.log(arr)
    return np.where(arr > 0.0, product, 0.0)


def normalized_trace_one(
    matrix: np.ndarray, *, name: str = "matrix", validate: bool = True
) -> np.ndarray:
    """Scale a PSD matrix to unit trace; identity/size fallback for zero trace.

    ``validate=False`` skips the symmetry check for hot loops whose inputs
    are symmetric by construction; the scaling arithmetic is identical.
    """
    arr = (
        check_symmetric_matrix(matrix, name)
        if validate
        else np.asarray(matrix, dtype=float)
    )
    trace = float(np.trace(arr))
    if trace <= EIG_TOL:
        n = arr.shape[0]
        if n == 0:
            return arr
        return np.eye(n) / n
    return arr / trace
