"""The unified public API: declarative kernels, one execution context,
and the :class:`Session` facade.

Three first-class objects replace the historical kwarg sprawl:

* :class:`~repro.kernels.registry.KernelSpec` — a frozen, validated,
  JSON round-trippable ``(name, params)`` description of a kernel
  (re-exported here; the registry itself lives in
  :mod:`repro.kernels.registry`);
* :class:`ExecutionContext` — engine, store, sinks, tile size and
  normalisation policy as one immutable value, resolvable from the
  ``REPRO_*`` environment and threaded as a single ``ctx=`` parameter
  through every pipeline entry point;
* :class:`Session` — ``Session(ctx).gram / cross_validate / train /
  predict``, the documented way in (``import repro;
  repro.Session(...)``).
"""

from repro.api.context import ExecutionContext, resolve_context
from repro.api.session import Session
from repro.kernels.registry import KernelSpec, make

__all__ = [
    "ExecutionContext",
    "KernelSpec",
    "Session",
    "make",
    "resolve_context",
]
