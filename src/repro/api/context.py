"""ExecutionContext — one object for every execution-policy knob.

Four PRs grew four execution knobs (``engine=``, ``sink=``, ``store=``,
``tile_checkpoint=``) that every entry point accepted in its own ad-hoc
combination. :class:`ExecutionContext` bundles them into a single frozen
value threaded as one ``ctx=`` parameter through ``gram`` /
``cross_gram`` / ``gram_extend``, ``cross_validate_graph_kernel``,
``NystromApproximation``, ``GramConditioner``, ``train_bundle`` /
``PredictionService`` and the experiment runners:

    ctx = ExecutionContext(engine="process", store=ArtifactStore("arts"))
    kernel.gram(graphs, ctx=ctx)
    cross_validate_graph_kernel(kernel, graphs, labels, ctx=ctx)

The legacy keyword arguments keep working through
:func:`resolve_context`, which builds an equivalent context and emits a
single :class:`DeprecationWarning` per call; results are bit-identical
because both forms feed the same machinery.

Cross-knob consistency rules live in :meth:`ExecutionContext.validate`,
so an invalid combination (``ensure_psd`` against an out-of-core sink,
``store`` together with an explicit ``sink``) is refused by one named
:class:`~repro.errors.ValidationError` naming the offending fields — at
whichever entry point it reaches first.
"""

from __future__ import annotations

import copy
import os
import warnings
from dataclasses import dataclass, replace

from repro.backend import (
    BACKEND_ENV_VAR,
    ENTROPY_ENV_VAR,
    PRECISION_ENV_VAR,
    ComputePolicy,
)
from repro.engine.base import (
    ENGINE_ENV_VAR,
    GramEngine,
    resolve_engine,
)
from repro.engine.tiles import TILE_ENV_VAR, GramSink
from repro.errors import ValidationError

#: Environment variable pointing the harness at a persistent store
#: (shared definition with ``repro.experiments.config``).
STORE_ENV_VAR = "REPRO_STORE"


def _engine_name(engine) -> "str | None":
    if engine is None:
        return None
    if isinstance(engine, GramEngine):
        return engine.name
    return str(engine)


@dataclass(frozen=True)
class ExecutionContext:
    """Frozen bundle of execution policy for Gram-matrix pipelines.

    Fields
    ------
    engine:
        Gram backend — a name (``"serial"`` / ``"batched"`` /
        ``"process"``), a configured :class:`GramEngine` instance, or
        ``None`` for the kernel-sticky / process-wide default.
    tile_size:
        Explicit tile-plan edge, overriding the backend default and the
        ``REPRO_GRAM_TILE`` environment variable.
    store:
        An :class:`~repro.store.ArtifactStore`, a store *address* string
        (``dir:/path``, a bare directory path, or ``mem:name`` — see
        :func:`repro.store.backend_for`; strings are coerced to a store
        at construction), or ``None``: completed Grams are
        fetched/persisted by content key, and miss computations
        tile-checkpoint when ``tile_checkpoint`` is on.
    sink_factory:
        Zero-argument callable producing a fresh
        :class:`~repro.engine.tiles.GramSink` per matrix (sinks are
        single-use). Mutually exclusive with ``store``.
    tile_checkpoint:
        Whether store-backed miss computations commit finished tiles
        (kill → resume at tile granularity). Ignored without a store.
    normalize / ensure_psd:
        Tri-state policy defaults: ``None`` keeps each entry point's
        historical default (``gram`` raw, the CV protocol normalised),
        ``True``/``False`` pins the policy for every call through this
        context unless the call site overrides it explicitly.
    backend / precision / entropy:
        Compute-policy knobs (see :class:`repro.backend.ComputePolicy`):
        the array backend (``"numpy"`` / ``"torch"`` / ``"cupy"``), the
        device precision (``"float64"`` / ``"float32"``) and the entropy
        path (``"eig"`` / ``"chebyshev"`` / ``"auto"``). ``None`` falls
        back to the ``REPRO_BACKEND`` / ``REPRO_PRECISION`` /
        ``REPRO_ENTROPY`` environment, else the bit-stable
        numpy/float64/eig reference. Field values are validated at
        construction; backend *availability* (is torch importable, is a
        GPU present) is checked by :meth:`validate`.
    """

    engine: "GramEngine | str | None" = None
    tile_size: "int | None" = None
    store: object = None
    sink_factory: object = None
    tile_checkpoint: bool = True
    normalize: "bool | None" = None
    ensure_psd: "bool | None" = None
    backend: "str | None" = None
    precision: "str | None" = None
    entropy: "str | None" = None

    def __post_init__(self) -> None:
        if isinstance(self.store, str):
            # Address form: "dir:/path", a bare directory, or "mem:name".
            # Coerced here so every consumer downstream sees one type,
            # and a bad address fails at construction with the backend's
            # named error instead of deep inside a Gram call.
            from repro.store import ArtifactStore

            object.__setattr__(self, "store", ArtifactStore(self.store))
        if self.tile_size is not None and int(self.tile_size) < 1:
            raise ValidationError(
                f"ExecutionContext.tile_size must be >= 1, got {self.tile_size}"
            )
        if self.sink_factory is not None and not callable(self.sink_factory):
            raise ValidationError(
                "ExecutionContext.sink_factory must be a zero-argument "
                f"callable producing a GramSink, got "
                f"{type(self.sink_factory).__name__} (a sink instance is "
                "single-use — wrap it: sink_factory=lambda: sink)"
            )
        # Validates names only (a typo'd backend/precision/entropy raises
        # a named BackendError now); availability waits for validate().
        if (
            self.backend is not None
            or self.precision is not None
            or self.entropy is not None
        ):
            ComputePolicy(
                backend=self.backend or "numpy",
                precision=self.precision or "float64",
                entropy=self.entropy or "eig",
            )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_env(cls, **overrides) -> "ExecutionContext":
        """The context the ``REPRO_*`` environment describes.

        Reads ``REPRO_GRAM_ENGINE`` (backend name), ``REPRO_GRAM_TILE``
        (tile size) and ``REPRO_STORE`` (a store address: ``dir:/path``,
        a bare directory — created if missing, with a named
        :class:`~repro.errors.ValidationError` citing the path when that
        fails — or ``mem:name``); keyword ``overrides`` replace any
        field afterwards. This is how the experiment runners and the
        serve CLI build their default context, so one environment drives
        every entry point.
        """
        values: dict = {}
        engine = os.environ.get(ENGINE_ENV_VAR, "").strip()
        if engine:
            values["engine"] = engine
        tile = os.environ.get(TILE_ENV_VAR, "").strip()
        if tile:
            try:
                values["tile_size"] = int(tile)
            except ValueError:
                raise ValidationError(
                    f"{TILE_ENV_VAR} must be an integer, got {tile!r}"
                ) from None
        root = os.environ.get(STORE_ENV_VAR, "").strip()
        if root:
            from repro.store import ArtifactStore

            values["store"] = ArtifactStore(root)
        for env_var, field in (
            (BACKEND_ENV_VAR, "backend"),
            (PRECISION_ENV_VAR, "precision"),
            (ENTROPY_ENV_VAR, "entropy"),
        ):
            raw = os.environ.get(env_var, "").strip()
            if raw:
                values[field] = raw
        values.update(overrides)
        return cls(**values)

    def replace(self, **changes) -> "ExecutionContext":
        """A copy with ``changes`` applied (contexts are immutable)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Validation — the one home of cross-knob consistency rules
    # ------------------------------------------------------------------ #

    def validate(
        self, *, ensure_psd: "bool | None" = None, sink: "GramSink | None" = None
    ) -> "ExecutionContext":
        """Refuse inconsistent knob combinations with one named error.

        ``ensure_psd`` / ``sink`` are the call-site effective values when
        an entry point has already bound them; without arguments the
        context's own fields are checked (the pre-flight form
        ``Session`` runs at construction).
        """
        if self.store is not None and self.sink_factory is not None:
            raise ValidationError(
                "ExecutionContext: pass either store= (content-addressed "
                "persistence) or sink= (explicit tile destination), not "
                "both (offending fields: store, sink_factory)"
            )
        # Resolving the compute policy's backend instance imports the
        # underlying library, so a context naming torch/cupy in an
        # environment without it fails here with the named BackendError
        # (listing the usable backends) instead of deep inside a tile.
        self.compute_policy().array_backend
        effective_psd = self.ensure_psd if ensure_psd is None else ensure_psd
        if sink is None and self.sink_factory is None:
            return self
        out_of_core = sink is not None and not getattr(sink, "in_memory", True)
        if effective_psd and out_of_core:
            raise ValidationError(
                "ExecutionContext: ensure_psd=True needs a global "
                "eigendecomposition, which would densify the out-of-core "
                "Gram; use an in-memory sink or project the matrix "
                "explicitly (offending fields: ensure_psd, sink)"
            )
        return self

    # ------------------------------------------------------------------ #
    # Resolution helpers the entry points consume
    # ------------------------------------------------------------------ #

    def has_compute_fields(self) -> bool:
        """Whether any compute-policy knob is explicitly set."""
        return (
            self.backend is not None
            or self.precision is not None
            or self.entropy is not None
        )

    def compute_policy(self) -> ComputePolicy:
        """The :class:`~repro.backend.ComputePolicy` this context selects.

        Explicit fields win; unset fields fall back to the ``REPRO_*``
        environment (then the reference defaults), so a context created
        with no compute knobs still reports the policy that actually ran.
        """
        overrides = {
            field: value
            for field, value in (
                ("backend", self.backend),
                ("precision", self.precision),
                ("entropy", self.entropy),
            )
            if value is not None
        }
        return ComputePolicy.from_env(**overrides)

    def engine_argument(self, kernel=None) -> "GramEngine | str | None":
        """The ``engine`` value to hand the Gram machinery.

        Without a ``tile_size`` or compute-policy field this is just the
        ``engine`` field — ``None`` preserves the kernel-sticky /
        process-default fallback. Otherwise the engine is materialised
        (honouring the kernel's sticky default) and cloned with the
        context's tile size and compute policy, so both overrides
        survive however deep the engine travels (the engine installs the
        policy around its tile stream with
        :func:`repro.backend.policy_scope`).
        """
        engine = self.engine
        if self.tile_size is None and not self.has_compute_fields():
            return engine
        if engine is None and kernel is not None:
            engine = getattr(kernel, "engine", None)
        resolved = resolve_engine(engine)
        if isinstance(engine, GramEngine):
            resolved = copy.copy(resolved)
        if self.tile_size is not None:
            resolved.tile_size = int(self.tile_size)
        if self.has_compute_fields():
            resolved.policy = self.compute_policy()
        return resolved

    def make_sink(self) -> "GramSink | None":
        """A fresh sink from the factory, or ``None``."""
        if self.sink_factory is None:
            return None
        sink = self.sink_factory()
        if not isinstance(sink, GramSink):
            raise ValidationError(
                f"ExecutionContext.sink_factory produced "
                f"{type(sink).__name__}, expected a GramSink"
            )
        return sink

    def policy(self, value: "bool | None", name: str, default: bool) -> bool:
        """Resolve a tri-state call-site flag against this context.

        Precedence: explicit call-site value > context policy field >
        the entry point's historical ``default``.
        """
        if value is not None:
            return bool(value)
        policy = getattr(self, name)
        return default if policy is None else bool(policy)

    # ------------------------------------------------------------------ #
    # Serialisation — the round-trippable record reports/bundles persist
    # ------------------------------------------------------------------ #

    def to_record(self) -> dict:
        """JSON-able description of this context.

        Engine *instances* are recorded by backend name only — the
        context's own ``tile_size`` field round-trips, but
        instance-level tuning (a ``ProcessEngine``'s worker count, a
        tile size set on the instance rather than the context) does not;
        scheduling never changes values, so the record identifies the
        execution policy, not the exact scheduler object.
        ``sink_factory`` is code, not data — it is recorded by class
        name only, and :meth:`from_record` refuses records carrying one
        (rebuild the factory at the call site instead).
        ``backend`` / ``precision`` / ``entropy`` are recorded
        *resolved* (explicit field, else environment, else reference
        default): the record describes the compute policy that actually
        ran, and resolution is a fixed point so records round-trip.
        """
        sink_name = None
        if self.sink_factory is not None:
            probe = getattr(self.sink_factory, "__name__", None)
            sink_name = probe or type(self.sink_factory).__name__
        policy = self.compute_policy()
        return {
            "engine": _engine_name(self.engine),
            "tile_size": self.tile_size,
            "store": getattr(
                self.store, "address", getattr(self.store, "root", None)
            ),
            "sink": sink_name,
            "tile_checkpoint": bool(self.tile_checkpoint),
            "normalize": self.normalize,
            "ensure_psd": self.ensure_psd,
            "backend": policy.backend,
            "precision": policy.precision,
            "entropy": policy.entropy,
        }

    @classmethod
    def from_record(cls, record: dict) -> "ExecutionContext":
        """Rebuild a context from :meth:`to_record` output."""
        if not isinstance(record, dict):
            raise ValidationError(
                f"an ExecutionContext record must be a dict, got "
                f"{type(record).__name__}"
            )
        known = {
            "engine", "tile_size", "store", "sink",
            "tile_checkpoint", "normalize", "ensure_psd",
            "backend", "precision", "entropy",
        }
        extras = set(record) - known
        if extras:
            raise ValidationError(
                f"unexpected ExecutionContext record keys {sorted(extras)}"
            )
        if record.get("sink") is not None:
            raise ValidationError(
                "ExecutionContext records cannot carry a sink factory "
                f"({record['sink']!r}) — sinks are code; rebuild the "
                "factory at the call site"
            )
        store = record.get("store")
        if store is not None:
            from repro.store import ArtifactStore

            store = ArtifactStore(store)
        return cls(
            engine=record.get("engine"),
            tile_size=record.get("tile_size"),
            store=store,
            tile_checkpoint=bool(record.get("tile_checkpoint", True)),
            normalize=record.get("normalize"),
            ensure_psd=record.get("ensure_psd"),
            backend=record.get("backend"),
            precision=record.get("precision"),
            entropy=record.get("entropy"),
        )


#: Maps a legacy keyword to the context field it populates.
_LEGACY_FIELDS = {
    "engine": "engine",
    "sink": "sink_factory",
    "store": "store",
    "tile_checkpoint": "tile_checkpoint",
}


def resolve_context(
    ctx: "ExecutionContext | None",
    *,
    owner: str,
    stacklevel: int = 3,
    **legacy,
) -> "ExecutionContext | None":
    """The deprecation shim every ``ctx=``-threaded entry point runs.

    ``legacy`` holds the entry point's historical keyword arguments
    (``engine=``, ``sink=``, ``store=``, ``tile_checkpoint=``); a value
    of ``None`` means "not passed". Outcomes:

    * nothing passed → ``None`` (historical defaults apply);
    * only ``ctx`` → that context, unchanged;
    * only legacy kwargs → an equivalent context, after **exactly one**
      :class:`DeprecationWarning` naming the kwargs and the replacement;
    * both → :class:`~repro.errors.ValidationError` — mixing the two
      forms has no defensible precedence order.
    """
    supplied = {
        key: value for key, value in legacy.items() if value is not None
    }
    if ctx is not None:
        if supplied:
            raise ValidationError(
                f"{owner}: pass either ctx= or the legacy keyword(s) "
                f"{', '.join(sorted(supplied))}, not both"
            )
        if not isinstance(ctx, ExecutionContext):
            raise ValidationError(
                f"{owner}: ctx must be an ExecutionContext, got "
                f"{type(ctx).__name__}"
            )
        return ctx
    if not supplied:
        return None
    warnings.warn(
        f"{owner}: the {', '.join(sorted(supplied))} keyword argument(s) "
        f"are deprecated; pass ctx=ExecutionContext(...) instead "
        f"(see repro.api.ExecutionContext)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    values: dict = {}
    for key, value in supplied.items():
        target = _LEGACY_FIELDS[key]
        if key == "sink":
            values[target] = single_use_sink_factory(value)
        else:
            values[target] = value
    return ExecutionContext(**values)


def context_for(**fields) -> "ExecutionContext | None":
    """An :class:`ExecutionContext` from the non-``None`` fields, or
    ``None`` when every field is unset.

    The internal-migration helper: library code that used to forward a
    loose ``engine=`` / ``store=`` pair builds a context here without
    triggering the public deprecation shim (and without allocating one
    when there is nothing to carry).
    """
    supplied = {key: value for key, value in fields.items() if value is not None}
    return ExecutionContext(**supplied) if supplied else None


def single_use_sink_factory(sink: GramSink):
    """Wrap a pre-built sink instance as a one-shot factory.

    Sinks are single-use (open → write → finalize); a context field
    holds a *factory* so one context can serve many matrices. This
    wrapper adapts call sites that already materialised the one sink
    the context will ever produce."""

    def factory() -> GramSink:
        return sink

    factory.__name__ = type(sink).__name__
    return factory
