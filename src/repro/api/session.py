"""repro.Session — the documented front door of the library.

A :class:`Session` binds one :class:`~repro.api.context.ExecutionContext`
(engine, store, sinks, tile/checkpoint/normalisation policy) and exposes
the whole pipeline — Gram computation, the paper's CV protocol, bundle
training and inductive serving — as four verbs taking declarative
:class:`~repro.kernels.registry.KernelSpec` inputs::

    import repro

    session = repro.Session(repro.ExecutionContext.from_env())
    spec = repro.KernelSpec("HAQJSK(D)", n_prototypes=32)

    gram = session.gram(spec, dataset.graphs)
    result = session.cross_validate(spec, dataset)
    bundle = session.train(spec, dataset, name="production")
    labels = session.predict("production", newcomer_graphs).labels

Everything a Session does is also reachable through the layer APIs it
delegates to (``kernel.gram(ctx=...)``, ``cross_validate_graph_kernel``,
``train_bundle``, ``PredictionService``) — the facade adds no semantics,
so Session results are bit-identical to the explicit calls. The serve
CLI and the experiment runners are thin Session clients.
"""

from __future__ import annotations

import numpy as np

from repro.api.context import ExecutionContext
from repro.errors import ServingError, ValidationError
from repro.kernels.registry import KernelSpec, as_spec


def _graphs_and_labels(dataset, labels):
    """Accept a GraphDataset-like object or an explicit (graphs, labels)."""
    if labels is None:
        graphs = getattr(dataset, "graphs", None)
        targets = getattr(dataset, "targets", None)
        if graphs is None or targets is None:
            raise ValidationError(
                "pass a dataset object with .graphs/.targets, or graphs "
                "and labels explicitly"
            )
        return list(graphs), np.asarray(targets)
    return list(dataset), np.asarray(labels)


class Session:
    """One configured entry point over the full kernel pipeline.

    Parameters
    ----------
    ctx:
        The execution context every operation runs under; ``None`` reads
        the ``REPRO_*`` environment (:meth:`ExecutionContext.from_env`).
        The context is validated once, up front, so inconsistent knob
        combinations fail at construction, not mid-pipeline.
    """

    def __init__(self, ctx: "ExecutionContext | None" = None) -> None:
        if ctx is None:
            ctx = ExecutionContext.from_env()
        if not isinstance(ctx, ExecutionContext):
            raise ValidationError(
                f"Session needs an ExecutionContext, got {type(ctx).__name__}"
            )
        self.ctx = ctx.validate()
        self._services: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Session(ctx={self.ctx!r})"

    # ------------------------------------------------------------------ #
    # Kernel construction
    # ------------------------------------------------------------------ #

    def kernel(self, spec_or_name, **params):
        """Build the kernel a spec (or registered name) describes."""
        return as_spec(spec_or_name, **params).make()

    # ------------------------------------------------------------------ #
    # Gram matrices
    # ------------------------------------------------------------------ #

    def gram(
        self,
        spec_or_name,
        graphs,
        *,
        normalize: "bool | None" = None,
        ensure_psd: "bool | None" = None,
    ) -> np.ndarray:
        """The Gram matrix of the specified kernel over ``graphs``.

        Store-backed when the context carries a store (content-addressed
        fetch, tile-checkpointed miss); out-of-core when it carries a
        sink factory. ``normalize`` / ``ensure_psd`` default to the
        context policy, else to the raw-Gram historical defaults. Pure
        delegation — ``kernel.gram(ctx=...)`` owns the whole dispatch.
        """
        return self.kernel(spec_or_name).gram(
            list(graphs),
            normalize=normalize,
            ensure_psd=ensure_psd,
            ctx=self.ctx,
        )

    def cross_gram(self, spec_or_name, graphs_a, graphs_b) -> np.ndarray:
        """Rectangular Gram between two graph lists."""
        return self.kernel(spec_or_name).cross_gram(
            list(graphs_a), list(graphs_b), ctx=self.ctx
        )

    # ------------------------------------------------------------------ #
    # Evaluation protocol
    # ------------------------------------------------------------------ #

    def cross_validate(
        self,
        spec_or_name,
        dataset,
        labels=None,
        *,
        normalize: "bool | None" = None,
        ensure_psd: "bool | None" = None,
        condition: bool = True,
        **cv_kwargs,
    ):
        """The paper's repeated stratified 10-fold protocol.

        ``dataset`` is a GraphDataset-like object (``.graphs`` /
        ``.targets``) or a graph list with explicit ``labels``;
        remaining keywords (``n_folds``, ``n_repeats``, ``seed``, ...)
        reach :func:`~repro.ml.cross_validation.cross_validate_kernel`.
        """
        from repro.ml.cross_validation import cross_validate_graph_kernel

        graphs, y = _graphs_and_labels(dataset, labels)
        # Tri-state flags pass through untouched: the wrapper resolves
        # them against this same context (one resolution site).
        return cross_validate_graph_kernel(
            self.kernel(spec_or_name),
            graphs,
            y,
            ctx=self.ctx,
            normalize=normalize,
            ensure_psd=ensure_psd,
            condition=condition,
            **cv_kwargs,
        )

    # ------------------------------------------------------------------ #
    # Train / predict
    # ------------------------------------------------------------------ #

    def train(
        self,
        spec_or_name,
        dataset,
        labels=None,
        *,
        name: "str | None" = None,
        c: "float | None" = None,
        normalize: "bool | None" = None,
        condition: bool = True,
        seed: "int | None" = 0,
        metadata: "dict | None" = None,
    ):
        """Fit the serving pipeline; returns the :class:`ModelBundle`.

        Collection-level kernels with a serving mode (the HAQJSK family)
        are frozen on the training collection first — the same protocol
        the serve CLI always applied. With a ``name`` (requires a store
        on the context) the bundle is persisted and immediately
        addressable by :meth:`predict`. The bundle records the resolved
        :class:`KernelSpec` and the context, so a later process can
        reconstruct what was trained.
        """
        from repro.serve.bundle import train_bundle

        ctx = self.ctx
        if name is not None and ctx.store is None:
            # Fail before the (possibly hours-long) training run, not
            # after it — the check depends only on the arguments.
            raise ValidationError(
                "Session.train(name=...) persists the bundle, which "
                "needs a store on the ExecutionContext"
            )
        graphs, y = _graphs_and_labels(dataset, labels)
        spec = as_spec(spec_or_name)
        kernel = spec.make()
        if not kernel.collection_independent and hasattr(kernel, "freeze"):
            kernel.freeze(graphs)
        bundle = train_bundle(
            kernel,
            graphs,
            y,
            c=c,
            normalize=ctx.policy(normalize, "normalize", False),
            condition=condition,
            seed=seed,
            metadata=metadata,
            ctx=ctx,
            spec=spec,
        )
        if name is not None:
            bundle.save(ctx.store, name)
            # Retraining under a name supersedes any service this session
            # already built for it — drop the cache so the next predict
            # serves the new model, not the stale one.
            self._services = {
                key: service
                for key, service in self._services.items()
                if key[0] != name
            }
        return bundle

    def predict(
        self,
        bundle_ref,
        graphs,
        *,
        batch_size: "int | None" = None,
        max_block_graphs: "int | None" = None,
    ):
        """Classify newcomer graphs against a bundle (object or name).

        A string ``bundle_ref`` is loaded (and verified) from the
        context's store; the wrapped
        :class:`~repro.serve.service.PredictionService` is cached per
        reference, so repeated serving calls amortise the training-state
        preparation.
        """
        service = self._service(bundle_ref, batch_size, max_block_graphs)
        return service.predict(list(graphs))

    def service(
        self,
        bundle_ref,
        *,
        batch_size: "int | None" = None,
        max_block_graphs: "int | None" = None,
    ):
        """The (cached) :class:`PredictionService` for ``bundle_ref``."""
        return self._service(bundle_ref, batch_size, max_block_graphs)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _service(self, bundle_ref, batch_size, max_block_graphs):
        from repro.serve.bundle import ModelBundle
        from repro.serve.service import PredictionService

        cache_key = (
            bundle_ref if isinstance(bundle_ref, str) else id(bundle_ref),
            batch_size,
            max_block_graphs,
        )
        cached = self._services.get(cache_key)
        if cached is not None:
            return cached
        if isinstance(bundle_ref, str):
            if self.ctx.store is None:
                raise ServingError(
                    f"loading bundle {bundle_ref!r} by name needs a store "
                    "on the ExecutionContext"
                )
            bundle = ModelBundle.load(self.ctx.store, bundle_ref, verify=False)
        elif isinstance(bundle_ref, ModelBundle):
            bundle = bundle_ref
        else:
            raise ValidationError(
                f"bundle_ref must be a ModelBundle or a stored bundle "
                f"name, got {type(bundle_ref).__name__}"
            )
        service = PredictionService(
            bundle,
            batch_size=batch_size,
            max_block_graphs=max_block_graphs,
            ctx=self.ctx,
        )
        self._services[cache_key] = service
        return service
