"""Seeded random- and deterministic-graph generators.

These are the raw material for the synthetic dataset registry
(:mod:`repro.datasets.registry`): each Table II dataset mixes these
generators with class-specific parameters so that classes differ by
multi-scale topology — exactly the signal the HAQJSK kernels are built to
detect.

All generators take ``seed`` (int, Generator, or None) and are fully
deterministic for a fixed seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.utils.rng import as_rng
from repro.utils.validation import check_in_range, check_positive_int

# --------------------------------------------------------------------- #
# Deterministic families
# --------------------------------------------------------------------- #


def empty_graph(n: int) -> Graph:
    """``n`` isolated vertices."""
    n = check_positive_int(n, "n", minimum=0)
    return Graph(np.zeros((n, n)))


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n``."""
    n = check_positive_int(n, "n", minimum=0)
    adjacency = np.ones((n, n)) - np.eye(n) if n else np.zeros((0, 0))
    return Graph(adjacency)


def path_graph(n: int) -> Graph:
    """The path ``P_n`` (n-1 edges)."""
    n = check_positive_int(n, "n", minimum=0)
    adjacency = np.zeros((n, n))
    for i in range(n - 1):
        adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
    return Graph(adjacency)


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n`` (requires ``n >= 3``)."""
    n = check_positive_int(n, "n", minimum=3)
    adjacency = np.zeros((n, n))
    for i in range(n):
        j = (i + 1) % n
        adjacency[i, j] = adjacency[j, i] = 1.0
    return Graph(adjacency)


def star_graph(n: int) -> Graph:
    """A star with one hub (vertex 0) and ``n - 1`` leaves."""
    n = check_positive_int(n, "n", minimum=1)
    adjacency = np.zeros((n, n))
    adjacency[0, 1:] = 1.0
    adjacency[1:, 0] = 1.0
    return Graph(adjacency)


def grid_graph(rows: int, cols: int) -> Graph:
    """A ``rows x cols`` 4-neighbour lattice."""
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    n = rows * cols
    adjacency = np.zeros((n, n))

    def index(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                a, b = index(r, c), index(r, c + 1)
                adjacency[a, b] = adjacency[b, a] = 1.0
            if r + 1 < rows:
                a, b = index(r, c), index(r + 1, c)
                adjacency[a, b] = adjacency[b, a] = 1.0
    return Graph(adjacency)


def wheel_graph(n: int) -> Graph:
    """A hub connected to every vertex of a cycle of ``n - 1`` vertices."""
    n = check_positive_int(n, "n", minimum=4)
    adjacency = np.zeros((n, n))
    for i in range(1, n):
        j = i % (n - 1) + 1
        adjacency[i, j] = adjacency[j, i] = 1.0
        adjacency[0, i] = adjacency[i, 0] = 1.0
    return Graph(adjacency)


# --------------------------------------------------------------------- #
# Random families
# --------------------------------------------------------------------- #


def erdos_renyi(n: int, p: float, *, seed=None) -> Graph:
    """G(n, p): each of the ``n(n-1)/2`` edges appears independently."""
    n = check_positive_int(n, "n", minimum=0)
    p = check_in_range(p, "p", low=0.0, high=1.0)
    rng = as_rng(seed)
    upper = rng.random((n, n)) < p
    adjacency = np.triu(upper, k=1).astype(float)
    adjacency = adjacency + adjacency.T
    return Graph(adjacency)


def erdos_renyi_m(n: int, m: int, *, seed=None) -> Graph:
    """G(n, m): exactly ``m`` distinct edges, uniformly at random."""
    n = check_positive_int(n, "n", minimum=0)
    max_edges = n * (n - 1) // 2
    m = check_positive_int(m, "m", minimum=0)
    if m > max_edges:
        raise ValidationError(f"m={m} exceeds max edges {max_edges} for n={n}")
    rng = as_rng(seed)
    chosen = rng.choice(max_edges, size=m, replace=False)
    adjacency = np.zeros((n, n))
    us, vs = np.triu_indices(n, k=1)
    adjacency[us[chosen], vs[chosen]] = 1.0
    adjacency = np.maximum(adjacency, adjacency.T)
    return Graph(adjacency)


def barabasi_albert(n: int, m: int, *, seed=None) -> Graph:
    """Preferential attachment: each new vertex links to ``m`` existing ones.

    Starts from a clique of ``m + 1`` vertices; targets are drawn without
    replacement, weighted by current degree.
    """
    n = check_positive_int(n, "n", minimum=2)
    m = check_positive_int(m, "m", minimum=1)
    if m >= n:
        raise ValidationError(f"m={m} must be < n={n}")
    rng = as_rng(seed)
    adjacency = np.zeros((n, n))
    seed_size = m + 1
    adjacency[:seed_size, :seed_size] = 1.0
    np.fill_diagonal(adjacency, 0.0)
    degrees = adjacency.sum(axis=1)
    for new in range(seed_size, n):
        weights = degrees[:new].copy()
        total = weights.sum()
        probs = weights / total if total > 0 else np.full(new, 1.0 / new)
        targets = rng.choice(new, size=min(m, new), replace=False, p=probs)
        for t in targets:
            adjacency[new, t] = adjacency[t, new] = 1.0
            degrees[t] += 1.0
            degrees[new] += 1.0
    return Graph(adjacency)


def watts_strogatz(n: int, k: int, p: float, *, seed=None) -> Graph:
    """Small-world ring lattice with ``k`` neighbours and rewiring prob ``p``."""
    n = check_positive_int(n, "n", minimum=3)
    k = check_positive_int(k, "k", minimum=2)
    p = check_in_range(p, "p", low=0.0, high=1.0)
    if k >= n:
        raise ValidationError(f"k={k} must be < n={n}")
    half = k // 2
    rng = as_rng(seed)
    adjacency = np.zeros((n, n))
    for i in range(n):
        for offset in range(1, half + 1):
            j = (i + offset) % n
            adjacency[i, j] = adjacency[j, i] = 1.0
    for i in range(n):
        for offset in range(1, half + 1):
            j = (i + offset) % n
            if adjacency[i, j] > 0 and rng.random() < p:
                candidates = np.flatnonzero(adjacency[i] == 0)
                candidates = candidates[candidates != i]
                if candidates.size:
                    new_j = int(rng.choice(candidates))
                    adjacency[i, j] = adjacency[j, i] = 0.0
                    adjacency[i, new_j] = adjacency[new_j, i] = 1.0
    return Graph(adjacency)


def random_tree(n: int, *, seed=None) -> Graph:
    """Uniform random labelled tree via a random Prüfer sequence."""
    n = check_positive_int(n, "n", minimum=1)
    if n == 1:
        return empty_graph(1)
    if n == 2:
        return path_graph(2)
    rng = as_rng(seed)
    prufer = rng.integers(0, n, size=n - 2)
    degree = np.ones(n, dtype=int)
    for x in prufer:
        degree[x] += 1
    adjacency = np.zeros((n, n))
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        adjacency[leaf, x] = adjacency[x, leaf] = 1.0
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, int(x))
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    adjacency[u, v] = adjacency[v, u] = 1.0
    return Graph(adjacency)


def planted_partition(
    sizes: "list[int]", p_in: float, p_out: float, *, seed=None
) -> Graph:
    """Community graph: dense blocks (``p_in``) with sparse cross links."""
    if not sizes:
        return empty_graph(0)
    p_in = check_in_range(p_in, "p_in", low=0.0, high=1.0)
    p_out = check_in_range(p_out, "p_out", low=0.0, high=1.0)
    rng = as_rng(seed)
    n = int(sum(sizes))
    membership = np.concatenate(
        [np.full(int(size), block) for block, size in enumerate(sizes)]
    )
    same = membership[:, None] == membership[None, :]
    probs = np.where(same, p_in, p_out)
    upper = rng.random((n, n)) < probs
    adjacency = np.triu(upper, k=1).astype(float)
    adjacency = adjacency + adjacency.T
    return Graph(adjacency)


def random_regular_ish(n: int, d: int, *, seed=None) -> Graph:
    """Near-``d``-regular graph via a configuration-model pairing.

    Multi-edges/self-loops from the pairing are dropped, so a few vertices
    may end up with degree ``d - 1``; that is close enough for workload
    generation and keeps the generator simple and deterministic.
    """
    n = check_positive_int(n, "n", minimum=2)
    d = check_positive_int(d, "d", minimum=1)
    if d >= n:
        raise ValidationError(f"d={d} must be < n={n}")
    if (n * d) % 2 == 1:
        d += 1  # configuration model needs an even stub count
    rng = as_rng(seed)
    stubs = np.repeat(np.arange(n), d)
    rng.shuffle(stubs)
    adjacency = np.zeros((n, n))
    for i in range(0, len(stubs) - 1, 2):
        u, v = int(stubs[i]), int(stubs[i + 1])
        if u != v:
            adjacency[u, v] = adjacency[v, u] = 1.0
    return Graph(adjacency)


def random_geometric(n: int, radius: float, *, dims: int = 2, seed=None) -> Graph:
    """Vertices at uniform points in ``[0,1]^dims``; edges below ``radius``."""
    n = check_positive_int(n, "n", minimum=1)
    radius = check_in_range(radius, "radius", low=0.0, high=float(np.sqrt(dims)))
    rng = as_rng(seed)
    points = rng.random((n, dims))
    diffs = points[:, None, :] - points[None, :, :]
    dist = np.sqrt((diffs**2).sum(axis=2))
    adjacency = (dist <= radius).astype(float)
    np.fill_diagonal(adjacency, 0.0)
    return Graph(adjacency)


def attach_random_labels(
    graph: Graph, n_labels: int, *, seed=None
) -> Graph:
    """Assign degree-correlated random labels from ``0..n_labels-1``.

    Labels follow the degree rank with noise, so label structure correlates
    with topology the way chemical datasets' atom types do.
    """
    n_labels = check_positive_int(n_labels, "n_labels", minimum=1)
    rng = as_rng(seed)
    n = graph.n_vertices
    if n == 0:
        return graph.with_labels([])
    ranks = np.argsort(np.argsort(graph.degrees()))
    base = (ranks * n_labels) // max(n, 1)
    noise = rng.integers(-1, 2, size=n)
    labels = np.clip(base + noise, 0, n_labels - 1)
    return graph.with_labels(labels.astype(int))
