"""Graph substrate: the :class:`Graph` type, operations, generators, IO."""

from repro.graphs.graph import Graph
from repro.graphs.hashing import collection_digest, graph_digest
from repro.graphs.ops import (
    clustering_coefficient,
    core_numbers,
    degeneracy,
    degree_distribution,
    degree_matrix,
    disjoint_union,
    k_core_subgraph,
    laplacian,
    max_shortest_path_length,
    normalized_laplacian,
    transition_matrix,
    triangle_count,
)

__all__ = [
    "Graph",
    "clustering_coefficient",
    "collection_digest",
    "core_numbers",
    "degeneracy",
    "degree_distribution",
    "degree_matrix",
    "disjoint_union",
    "graph_digest",
    "k_core_subgraph",
    "laplacian",
    "max_shortest_path_length",
    "normalized_laplacian",
    "transition_matrix",
    "triangle_count",
]
