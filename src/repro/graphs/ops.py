"""Graph-level operations shared by kernels and the quantum substrate.

These are free functions over :class:`~repro.graphs.graph.Graph` so they can
be composed without subclassing: Laplacian variants, k-core decomposition
(for the CORE kernel framework), triangle counting, and simple structural
statistics.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError, ValidationError
from repro.graphs.graph import Graph


def degree_matrix(graph: Graph) -> np.ndarray:
    """Diagonal matrix of weighted degrees."""
    return np.diag(graph.degrees())


def laplacian(graph: Graph) -> np.ndarray:
    """Combinatorial Laplacian ``L = D - A``."""
    return np.asarray(graph.laplacian())


def normalized_laplacian(graph: Graph) -> np.ndarray:
    """Symmetric normalised Laplacian ``I - D^{-1/2} A D^{-1/2}``.

    Isolated vertices contribute an identity row/column (their normalised
    degree is defined as zero), matching the spectral-graph-theory
    convention.
    """
    adjacency = graph.adjacency
    degrees = graph.degrees()
    n = graph.n_vertices
    inv_sqrt = np.zeros(n)
    positive = degrees > 0
    inv_sqrt[positive] = 1.0 / np.sqrt(degrees[positive])
    scaled = adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]
    return np.eye(n) - scaled


def transition_matrix(graph: Graph) -> np.ndarray:
    """Random-walk transition matrix ``D^{-1} A`` (rows of isolated vertices
    are self-loops, so the matrix stays row-stochastic)."""
    adjacency = graph.adjacency
    degrees = graph.degrees()
    n = graph.n_vertices
    matrix = np.zeros((n, n))
    for u in range(n):
        if degrees[u] > 0:
            matrix[u] = adjacency[u] / degrees[u]
        else:
            matrix[u, u] = 1.0
    return matrix


def degree_distribution(graph: Graph) -> np.ndarray:
    """Stationary-style probability vector ``d_u / sum(d)``.

    For a graph with no edges this degenerates to the uniform distribution,
    which keeps the CTQW initial state well defined on aligned structures
    with empty rows.
    """
    degrees = graph.degrees()
    total = float(degrees.sum())
    n = graph.n_vertices
    if n == 0:
        return np.empty(0)
    if total <= 0:
        return np.full(n, 1.0 / n)
    return degrees / total


def core_numbers(graph: Graph) -> np.ndarray:
    """Per-vertex core numbers via the Batagelj–Zaversnik peeling algorithm.

    The k-core of a graph is the maximal subgraph in which every vertex has
    degree >= k; core numbers drive the CORE-WL / CORE-SP kernel variants
    (Nikolentzos et al., IJCAI 2018).
    """
    n = graph.n_vertices
    if n == 0:
        return np.empty(0, dtype=int)
    neighbor_lists = graph.neighbor_lists()
    current = graph.unweighted_degrees().astype(int).copy()
    core = np.zeros(n, dtype=int)
    removed = np.zeros(n, dtype=bool)
    peeled_max = 0
    for _ in range(n):
        # Peel the not-yet-removed vertex of minimum remaining degree. The
        # scan makes this O(n^2); fine for Table II graph sizes and far
        # simpler than a bucket queue.
        alive = np.flatnonzero(~removed)
        v = int(alive[np.argmin(current[alive])])
        peeled_max = max(peeled_max, int(current[v]))
        core[v] = peeled_max
        removed[v] = True
        for u in neighbor_lists[v]:
            if not removed[u]:
                current[u] -= 1
    return core


def k_core_subgraph(graph: Graph, k: int) -> tuple:
    """The ``k``-core as ``(subgraph, vertex_indices)``.

    ``vertex_indices`` maps subgraph vertices back to the original graph.
    """
    if k < 0:
        raise ValidationError(f"k must be >= 0, got {k}")
    core = core_numbers(graph)
    members = np.flatnonzero(core >= k)
    return graph.subgraph(members), members


def degeneracy(graph: Graph) -> int:
    """Maximum core number (0 for the empty graph)."""
    core = core_numbers(graph)
    return int(core.max()) if core.size else 0


def triangle_count(graph: Graph) -> int:
    """Number of triangles, from the trace of ``A^3`` on the 0/1 skeleton."""
    skeleton = (graph.adjacency > 0).astype(float)
    return int(round(np.trace(skeleton @ skeleton @ skeleton) / 6.0))


def clustering_coefficient(graph: Graph) -> float:
    """Global clustering coefficient (3 * triangles / connected triples)."""
    skeleton = (graph.adjacency > 0).astype(float)
    degrees = skeleton.sum(axis=1)
    triples = float(np.sum(degrees * (degrees - 1)) / 2.0)
    if triples == 0:
        return 0.0
    triangles = np.trace(skeleton @ skeleton @ skeleton) / 6.0
    return float(3.0 * triangles / triples)


def disjoint_union(graphs: "list[Graph]") -> Graph:
    """Disjoint union; vertex blocks follow the order of ``graphs``."""
    if not graphs:
        return Graph(np.zeros((0, 0)))
    total = sum(g.n_vertices for g in graphs)
    adjacency = np.zeros((total, total))
    has_labels = all(g.labels is not None for g in graphs)
    labels = [] if has_labels else None
    offset = 0
    for g in graphs:
        n = g.n_vertices
        adjacency[offset : offset + n, offset : offset + n] = g.adjacency
        if has_labels:
            labels.extend(int(x) for x in g.labels)
        offset += n
    return Graph(adjacency, labels=labels)


def max_shortest_path_length(graphs: "list[Graph]") -> int:
    """Greatest finite shortest-path length over a collection of graphs.

    This is the paper's definition of ``K``, the largest DB-representation
    layer (Section III-A). Disconnected pairs are ignored; the result is at
    least 1 for any collection containing an edge.
    """
    if not graphs:
        raise GraphError("max_shortest_path_length needs at least one graph")
    best = 0
    for g in graphs:
        dist = g.shortest_path_lengths()
        if dist.size:
            finite = dist[dist >= 0]
            if finite.size:
                best = max(best, int(finite.max()))
    return max(best, 1)
