"""Stable content hashing for graphs and graph collections.

The artifact store (:mod:`repro.store`) addresses persisted Gram blocks
and prepared states by *content*: two byte-identical graphs always map to
the same digest, across processes and sessions (unlike ``hash()``, which
is salted per interpreter). The digest covers exactly what the kernels
see — the canonicalised adjacency matrix and the vertex labels — and
deliberately excludes the cosmetic ``name`` attribute.

Note that the digest is a *representation* hash, not an isomorphism
invariant: a permuted copy of a graph hashes differently, exactly as it
may produce different rows in a Gram matrix.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph

#: Bumping this version string invalidates every previously stored digest
#: (change it whenever the hashed byte layout changes).
_DIGEST_VERSION = b"graph-digest-v1"


def graph_digest(graph: Graph) -> str:
    """Hex SHA-256 of a graph's canonical content.

    Covers the adjacency matrix (already symmetrised, zero-diagonal
    float64 by :class:`~repro.graphs.graph.Graph` construction) and the
    labels (or an explicit unlabelled marker), but not ``graph.name``.
    """
    if not isinstance(graph, Graph):
        raise GraphError(f"graph_digest needs a Graph, got {type(graph).__name__}")
    digest = hashlib.sha256()
    digest.update(_DIGEST_VERSION)
    digest.update(f"|n={graph.n_vertices}|".encode())
    digest.update(np.ascontiguousarray(graph.adjacency, dtype=np.float64).tobytes())
    if graph.labels is None:
        digest.update(b"|unlabelled")
    else:
        digest.update(b"|labels:")
        digest.update(np.ascontiguousarray(graph.labels, dtype=np.int64).tobytes())
    return digest.hexdigest()


def collection_digest(graphs: "Iterable[Graph]") -> str:
    """Hex SHA-256 of an *ordered* graph collection.

    Order-sensitive on purpose: a Gram matrix's rows follow the input
    order, so reordered collections are distinct artifacts.
    """
    digest = hashlib.sha256()
    digest.update(b"graph-collection-v1")
    count = 0
    for graph in graphs:
        digest.update(graph_digest(graph).encode())
        count += 1
    digest.update(f"|count={count}".encode())
    return digest.hexdigest()
