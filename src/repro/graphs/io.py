"""TU-format dataset IO.

The TU Dortmund graph-kernel benchmark distributes each dataset ``DS`` as
flat text files (https://graphkernels.cs.tu-dortmund.de, paper ref. [49]):

* ``DS_A.txt`` — one ``i, j`` line per directed edge (1-based vertex ids),
* ``DS_graph_indicator.txt`` — line ``v`` holds the graph id of vertex ``v``,
* ``DS_graph_labels.txt`` — one class label per graph,
* ``DS_node_labels.txt`` — optional, one label per vertex.

This module reads and writes that format so the synthetic registry datasets
can be exported, and the *real* TU datasets can be dropped in unchanged when
a network-enabled environment is available.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro.errors import DatasetError
from repro.graphs.graph import Graph


def write_tu_dataset(
    directory: str,
    name: str,
    graphs: Sequence[Graph],
    targets: Sequence[int],
) -> None:
    """Write ``graphs``/``targets`` in TU format under ``directory/name``.

    Node labels are written only if every graph carries labels.
    """
    if len(graphs) != len(targets):
        raise DatasetError(
            f"got {len(graphs)} graphs but {len(targets)} targets"
        )
    base = os.path.join(directory, name)
    os.makedirs(base, exist_ok=True)
    prefix = os.path.join(base, name)

    edge_lines: list = []
    indicator_lines: list = []
    node_label_lines: list = []
    offset = 0
    has_labels = all(g.labels is not None for g in graphs) and len(graphs) > 0
    for graph_id, graph in enumerate(graphs, start=1):
        for u, v, _ in graph.edges():
            edge_lines.append(f"{offset + u + 1}, {offset + v + 1}")
            edge_lines.append(f"{offset + v + 1}, {offset + u + 1}")
        indicator_lines.extend([str(graph_id)] * graph.n_vertices)
        if has_labels:
            node_label_lines.extend(str(int(x)) for x in graph.labels)
        offset += graph.n_vertices

    with open(f"{prefix}_A.txt", "w") as f:
        f.write("\n".join(edge_lines) + ("\n" if edge_lines else ""))
    with open(f"{prefix}_graph_indicator.txt", "w") as f:
        f.write("\n".join(indicator_lines) + ("\n" if indicator_lines else ""))
    with open(f"{prefix}_graph_labels.txt", "w") as f:
        f.write("\n".join(str(int(t)) for t in targets) + "\n")
    if has_labels:
        with open(f"{prefix}_node_labels.txt", "w") as f:
            f.write("\n".join(node_label_lines) + ("\n" if node_label_lines else ""))


def read_tu_dataset(directory: str, name: str) -> tuple:
    """Read a TU-format dataset; returns ``(graphs, targets)``.

    ``directory`` may point either at the folder containing ``name/`` or at
    the dataset folder itself.
    """
    candidates = [os.path.join(directory, name), directory]
    base = next(
        (c for c in candidates if os.path.isfile(os.path.join(c, f"{name}_A.txt"))),
        None,
    )
    if base is None:
        raise DatasetError(
            f"dataset {name!r} not found under {directory!r} "
            f"(expected {name}_A.txt)"
        )
    prefix = os.path.join(base, name)

    indicator = _read_int_column(f"{prefix}_graph_indicator.txt")
    graph_targets = _read_int_column(f"{prefix}_graph_labels.txt")
    n_vertices_total = len(indicator)
    n_graphs = len(graph_targets)
    if n_graphs == 0:
        return [], []
    if indicator.min() < 1 or indicator.max() > n_graphs:
        raise DatasetError("graph_indicator references out-of-range graph ids")

    node_labels = None
    label_path = f"{prefix}_node_labels.txt"
    if os.path.isfile(label_path):
        node_labels = _read_int_column(label_path)
        if len(node_labels) != n_vertices_total:
            raise DatasetError(
                f"node_labels has {len(node_labels)} rows, expected {n_vertices_total}"
            )

    # Map global vertex ids to (graph, local index).
    local_index = np.zeros(n_vertices_total, dtype=int)
    counts = np.zeros(n_graphs, dtype=int)
    for v, g in enumerate(indicator):
        local_index[v] = counts[g - 1]
        counts[g - 1] += 1

    adjacencies = [np.zeros((int(c), int(c))) for c in counts]
    edge_path = f"{prefix}_A.txt"
    with open(edge_path) as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                u_str, v_str = line.replace(",", " ").split()
                u, v = int(u_str) - 1, int(v_str) - 1
            except ValueError as exc:
                raise DatasetError(f"{edge_path}:{line_no}: malformed edge {line!r}") from exc
            if not (0 <= u < n_vertices_total and 0 <= v < n_vertices_total):
                raise DatasetError(f"{edge_path}:{line_no}: vertex id out of range")
            gu, gv = indicator[u], indicator[v]
            if gu != gv:
                raise DatasetError(f"{edge_path}:{line_no}: edge crosses graphs")
            if u == v:
                continue
            a = adjacencies[gu - 1]
            a[local_index[u], local_index[v]] = 1.0
            a[local_index[v], local_index[u]] = 1.0

    graphs = []
    for g in range(n_graphs):
        labels = None
        if node_labels is not None:
            member_mask = indicator == (g + 1)
            ordered = np.empty(int(counts[g]), dtype=int)
            ordered[local_index[member_mask]] = node_labels[member_mask]
            labels = ordered
        graphs.append(Graph(adjacencies[g], labels=labels, name=f"{name}[{g}]"))
    return graphs, [int(t) for t in graph_targets]


def _read_int_column(path: str) -> np.ndarray:
    """Read a single-integer-per-line file, tolerating blank lines."""
    if not os.path.isfile(path):
        raise DatasetError(f"missing file: {path}")
    values = []
    with open(path) as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                values.append(int(float(line)))
            except ValueError as exc:
                raise DatasetError(f"{path}:{line_no}: expected integer, got {line!r}") from exc
    return np.asarray(values, dtype=int)
